"""The `repro obs` command and the --obs-export plumbing."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import MetricsRegistry, Tracer, obs_doc


@pytest.fixture
def snapshot_path(tmp_path):
    registry = MetricsRegistry()
    registry.counter("serving.lookups", {"service": "dev-a"}).inc(42)
    registry.gauge("serving.cache_size", {"service": "dev-a"}).set(7)
    histogram = registry.histogram(
        "serving.lookup_seconds", {"service": "dev-a"}
    )
    for value in (1e-6, 3e-6, 8e-6, 2e-5):
        histogram.observe(value)
    tracer = Tracer()
    with tracer.trace("fleet.reroute", **{"from": "dev-b", "to": "dev-a"}):
        pass
    path = tmp_path / "obs.json"
    path.write_text(json.dumps(obs_doc(registry, tracer)))
    return path


class TestObsCommand:
    def test_summary_renders_metrics_and_span_rollup(
        self, snapshot_path, capsys
    ):
        assert main(["obs", "summary", "--snapshot", str(snapshot_path)]) == 0
        out = capsys.readouterr().out
        assert "serving.lookups{service=dev-a}" in out
        assert "serving.lookup_seconds{service=dev-a}" in out
        assert "p95" in out
        assert "fleet.reroute" in out

    def test_dump_renders_bucket_bars_and_span_trees(
        self, snapshot_path, capsys
    ):
        assert main(["obs", "dump", "--snapshot", str(snapshot_path)]) == 0
        out = capsys.readouterr().out
        assert "histograms:" in out
        assert "#" in out  # bucket bars
        assert "spans (1 roots):" in out

    def test_json_round_trips_the_document(self, snapshot_path, capsys):
        assert main(
            ["obs", "summary", "--json", "--snapshot", str(snapshot_path)]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.obs/v1"
        assert doc["metrics"]["counters"][0]["value"] == 42

    def test_missing_snapshot_is_a_clean_error(self, tmp_path, capsys):
        code = main(
            ["obs", "summary", "--snapshot", str(tmp_path / "absent.json")]
        )
        assert code == 1
        assert "no obs snapshot" in capsys.readouterr().err

    def test_wrong_schema_is_a_clean_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "something/else"}))
        assert main(["obs", "dump", "--snapshot", str(path)]) == 1
        assert "not an obs document" in capsys.readouterr().err

    def test_without_snapshot_reads_the_in_process_registry(self, capsys):
        assert main(["obs", "summary"]) == 0
        # Nothing recorded in this process is fine; the command still
        # renders a well-formed (possibly empty) document.
        assert capsys.readouterr().out.strip()


class TestObsExportFlags:
    def test_fleet_route_and_serve_stats_accept_obs_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "fleet", "route", "--kill", "dev-a",
                "--obs-export", "snap.json",
            ]
        )
        assert args.kill == ["dev-a"]
        assert str(args.obs_export) == "snap.json"
        args = parser.parse_args(["serve-stats", "--obs-export", "snap.json"])
        assert str(args.obs_export) == "snap.json"
        args = parser.parse_args(
            ["pipeline", "run", "--obs-export", "snap.json"]
        )
        assert str(args.obs_export) == "snap.json"
