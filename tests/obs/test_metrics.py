"""Metrics primitives and registry: semantics, boundaries, thread safety."""

import threading

import pytest

from repro.obs import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    histogram_quantile,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_negative_increment_raises(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter().inc(-1)

    def test_reset(self):
        c = Counter()
        c.inc(3)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(5.0)
        g.inc(2.0)
        g.dec()
        assert g.value == pytest.approx(6.0)

    def test_set_max_is_monotonic(self):
        g = Gauge()
        g.set_max(4.0)
        g.set_max(2.0)
        assert g.value == pytest.approx(4.0)
        g.set_max(9.0)
        assert g.value == pytest.approx(9.0)


class TestHistogramBuckets:
    def test_default_bounds_are_the_latency_buckets(self):
        h = Histogram()
        assert h.bounds == LATENCY_BUCKETS_S

    def test_latency_buckets_span_microseconds_to_seconds(self):
        assert len(LATENCY_BUCKETS_S) == 33
        assert LATENCY_BUCKETS_S[0] == pytest.approx(1e-7)
        assert LATENCY_BUCKETS_S[-1] == pytest.approx(10.0)
        assert all(
            a < b for a, b in zip(LATENCY_BUCKETS_S, LATENCY_BUCKETS_S[1:])
        )

    def test_boundary_value_lands_in_its_own_bucket(self):
        # le-semantics: a bound is the *inclusive* upper edge.
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        h.observe(1.0)
        h.observe(2.0)
        h.observe(2.0000001)
        assert h.bucket_counts() == (1, 1, 1, 0)

    def test_overflow_bucket_catches_values_above_the_last_bound(self):
        h = Histogram(bounds=(1.0, 2.0))
        h.observe(100.0)
        assert h.bucket_counts() == (0, 0, 1)

    def test_summary_statistics(self):
        h = Histogram(bounds=(1.0, 10.0))
        for v in (0.5, 2.0, 8.0, 12.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(22.5)
        assert h.mean == pytest.approx(22.5 / 4)
        assert h.minimum == pytest.approx(0.5)
        assert h.maximum == pytest.approx(12.0)

    def test_observe_n_equals_n_repeated_observes(self):
        weighted = Histogram(bounds=(1.0, 2.0, 4.0))
        looped = Histogram(bounds=(1.0, 2.0, 4.0))
        weighted.observe_n(1.5, 1000)
        weighted.observe_n(3.0, 5)
        for _ in range(1000):
            looped.observe(1.5)
        for _ in range(5):
            looped.observe(3.0)
        assert weighted.bucket_counts() == looped.bucket_counts() == (0, 1000, 5, 0)
        assert weighted.count == looped.count == 1005
        assert weighted.total == pytest.approx(looped.total)
        assert weighted.minimum == pytest.approx(1.5)
        assert weighted.maximum == pytest.approx(3.0)

    def test_observe_n_zero_is_a_no_op_and_negative_raises(self):
        h = Histogram(bounds=(1.0,))
        h.observe_n(0.5, 0)
        assert h.count == 0
        with pytest.raises(ValueError, match="n"):
            h.observe_n(0.5, -1)

    def test_quantiles_are_ordered_and_clamped_to_observations(self):
        h = Histogram()
        for v in (1e-6, 2e-6, 5e-6, 1e-5, 1e-4):
            h.observe(v)
        q50, q95 = h.quantile(0.5), h.quantile(0.95)
        assert h.minimum <= q50 <= q95 <= h.maximum

    def test_non_increasing_bounds_raise(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram(bounds=(1.0, 1.0))

    def test_histogram_quantile_interpolates_inside_the_bucket(self):
        bounds = (1.0, 2.0, 3.0)
        counts = (0, 10, 0, 0)  # everything in (1, 2]
        q = histogram_quantile(bounds, counts, 0.5, minimum=1.2, maximum=1.8)
        assert 1.2 <= q <= 1.8


class TestRegistry:
    def test_get_or_create_returns_the_same_instance(self):
        reg = MetricsRegistry()
        a = reg.counter("x", {"k": "v"})
        b = reg.counter("x", {"k": "v"})
        assert a is b
        assert len(reg) == 1

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("x", {"a": 1, "b": 2})
        b = reg.counter("x", {"b": 2, "a": 1})
        assert a is b

    def test_same_name_different_labels_are_distinct(self):
        reg = MetricsRegistry()
        assert reg.counter("x", {"d": "a"}) is not reg.counter("x", {"d": "b"})

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="Counter"):
            reg.gauge("x")

    def test_empty_name_raises(self):
        with pytest.raises(ValueError, match="non-empty"):
            MetricsRegistry().counter("")

    def test_snapshot_structure(self):
        reg = MetricsRegistry()
        reg.counter("c", {"k": "v"}).inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(2e-6)
        snap = reg.snapshot()
        assert [e["name"] for e in snap["counters"]] == ["c"]
        assert snap["counters"][0]["labels"] == {"k": "v"}
        assert snap["counters"][0]["value"] == 3
        assert snap["gauges"][0]["value"] == pytest.approx(1.5)
        assert snap["histograms"][0]["count"] == 1

    def test_reset_zeroes_but_keeps_registrations(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc(5)
        reg.reset()
        assert c.value == 0
        assert len(reg) == 1


class TestThreadSafety:
    N_THREADS = 8
    N_INCS = 2_000

    def test_concurrent_writers_lose_no_updates(self):
        reg = MetricsRegistry()
        counter = reg.counter("hits")
        histogram = reg.histogram("lat")
        gauge = reg.gauge("peak")
        barrier = threading.Barrier(self.N_THREADS)

        def writer(worker: int) -> None:
            barrier.wait()
            for i in range(self.N_INCS):
                counter.inc()
                histogram.observe(1e-6 * (1 + (i + worker) % 7))
                gauge.set_max(worker)

        threads = [
            threading.Thread(target=writer, args=(w,))
            for w in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == self.N_THREADS * self.N_INCS
        assert histogram.count == self.N_THREADS * self.N_INCS
        assert sum(histogram.bucket_counts()) == histogram.count
        assert gauge.value == self.N_THREADS - 1

    def test_concurrent_get_or_create_yields_one_instance(self):
        reg = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(self.N_THREADS)

        def getter() -> None:
            barrier.wait()
            seen.append(reg.counter("shared", {"k": "v"}))

        threads = [
            threading.Thread(target=getter) for _ in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(map(id, seen))) == 1


class TestNullRegistry:
    def test_writes_are_dropped(self):
        reg = NullRegistry()
        c = reg.counter("c")
        c.inc(100)
        assert c.value == 0
        h = reg.histogram("h")
        h.observe(1.0)
        assert h.count == 0
        g = reg.gauge("g")
        g.set(5.0)
        g.set_max(9.0)
        assert g.value == 0.0

    def test_snapshot_is_empty(self):
        snap = NULL_REGISTRY.snapshot()
        assert snap == {"counters": [], "gauges": [], "histograms": []}
