"""Span tracing: nesting, tagging, ring bounds, JSON round-trips."""

import json
import threading

import pytest

from repro.obs import NullTracer, SpanRecord, Tracer


class TestNesting:
    def test_spans_opened_inside_a_span_become_children(self):
        tracer = Tracer()
        with tracer.trace("outer"):
            with tracer.trace("middle"):
                with tracer.trace("inner"):
                    pass
        roots = tracer.spans()
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["middle"]
        assert [c.name for c in roots[0].children[0].children] == ["inner"]

    def test_siblings_stay_in_order(self):
        tracer = Tracer()
        with tracer.trace("run"):
            with tracer.trace("a"):
                pass
            with tracer.trace("b"):
                pass
        assert [c.name for c in tracer.spans()[0].children] == ["a", "b"]

    def test_parent_duration_covers_children(self):
        tracer = Tracer()
        with tracer.trace("outer"):
            with tracer.trace("inner"):
                pass
        outer = tracer.spans()[0]
        assert outer.duration_s >= outer.children[0].duration_s

    def test_span_survives_an_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.trace("doomed"):
                raise RuntimeError("boom")
        assert [r.name for r in tracer.spans()] == ["doomed"]


class TestTagsAndRecord:
    def test_tags_can_be_updated_mid_span(self):
        tracer = Tracer()
        with tracer.trace("lookup", device="gpu") as span:
            span.tags["cache_hit"] = True
        record = tracer.spans()[0]
        assert record.tags == {"device": "gpu", "cache_hit": True}

    def test_record_attaches_to_the_open_span(self):
        tracer = Tracer()
        with tracer.trace("run"):
            returned = tracer.record("stage", 0.25, tags={"stage": "sweep"})
        root = tracer.spans()[0]
        assert root.children == (returned,)
        assert returned.duration_s == pytest.approx(0.25)

    def test_record_without_open_span_becomes_a_root(self):
        tracer = Tracer()
        tracer.record("orphan", 0.1)
        assert [r.name for r in tracer.spans()] == ["orphan"]

    def test_negative_duration_raises(self):
        with pytest.raises(ValueError, match=">= 0"):
            Tracer().record("bad", -1.0)

    def test_find_matches_at_any_depth(self):
        tracer = Tracer()
        with tracer.trace("run"):
            tracer.record("reroute", 0.01)
        tracer.record("reroute", 0.02)
        assert len(tracer.find("reroute")) == 2


class TestRingBuffer:
    def test_oldest_roots_fall_off_first(self):
        tracer = Tracer(max_spans=3)
        for i in range(5):
            tracer.record(f"s{i}", 0.0)
        assert [r.name for r in tracer.spans()] == ["s2", "s3", "s4"]

    def test_invalid_max_spans_raises(self):
        with pytest.raises(ValueError, match="max_spans"):
            Tracer(max_spans=0)

    def test_clear_empties_the_buffer(self):
        tracer = Tracer()
        tracer.record("s", 0.0)
        tracer.clear()
        assert tracer.spans() == ()


class TestJsonRoundTrip:
    def test_export_then_from_dict_reproduces_the_tree(self):
        tracer = Tracer()
        with tracer.trace("run", force=False):
            with tracer.trace("stage", stage="sweep"):
                pass
            tracer.record("stage", 0.5, tags={"stage": "train"})
        exported = json.loads(json.dumps(tracer.export()))
        rebuilt = [SpanRecord.from_dict(doc) for doc in exported]
        assert rebuilt == list(tracer.spans())

    def test_walk_yields_depth_first(self):
        tracer = Tracer()
        with tracer.trace("a"):
            with tracer.trace("b"):
                tracer.record("c", 0.0)
            tracer.record("d", 0.0)
        names = [s.name for s in tracer.spans()[0].walk()]
        assert names == ["a", "b", "c", "d"]


class TestThreadIsolation:
    def test_each_thread_builds_its_own_tree(self):
        tracer = Tracer()
        barrier = threading.Barrier(4)

        def worker(i: int) -> None:
            with tracer.trace(f"root-{i}"):
                barrier.wait()
                with tracer.trace(f"child-{i}"):
                    pass

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = tracer.spans()
        assert len(roots) == 4
        for root in roots:
            suffix = root.name.split("-")[1]
            assert [c.name for c in root.children] == [f"child-{suffix}"]


class TestNullTracer:
    def test_drops_spans_but_still_yields(self):
        tracer = NullTracer()
        with tracer.trace("ignored") as span:
            span.tags["x"] = 1
        record = tracer.record("also-ignored", 0.1)
        assert tracer.spans() == ()
        # record() still returns a usable SpanRecord for thin views.
        assert record.duration_s == pytest.approx(0.1)
