"""Tests for the repro.obs metrics/tracing layer."""
