"""The stats() shapes predating repro.obs, pinned as thin views.

These tests freeze the pre-obs observability contract: the field names
of :class:`ServiceStats` / :class:`FleetStats` / :class:`ExecutorStats`
and the counting semantics callers built against.  If the obs rewiring
changes what a snapshot reports, it fails here, not in a dashboard.
"""

import dataclasses

import pytest

from repro.kernels.params import KernelConfig
from repro.obs import MetricsRegistry, Tracer
from repro.pipeline.executor import PipelineExecutor
from repro.pipeline.stage import Pipeline, Stage
from repro.pipeline.store import ArtifactStore
from repro.serving import FleetRouter, SelectionService
from repro.serving.stats import FleetStats, ServiceStats
from repro.workloads.gemm import GemmShape

CONFIG = KernelConfig(acc=4, rows=2, cols=2, wg_rows=8, wg_cols=8)
OTHER = KernelConfig(acc=8, rows=4, cols=4, wg_rows=16, wg_cols=16)

#: The exact ServiceStats surface callers relied on before repro.obs.
SERVICE_STATS_FIELDS = (
    "lookups",
    "cache_hits",
    "single_calls",
    "batch_calls",
    "max_batch_size",
    "mean_batch_size",
    "evictions",
    "cache_size",
    "capacity",
    "latency",
    "policy_errors",
    "fallback_serves",
    "breaker_trips",
    "breaker_open",
    "artifact_id",
    "provenance",
)

FLEET_STATS_FIELDS = (
    "devices",
    "dispatched",
    "outstanding",
    "targeted",
    "agnostic",
    "rerouted",
    "policy_counts",
    "default_policy",
)


class StubPolicy:
    """Deterministic policy: alternates configs by shape parity."""

    def select(self, shape):
        return CONFIG if shape.m % 2 == 0 else OTHER

    def select_batch(self, shapes):
        return tuple(self.select(s) for s in shapes)


def shapes(n, start=0):
    return [GemmShape(m=64 + 16 * (start + i), k=64, n=64) for i in range(n)]


class TestServiceStatsCompat:
    def test_field_names_are_pinned(self):
        names = tuple(f.name for f in dataclasses.fields(ServiceStats))
        assert names == SERVICE_STATS_FIELDS

    def test_counters_read_identically_through_the_registry(self):
        service = SelectionService(StubPolicy(), capacity=8)
        batch = shapes(6)
        service.select_batch(batch)  # 6 misses
        service.select_batch(batch)  # 6 hits
        service.select(batch[0])  # 1 hit
        stats = service.stats()
        assert stats.lookups == 13
        assert stats.cache_hits == 7
        assert stats.cache_misses == 6
        assert stats.single_calls == 1
        assert stats.batch_calls == 2
        assert stats.max_batch_size == 6
        assert stats.mean_batch_size == pytest.approx(6.0)
        assert stats.cache_size == 6
        assert stats.capacity == 8
        assert stats.hit_rate == pytest.approx(7 / 13)
        assert stats.latency.count == 3
        assert stats.latency.mean > 0.0
        assert stats.latency.p50 <= stats.latency.p95 <= stats.latency.maximum

    def test_render_still_produces_the_report(self):
        service = SelectionService(StubPolicy())
        service.select(GemmShape(m=64, k=64, n=64))
        report = service.stats().render()
        assert "lookups" in report
        assert "circuit breaker" in report

    def test_clear_resets_only_this_service(self):
        registry = MetricsRegistry()
        a = SelectionService(StubPolicy(), registry=registry, name="a")
        b = SelectionService(StubPolicy(), registry=registry, name="b")
        a.select(GemmShape(m=64, k=64, n=64))
        b.select(GemmShape(m=64, k=64, n=64))
        a.clear()
        assert a.stats().lookups == 0
        assert b.stats().lookups == 1

    def test_shared_registry_labels_services_apart(self):
        registry = MetricsRegistry()
        a = SelectionService(StubPolicy(), registry=registry, name="a")
        a.select(GemmShape(m=64, k=64, n=64))
        entries = {
            (name, tuple(sorted(labels.items())))
            for name, labels, _ in registry.collect()
        }
        assert ("serving.lookups", (("service", "a"),)) in entries


class TestFleetStatsCompat:
    def test_field_names_are_pinned(self):
        names = tuple(f.name for f in dataclasses.fields(FleetStats))
        assert names == FLEET_STATS_FIELDS

    def _router(self, registry=None, tracer=None):
        router = FleetRouter(registry=registry, tracer=tracer)
        for did in ("dev-a", "dev-b"):
            router.add_device(did, SelectionService(StubPolicy()))
        return router

    def test_dispatch_counters_read_identically(self):
        router = self._router()
        router.select(GemmShape(m=64, k=64, n=64), device_id="dev-a")
        router.select_batch(shapes(4))
        stats = router.stats()
        assert stats.targeted == 1
        assert stats.agnostic == 4
        assert stats.rerouted == 0
        assert sum(stats.dispatched.values()) == 5
        assert stats.policy_counts == {"round-robin": 4}
        assert set(stats.devices) == {"dev-a", "dev-b"}

    def test_complete_clamps_outstanding_at_zero(self):
        router = self._router()
        router.select(GemmShape(m=64, k=64, n=64), device_id="dev-a")
        router.complete("dev-a", n=10)
        assert router.stats().outstanding["dev-a"] == 0

    def test_clear_zeroes_router_metrics_but_keeps_services(self):
        registry = MetricsRegistry()
        router = self._router(registry=registry)
        router.select_batch(shapes(4))
        router.clear()
        stats = router.stats()
        assert stats.agnostic == 0
        assert stats.policy_counts == {}
        assert all(v == 0 for v in stats.dispatched.values())

    def test_reroute_emits_spans_on_the_shared_tracer(self):
        class Exploding:
            def select(self, shape):
                raise RuntimeError("dead device")

            def select_batch(self, shapes):
                raise RuntimeError("dead device")

        tracer = Tracer()
        router = FleetRouter(tracer=tracer)
        router.add_device("dead", SelectionService(Exploding()))
        router.add_device("ok", SelectionService(StubPolicy()))
        decisions = router.select_batch(shapes(3), device_id="dead")
        assert all(d.device_id == "ok" and d.rerouted for d in decisions)
        reroutes = tracer.find("fleet.reroute")
        assert len(reroutes) >= 1
        assert reroutes[0].tags["from"] == "dead"


# Stage functions are module-level so the process pool can pickle them.
def root_stage(inputs, params, options):
    return params["value"]


def double_stage(inputs, params, options):
    return inputs["root"] * 2


def two_stage_pipeline():
    p = Pipeline()
    p.add(Stage("root", root_stage))
    p.add(Stage("double", double_stage, ("root",)))
    return p


class TestExecutorStatsCompat:
    PARAMS = {"root": {"value": 7}}

    def test_stats_are_rebuilt_from_stage_spans(self, tmp_path):
        tracer = Tracer()
        registry = MetricsRegistry()
        executor = PipelineExecutor(
            ArtifactStore(tmp_path / "store"), registry=registry, tracer=tracer
        )
        run = executor.run(two_stage_pipeline(), self.PARAMS)
        assert run.stats.n_executed == 2
        assert run.stats.executed_stages == ("root", "double")
        assert not run.stats.all_cached

        roots = [s for s in tracer.spans() if s.name == "pipeline.run"]
        assert len(roots) == 1
        stage_spans = [c for c in roots[0].children if c.name == "pipeline.stage"]
        assert {s.tags["stage"] for s in stage_spans} == {"root", "double"}
        assert all(s.tags["cache_hit"] is False for s in stage_spans)
        # The legacy snapshot is a view over exactly those spans.
        by_stage = {s.tags["stage"]: s for s in stage_spans}
        for execution in run.stats.executions:
            span = by_stage[execution.stage]
            assert execution.fingerprint == span.tags["fingerprint"]
            assert execution.runtime_s == pytest.approx(span.duration_s)

    def test_cached_rerun_tags_hits_and_bumps_counters(self, tmp_path):
        registry = MetricsRegistry()
        store = ArtifactStore(tmp_path / "store")
        executor = PipelineExecutor(store, registry=registry)
        executor.run(two_stage_pipeline(), self.PARAMS)
        rerun = executor.run(two_stage_pipeline(), self.PARAMS)
        assert rerun.stats.all_cached
        assert registry.counter("pipeline.stages", {"result": "ran"}).value == 2
        assert (
            registry.counter("pipeline.stages", {"result": "cached"}).value == 2
        )
        assert registry.counter("pipeline.runs").value == 2
