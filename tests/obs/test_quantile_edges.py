"""histogram_quantile / merged_quantiles edge cases (satellite coverage)."""

import pytest

from repro.obs import Histogram, MetricsRegistry, histogram_quantile
from repro.loadgen.report import merged_quantiles


class TestHistogramQuantileEdges:
    def test_no_observations_returns_zero(self):
        assert histogram_quantile((1.0, 2.0), (0, 0, 0), 0.99) == 0.0

    def test_all_mass_in_overflow_bucket(self):
        # Every observation exceeded the last bound: the only data lives
        # in the +Inf bucket, and the estimate must come from the
        # observed maximum, not extrapolate past it.
        h = Histogram(bounds=(1.0,))
        for value in (5.0, 7.0, 9.0):
            h.observe(value)
        assert h.bucket_counts() == (0, 3)
        assert h.quantile(0.5) <= 9.0
        assert h.quantile(0.999) == pytest.approx(9.0, rel=0.01)
        assert h.quantile(1.0) == 9.0
        # The interpolation floor for the overflow bucket is the last
        # bound, so low quantiles stay within [last bound, max].
        assert 1.0 <= h.quantile(0.01) <= 9.0

    def test_single_observation_pins_every_quantile(self):
        h = Histogram()
        h.observe(3.3e-5)
        for q in (0.0, 0.5, 0.99, 0.999, 1.0):
            assert h.quantile(q) == pytest.approx(3.3e-5)

    def test_clamps_to_observed_range(self):
        # One wide bucket [0, 10]: interpolation alone would answer 5.0
        # for p50, but both observations are 2.0 so the clamp wins.
        h = Histogram(bounds=(10.0,))
        h.observe(2.0)
        h.observe(2.0)
        assert h.quantile(0.5) == 2.0

    def test_quantile_out_of_range_raises(self):
        with pytest.raises(ValueError, match="quantile"):
            histogram_quantile((1.0,), (1, 0), 1.5)

    def test_count_width_mismatch_raises(self):
        with pytest.raises(ValueError, match="bucket counts"):
            histogram_quantile((1.0, 2.0), (1, 0), 0.5)


class TestMergedQuantilesEdges:
    def test_empty_registry_returns_none(self):
        assert merged_quantiles(MetricsRegistry(), "serving.lookup_seconds") is None

    def test_registered_but_unobserved_histograms_return_none(self):
        reg = MetricsRegistry()
        reg.histogram("lat", {"w": "0"})
        assert merged_quantiles(reg, "lat") is None

    def test_disjoint_label_sets_merge_bucket_counts(self):
        reg = MetricsRegistry()
        reg.histogram("lat", {"worker": "0"}, bounds=(1.0, 10.0)).observe(0.5)
        reg.histogram("lat", {"worker": "1"}, bounds=(1.0, 10.0)).observe(8.0)
        reg.histogram("lat", {"worker": "1"}, bounds=(1.0, 10.0)).observe(8.0)
        summary = merged_quantiles(reg, "lat")
        assert summary is not None
        assert summary.count == 3
        assert summary.mean_s == pytest.approx((0.5 + 8.0 + 8.0) / 3)
        assert 0.5 <= summary.p50_s <= 8.0
        assert summary.p999_s == 8.0

    def test_mismatched_bounds_across_labels_raise(self):
        reg = MetricsRegistry()
        reg.histogram("lat", {"w": "0"}, bounds=(1.0,)).observe(0.5)
        reg.histogram("lat", {"w": "1"}, bounds=(2.0,)).observe(0.5)
        with pytest.raises(ValueError, match="mismatched"):
            merged_quantiles(reg, "lat")

    def test_other_metric_names_are_ignored(self):
        reg = MetricsRegistry()
        reg.histogram("other").observe(1.0)
        reg.counter("lat").inc()  # same name, wrong kind: skipped
        assert merged_quantiles(reg, "lat") is None
