"""merge_snapshot and SnapshotDeltaTracker: exactness and conflicts."""

import threading

import pytest

from repro.obs import MetricsRegistry, SnapshotDeltaTracker


def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("serving.lookups", {"service": "a"}).inc(7)
    reg.counter("serving.lookups", {"service": "b"}).inc(3)
    reg.counter("plain").inc(1)
    reg.gauge("fleet.outstanding", {"device": "d0"}).set(4.5)
    h = reg.histogram("serving.lookup_seconds", {"service": "a"})
    for value in (1e-6, 3e-6, 2e-3):
        h.observe(value)
    reg.histogram("custom", bounds=(1.0, 2.0)).observe(1.5)
    return reg


class TestMergeSnapshot:
    def test_merge_into_empty_is_exact_inverse_of_snapshot(self):
        source = populated_registry()
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot())
        assert target.snapshot() == source.snapshot()

    def test_counters_add_across_merges(self):
        target = MetricsRegistry()
        source = MetricsRegistry()
        source.counter("hits", {"w": "0"}).inc(5)
        target.merge_snapshot(source.snapshot())
        target.merge_snapshot(source.snapshot())
        assert target.counter("hits", {"w": "0"}).value == 10

    def test_gauges_adopt_latest_value(self):
        target = MetricsRegistry()
        target.gauge("depth").set(9.0)
        source = MetricsRegistry()
        source.gauge("depth").set(2.0)
        target.merge_snapshot(source.snapshot())
        assert target.gauge("depth").value == 2.0

    def test_histograms_add_counts_and_merge_extrema(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("lat", bounds=(1.0, 10.0)).observe(0.5)
        b.histogram("lat", bounds=(1.0, 10.0)).observe(50.0)
        target = MetricsRegistry()
        target.merge_snapshot(a.snapshot())
        target.merge_snapshot(b.snapshot())
        h = target.histogram("lat", bounds=(1.0, 10.0))
        assert h.count == 2
        assert h.minimum == 0.5
        assert h.maximum == 50.0
        assert h.bucket_counts() == (1, 0, 1)

    def test_empty_histogram_does_not_poison_extrema(self):
        target = MetricsRegistry()
        target.histogram("lat", bounds=(1.0,)).observe(0.25)
        source = MetricsRegistry()
        source.histogram("lat", bounds=(1.0,))  # registered, never observed
        target.merge_snapshot(source.snapshot())
        h = target.histogram("lat", bounds=(1.0,))
        assert h.count == 1
        assert h.minimum == 0.25

    def test_kind_conflict_raises_typeerror(self):
        target = MetricsRegistry()
        target.counter("clash")
        source = MetricsRegistry()
        source.gauge("clash").set(1.0)
        with pytest.raises(TypeError, match="clash"):
            target.merge_snapshot(source.snapshot())

    def test_mismatched_bounds_raise(self):
        target = MetricsRegistry()
        target.histogram("lat", bounds=(1.0, 2.0))
        source = MetricsRegistry()
        source.histogram("lat", bounds=(5.0,)).observe(1.0)
        with pytest.raises(ValueError, match="bounds"):
            target.merge_snapshot(source.snapshot())

    def test_disjoint_label_sets_stay_separate(self):
        target = MetricsRegistry()
        a = MetricsRegistry()
        a.counter("lookups", {"worker": "0"}).inc(2)
        b = MetricsRegistry()
        b.counter("lookups", {"worker": "1"}).inc(5)
        target.merge_snapshot(a.snapshot())
        target.merge_snapshot(b.snapshot())
        assert target.counter("lookups", {"worker": "0"}).value == 2
        assert target.counter("lookups", {"worker": "1"}).value == 5

    def test_concurrent_merges_total_exactly(self):
        target = MetricsRegistry()
        source = MetricsRegistry()
        source.counter("n").inc(1)
        source.histogram("h", bounds=(1.0,)).observe(0.5)
        snap = source.snapshot()
        per_thread = 200
        threads = [
            threading.Thread(
                target=lambda: [target.merge_snapshot(snap) for _ in range(per_thread)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert target.counter("n").value == 8 * per_thread
        assert target.histogram("h", bounds=(1.0,)).count == 8 * per_thread


class TestSnapshotDeltaTracker:
    def test_deltas_ship_only_increments(self):
        reg = MetricsRegistry()
        tracker = SnapshotDeltaTracker(reg)
        reg.counter("n").inc(3)
        first = tracker.delta()
        assert first["counters"][0]["value"] == 3
        assert tracker.delta()["counters"] == []  # nothing new
        reg.counter("n").inc(2)
        assert tracker.delta()["counters"][0]["value"] == 2

    def test_histogram_deltas_carry_incremental_counts(self):
        reg = MetricsRegistry()
        tracker = SnapshotDeltaTracker(reg)
        h = reg.histogram("h", bounds=(1.0, 2.0))
        h.observe(0.5)
        tracker.delta()
        h.observe(1.5)
        h.observe(1.7)
        delta = tracker.delta()
        (entry,) = delta["histograms"]
        assert entry["count"] == 2
        assert entry["counts"] == [0, 2, 0]
        assert entry["sum"] == pytest.approx(3.2)

    def test_gauges_ship_absolute(self):
        reg = MetricsRegistry()
        tracker = SnapshotDeltaTracker(reg)
        reg.gauge("depth").set(4.0)
        tracker.delta()
        assert tracker.delta()["gauges"][0]["value"] == 4.0

    def test_merged_deltas_reconstruct_source_totals(self):
        source = MetricsRegistry()
        tracker = SnapshotDeltaTracker(source)
        merged = MetricsRegistry()
        for round_number in range(1, 6):
            source.counter("n", {"w": "0"}).inc(round_number)
            source.histogram("h").observe(1e-6 * round_number)
            merged.merge_snapshot(tracker.delta())
        assert merged.counter("n", {"w": "0"}).value == source.counter(
            "n", {"w": "0"}
        ).value
        assert merged.histogram("h").count == source.histogram("h").count
        assert merged.histogram("h").total == pytest.approx(
            source.histogram("h").total
        )
