"""Shared fixtures.

Two dataset tiers keep the suite fast:

* ``small_dataset`` — a reduced configuration space (108 configs) over a
  24-shape subset; regenerates in well under a second and is enough for
  pipeline mechanics.
* ``full_dataset`` — the real 640-config x all-shapes table, generated
  once per session (used by the integration/calibration tests).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.runner import BenchmarkRunner, RunnerConfig
from repro.core.dataset import PerformanceDataset, generate_dataset
from repro.kernels.params import config_space
from repro.sycl.device import Device
from repro.workloads.extract import extract_dataset_shapes


SMALL_TILES = (1, 2, 4)
SMALL_WGS = ((8, 8), (1, 64), (16, 16), (64, 1))


@pytest.fixture(scope="session")
def small_configs():
    return config_space(tile_sizes=SMALL_TILES, work_groups=SMALL_WGS)


@pytest.fixture(scope="session")
def all_shapes():
    shapes, _ = extract_dataset_shapes()
    return shapes


@pytest.fixture(scope="session")
def small_dataset(small_configs, all_shapes) -> PerformanceDataset:
    # A spread of shapes: every 7th keeps all families represented.
    shapes = all_shapes[::7]
    runner = BenchmarkRunner(
        Device.r9_nano(),
        configs=small_configs,
        runner_config=RunnerConfig(warmup_iterations=1, timed_iterations=3),
    )
    return PerformanceDataset.from_benchmark(runner.run(shapes))


@pytest.fixture(scope="session")
def full_dataset(tmp_path_factory) -> PerformanceDataset:
    cache = tmp_path_factory.mktemp("dataset") / "full.npz"
    return generate_dataset(cache_path=cache)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
