"""Property tests for the online primitives.

``DecayedMeanVar`` is checked against a NumPy reference that weights
every observation by ``decay ** age`` explicitly; the Bloom structures
are checked for their defining properties (no false negatives ever,
false-positive rate within 2x the configured bound, admission exactly
at the threshold-th sighting) across several seeds.
"""

import math

import numpy as np
import pytest

from repro.ml.online import BloomAdmission, BloomFilter, DecayedMeanVar
from repro.utils.rng import stream


def reference_stats(values, half_life):
    """Explicit decayed-weight mean/variance: weight = decay ** age."""
    decay = 0.5 ** (1.0 / half_life)
    n = len(values)
    weights = decay ** np.arange(n - 1, -1, -1, dtype=float)
    mean = float(np.average(values, weights=weights))
    var = float(np.average((np.asarray(values) - mean) ** 2, weights=weights))
    return mean, var, float(weights.sum())


class TestDecayedMeanVar:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("half_life", [1.0, 8.0, 64.0, 1000.0])
    def test_matches_numpy_weighted_reference(self, seed, half_life):
        rng = stream(seed, "test", "decayed-ref")
        values = rng.lognormal(mean=-7.0, sigma=0.6, size=200)
        est = DecayedMeanVar(half_life=half_life)
        for i, value in enumerate(values):
            est.observe(float(value))
            mean, var, weight = reference_stats(values[: i + 1], half_life)
            assert est.mean == pytest.approx(mean, rel=1e-9)
            assert est.variance == pytest.approx(var, rel=1e-7, abs=1e-18)
            assert est.weight == pytest.approx(weight, rel=1e-9)
        assert est.count == len(values)

    @pytest.mark.parametrize("half_life", [0.5, 1.0, 24.0, 64.0])
    def test_decay_halves_weight_at_half_life(self, half_life):
        est = DecayedMeanVar(half_life=half_life)
        assert est.half_life == half_life
        assert est.decay ** half_life == pytest.approx(0.5, rel=1e-12)

    def test_old_observations_are_forgotten(self):
        # 50 samples at 1.0, then 200 at 2.0 with an 8-update half-life:
        # the old level must carry almost no weight by the end.
        est = DecayedMeanVar(half_life=8.0)
        for _ in range(50):
            est.observe(1.0)
        for _ in range(200):
            est.observe(2.0)
        assert est.mean == pytest.approx(2.0, abs=1e-4)

    def test_single_observation(self):
        est = DecayedMeanVar(half_life=16.0)
        est.observe(3.5)
        assert est.mean == 3.5
        assert est.variance == pytest.approx(0.0, abs=1e-18)
        assert est.weight == pytest.approx(1.0)
        assert est.stderr == pytest.approx(0.0, abs=1e-9)

    def test_empty_estimator_is_all_zero(self):
        est = DecayedMeanVar()
        assert est.count == 0
        assert est.mean == 0.0
        assert est.variance == 0.0
        assert est.std == 0.0
        assert est.stderr == 0.0

    def test_stderr_shrinks_with_effective_samples(self):
        rng = stream(0, "test", "stderr")
        est = DecayedMeanVar(half_life=1000.0)
        errs = []
        for value in rng.normal(1.0, 0.1, size=100):
            est.observe(float(value))
            errs.append(est.stderr)
        assert errs[-1] < errs[2]

    @pytest.mark.parametrize("bad", [0.0, -1.0, -0.5])
    def test_invalid_half_life_rejected(self, bad):
        with pytest.raises(ValueError, match="half_life"):
            DecayedMeanVar(half_life=bad)

    def test_repr_mentions_count_and_mean(self):
        est = DecayedMeanVar()
        est.observe(2.0)
        assert "n=1" in repr(est)


class TestBloomFilter:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_never_a_false_negative(self, seed):
        bloom = BloomFilter(capacity=512, error_rate=0.01, seed=seed)
        keys = [("shape", i, i * 3 + 1) for i in range(512)]
        for key in keys:
            bloom.add(*key)
        assert all(bloom.contains(*key) for key in keys)
        assert bloom.added == len(keys)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("error_rate", [0.01, 0.05])
    def test_false_positive_rate_within_2x_bound(self, seed, error_rate):
        capacity = 512
        bloom = BloomFilter(capacity, error_rate, seed=seed)
        for i in range(capacity):
            bloom.add("member", i)
        probes = 20_000
        false_positives = sum(
            bloom.contains("absent", i) for i in range(probes)
        )
        assert false_positives / probes <= 2.0 * error_rate

    def test_sizing_follows_the_standard_formulas(self):
        capacity, p = 1000, 0.01
        bloom = BloomFilter(capacity, p)
        ln2 = math.log(2.0)
        want_bits = math.ceil(-capacity * math.log(p) / ln2**2)
        assert bloom.n_bits == want_bits
        assert bloom.n_hashes == max(1, round(want_bits / capacity * ln2))

    def test_membership_is_seed_deterministic_across_instances(self):
        a = BloomFilter(128, 0.02, seed=7)
        b = BloomFilter(128, 0.02, seed=7)
        for i in range(64):
            a.add("k", i)
            b.add("k", i)
        probes = [("k", i) for i in range(256)] + [("x", i) for i in range(256)]
        assert [a.contains(*p) for p in probes] == [
            b.contains(*p) for p in probes
        ]

    def test_different_seeds_give_different_tables(self):
        a = BloomFilter(128, 0.02, seed=0)
        b = BloomFilter(128, 0.02, seed=1)
        for i in range(64):
            a.add("k", i)
            b.add("k", i)
        assert a._bits != b._bits

    def test_fill_ratio_grows_monotonically(self):
        bloom = BloomFilter(256, 0.01)
        assert bloom.fill_ratio() == 0.0
        previous = 0.0
        for i in range(128):
            bloom.add("grow", i)
            ratio = bloom.fill_ratio()
            assert ratio >= previous
            previous = ratio
        assert 0.0 < previous < 1.0

    @pytest.mark.parametrize(
        "capacity,error_rate", [(0, 0.01), (-1, 0.01), (8, 0.0), (8, 1.0)]
    )
    def test_invalid_parameters_rejected(self, capacity, error_rate):
        with pytest.raises(ValueError):
            BloomFilter(capacity, error_rate)

    def test_mixed_int_and_str_keys(self):
        bloom = BloomFilter(64, 0.01)
        bloom.add(1, "a", 2)
        assert bloom.contains(1, "a", 2)
        assert not bloom.contains(1, "a", 3)


class TestBloomAdmission:
    @pytest.mark.parametrize("threshold", [1, 2, 3, 5])
    def test_admits_exactly_at_the_threshold_sighting(self, threshold):
        admission = BloomAdmission(threshold=threshold, capacity=256)
        key = ("shape", 64, 128, 256)
        for sighting in range(1, threshold):
            assert admission.observe(*key) is False
            assert admission.admitted(*key) is False
        assert admission.observe(*key) is True
        assert admission.admitted(*key) is True
        # Further sightings stay admitted.
        assert admission.observe(*key) is True

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_never_admitted_late_across_many_keys(self, seed):
        # False positives may admit a key early; the no-false-negative
        # property of the stages means no key is EVER admitted after
        # its threshold-th sighting.
        threshold = 3
        admission = BloomAdmission(
            threshold=threshold, capacity=512, seed=seed
        )
        for i in range(512):
            key = ("k", i)
            admitted_at = None
            for sighting in range(1, threshold + 1):
                if admission.observe(*key):
                    admitted_at = sighting
                    break
            assert admitted_at is not None and admitted_at <= threshold

    def test_threshold_property_and_validation(self):
        assert BloomAdmission(threshold=4).threshold == 4
        with pytest.raises(ValueError, match="threshold"):
            BloomAdmission(threshold=0)

    def test_distinct_keys_do_not_admit_each_other(self):
        admission = BloomAdmission(threshold=2, capacity=256)
        admission.observe("a", 1)
        assert admission.observe("b", 2) is False
        assert admission.admitted("a", 1) is False
