"""Drifted-workload scenarios: the latency model, the gates, the report.

The deterministic ``replay_drift`` run is the main fixture: one call
covers the drifted latency surface, adaptation end-to-end (the >= 50%
gap-closure property CI gates on), and the DriftSummary wiring into the
load report.
"""

import pytest

from repro.kernels.params import config_space
from repro.loadgen import (
    DriftSpec,
    DriftedLatencyModel,
    LoadgenConfig,
    RateProfile,
    replay_drift,
    run_drift_load,
)
from repro.loadgen.report import DriftSummary
from repro.perfmodel.model import GemmPerfModel
from repro.sycl.device import Device
from repro.workloads.gemm import GemmShape

CONFIGS = tuple(config_space(tile_sizes=(1, 2), work_groups=((8, 8), (16, 16))))
SHAPE = GemmShape(m=256, k=256, n=256)


class _StaticPolicy:
    def select(self, shape):
        return CONFIGS[0]


def make_model(**spec_overrides):
    knobs = dict(at=0.5, factor=4.0, noise_sigma=0.05, seed=0)
    knobs.update(spec_overrides)
    return DriftedLatencyModel(
        GemmPerfModel(Device.r9_nano()),
        _StaticPolicy(),
        CONFIGS,
        spec=DriftSpec(**knobs),
    )


class TestDriftSpec:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"at": -0.1},
            {"at": 1.5},
            {"factor": 1.0},
            {"factor": 0.5},
            {"noise_sigma": -0.01},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DriftSpec(**kwargs)


class TestDriftedLatencyModel:
    def test_identical_calls_are_identical(self):
        a, b = make_model(), make_model()
        for step in (0, 7, 1000):
            for config in CONFIGS[:3]:
                assert a.time(SHAPE, config, step, drifted=True) == b.time(
                    SHAPE, config, step, drifted=True
                )

    def test_noise_varies_with_step_but_not_phase(self):
        model = make_model()
        times = {model.time(SHAPE, CONFIGS[1], s, drifted=False) for s in range(16)}
        assert len(times) == 16  # per-step noise actually moves

    def test_drift_inflates_exactly_the_static_choice(self):
        model = make_model(factor=4.0)
        static = model.static_config(SHAPE)
        assert static == CONFIGS[0]
        pre = model.time(SHAPE, static, 3, drifted=False)
        post = model.time(SHAPE, static, 3, drifted=True)
        assert post == pytest.approx(4.0 * pre, rel=1e-12)
        # Non-static configs are untouched by the drift.
        other = CONFIGS[1]
        assert model.time(SHAPE, other, 3, drifted=True) == model.time(
            SHAPE, other, 3, drifted=False
        )

    def test_oracle_is_the_noise_free_minimum(self):
        model = make_model(noise_sigma=0.0)
        for drifted in (False, True):
            oracle = model.oracle_time(SHAPE, drifted=drifted)
            candidates = [
                model.time(SHAPE, config, 0, drifted=drifted)
                for config in CONFIGS
            ]
            assert oracle == pytest.approx(min(candidates), rel=1e-12)

    def test_zero_sigma_is_noise_free(self):
        model = make_model(noise_sigma=0.0)
        assert model.time(SHAPE, CONFIGS[1], 0, drifted=False) == model.time(
            SHAPE, CONFIGS[1], 99, drifted=False
        )

    def test_static_time_prices_the_frozen_choice(self):
        model = make_model()
        assert model.static_time(SHAPE, 5, drifted=True) == model.time(
            SHAPE, CONFIGS[0], 5, drifted=True
        )

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError, match="candidates"):
            DriftedLatencyModel(
                GemmPerfModel(Device.r9_nano()),
                _StaticPolicy(),
                (),
                spec=DriftSpec(),
            )


@pytest.fixture(scope="module")
def replay_report():
    return replay_drift(steps=900, seed=0, pool_size=8)


class TestReplayDrift:
    def test_closes_at_least_half_the_gap(self, replay_report):
        summary = replay_report.summary
        assert summary.gap_closure >= 0.5
        assert summary.post_drift > 0
        assert summary.adaptive_geomean_s < summary.static_geomean_s
        assert summary.oracle_geomean_s <= summary.adaptive_geomean_s * 1.01

    def test_adaptation_actually_happened(self, replay_report):
        summary = replay_report.summary
        assert summary.trials > 0
        assert summary.promotions > 0
        stats = replay_report.service.adaptive_stats()
        assert stats.promotions == summary.promotions
        assert stats.tracked_shapes > 0

    def test_replay_is_deterministic(self, replay_report):
        again = replay_drift(steps=900, seed=0, pool_size=8)
        assert again.result.digest() == replay_report.result.digest()
        assert again.summary == replay_report.summary

    def test_different_seed_different_trace(self, replay_report):
        other = replay_drift(steps=900, seed=1, pool_size=8)
        assert other.result.digest() != replay_report.result.digest()

    def test_render_carries_the_headline_numbers(self, replay_report):
        text = replay_report.render()
        assert "gap closure" in text
        assert "post-drift" in text

    def test_invalid_steps_rejected(self):
        with pytest.raises(ValueError, match="steps"):
            replay_drift(steps=0)


class TestRunDriftLoad:
    @pytest.fixture(scope="class")
    def report(self):
        config = LoadgenConfig(
            profile=RateProfile(base_qps=2500.0),
            duration_s=2.0,
            workers=2,
            zipf_skew=1.3,
            seed=0,
            pace=False,
        )
        return run_drift_load(config, spec=DriftSpec(at=0.35, seed=0))

    def test_threaded_run_closes_the_gap(self, report):
        assert report.drift is not None
        assert report.drift.gap_closure >= 0.5
        assert report.completed == report.offered > 0
        assert report.late == 0  # pace=False never records lateness

    def test_report_render_includes_the_drift_block(self, report):
        text = report.render()
        assert "drift:" in text
        assert "gap closure" in text
        assert "adaptation:" in text

    def test_report_to_dict_round_trips_the_summary(self, report):
        doc = report.to_dict()
        drift = doc["drift"]
        assert drift["gap_closure"] == report.drift.gap_closure
        assert drift["post_drift"] == report.drift.post_drift
        assert drift["trials"] == report.drift.trials


class TestDriftSummary:
    def test_render_formats_the_columns(self):
        summary = DriftSummary(
            requests=100,
            post_drift=60,
            drift_at=0.4,
            factor=4.0,
            adaptive_geomean_s=1e-3,
            static_geomean_s=3e-3,
            oracle_geomean_s=8e-4,
            gap_closure=0.83,
            trials=12,
            promotions=3,
            demotions=1,
        )
        text = summary.render()
        assert "x4" in text and "83" in text
        assert "3 promotions" in text and "1 demotions" in text
        doc = summary.to_dict()
        assert doc["requests"] == 100 and doc["factor"] == 4.0
