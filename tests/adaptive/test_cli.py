"""The `repro adaptive` command and the loadgen --adaptive flags."""

import json

import pytest

from repro.cli import main

DEMO_ARGS = ["adaptive", "demo", "--steps", "400", "--pool-size", "6"]


class TestAdaptiveDemo:
    def test_prints_summary_timeline_and_digest(self, capsys):
        assert main(DEMO_ARGS) == 0
        out = capsys.readouterr().out
        assert "gap closure" in out
        assert "trace digest:" in out
        assert "promotion" in out  # timeline shows at least one event

    def test_verify_replay_passes(self, capsys):
        assert main(DEMO_ARGS + ["--verify-replay"]) == 0
        out = capsys.readouterr().out
        assert "bit-identically" in out

    def test_obs_export_round_trips_through_stats(self, capsys, tmp_path):
        snapshot = tmp_path / "obs.json"
        assert main(DEMO_ARGS + ["--obs-export", str(snapshot)]) == 0
        capsys.readouterr()
        assert main(["adaptive", "stats", "--snapshot", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "adaptive.trials" in out
        assert "adaptive.promotions" in out
        assert "adaptive.observed_seconds" in out
        # Only adaptive.* metrics survive the filter.
        assert "serving." not in out and "loadgen." not in out

    def test_seed_changes_the_digest(self, capsys):
        assert main(DEMO_ARGS) == 0
        first = capsys.readouterr().out
        assert main(DEMO_ARGS + ["--seed", "5"]) == 0
        second = capsys.readouterr().out

        def digest_of(out):
            return next(
                line for line in out.splitlines() if "trace digest" in line
            )

        assert digest_of(first) != digest_of(second)


class TestAdaptiveStatsErrors:
    def test_missing_snapshot_flag(self, capsys):
        assert main(["adaptive", "stats"]) == 1
        assert "--snapshot" in capsys.readouterr().err

    def test_nonexistent_snapshot(self, capsys, tmp_path):
        missing = tmp_path / "nope.json"
        assert main(["adaptive", "stats", "--snapshot", str(missing)]) == 1
        assert "no obs snapshot" in capsys.readouterr().err

    def test_snapshot_without_adaptive_metrics(self, capsys, tmp_path):
        snapshot = tmp_path / "plain.json"
        snapshot.write_text(
            json.dumps(
                {
                    "schema": "repro.obs/1",
                    "metrics": {"counters": [], "gauges": [], "histograms": []},
                    "spans": [],
                }
            )
        )
        assert main(["adaptive", "stats", "--snapshot", str(snapshot)]) == 1
        assert "no adaptive.*" in capsys.readouterr().err


class TestLoadgenAdaptive:
    @pytest.fixture(scope="class")
    def run_out(self, tmp_path_factory):
        report_path = tmp_path_factory.mktemp("adaptive") / "report.json"
        code = main(
            [
                "loadgen",
                "run",
                "--adaptive",
                "--no-pace",
                "--qps",
                "1500",
                "--duration",
                "2",
                "--workers",
                "2",
                "--zipf",
                "1.3",
                "--drift-at",
                "0.35",
                "--min-gap-closure",
                "0.5",
                "--report-json",
                str(report_path),
            ]
        )
        return code, report_path

    def test_gate_passes_and_report_has_drift(self, run_out, capsys):
        code, report_path = run_out
        assert code == 0
        doc = json.loads(report_path.read_text())
        assert doc["drift"]["gap_closure"] >= 0.5
        assert doc["drift"]["promotions"] > 0

    def test_adaptive_conflicts_with_store(self, capsys, tmp_path):
        code = main(
            [
                "loadgen",
                "run",
                "--adaptive",
                "--store",
                str(tmp_path / "store"),
            ]
        )
        assert code == 1
        assert "drop --store" in capsys.readouterr().err

    def test_gap_gate_requires_adaptive(self, capsys):
        code = main(
            [
                "loadgen",
                "run",
                "--no-pace",
                "--qps",
                "200",
                "--duration",
                "0.3",
                "--workers",
                "2",
                "--budget",
                "2",
                "--min-gap-closure",
                "0.5",
            ]
        )
        assert code == 1
        assert "needs a drift report" in capsys.readouterr().err
