"""Deterministic record/replay of the adaptive loop.

A stub static policy plus a pure-function latency model make the whole
closed loop a function of its seeds: identical runs must produce bit
identical digests, exploration off must be a pure pass-through, and a
FaultPlan-poisoned promoted config must be demoted — all without a
single wall-clock dependency.
"""

import pytest

from repro.adaptive import AdaptiveConfig, run_replay
from repro.kernels.params import config_space
from repro.obs.registry import MetricsRegistry
from repro.serving import SelectionService
from repro.serving.adaptive import AdaptiveSelectionService
from repro.testing import FaultPlan
from repro.utils.rng import derive_seed
from repro.workloads.gemm import GemmShape

CONFIGS = tuple(config_space(tile_sizes=(1, 2), work_groups=((8, 8), (16, 16))))
BASE, FAST, SLOW, OTHER = CONFIGS[0], CONFIGS[1], CONFIGS[2], CONFIGS[3]
SPEED = {BASE: 1.0e-3, FAST: 2.0e-4, SLOW: 5.0e-3, OTHER: 8.0e-4}

SHAPES = (
    GemmShape(m=64, k=64, n=64),
    GemmShape(m=128, k=256, n=128),
    GemmShape(m=32, k=512, n=16),
)


class _Library:
    def __init__(self, configs):
        self.configs = tuple(configs)


class _StaticPolicy:
    """Always serves BASE — the 'frozen tree' of these scenarios."""

    def __init__(self):
        self.library = _Library(CONFIGS[:4])

    def select(self, shape):
        return BASE

    def select_batch(self, shapes):
        return tuple(BASE for _ in shapes)


def latency(shape, config, step):
    """Config-dependent latency with +/-1% deterministic noise."""
    raw = derive_seed(99, *shape.as_tuple(), config.short_name(), step)
    noise = 1.0 + ((raw % 1000) / 1000.0 - 0.5) * 0.02
    return SPEED[config] * noise


def make_service(seed=0, **overrides):
    knobs = dict(
        trial_fraction=0.25,
        explorer="ucb",
        seed=seed,
        half_life=16.0,
        min_trials=2,
        promote_margin=1.0,
        probation=32,
        regression_margin=1.25,
        admission_threshold=1,
    )
    knobs.update(overrides)
    return AdaptiveSelectionService(
        SelectionService(_StaticPolicy(), registry=MetricsRegistry()),
        config=AdaptiveConfig(**knobs),
        registry=MetricsRegistry(),
    )


def requests(n=240):
    return [SHAPES[i % len(SHAPES)] for i in range(n)]


class TestDeterminism:
    def test_identical_runs_are_bit_identical(self):
        a = run_replay(make_service(seed=3), requests(), latency)
        b = run_replay(make_service(seed=3), requests(), latency)
        assert a.digest() == b.digest()
        assert a.steps == b.steps
        assert a.events == b.events

    def test_epsilon_greedy_walk_depends_on_the_seed(self):
        a = run_replay(
            make_service(seed=0, explorer="epsilon-greedy"),
            requests(),
            latency,
        )
        b = run_replay(
            make_service(seed=1, explorer="epsilon-greedy"),
            requests(),
            latency,
        )
        assert a.digest() != b.digest()

    def test_digest_covers_observed_latencies(self):
        a = run_replay(make_service(), requests(60), latency)
        b = run_replay(
            make_service(),
            requests(60),
            lambda s, c, i: latency(s, c, i) * 1.001,
        )
        assert a.decisions == b.decisions  # same choices...
        assert a.digest() != b.digest()  # ...different trace


class TestReplayMechanics:
    def test_exploration_off_is_a_pure_passthrough(self):
        result = run_replay(
            make_service(trial_fraction=0.0), requests(), latency
        )
        assert result.trial_steps == ()
        assert result.events == ()
        assert all(config == BASE for config in result.decisions)

    def test_trials_bounded_by_the_trial_fraction(self):
        service = make_service(trial_fraction=0.25)
        result = run_replay(service, requests(), latency)
        stats = service.adaptive_stats()
        assert len(result.trial_steps) == stats.trials > 0
        for state in service.tracked().values():
            interval = service.config.trial_interval
            assert state.trials <= state.feedbacks // interval

    def test_adaptation_beats_the_static_choice(self):
        # FAST is 5x cheaper than the static BASE; the bandit must find
        # and promote it for every shape within 240 requests.
        service = make_service()
        result = run_replay(service, requests(), latency)
        promotions = result.events_of("promotion")
        assert {e.shape for e in promotions} == {
            s.as_tuple() for s in SHAPES
        }
        assert all(e.config == FAST for e in promotions)
        tail = result.steps[-len(SHAPES) :]
        assert all(
            step.config == FAST for step in tail if not step.trial
        )

    def test_promotion_only_after_min_trials_served(self):
        shape = SHAPES[0]
        service = make_service(min_trials=3)
        result = run_replay(service, [shape] * 200, latency)
        promotion = result.events_of("promotion")[0]
        promoted = promotion.config
        # With one shape, feedbacks == steps: count how often the
        # promoted config was actually served before the promotion.
        served_before = sum(
            1
            for step in result.steps[: promotion.feedbacks]
            if step.config == promoted
        )
        assert served_before >= 3

    def test_repr_summarises_the_run(self):
        result = run_replay(make_service(), requests(60), latency)
        text = repr(result)
        assert "steps" in text and "promotions" in text


class TestFaultPlanPoisoning:
    def test_poisoned_promoted_config_is_demoted(self):
        shape = SHAPES[0]
        trace = [shape] * 200

        clean = run_replay(make_service(), trace, latency)
        promotion = clean.events_of("promotion")[0]
        assert promotion.config == FAST
        promo_step = promotion.feedbacks - 1  # single shape: fb == step+1

        # Re-run with the same seed, poisoning FAST from right after
        # its promotion: every observation of it is now 20x slower.
        service = make_service()
        plan = FaultPlan().kill_device("replay", after=promo_step + 1)
        poisoned = run_replay(
            service,
            trace,
            latency,
            plan=plan,
            poison_config=FAST,
            poison_factor=20.0,
        )
        demotions = poisoned.events_of("demotion")
        assert len(demotions) >= 1
        first = demotions[0]
        assert first.config == FAST and first.replaces == BASE
        # Demoted within the probation window of the promotion.
        assert (
            first.feedbacks - promotion.feedbacks
            <= service.config.probation
        )
        # The poisoned config never wins the incumbency back: later
        # trials re-observe it at 20x and no promotion re-selects it.
        state = service.tracked()[shape.as_tuple()]
        assert state.incumbent != FAST
        assert all(
            event.config != FAST
            for event in poisoned.events_of("promotion")
            if event.feedbacks > first.feedbacks
        )

    def test_unpoisoned_rerun_matches_the_clean_digest(self):
        trace = requests(120)
        clean = run_replay(make_service(), trace, latency)
        with_inert_plan = run_replay(
            make_service(),
            trace,
            latency,
            plan=FaultPlan(rate=0.0),
            poison_config=FAST,
        )
        assert clean.digest() == with_inert_plan.digest()
