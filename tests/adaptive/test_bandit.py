"""Unit tests for the per-shape bandit: arming, promotion, demotion.

All state transitions are driven by explicit ``record`` calls with
hand-chosen latencies, so every assertion is exact — no randomness, no
timing.
"""

import pytest

from repro.adaptive import EXPLORERS, AdaptiveConfig, BanditEvent, ShapeBandit
from repro.kernels.params import config_space

CONFIGS = tuple(config_space(tile_sizes=(1, 2), work_groups=((8, 8), (16, 16))))
BASE, FAST, SLOW, OTHER = CONFIGS[0], CONFIGS[1], CONFIGS[2], CONFIGS[3]
KEY = (64, 128, 256, 1)


def make_bandit(**overrides):
    defaults = dict(
        trial_fraction=0.25,  # arm every 4th feedback
        explorer="ucb",
        seed=0,
        half_life=16.0,
        min_trials=2,
        promote_margin=1.0,
        probation=8,
        regression_margin=1.25,
    )
    defaults.update(overrides)
    config = AdaptiveConfig(**defaults)
    return ShapeBandit(KEY, BASE, (BASE, FAST, SLOW, OTHER), config)


class TestAdaptiveConfig:
    def test_trial_interval_is_the_rounded_inverse(self):
        assert AdaptiveConfig(trial_fraction=0.125).trial_interval == 8
        assert AdaptiveConfig(trial_fraction=0.25).trial_interval == 4
        assert AdaptiveConfig(trial_fraction=1.0).trial_interval == 1
        assert AdaptiveConfig(trial_fraction=0.0).trial_interval is None

    @pytest.mark.parametrize(
        "field,value",
        [
            ("trial_fraction", -0.1),
            ("trial_fraction", 1.5),
            ("explorer", "thompson"),
            ("half_life", 0.0),
            ("min_trials", 0),
            ("promote_margin", -1.0),
            ("probation", 0),
            ("regression_margin", 0.5),
            ("admission_threshold", 0),
        ],
    )
    def test_invalid_knobs_rejected(self, field, value):
        with pytest.raises(ValueError):
            AdaptiveConfig(**{field: value})

    def test_explorers_constant_matches_validation(self):
        for explorer in EXPLORERS:
            AdaptiveConfig(explorer=explorer)  # must not raise


class TestTrialArming:
    def test_armed_exactly_every_interval_feedbacks(self):
        bandit = make_bandit(trial_fraction=0.25)
        armed_at = []
        for i in range(1, 17):
            bandit.record(BASE, 1e-3)
            if bandit.next_trial is not None:
                armed_at.append(i)
                assert bandit.take_trial() is not None
        assert armed_at == [4, 8, 12, 16]
        assert bandit.trials == 4

    def test_no_arming_with_exploration_disabled(self):
        bandit = make_bandit(trial_fraction=0.0)
        for _ in range(32):
            bandit.record(BASE, 1e-3)
        assert bandit.next_trial is None
        assert bandit.take_trial() is None
        assert bandit.trials == 0

    def test_take_trial_consumes_the_slot_once(self):
        bandit = make_bandit(trial_fraction=1.0)
        bandit.record(BASE, 1e-3)
        challenger = bandit.take_trial()
        assert challenger is not None and challenger != BASE
        assert bandit.take_trial() is None
        assert bandit.trials == 1

    def test_unserved_trial_is_replaced_not_stacked(self):
        bandit = make_bandit(trial_fraction=1.0)
        for _ in range(5):
            bandit.record(BASE, 1e-3)
        # Five armings, none served: only one slot exists.
        assert bandit.next_trial is not None
        bandit.take_trial()
        assert bandit.next_trial is None
        assert bandit.trials == 1


class TestChallengerChoice:
    def test_ucb_samples_undersampled_arms_in_candidate_order(self):
        bandit = make_bandit(explorer="ucb", trial_fraction=1.0, min_trials=2)
        # No estimators at all: the first non-incumbent candidate wins.
        bandit.record(BASE, 1e-3)
        assert bandit.next_trial == FAST
        # Give FAST its min_trials; SLOW (count 0) must be next.
        bandit.record(FAST, 1e-3)
        bandit.record(FAST, 1e-3)
        assert bandit.next_trial == SLOW

    def test_ucb_prefers_the_best_lower_bound_once_all_sampled(self):
        bandit = make_bandit(explorer="ucb", trial_fraction=1.0, min_trials=1)
        bandit.record(FAST, 1e-4)
        bandit.record(SLOW, 5e-3)
        bandit.record(OTHER, 1e-3)
        bandit.record(BASE, 2e-3)
        assert bandit.next_trial == FAST

    def test_epsilon_greedy_is_seed_deterministic(self):
        picks = {}
        for seed in (0, 0, 1):
            bandit = make_bandit(
                explorer="epsilon-greedy", trial_fraction=1.0, seed=seed
            )
            sequence = []
            for _ in range(12):
                bandit.record(BASE, 1e-3)
                sequence.append(bandit.take_trial())
            picks.setdefault(seed, []).append(tuple(sequence))
        assert picks[0][0] == picks[0][1]  # same seed, same choices
        assert picks[0][0] != picks[1][0]  # different seed, different walk
        assert all(c != BASE for c in picks[0][0])

    def test_lone_candidate_never_arms(self):
        config = AdaptiveConfig(trial_fraction=1.0)
        bandit = ShapeBandit(KEY, BASE, (BASE,), config)
        bandit.record(BASE, 1e-3)
        assert bandit.next_trial is None

    def test_candidates_deduped_with_base_first(self):
        config = AdaptiveConfig()
        bandit = ShapeBandit(KEY, BASE, (FAST, BASE, FAST, SLOW), config)
        assert bandit.candidates == (BASE, FAST, SLOW)


def promote(bandit, *, fast_s=1e-4, base_s=1e-3):
    """Feed min_trials clean observations of each side; returns events."""
    events = []
    for _ in range(bandit.config.min_trials):
        events.extend(bandit.record(BASE, base_s))
    for _ in range(bandit.config.min_trials):
        events.extend(bandit.record(FAST, fast_s))
    return [e for e in events if e.kind == "promotion"]


class TestPromotion:
    def test_clear_winner_is_promoted_with_fallback_recorded(self):
        bandit = make_bandit(trial_fraction=0.0)
        promotions = promote(bandit)
        assert len(promotions) == 1
        event = promotions[0]
        assert event.config == FAST and event.replaces == BASE
        assert bandit.current == FAST
        assert bandit.incumbent == FAST
        assert bandit.promotions == 1

    def test_no_promotion_below_min_trials(self):
        bandit = make_bandit(trial_fraction=0.0, min_trials=4)
        for _ in range(4):
            bandit.record(BASE, 1e-3)
        for _ in range(3):  # one short of min_trials
            assert bandit.record(FAST, 1e-4) == ()
        assert bandit.current is None
        assert bandit.record(FAST, 1e-4)[0].kind == "promotion"

    def test_no_promotion_until_incumbent_has_min_trials(self):
        bandit = make_bandit(trial_fraction=0.0, min_trials=2)
        bandit.record(BASE, 1e-3)  # incumbent has only 1 observation
        for _ in range(8):
            assert bandit.record(FAST, 1e-4) == ()
        assert bandit.current is None

    def test_no_promotion_inside_the_confidence_margin(self):
        # Means differ but the noise bands overlap at margin 2: no call.
        bandit = make_bandit(
            trial_fraction=0.0, min_trials=4, promote_margin=2.0
        )
        for value in (1.00e-3, 1.30e-3, 0.95e-3, 1.25e-3):
            bandit.record(BASE, value)
        for value in (0.90e-3, 1.20e-3, 0.85e-3, 1.15e-3):
            assert bandit.record(FAST, value) == ()
        assert bandit.current is None

    def test_feedback_counter_stamps_events(self):
        bandit = make_bandit(trial_fraction=0.0)
        promotions = promote(bandit)
        assert promotions[0].feedbacks == 2 * bandit.config.min_trials


class TestDemotion:
    def test_regression_during_probation_restores_the_base(self):
        bandit = make_bandit(trial_fraction=0.0, regression_margin=1.25)
        promote(bandit)
        promised = bandit._promise
        # The promoted config now regresses way past its promise.
        events = []
        for _ in range(bandit.config.probation):
            events.extend(bandit.record(FAST, promised * 10.0))
            if any(e.kind == "demotion" for e in events):
                break
        demotions = [e for e in events if e.kind == "demotion"]
        assert len(demotions) == 1
        assert demotions[0].config == FAST
        assert demotions[0].replaces == BASE
        assert bandit.current is None  # back to the static answer
        assert bandit.demotions == 1
        # The regressed config's estimator is forgotten entirely.
        assert bandit.estimator(FAST) is None

    def test_delivering_the_promise_survives_probation(self):
        bandit = make_bandit(trial_fraction=0.0, probation=6)
        promote(bandit, fast_s=1e-4)
        for _ in range(20):
            assert bandit.record(FAST, 1e-4) == ()
        assert bandit.current == FAST
        assert bandit.demotions == 0

    def test_mild_slowdown_within_margin_is_tolerated(self):
        bandit = make_bandit(trial_fraction=0.0, regression_margin=1.5)
        promote(bandit, fast_s=1.0e-4)
        for _ in range(10):
            assert bandit.record(FAST, 1.2e-4) == ()  # < 1.5x promise
        assert bandit.current == FAST


class TestIntrospection:
    def test_snapshot_reflects_state(self):
        bandit = make_bandit(trial_fraction=0.0)
        promote(bandit)
        snap = bandit.snapshot()
        assert snap["shape"] == KEY
        assert snap["incumbent"] == FAST.short_name()
        assert snap["override"] is True
        assert snap["promotions"] == 1
        assert set(snap["arms"]) == {BASE.short_name(), FAST.short_name()}
        assert snap["arms"][FAST.short_name()]["count"] == 2

    def test_event_describe_covers_all_kinds(self):
        promo = BanditEvent("promotion", KEY, FAST, BASE, 12)
        demo = BanditEvent("demotion", KEY, FAST, BASE, 20)
        trial = BanditEvent("trial", KEY, SLOW, None, 4)
        assert "->" in promo.describe() and "@fb12" in promo.describe()
        assert "back to" in demo.describe()
        assert SLOW.short_name() in trial.describe()

    def test_repr_mentions_incumbent(self):
        bandit = make_bandit()
        assert BASE.short_name() in repr(bandit)
