"""Transfer: residual correction math, calibration, zero-shot LODO."""

import numpy as np
import pytest

from repro.onboard import (
    TransferSelector,
    calibrated_dataset,
    fit_residual_correction,
    run_partial_sweep,
)
from repro.utils.maths import geometric_mean

from .conftest import FLEET_IDS, FAST_BUDGET


class TestResidualCorrection:
    def test_empty_mask_is_identity(self):
        correction = fit_residual_correction(
            np.full((3, 4), np.nan), np.zeros((3, 4))
        )
        assert correction.global_shift == 0.0
        assert np.array_equal(correction.per_config, np.zeros(4))
        pred = np.arange(12.0).reshape(3, 4)
        assert np.array_equal(correction.apply(pred), pred)

    def test_recovers_a_global_bias(self):
        # Model predicts log-gflops 0 everywhere; truth is e^0.5.
        measured = np.full((4, 3), np.exp(0.5))
        correction = fit_residual_correction(measured, np.zeros((4, 3)))
        assert correction.global_shift == pytest.approx(0.5)
        # No per-config deviation: columns share the bias.
        assert np.allclose(correction.per_config, 0.0, atol=1e-12)

    def test_recovers_a_per_config_bias_with_shrinkage(self):
        # Column 0 runs 2x the prediction, column 1 matches it.
        measured = np.column_stack(
            [np.full(4, 2.0), np.full(4, 1.0)]
        )
        correction = fit_residual_correction(
            measured, np.zeros((4, 2)), shrinkage=1.0
        )
        half_log2 = np.log(2.0) / 2
        assert correction.global_shift == pytest.approx(half_log2)
        # Deviation +-log(2)/2 shrunk by n/(n+1) = 4/5.
        assert correction.per_config == pytest.approx(
            np.array([half_log2, -half_log2]) * 0.8
        )
        assert correction.support.tolist() == [4, 4]

    def test_unmeasured_columns_fall_back_to_global(self):
        measured = np.full((3, 2), np.nan)
        measured[:, 0] = np.exp(1.0)
        correction = fit_residual_correction(measured, np.zeros((3, 2)))
        assert correction.global_shift == pytest.approx(1.0)
        assert correction.per_config[1] == 0.0
        assert correction.support.tolist() == [3, 0]

    def test_grid_mismatch_rejected(self):
        with pytest.raises(ValueError, match="grids differ"):
            fit_residual_correction(np.ones((2, 3)), np.zeros((3, 2)))

    def test_apply_checks_config_count(self):
        correction = fit_residual_correction(
            np.ones((2, 3)), np.zeros((2, 3))
        )
        with pytest.raises(ValueError, match="configs"):
            correction.apply(np.zeros((2, 4)))


class TestCalibratedDataset:
    @pytest.fixture(scope="class")
    def sweep(self, branches, make_runner, onboard_shapes, sources_for):
        profile, _ = branches["bandwidth-lean"]
        return run_partial_sweep(
            make_runner(profile),
            onboard_shapes,
            FAST_BUDGET,
            sources=sources_for("bandwidth-lean"),
        )

    def test_measured_cells_survive(self, branches, sweep, sources_for):
        profile, _ = branches["bandwidth-lean"]
        full = calibrated_dataset(
            sources_for("bandwidth-lean"), profile.spec, sweep, FAST_BUDGET
        )
        mask = sweep.measured_mask()
        assert np.array_equal(
            full.gflops[mask], sweep.dataset.gflops[mask]
        )
        assert np.all(np.isfinite(full.gflops))

    def test_deterministic(self, branches, sweep, sources_for):
        profile, _ = branches["bandwidth-lean"]
        tables = [
            calibrated_dataset(
                sources_for("bandwidth-lean"),
                profile.spec,
                sweep,
                FAST_BUDGET,
                seed=5,
            ).gflops
            for _ in range(2)
        ]
        assert np.array_equal(tables[0], tables[1])

    def test_selector_quality_beats_zero_shot(
        self, branches, sweep, sources_for
    ):
        # The whole point of spending budget: the calibrated table's
        # argmax picks must score at least as well as no-budget transfer.
        profile, truth = branches["bandwidth-lean"]
        sources = sources_for("bandwidth-lean")
        full = calibrated_dataset(sources, profile.spec, sweep, FAST_BUDGET)
        picks = full.best_config_indices()
        normalized = truth.normalized()
        achieved = normalized[np.arange(truth.n_shapes), picks]
        quality = geometric_mean(np.maximum(achieved, 1e-9))
        zero_shot = (
            TransferSelector(random_state=0)
            .fit(sources)
            .score(profile.spec, truth)
        )
        assert quality >= zero_shot - 0.02
        assert quality > 0.85


class TestTransferSelector:
    def test_needs_sources(self):
        with pytest.raises(ValueError, match="at least one source"):
            TransferSelector().fit(())

    def test_config_space_mismatch_rejected(self, sources_for):
        from repro.core.dataset import PerformanceDataset

        sources = list(sources_for("r9-nano"))
        ds = sources[1].dataset
        shrunk = PerformanceDataset(
            shapes=ds.shapes,
            configs=ds.configs[:-1],
            gflops=ds.gflops[:, :-1],
            device_name=ds.device_name,
        )
        sources[1] = type(sources[1])(
            device_id=sources[1].device_id,
            spec=sources[1].spec,
            dataset=shrunk,
        )
        with pytest.raises(ValueError, match="config space differs"):
            TransferSelector().fit(sources)

    def test_predictions_are_valid_indices(self, branches, sources_for):
        profile, truth = branches["latency-bound"]
        selector = TransferSelector().fit(sources_for("latency-bound"))
        indices = selector.predict_indices(profile.spec, truth.shapes)
        assert indices.shape == (truth.n_shapes,)
        assert indices.min() >= 0 and indices.max() < truth.n_configs
        configs = selector.predict_configs(profile.spec, truth.shapes)
        assert configs == tuple(
            truth.configs[int(i)] for i in indices
        )

    @pytest.mark.parametrize("target", FLEET_IDS)
    def test_leave_one_device_out_floor(
        self, target, branches, sources_for
    ):
        # Zero-shot transfer onto each held-out builtin should land
        # well above random picking (~ mean normalized score).
        profile, truth = branches[target]
        selector = TransferSelector().fit(sources_for(target))
        score = selector.score(profile.spec, truth)
        assert 0.0 < score <= 1.0
        random_floor = float(np.nanmean(truth.normalized()))
        assert score > random_floor
