"""OnboardBudget: validation and the per-table cell arithmetic."""

import pytest

from repro.onboard import SAMPLERS, OnboardBudget


class TestValidation:
    def test_defaults_are_valid(self):
        budget = OnboardBudget()
        assert budget.fraction == pytest.approx(0.10)
        assert budget.sampler in SAMPLERS

    @pytest.mark.parametrize("fraction", (0.0, -0.1, 1.5))
    def test_fraction_out_of_range_rejected(self, fraction):
        with pytest.raises(ValueError, match="fraction"):
            OnboardBudget(fraction=fraction)

    def test_full_table_fraction_allowed(self):
        assert OnboardBudget(fraction=1.0).cells(10, 64) == 640

    def test_unknown_sampler_rejected(self):
        with pytest.raises(ValueError, match="unknown sampler"):
            OnboardBudget(sampler="psychic")

    def test_zero_rounds_rejected(self):
        with pytest.raises(ValueError, match="rounds"):
            OnboardBudget(rounds=0)

    @pytest.mark.parametrize("field", ("n_trees", "max_depth", "max_samples"))
    def test_forest_knobs_must_be_positive(self, field):
        with pytest.raises(ValueError, match=field):
            OnboardBudget(**{field: 0})


class TestCells:
    def test_ten_percent_of_the_table(self):
        assert OnboardBudget(fraction=0.10).cells(21, 640) == 1344

    def test_floored_at_one_cell_per_shape(self):
        # 1% of a 10 x 20 table is 2 cells; 10 shapes need 10.
        assert OnboardBudget(fraction=0.01).cells(10, 20) == 10

    def test_capped_at_the_full_table(self):
        assert OnboardBudget(fraction=1.0).cells(3, 4) == 12

    def test_rounding_is_nearest(self):
        # 0.25 * 30 = 7.5 -> 8 under round-half-even... 7.5 rounds to 8.
        assert OnboardBudget(fraction=0.25).cells(5, 6) == 8
