"""Onboarding fixtures: four full-sweep branches at reduced scale.

Every fixture is session-scoped and deterministic: sweeps use the
counter-based noise model, so the full tables (and everything derived
from them) are bit-identical across runs — the determinism tests below
rely on that.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import BenchmarkRunner, RunnerConfig
from repro.core.dataset import PerformanceDataset
from repro.fleet.profile import fleet_profiles
from repro.onboard import OnboardBudget, SourceBranch
from repro.workloads.extract import extract_dataset_shapes

FLEET_IDS = ("r9-nano", "compute-heavy", "bandwidth-lean", "latency-bound")

#: Fast settings for unit tests; the CI quality gates run the defaults.
FAST_BUDGET = OnboardBudget(
    fraction=0.12, sampler="active", seed=0, rounds=3, n_trees=8
)


@pytest.fixture(scope="session")
def onboard_runner_config() -> RunnerConfig:
    return RunnerConfig(warmup_iterations=1, timed_iterations=3)


@pytest.fixture(scope="session")
def onboard_shapes(all_shapes):
    # Every other mobilenet-leaning shape: 11 rows, all families present.
    shapes, _ = extract_dataset_shapes(networks=("mobilenet_v2",))
    return tuple(shapes[::2])


@pytest.fixture(scope="session")
def branches(onboard_shapes, small_configs, onboard_runner_config):
    """device_id -> (profile, full-sweep dataset) for the builtin four."""
    out = {}
    for profile in fleet_profiles(FLEET_IDS):
        runner = BenchmarkRunner(
            profile.device(),
            configs=small_configs,
            runner_config=onboard_runner_config,
            model_params=profile.model_params,
        )
        out[profile.device_id] = (
            profile,
            PerformanceDataset.from_benchmark(runner.run(onboard_shapes)),
        )
    return out


@pytest.fixture(scope="session")
def make_runner(small_configs, onboard_runner_config):
    """Factory: a fresh benchmark runner for one profile's device."""

    def _make(profile):
        return BenchmarkRunner(
            profile.device(),
            configs=small_configs,
            runner_config=onboard_runner_config,
            model_params=profile.model_params,
        )

    return _make


@pytest.fixture(scope="session")
def sources_for(branches):
    """Factory: every branch except the target, as SourceBranch tuples."""

    def _sources(target: str):
        return tuple(
            SourceBranch(device_id=did, spec=prof.spec, dataset=ds)
            for did, (prof, ds) in branches.items()
            if did != target
        )

    return _sources
