"""Samplers: seeded determinism, row coverage, and refinement picks."""

import numpy as np
import pytest

from repro.onboard import pick_informative_cells, plan_cells, shape_family
from repro.onboard.budget import SAMPLERS
from repro.workloads.gemm import GemmShape

PLANNED = ("random", "stratified")


def _plan(sampler, shapes, n_configs=24, n_cells=None, seed=0):
    if n_cells is None:
        n_cells = max(len(shapes), (len(shapes) * n_configs) // 10)
    return plan_cells(sampler, shapes, n_configs, n_cells, seed)


class TestDeterminism:
    @pytest.mark.parametrize("sampler", SAMPLERS)
    def test_same_seed_same_cells(self, sampler, onboard_shapes):
        a = _plan(sampler, onboard_shapes, seed=7)
        b = _plan(sampler, onboard_shapes, seed=7)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("sampler", SAMPLERS)
    def test_different_seed_different_cells(self, sampler, onboard_shapes):
        a = _plan(sampler, onboard_shapes, seed=0)
        b = _plan(sampler, onboard_shapes, seed=1)
        assert not np.array_equal(a, b)

    def test_samplers_use_distinct_streams(self, onboard_shapes):
        random = _plan("random", onboard_shapes, seed=0)
        stratified = _plan("stratified", onboard_shapes, seed=0)
        assert not np.array_equal(random, stratified)

    def test_active_warm_start_is_deterministic(self, onboard_shapes):
        # The active sampler's planned portion is its stratified-style
        # warm start; same seed must give the same cells.
        a = _plan("active", onboard_shapes, seed=3)
        b = _plan("active", onboard_shapes, seed=3)
        assert np.array_equal(a, b)


class TestPlanShape:
    @pytest.mark.parametrize("sampler", SAMPLERS)
    def test_every_row_is_covered(self, sampler, onboard_shapes):
        n_configs = 24
        plan = _plan(sampler, onboard_shapes, n_configs=n_configs)
        rows = np.unique(plan // n_configs)
        assert np.array_equal(rows, np.arange(len(onboard_shapes)))

    @pytest.mark.parametrize("sampler", SAMPLERS)
    def test_cells_unique_sorted_in_bounds(self, sampler, onboard_shapes):
        n_configs = 24
        plan = _plan(sampler, onboard_shapes, n_configs=n_configs)
        assert np.array_equal(plan, np.unique(plan))
        assert plan.min() >= 0
        assert plan.max() < len(onboard_shapes) * n_configs

    @pytest.mark.parametrize("sampler", PLANNED)
    def test_random_hits_budget_exactly(self, sampler, onboard_shapes):
        # random never collides (choice without replacement over the
        # remaining pool); stratified may dedup within a family walk.
        n_cells = 3 * len(onboard_shapes)
        plan = _plan(sampler, onboard_shapes, n_cells=n_cells)
        if sampler == "random":
            assert plan.size == n_cells
        else:
            assert len(onboard_shapes) <= plan.size <= n_cells

    def test_budget_below_row_count_rejected(self, onboard_shapes):
        with pytest.raises(ValueError, match="at least one cell per shape"):
            plan_cells("random", onboard_shapes, 24, len(onboard_shapes) - 1, 0)

    def test_unknown_sampler_rejected(self, onboard_shapes):
        with pytest.raises(ValueError, match="unknown sampler"):
            plan_cells("psychic", onboard_shapes, 24, 24, 0)

    def test_empty_shapes_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            plan_cells("random", (), 24, 10, 0)

    def test_budget_capped_at_full_table(self, onboard_shapes):
        plan = _plan("random", onboard_shapes, n_configs=4, n_cells=10_000)
        assert plan.size == len(onboard_shapes) * 4


class TestShapeFamily:
    def test_same_bucket_for_nearby_shapes(self):
        a = GemmShape(m=64, k=64, n=65)
        b = GemmShape(m=64, k=64, n=64)
        assert shape_family(a) == shape_family(b)

    def test_batch_flag_splits_families(self):
        a = GemmShape(m=64, k=64, n=64, batch=1)
        b = GemmShape(m=64, k=64, n=64, batch=4)
        assert shape_family(a) != shape_family(b)


class TestPickInformativeCells:
    def test_takes_the_top_k_unmeasured(self):
        score = np.array([[5.0, 1.0, 3.0], [0.5, 4.0, 2.0]])
        measured = np.zeros((2, 3), dtype=bool)
        picks = pick_informative_cells(score, measured, 2)
        assert picks.tolist() == [0, 4]  # scores 5.0 and 4.0

    def test_measured_cells_are_excluded(self):
        score = np.array([[5.0, 1.0, 3.0]])
        measured = np.array([[True, False, False]])
        picks = pick_informative_cells(score, measured, 1)
        assert picks.tolist() == [2]

    def test_k_larger_than_pool_returns_all_unmeasured(self):
        score = np.ones((2, 2))
        measured = np.array([[True, False], [False, True]])
        picks = pick_informative_cells(score, measured, 10)
        assert picks.tolist() == [1, 2]

    def test_ties_break_toward_lower_index(self):
        score = np.full((1, 4), 2.0)
        measured = np.zeros((1, 4), dtype=bool)
        picks = pick_informative_cells(score, measured, 2)
        assert picks.tolist() == [0, 1]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="differ"):
            pick_informative_cells(
                np.ones((2, 3)), np.zeros((3, 2), dtype=bool), 1
            )
