"""The onboarding DAG: caching, invalidation, codecs, report sanity."""

import numpy as np
import pytest

from repro.bench.runner import RunnerConfig
from repro.fleet.pipeline import FLEET_STAGES, FleetPipelineConfig, stage_name
from repro.onboard import (
    ONBOARD_STAGES,
    OnboardBudget,
    OnboardPipelineConfig,
    OnboardReport,
    onboard_fingerprints,
    run_onboard_pipeline,
)
from repro.onboard.sweep import PartialSweep
from repro.pipeline.store import ArtifactStore

TARGET = "latency-bound"
DEVICE_IDS = ("r9-nano", "compute-heavy", TARGET)


@pytest.fixture(scope="module")
def config(small_configs):
    return OnboardPipelineConfig(
        target=TARGET,
        budget=OnboardBudget(
            fraction=0.12, sampler="active", seed=0, rounds=2, n_trees=6
        ),
        fleet=FleetPipelineConfig(
            device_ids=DEVICE_IDS,
            networks=("mobilenet_v2",),
            runner=RunnerConfig(warmup_iterations=1, timed_iterations=3),
            configs=small_configs,
        ),
    )


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    return ArtifactStore(tmp_path_factory.mktemp("onboard-store"))


@pytest.fixture(scope="module")
def first_run(store, config):
    return run_onboard_pipeline(store, config)


class TestRun:
    def test_cold_run_executes_everything(self, first_run, config):
        stats = first_run.stats
        assert not stats.all_cached
        expected = len(FLEET_STAGES) * len(DEVICE_IDS) + len(ONBOARD_STAGES)
        assert len(first_run.run.artifacts) == expected

    def test_report_is_sane(self, first_run, config):
        report = first_run.report()
        assert isinstance(report, OnboardReport)
        assert report.device_id == TARGET
        assert report.sampler == "active"
        n_shapes = first_run.value("onboard-dataset").n_shapes
        n_configs = first_run.value("onboard-dataset").n_configs
        budgeted = config.budget.cells(n_shapes, n_configs)
        assert 0 < report.cells_attempted <= budgeted
        assert report.total_cells == n_shapes * n_configs
        assert 0.0 < report.onboard_score <= 1.0
        assert 0.0 < report.full_score <= 1.0
        assert 0.0 <= report.top1_agreement <= 1.0
        assert report.zero_shot_score is not None
        # At reduced test scale just require a loose quality floor; the
        # CI bench gate enforces the >= 0.95 bar at full scale.
        assert report.quality > 0.8

    def test_selector_accessor_predicts(self, first_run):
        dataset = first_run.value("onboard-dataset")
        deployed = first_run.selector()
        configs = deployed.select_batch(dataset.shapes)
        assert len(configs) == dataset.n_shapes

    def test_rerun_is_fully_cached(self, store, config, first_run):
        again = run_onboard_pipeline(store, config)
        assert again.stats.all_cached
        assert again.report().to_dict() == first_run.report().to_dict()

    def test_budget_change_reruns_only_the_onboard_branch(
        self, store, config, first_run
    ):
        changed = config.with_budget(fraction=0.15)
        run = run_onboard_pipeline(store, changed)
        executed = set(run.stats.executed_stages)
        assert executed  # the branch did re-run
        expected = {stage_name(kind, TARGET) for kind in ONBOARD_STAGES}
        assert executed <= expected
        # More budget must actually buy more measurements.
        assert run.report().cells_attempted > first_run.report().cells_attempted


class TestDeterminism:
    def test_independent_run_is_bit_identical(
        self, tmp_path, config, first_run
    ):
        fresh = run_onboard_pipeline(ArtifactStore(tmp_path), config)
        a = first_run.value("onboard-dataset")
        b = fresh.value("onboard-dataset")
        assert np.array_equal(a.gflops, b.gflops)
        assert first_run.report().to_dict() == fresh.report().to_dict()

    def test_budget_only_moves_onboard_fingerprints(self, config):
        base = onboard_fingerprints(config)
        changed = onboard_fingerprints(config.with_budget(seed=1))
        onboard_names = {
            stage_name(kind, TARGET) for kind in ONBOARD_STAGES
        }
        for name, fingerprint in base.items():
            if name in onboard_names:
                assert changed[name] != fingerprint, name
            else:
                assert changed[name] == fingerprint, name

    def test_fingerprints_cover_both_dags(self, config):
        fingerprints = onboard_fingerprints(config)
        for did in DEVICE_IDS:
            for kind in FLEET_STAGES:
                assert stage_name(kind, did) in fingerprints
        for kind in ONBOARD_STAGES:
            assert stage_name(kind, TARGET) in fingerprints


class TestCodecs:
    def test_partial_sweep_round_trip(self, store, config, first_run):
        fingerprint = onboard_fingerprints(config)[
            stage_name("onboard-sweep", TARGET)
        ]
        reopened = ArtifactStore(store.root)
        sweep = reopened.get(fingerprint).value
        assert isinstance(sweep, PartialSweep)
        original = first_run.value("onboard-sweep")
        assert np.array_equal(sweep.cells, original.cells)
        assert np.array_equal(
            sweep.dataset.gflops, original.dataset.gflops, equal_nan=True
        )
        assert sweep.sampler == original.sampler
        assert sweep.seed == original.seed
        assert sweep.failed == original.failed

    def test_report_round_trip(self, store, config, first_run):
        fingerprint = onboard_fingerprints(config)[
            stage_name("onboard-report", TARGET)
        ]
        reopened = ArtifactStore(store.root)
        report = reopened.get(fingerprint).value
        assert isinstance(report, OnboardReport)
        assert report.to_dict() == first_run.report().to_dict()


class TestConfigValidation:
    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="no fleet branch"):
            OnboardPipelineConfig(
                target="quantum-9000",
                fleet=FleetPipelineConfig(device_ids=DEVICE_IDS),
            )

    def test_unknown_source_rejected(self):
        with pytest.raises(ValueError, match="no fleet branch"):
            OnboardPipelineConfig(
                target=TARGET,
                sources=("bandwidth-lean",),
                fleet=FleetPipelineConfig(device_ids=DEVICE_IDS),
            )

    def test_target_as_source_rejected(self):
        with pytest.raises(ValueError, match="own source"):
            OnboardPipelineConfig(
                target=TARGET,
                sources=("r9-nano", TARGET),
                fleet=FleetPipelineConfig(device_ids=DEVICE_IDS),
            )

    def test_no_sources_rejected(self):
        with pytest.raises(ValueError, match="at least one source"):
            OnboardPipelineConfig(
                target=TARGET,
                fleet=FleetPipelineConfig(device_ids=(TARGET,)),
            )

    def test_default_sources_exclude_target(self):
        config = OnboardPipelineConfig(
            target=TARGET, fleet=FleetPipelineConfig(device_ids=DEVICE_IDS)
        )
        assert config.source_ids() == ("r9-nano", "compute-heavy")
