"""Partial sweeps: determinism, value fidelity, and budget accounting."""

import numpy as np
import pytest

from repro.onboard import OnboardBudget, run_partial_sweep
from repro.onboard.sweep import _round_quotas

from .conftest import FAST_BUDGET

RANDOM = OnboardBudget(fraction=0.12, sampler="random", seed=0)
STRATIFIED = OnboardBudget(fraction=0.12, sampler="stratified", seed=0)


@pytest.fixture(scope="module")
def random_sweep(branches, make_runner, onboard_shapes):
    profile, _ = branches["r9-nano"]
    return run_partial_sweep(make_runner(profile), onboard_shapes, RANDOM)


class TestPlannedSamplers:
    def test_same_budget_same_sweep(
        self, branches, make_runner, onboard_shapes, random_sweep
    ):
        profile, _ = branches["r9-nano"]
        again = run_partial_sweep(
            make_runner(profile), onboard_shapes, RANDOM
        )
        assert np.array_equal(again.cells, random_sweep.cells)
        assert np.array_equal(
            again.dataset.gflops,
            random_sweep.dataset.gflops,
            equal_nan=True,
        )

    def test_measured_cells_match_the_full_sweep(
        self, branches, random_sweep
    ):
        # Counter-based noise is a pure function of (shape, config), so
        # a partial sweep's measured cells equal the full table's.
        _, full = branches["r9-nano"]
        mask = random_sweep.measured_mask()
        assert np.array_equal(
            random_sweep.dataset.gflops[mask], full.gflops[mask]
        )

    def test_budget_accounting(self, onboard_shapes, random_sweep):
        total = len(onboard_shapes) * random_sweep.dataset.n_configs
        expected = RANDOM.cells(
            len(onboard_shapes), random_sweep.dataset.n_configs
        )
        assert random_sweep.n_attempted == expected
        assert random_sweep.total_cells == total
        assert random_sweep.fraction == pytest.approx(expected / total)
        assert random_sweep.n_measured + random_sweep.failed == expected

    def test_every_row_has_a_measurement(self, random_sweep):
        assert np.isfinite(random_sweep.dataset.gflops).any(axis=1).all()

    def test_stratified_differs_from_random(
        self, branches, make_runner, onboard_shapes, random_sweep
    ):
        profile, _ = branches["r9-nano"]
        sweep = run_partial_sweep(
            make_runner(profile), onboard_shapes, STRATIFIED
        )
        assert sweep.sampler == "stratified"
        assert not np.array_equal(sweep.cells, random_sweep.cells)


class TestActiveSampler:
    def test_needs_sources(self, branches, make_runner, onboard_shapes):
        profile, _ = branches["r9-nano"]
        with pytest.raises(ValueError, match="needs sources"):
            run_partial_sweep(
                make_runner(profile), onboard_shapes, FAST_BUDGET
            )

    def test_deterministic_and_within_budget(
        self, branches, make_runner, onboard_shapes, sources_for
    ):
        profile, _ = branches["r9-nano"]
        sweeps = [
            run_partial_sweep(
                make_runner(profile),
                onboard_shapes,
                FAST_BUDGET,
                sources=sources_for("r9-nano"),
            )
            for _ in range(2)
        ]
        a, b = sweeps
        assert np.array_equal(a.cells, b.cells)
        assert np.array_equal(
            a.dataset.gflops, b.dataset.gflops, equal_nan=True
        )
        budgeted = FAST_BUDGET.cells(
            len(onboard_shapes), a.dataset.n_configs
        )
        assert a.n_attempted <= budgeted
        # The refit rounds actually spent beyond the warm start.
        assert a.n_attempted > len(onboard_shapes)
        assert np.isfinite(a.dataset.gflops).any(axis=1).all()

    def test_measured_cells_match_the_full_sweep(
        self, branches, make_runner, onboard_shapes, sources_for
    ):
        profile, full = branches["compute-heavy"]
        sweep = run_partial_sweep(
            make_runner(profile),
            onboard_shapes,
            FAST_BUDGET,
            sources=sources_for("compute-heavy"),
        )
        mask = sweep.measured_mask()
        assert np.array_equal(sweep.dataset.gflops[mask], full.gflops[mask])


class TestRoundQuotas:
    def test_sums_to_budget(self):
        quotas = _round_quotas(100, 4, minimum_first=11)
        assert sum(quotas) == 100
        assert quotas[0] >= 11
        assert all(q > 0 for q in quotas)

    def test_warm_start_absorbs_small_budgets(self):
        quotas = _round_quotas(12, 4, minimum_first=11)
        assert sum(quotas) == 12
        assert quotas[0] == 11

    def test_budget_equal_to_rows_is_one_round(self):
        assert _round_quotas(11, 4, minimum_first=11) == (11,)

    def test_near_equal_split(self):
        assert _round_quotas(10, 3, minimum_first=1) == (4, 3, 3)


class TestPartialSweepValidation:
    def test_cells_must_be_one_dimensional(self, random_sweep):
        with pytest.raises(ValueError, match="1-D"):
            type(random_sweep)(
                dataset=random_sweep.dataset,
                cells=random_sweep.cells.reshape(-1, 1),
                sampler="random",
                seed=0,
            )
