"""Imputation: features, priors, geometry checks, determinism."""

import numpy as np
import pytest

from repro.core.dataset import PerformanceDataset
from repro.onboard import CellFeaturizer, ImputationModel, impute_dataset
from repro.onboard.budget import OnboardBudget
from repro.onboard.impute import (
    _leave_one_out_prior,
    config_features,
    device_features,
    shape_features,
)

FAST = OnboardBudget(fraction=0.12, sampler="active", rounds=2, n_trees=4)


def _punch_holes(dataset: PerformanceDataset, keep_per_row: int = 3):
    """NaN out all but the first few cells of every row."""
    gflops = dataset.gflops.copy()
    gflops[:, keep_per_row:] = np.nan
    return PerformanceDataset(
        shapes=dataset.shapes,
        configs=dataset.configs,
        gflops=gflops,
        device_name=dataset.device_name,
    )


class TestFeatures:
    def test_feature_block_widths(self, branches, onboard_shapes):
        profile, dataset = branches["r9-nano"]
        assert device_features(profile.spec).shape == (11,)
        assert shape_features(onboard_shapes[0]).shape == (6,)
        assert config_features(dataset.configs[0]).shape == (10,)

    def test_features_are_finite(self, branches, onboard_shapes):
        profile, dataset = branches["r9-nano"]
        assert np.all(np.isfinite(device_features(profile.spec)))
        for shape in onboard_shapes:
            assert np.all(np.isfinite(shape_features(shape)))
        for config in dataset.configs[:8]:
            assert np.all(np.isfinite(config_features(config)))

    def test_cell_matrix_geometry(self, branches):
        profile, dataset = branches["r9-nano"]
        feat = CellFeaturizer(dataset.shapes, dataset.configs)
        n_cells = dataset.n_shapes * dataset.n_configs
        prior = np.zeros((dataset.n_shapes, dataset.n_configs))
        X = feat.cell_matrix(profile.spec, prior, prior)
        # 11 device + 6 shape + 10 config + 2 prior columns.
        assert X.shape == (n_cells, 29)
        assert np.all(np.isfinite(X))

    def test_cell_matrix_row_major_layout(self, branches):
        profile, dataset = branches["r9-nano"]
        feat = CellFeaturizer(dataset.shapes, dataset.configs)
        prior = np.zeros((dataset.n_shapes, dataset.n_configs))
        X = feat.cell_matrix(profile.spec, prior, prior)
        # Row i*n_configs + j carries shape i's and config j's features.
        i, j = 2, 5
        row = X[i * dataset.n_configs + j]
        assert np.array_equal(row[11:17], shape_features(dataset.shapes[i]))
        assert np.array_equal(row[17:27], config_features(dataset.configs[j]))


class TestLeaveOneOutPrior:
    def test_loo_excludes_own_table(self):
        a = np.full((2, 2), 1.0)
        b = np.full((2, 2), 3.0)
        c = np.full((2, 2), 5.0)
        loo_means, loo_stds, all_mean, all_std = _leave_one_out_prior(
            [a, b, c]
        )
        assert np.allclose(loo_means[0], 4.0)  # mean of b, c
        assert np.allclose(loo_means[1], 3.0)  # mean of a, c
        assert np.allclose(loo_means[2], 2.0)  # mean of a, b
        assert np.allclose(all_mean, 3.0)
        assert np.allclose(loo_stds[0], np.std([3.0, 5.0]))
        assert np.allclose(all_std, np.std([1.0, 3.0, 5.0]))

    def test_single_source_prior_is_flat(self):
        loo_means, loo_stds, all_mean, all_std = _leave_one_out_prior(
            [np.full((2, 2), 7.0)]
        )
        assert np.allclose(loo_means[0], 0.0)
        assert np.allclose(loo_stds[0], 0.0)
        assert np.allclose(all_mean, 7.0)
        assert np.allclose(all_std, 0.0)


class TestImputationModel:
    def test_no_sources_rejected(self, branches):
        profile, _ = branches["r9-nano"]
        with pytest.raises(ValueError, match="at least one source"):
            ImputationModel(FAST).fit((), profile.spec)

    def test_mismatched_source_geometry_rejected(
        self, branches, sources_for
    ):
        profile, dataset = branches["r9-nano"]
        sources = list(sources_for("r9-nano"))
        shrunk = PerformanceDataset(
            shapes=dataset.shapes[:-1],
            configs=dataset.configs,
            gflops=dataset.gflops[:-1],
            device_name=sources[0].dataset.device_name,
        )
        sources[0] = type(sources[0])(
            device_id=sources[0].device_id,
            spec=sources[0].spec,
            dataset=shrunk,
        )
        with pytest.raises(ValueError, match="geometry differs"):
            ImputationModel(FAST).fit(sources, profile.spec)

    def test_mismatched_partial_geometry_rejected(
        self, branches, sources_for
    ):
        profile, dataset = branches["r9-nano"]
        partial = PerformanceDataset(
            shapes=dataset.shapes,
            configs=dataset.configs[:-1],
            gflops=dataset.gflops[:, :-1],
            device_name=dataset.device_name,
        )
        with pytest.raises(ValueError, match="partial sweep geometry"):
            ImputationModel(FAST).fit(
                sources_for("r9-nano"), profile.spec, partial
            )

    def test_predictions_cover_the_grid(self, branches, sources_for):
        profile, dataset = branches["r9-nano"]
        partial = _punch_holes(dataset)
        model = ImputationModel(FAST).fit(
            sources_for("r9-nano"), profile.spec, partial
        )
        mean, std = model.predict_target()
        grid = (dataset.n_shapes, dataset.n_configs)
        assert mean.shape == grid and std.shape == grid
        assert np.all(np.isfinite(mean))
        assert np.all(std >= 0.0)

    def test_fit_predict_is_deterministic(self, branches, sources_for):
        profile, dataset = branches["r9-nano"]
        partial = _punch_holes(dataset)
        grids = []
        for _ in range(2):
            model = ImputationModel(FAST).fit(
                sources_for("r9-nano"), profile.spec, partial, seed=11
            )
            grids.append(model.predict_target())
        assert np.array_equal(grids[0][0], grids[1][0])
        assert np.array_equal(grids[0][1], grids[1][1])

    def test_seed_changes_the_forest(self, branches, sources_for):
        profile, dataset = branches["r9-nano"]
        partial = _punch_holes(dataset)
        means = []
        for seed in (0, 1):
            model = ImputationModel(FAST).fit(
                sources_for("r9-nano"), profile.spec, partial, seed=seed
            )
            means.append(model.predict_target()[0])
        assert not np.array_equal(means[0], means[1])


class TestImputeDataset:
    def test_measured_cells_survive_verbatim(self, branches):
        _, dataset = branches["r9-nano"]
        partial = _punch_holes(dataset)
        pred = np.zeros((dataset.n_shapes, dataset.n_configs))
        filled = impute_dataset(partial, pred)
        measured = np.isfinite(partial.gflops)
        assert np.array_equal(
            filled.gflops[measured], partial.gflops[measured]
        )
        assert np.allclose(filled.gflops[~measured], 1.0)  # exp(0)
        assert np.all(np.isfinite(filled.gflops))

    def test_prediction_grid_mismatch_rejected(self, branches):
        _, dataset = branches["r9-nano"]
        partial = _punch_holes(dataset)
        with pytest.raises(ValueError, match="does not match"):
            impute_dataset(partial, np.zeros((2, 2)))
