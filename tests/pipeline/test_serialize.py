"""Tagged-JSON serialization round trips."""

import dataclasses

import numpy as np
import pytest

from repro.bench.runner import RunnerConfig
from repro.pipeline.serialize import dumps, from_jsonable, loads, to_jsonable
from repro.sycl.device import Device, DeviceType
from repro.workloads.gemm import GemmShape


def roundtrip(obj):
    return loads(dumps(obj))


class TestScalars:
    def test_plain_scalars(self):
        for obj in (None, True, False, 0, -3, 1.5, "text", ""):
            assert roundtrip(obj) == obj

    def test_bool_not_collapsed_to_int(self):
        assert roundtrip(True) is True
        assert roundtrip(1) == 1 and roundtrip(1) is not True

    def test_numpy_scalar_keeps_dtype(self):
        out = roundtrip(np.float32(1.25))
        assert out == np.float32(1.25)
        assert out.dtype == np.float32


class TestContainers:
    def test_tuple_distinct_from_list(self):
        out = roundtrip({"a": (1, 2), "b": [1, 2]})
        assert out["a"] == (1, 2) and isinstance(out["a"], tuple)
        assert out["b"] == [1, 2] and isinstance(out["b"], list)

    def test_nested_tuples(self):
        obj = ((1, (2, 3)), ("x",), ())
        assert roundtrip(obj) == obj

    def test_dict_non_string_keys(self):
        obj = {(1, 2): "tuple-key", 3: "int-key", "s": "str-key"}
        out = roundtrip(obj)
        assert out == obj
        assert (1, 2) in out and 3 in out

    def test_dict_order_preserved(self):
        obj = {"z": 1, "a": 2, "m": 3}
        assert list(roundtrip(obj)) == ["z", "a", "m"]


class TestNdarrays:
    @pytest.mark.parametrize("dtype", ["float64", "int64", "bool", "float32"])
    def test_dtype_preserved(self, dtype, rng):
        arr = (rng.random((3, 4)) * 10).astype(dtype)
        out = roundtrip(arr)
        assert out.dtype == arr.dtype
        np.testing.assert_array_equal(out, arr)

    def test_float64_exact_roundtrip(self, rng):
        # Shortest-repr tolist must reproduce every bit of a float64.
        arr = rng.random(100) * np.pi
        np.testing.assert_array_equal(roundtrip(arr), arr)

    def test_nan_and_inf_like_values(self):
        arr = np.array([1.0, np.nan, -0.0])
        out = roundtrip(arr)
        assert np.isnan(out[1])
        np.testing.assert_array_equal(np.signbit(out), np.signbit(arr))

    def test_shape_preserved(self):
        arr = np.zeros((2, 3, 4))
        assert roundtrip(arr).shape == (2, 3, 4)


class TestDataclassesAndEnums:
    def test_dataclass_roundtrip(self):
        cfg = RunnerConfig(seed=9, timed_iterations=7)
        assert roundtrip(cfg) == cfg

    def test_nested_dataclass_with_enum(self):
        spec = Device.r9_nano().spec
        out = roundtrip(spec)
        assert out == spec
        assert out.device_type is DeviceType.GPU

    def test_enum_member_identity(self):
        assert roundtrip(DeviceType.CPU) is DeviceType.CPU

    def test_frozen_shape_dataclass(self):
        shape = GemmShape(m=8, k=16, n=32, batch=2)
        assert roundtrip(shape) == shape

    def test_decode_rejects_non_dataclass_target(self):
        node = {"__dataclass__": "os:getcwd", "fields": {}}
        with pytest.raises(TypeError, match="not a dataclass"):
            from_jsonable(node)

    def test_decode_rejects_non_enum_target(self):
        node = {"__enum__": "pathlib:Path", "name": "CPU"}
        with pytest.raises(TypeError, match="not an Enum"):
            from_jsonable(node)


class TestErrors:
    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError, match="cannot serialize"):
            to_jsonable(object())

    def test_malformed_node_raises(self):
        with pytest.raises(TypeError, match="malformed"):
            from_jsonable({"plain": "dict without tag"})


class TestCanonicalForm:
    def test_canonical_is_deterministic(self):
        a = dumps({"x": 1, "y": (2, 3)}, canonical=True)
        b = dumps({"x": 1, "y": (2, 3)}, canonical=True)
        assert a == b

    def test_canonical_has_no_whitespace(self):
        assert " " not in dumps({"a": [1, 2]}, canonical=True)
