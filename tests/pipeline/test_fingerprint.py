"""Content-address fingerprints: stability and invalidation."""

from repro.bench.runner import RunnerConfig
from repro.pipeline.fingerprint import fingerprint_stage, params_digest
from repro.pipeline.stage import Pipeline, Stage


def noop(inputs, params, options):
    return None


class TestParamsDigest:
    def test_stable_across_calls(self):
        params = {"budget": 8, "pruner": "decision tree"}
        assert params_digest(params) == params_digest(dict(params))

    def test_none_params_have_a_digest(self):
        assert params_digest(None) == params_digest(None)

    def test_value_change_changes_digest(self):
        assert params_digest({"budget": 8}) != params_digest({"budget": 9})

    def test_dataclass_params(self):
        assert params_digest(RunnerConfig(seed=1)) == params_digest(
            RunnerConfig(seed=1)
        )
        assert params_digest(RunnerConfig(seed=1)) != params_digest(
            RunnerConfig(seed=2)
        )

    def test_type_distinctions_matter(self):
        # A tuple and a list of the same values are different content.
        assert params_digest({"v": (1, 2)}) != params_digest({"v": [1, 2]})


class TestFingerprintStage:
    def test_deterministic(self):
        fp = fingerprint_stage("s", "1", {"a": 1}, {"p": "abc"})
        assert fp == fingerprint_stage("s", "1", {"a": 1}, {"p": "abc"})
        assert len(fp) == 64 and int(fp, 16) >= 0

    def test_name_version_params_parents_all_matter(self):
        base = fingerprint_stage("s", "1", {"a": 1}, {"p": "abc"})
        assert fingerprint_stage("t", "1", {"a": 1}, {"p": "abc"}) != base
        assert fingerprint_stage("s", "2", {"a": 1}, {"p": "abc"}) != base
        assert fingerprint_stage("s", "1", {"a": 2}, {"p": "abc"}) != base
        assert fingerprint_stage("s", "1", {"a": 1}, {"p": "xyz"}) != base

    def test_parent_sequence_form(self):
        # Sequence parents hash by position, mapping parents by name=fp.
        a = fingerprint_stage("s", "1", None, ["f1", "f2"])
        b = fingerprint_stage("s", "1", None, ["f2", "f1"])
        assert a != b


class TestPipelineFingerprints:
    def make(self):
        p = Pipeline()
        p.add(Stage("root", noop))
        p.add(Stage("mid", noop, ("root",)))
        p.add(Stage("leaf", noop, ("mid",)))
        p.add(Stage("side", noop, ("root",)))
        return p

    def test_root_param_change_propagates_to_all_descendants(self):
        p = self.make()
        before = p.fingerprints({"root": {"seed": 0}})
        after = p.fingerprints({"root": {"seed": 1}})
        assert all(before[name] != after[name] for name in before)

    def test_mid_param_change_spares_siblings(self):
        p = self.make()
        before = p.fingerprints({"mid": {"k": 0}})
        after = p.fingerprints({"mid": {"k": 1}})
        assert before["root"] == after["root"]
        assert before["side"] == after["side"]
        assert before["mid"] != after["mid"]
        assert before["leaf"] != after["leaf"]

    def test_descendants(self):
        p = self.make()
        assert p.descendants("root") == ["mid", "leaf", "side"]
        assert p.descendants("mid") == ["leaf"]
        assert p.descendants("leaf") == []
