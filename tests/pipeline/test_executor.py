"""The pipeline executor: cache reuse, invalidation, stats."""

import pytest

from repro.pipeline.executor import PipelineExecutor
from repro.pipeline.stage import Pipeline, Stage
from repro.pipeline.store import ArtifactStore


# Stage functions are module-level so the process pool can pickle them.
def const_stage(inputs, params, options):
    return params["value"]


def double_stage(inputs, params, options):
    return inputs["root"] * 2


def triple_stage(inputs, params, options):
    return inputs["root"] * 3


def sum_stage(inputs, params, options):
    return inputs["double"] + inputs["triple"]


def workers_stage(inputs, params, options):
    return options["max_workers"]


def diamond() -> Pipeline:
    p = Pipeline()
    p.add(Stage("root", const_stage))
    p.add(Stage("double", double_stage, ("root",)))
    p.add(Stage("triple", triple_stage, ("root",)))
    p.add(Stage("sum", sum_stage, ("double", "triple")))
    return p


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


PARAMS = {"root": {"value": 7}}


class TestExecution:
    def test_values_flow_through_the_dag(self, store):
        run = PipelineExecutor(store).run(diamond(), PARAMS)
        assert run.value("root") == 7
        assert run.value("double") == 14
        assert run.value("triple") == 21
        assert run.value("sum") == 35

    def test_first_run_executes_everything(self, store):
        run = PipelineExecutor(store).run(diamond(), PARAMS)
        assert run.stats.n_executed == 4
        assert run.stats.n_cached == 0
        assert not run.stats.all_cached

    def test_second_run_is_fully_cached(self, store):
        PipelineExecutor(store).run(diamond(), PARAMS)
        run = PipelineExecutor(store).run(diamond(), PARAMS)
        assert run.stats.all_cached
        assert run.stats.n_cached == 4
        # Cached values are loaded from disk, not recomputed.
        assert run.value("sum") == 35

    def test_executions_reported_in_topo_order(self, store):
        run = PipelineExecutor(store).run(diamond(), PARAMS)
        assert [e.stage for e in run.stats.executions] == [
            "root", "double", "triple", "sum",
        ]

    def test_root_param_change_invalidates_all(self, store):
        PipelineExecutor(store).run(diamond(), PARAMS)
        run = PipelineExecutor(store).run(diamond(), {"root": {"value": 8}})
        assert run.stats.n_executed == 4
        assert run.value("sum") == 40

    def test_force_reruns_everything(self, store):
        PipelineExecutor(store).run(diamond(), PARAMS)
        run = PipelineExecutor(store).run(diamond(), PARAMS, force=True)
        assert run.stats.n_executed == 4

    def test_unknown_param_stage_rejected(self, store):
        with pytest.raises(ValueError, match="unknown stages"):
            PipelineExecutor(store).run(diamond(), {"nope": {}})

    def test_parallel_level_matches_serial(self, tmp_path):
        serial = PipelineExecutor(
            ArtifactStore(tmp_path / "s1"), max_workers=1
        ).run(diamond(), PARAMS)
        parallel = PipelineExecutor(
            ArtifactStore(tmp_path / "s2"), max_workers=2
        ).run(diamond(), PARAMS)
        assert serial.value("sum") == parallel.value("sum")
        # Same params => same fingerprints, independent of workers.
        assert {e.stage: e.fingerprint for e in serial.stats.executions} == {
            e.stage: e.fingerprint for e in parallel.stats.executions
        }

    def test_options_forwarded_to_stages(self, store):
        p = Pipeline().add(Stage("w", workers_stage))
        run = PipelineExecutor(store, max_workers=3).run(p, {})
        assert run.value("w") == 3

    def test_invalid_worker_count_rejected(self, store):
        with pytest.raises(ValueError, match="max_workers"):
            PipelineExecutor(store, max_workers=0)


class TestProvenance:
    def test_manifest_records_lineage(self, store):
        run = PipelineExecutor(store).run(diamond(), PARAMS)
        sum_prov = run.artifacts["sum"].provenance
        assert sum_prov.stage == "sum"
        assert set(sum_prov.parents) == {"double", "triple"}
        assert sum_prov.parents["double"] == run.artifacts["double"].fingerprint
        assert sum_prov.created_at > 0

    def test_cached_artifact_keeps_original_provenance(self, store):
        first = PipelineExecutor(store).run(diamond(), PARAMS)
        second = PipelineExecutor(store).run(diamond(), PARAMS)
        assert (
            second.artifacts["sum"].provenance.created_at
            == first.artifacts["sum"].provenance.created_at
        )


class TestStats:
    def test_stage_partition(self, store):
        PipelineExecutor(store).run(diamond(), PARAMS)
        run = PipelineExecutor(store).run(diamond(), PARAMS)
        assert run.stats.executed_stages == ()
        assert set(run.stats.cached_stages) == {
            "root", "double", "triple", "sum",
        }

    def test_for_stage(self, store):
        run = PipelineExecutor(store).run(diamond(), PARAMS)
        assert run.stats.for_stage("root").cache_hit is False
        with pytest.raises(KeyError):
            run.stats.for_stage("nope")

    def test_render_mentions_every_stage(self, store):
        run = PipelineExecutor(store).run(diamond(), PARAMS)
        text = run.stats.render()
        for name in ("root", "double", "triple", "sum"):
            assert name in text
        assert "4 executed, 0 cached" in text

    def test_empty_stats_not_all_cached(self, store):
        run = PipelineExecutor(store).run(Pipeline(), {})
        assert not run.stats.all_cached
