"""The `repro pipeline` and artifact-backed `repro serve-stats` commands."""

import pytest

from repro.cli import main

NETWORK_ARGS = ["--networks", "mobilenet_v2"]


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "store"
    assert main(["pipeline", "run", "--store", str(path), *NETWORK_ARGS]) == 0
    return path


class TestPipelineRun:
    def test_run_reports_stages_and_artifacts(self, store_path, capsys):
        main(["pipeline", "run", "--store", str(store_path), *NETWORK_ARGS])
        out = capsys.readouterr().out
        assert "0 executed, 11 cached" in out
        assert "train    ->" in out

    def test_second_run_passes_assert_all_cached(self, store_path):
        code = main(
            [
                "pipeline", "run", "--store", str(store_path),
                *NETWORK_ARGS, "--assert-all-cached",
            ]
        )
        assert code == 0

    def test_assert_all_cached_fails_on_cold_store(self, tmp_path, capsys):
        code = main(
            [
                "pipeline", "run", "--store", str(tmp_path / "cold"),
                *NETWORK_ARGS, "--assert-all-cached",
            ]
        )
        assert code == 1
        assert "expected a fully cached run" in capsys.readouterr().err

    def test_render_includes_the_report(self, store_path, capsys):
        main(
            [
                "pipeline", "run", "--store", str(store_path),
                *NETWORK_ARGS, "--render",
            ]
        )
        out = capsys.readouterr().out
        assert "Reproduction report" in out


class TestPipelineStatus:
    def test_status_lists_artifacts(self, store_path, capsys):
        assert main(["pipeline", "status", "--store", str(store_path)]) == 0
        out = capsys.readouterr().out
        assert "11 artifacts" in out
        assert "sweep" in out and "train" in out

    def test_status_on_empty_store(self, tmp_path, capsys):
        assert main(["pipeline", "status", "--store", str(tmp_path / "e")]) == 0
        assert "empty" in capsys.readouterr().out


class TestPipelineGc:
    def test_gc_keeps_current_config(self, store_path, capsys):
        assert main(
            ["pipeline", "gc", "--store", str(store_path), *NETWORK_ARGS]
        ) == 0
        assert "removed 0 artifacts, kept 11" in capsys.readouterr().out

    def test_gc_all_clears(self, tmp_path, capsys):
        path = tmp_path / "doomed"
        main(["pipeline", "run", "--store", str(path), *NETWORK_ARGS])
        capsys.readouterr()
        assert main(["pipeline", "gc", "--store", str(path), "--all"]) == 0
        assert "kept 0" in capsys.readouterr().out


class TestServeStatsFromStore:
    def test_serves_latest_train_artifact(self, store_path, tmp_path, capsys):
        # Reuse the store's dataset artifact to skip a fresh sweep.
        from repro.pipeline import ArtifactStore

        store = ArtifactStore(store_path)
        latest = store.latest("dataset")
        dataset_path = tmp_path / "ds.npz"
        store.resolve(latest.fingerprint).value.save(dataset_path)
        code = main(
            [
                "serve-stats", "--store", str(store_path),
                "--dataset", str(dataset_path), "--requests", "512",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "policy artifact  train:" in out
        assert "provenance" in out

    def test_errors_cleanly_without_train_artifact(self, tmp_path, capsys):
        (tmp_path / "empty").mkdir()
        code = main(
            [
                "serve-stats", "--store", str(tmp_path / "empty"),
                "--dataset", str(tmp_path / "missing.npz"),
            ]
        )
        assert code == 1
        assert "no trained selector artifact" in capsys.readouterr().err
