"""The content-addressed artifact store."""

import numpy as np
import pytest

from repro.pipeline.artifact import Provenance
from repro.pipeline.store import ArtifactStore


def prov(stage="s", fp="a" * 64, created_at=1.0, codec="json", **kwargs):
    return Provenance(
        stage=stage,
        fingerprint=fp,
        code_version="1",
        params=kwargs.pop("params", None),
        parents=kwargs.pop("parents", {}),
        codec=codec,
        created_at=created_at,
        **kwargs,
    )


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


class TestPutGet:
    def test_roundtrip_json_payload(self, store):
        value = {"scores": np.arange(6.0).reshape(2, 3), "tag": (1, "x")}
        store.put(value, prov())
        loaded = store.get("a" * 64)
        np.testing.assert_array_equal(loaded.value["scores"], value["scores"])
        assert loaded.value["tag"] == (1, "x")
        assert loaded.provenance.stage == "s"

    def test_get_absent_returns_none(self, store):
        assert store.get("f" * 64) is None
        assert ("f" * 64) not in store

    def test_contains(self, store):
        store.put(1, prov())
        assert ("a" * 64) in store

    def test_manifest_fields_survive(self, store):
        p = prov(
            params={"budget": 8},
            parents={"up": "b" * 64},
            runtime_s=0.5,
            failures=("oops: cell NaN (fatal)",),
        )
        store.put({"v": 1}, p)
        m = store.manifest("a" * 64)
        assert m.params == {"budget": 8}
        assert m.parents == {"up": "b" * 64}
        assert m.runtime_s == 0.5
        assert m.failures == ("oops: cell NaN (fatal)",)
        assert m.artifact_id == "s:" + "a" * 12

    def test_manifest_missing_raises(self, store):
        with pytest.raises(KeyError):
            store.manifest("0" * 64)

    def test_same_fingerprint_put_twice_keeps_one(self, store):
        store.put({"v": 1}, prov())
        store.put({"v": 1}, prov())
        assert list(store.fingerprints()) == ["a" * 64]

    def test_no_tmp_dirs_left_behind(self, store):
        store.put({"v": 1}, prov())
        leftovers = [
            p for p in (store.root / "objects").iterdir()
            if p.name.startswith("tmp-")
        ]
        assert leftovers == []

    def test_failed_put_leaves_no_artifact(self, store):
        class Unserializable:
            pass

        with pytest.raises(TypeError):
            store.put(Unserializable(), prov())
        assert list(store.fingerprints()) == []
        assert list((store.root / "objects").iterdir()) == []


class TestResolve:
    def test_by_full_fingerprint_and_prefix(self, store):
        store.put({"v": 1}, prov())
        assert store.resolve("a" * 64).value == {"v": 1}
        assert store.resolve("aaaa").value == {"v": 1}

    def test_by_artifact_id(self, store):
        store.put({"v": 1}, prov())
        assert store.resolve("s:" + "a" * 12).value == {"v": 1}

    def test_ambiguous_prefix_raises(self, store):
        store.put(1, prov(fp="ab" + "0" * 62))
        store.put(2, prov(fp="ab" + "1" * 62))
        with pytest.raises(KeyError, match="ambiguous"):
            store.resolve("ab")

    def test_unknown_returns_none(self, store):
        assert store.resolve("dead") is None


class TestEnumeration:
    def test_ls_newest_first(self, store):
        store.put(1, prov(stage="old", fp="1" * 64, created_at=10.0))
        store.put(2, prov(stage="new", fp="2" * 64, created_at=20.0))
        assert [p.stage for p in store.ls()] == ["new", "old"]

    def test_latest_by_stage(self, store):
        store.put(1, prov(stage="train", fp="1" * 64, created_at=10.0))
        store.put(2, prov(stage="train", fp="2" * 64, created_at=20.0))
        store.put(3, prov(stage="eval", fp="3" * 64, created_at=30.0))
        assert store.latest("train").fingerprint == "2" * 64
        assert store.latest("nothing") is None

    def test_size_bytes_positive(self, store):
        store.put({"v": list(range(100))}, prov())
        assert store.size_bytes("a" * 64) > 0


class TestGc:
    def test_removes_everything_not_kept(self, store):
        store.put(1, prov(fp="1" * 64))
        store.put(2, prov(fp="2" * 64))
        store.put(3, prov(fp="3" * 64))
        removed = store.gc({"2" * 64})
        assert sorted(removed) == ["1" * 64, "3" * 64]
        assert list(store.fingerprints()) == ["2" * 64]

    def test_empty_keep_clears_store(self, store):
        store.put(1, prov())
        store.gc(set())
        assert list(store.fingerprints()) == []

    def test_sweeps_stale_tmp_dirs(self, store):
        stale = store.root / "objects" / "tmp-stale"
        stale.mkdir()
        store.gc(set(), max_tmp_age_s=0.0)
        assert not stale.exists()

    def test_keeps_fresh_tmp_dirs(self, store):
        fresh = store.root / "objects" / "tmp-fresh"
        fresh.mkdir()
        store.gc(set(), max_tmp_age_s=3600.0)
        assert fresh.exists()
