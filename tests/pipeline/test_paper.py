"""Acceptance tests for the paper's staged pipeline.

These use the mobilenet_v2-only sweep (21 shapes x 640 configs) so a
full pipeline run stays in the seconds range while exercising the real
stage functions end to end.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.dataset import generate_dataset
from repro.experiments.run_all import run_all, run_all_pipeline
from repro.pipeline import ArtifactStore, PaperPipelineConfig
from repro.pipeline.paper import paper_params, paper_pipeline, run_paper_pipeline
from repro.serving import SelectionService

STAGES = {
    "sweep", "dataset", "fig1", "fig2", "fig3", "fig4", "table1",
    "split", "prune", "train", "eval",
}
SPLIT_DEPENDENT = {"split", "prune", "train", "eval", "fig4", "table1"}


@pytest.fixture(scope="module")
def config():
    return PaperPipelineConfig(
        networks=("mobilenet_v2",),
        fig4_budgets=(4, 8),
        table1_budgets=(5, 8),
    )


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    return ArtifactStore(tmp_path_factory.mktemp("pipeline") / "store")


@pytest.fixture(scope="module")
def first_run(store, config):
    return run_paper_pipeline(store, config)


class TestIncrementalRecomputation:
    def test_first_run_executes_every_stage(self, first_run):
        assert set(first_run.stats.executed_stages) == STAGES
        assert first_run.stats.n_cached == 0

    def test_second_run_is_one_hundred_percent_cache_hits(
        self, store, config, first_run
    ):
        run = run_paper_pipeline(store, config)
        assert run.stats.all_cached
        assert run.stats.n_cached == len(STAGES)
        np.testing.assert_array_equal(
            run.value("dataset").gflops, first_run.value("dataset").gflops
        )
        assert run.value("table1").render() == first_run.value("table1").render()

    def test_split_seed_change_spares_the_sweep(self, store, config, first_run):
        reseeded = dataclasses.replace(config, split_seed=1)
        run = run_paper_pipeline(store, reseeded)
        assert set(run.stats.executed_stages) == SPLIT_DEPENDENT
        assert set(run.stats.cached_stages) == STAGES - SPLIT_DEPENDENT
        # The expensive artifact is byte-identical reuse, not recompute.
        assert (
            run.stats.for_stage("sweep").fingerprint
            == first_run.stats.for_stage("sweep").fingerprint
        )

    def test_budget_change_reruns_only_prune_train_eval(
        self, store, config, first_run
    ):
        rebudgeted = dataclasses.replace(config, budget=6)
        run = run_paper_pipeline(store, rebudgeted)
        assert set(run.stats.executed_stages) == {"prune", "train", "eval"}


class TestDifferentialOracle:
    def test_pipeline_matches_direct_run_all(self, store, config, first_run):
        results, run = run_all_pipeline(store, config)
        assert run.stats.all_cached
        direct_dataset = generate_dataset(networks=config.networks)
        direct = run_all(direct_dataset, split_seed=config.split_seed)
        np.testing.assert_array_equal(
            results.dataset.gflops, direct.dataset.gflops
        )
        assert results.fig1.render() == direct.fig1.render()
        assert results.fig2.render() == direct.fig2.render()
        assert results.fig3.render() == direct.fig3.render()
        # fig4/table1 budgets differ from run_all's defaults by
        # construction; compare them against the direct functions.
        from repro.experiments.fig4 import run_fig4
        from repro.experiments.table1 import run_table1

        assert (
            results.fig4.render()
            == run_fig4(direct_dataset, budgets=config.fig4_budgets).render()
        )
        assert (
            results.table1.render()
            == run_table1(
                direct_dataset, budgets=config.table1_budgets
            ).render()
        )

    def test_generate_dataset_via_store_shares_the_sweep(
        self, store, config, first_run
    ):
        # The standalone dataset entry point fingerprints identically to
        # the full pipeline, so it reuses the sweep artifact.
        dataset = generate_dataset(networks=config.networks, store=store)
        np.testing.assert_array_equal(
            dataset.gflops, first_run.value("dataset").gflops
        )


class TestServingProvenance:
    def test_service_from_artifact_reports_lineage(self, store, first_run):
        train_artifact = first_run.artifacts["train"]
        service = SelectionService.from_artifact(
            store, train_artifact.artifact_id
        )
        stats = service.stats()
        assert stats.artifact_id == train_artifact.artifact_id
        assert set(stats.provenance["parents"]) == {"split", "prune"}
        assert "policy artifact" in stats.render()

    def test_loaded_selector_selects_identically(self, store, first_run):
        service = SelectionService.from_artifact(
            store, first_run.artifacts["train"].artifact_id
        )
        test_shapes = first_run.value("split").test.shapes
        direct = first_run.value("train").select_batch(test_shapes)
        assert service.select_batch(test_shapes) == tuple(direct)

    def test_from_artifact_rejects_unknown_and_non_policy(self, store, first_run):
        with pytest.raises(KeyError):
            SelectionService.from_artifact(store, "0" * 64)
        with pytest.raises(TypeError, match="not a selection policy"):
            SelectionService.from_artifact(
                store, first_run.artifacts["fig1"].artifact_id
            )


class TestFingerprintCoverage:
    def test_every_stage_has_a_distinct_fingerprint(self, config):
        fps = paper_pipeline().fingerprints(paper_params(config))
        assert set(fps) == STAGES
        assert len(set(fps.values())) == len(STAGES)

    def test_device_change_invalidates_the_sweep(self, config):
        fps = paper_pipeline().fingerprints(paper_params(config))
        other = dataclasses.replace(config, device_preset="desktop-gpu")
        fps2 = paper_pipeline().fingerprints(paper_params(other))
        assert fps["sweep"] != fps2["sweep"]
