"""Timing aggregation."""

import numpy as np
import pytest

from repro.bench.stats import summarize_times


class TestSummarize:
    def test_basic_statistics(self):
        s = summarize_times([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.median == pytest.approx(2.0)
        assert s.minimum == 1.0 and s.maximum == 3.0
        assert s.iterations == 3

    def test_relative_spread(self):
        s = summarize_times([1.0, 1.0, 1.0])
        assert s.relative_spread == 0.0
        s2 = summarize_times([1.0, 3.0])
        assert s2.relative_spread == pytest.approx(0.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize_times([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            summarize_times([1.0, 0.0])
