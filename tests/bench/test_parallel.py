"""Deterministic parallel map."""

import math
import time

from repro.bench.parallel import _MIN_PARALLEL_ITEMS, parallel_map


def square(x: int) -> int:
    return x * x


def slow_when_small(x: int) -> int:
    # Early items sleep longest, so completion order inverts input
    # order unless results are reassembled by position.
    time.sleep(0.002 * (40 - x) if x < 40 else 0.0)
    return x * x


def record_pid(x: int):
    import os

    return os.getpid()


class TestParallelMap:
    def test_preserves_order(self):
        items = list(range(100))
        assert parallel_map(square, items, max_workers=4) == [i * i for i in items]

    def test_preserves_order_under_skewed_runtimes(self):
        items = list(range(40))
        out = parallel_map(slow_when_small, items, max_workers=4, chunksize=1)
        assert out == [i * i for i in items]

    def test_serial_path_small_inputs(self):
        assert parallel_map(square, [1, 2, 3], max_workers=8) == [1, 4, 9]

    def test_serial_fallback_below_threshold(self):
        # One item short of the threshold must not spawn workers.
        items = list(range(_MIN_PARALLEL_ITEMS - 1))
        pids = parallel_map(record_pid, items, max_workers=4)
        import os

        assert set(pids) == {os.getpid()}

    def test_min_parallel_items_override_lowers_threshold(self):
        import os

        pids = parallel_map(
            record_pid, [1, 2], max_workers=2, min_parallel_items=2
        )
        assert os.getpid() not in pids

    def test_min_parallel_items_override_raises_threshold(self):
        import os

        items = list(range(_MIN_PARALLEL_ITEMS * 2))
        pids = parallel_map(
            record_pid,
            items,
            max_workers=4,
            min_parallel_items=len(items) + 1,
        )
        assert set(pids) == {os.getpid()}

    def test_single_worker(self):
        items = list(range(50))
        assert parallel_map(square, items, max_workers=1) == [i * i for i in items]

    def test_matches_serial_regardless_of_workers(self):
        items = list(range(64))
        serial = parallel_map(math.factorial, items, max_workers=1)
        parallel = parallel_map(math.factorial, items, max_workers=2)
        assert serial == parallel

    def test_empty(self):
        assert parallel_map(square, []) == []

    def test_explicit_chunksize(self):
        items = list(range(40))
        out = parallel_map(square, items, max_workers=2, chunksize=5)
        assert out == [i * i for i in items]
