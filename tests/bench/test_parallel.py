"""Deterministic parallel map."""

import math

from repro.bench.parallel import parallel_map


def square(x: int) -> int:
    return x * x


class TestParallelMap:
    def test_preserves_order(self):
        items = list(range(100))
        assert parallel_map(square, items, max_workers=4) == [i * i for i in items]

    def test_serial_path_small_inputs(self):
        assert parallel_map(square, [1, 2, 3], max_workers=8) == [1, 4, 9]

    def test_single_worker(self):
        items = list(range(50))
        assert parallel_map(square, items, max_workers=1) == [i * i for i in items]

    def test_matches_serial_regardless_of_workers(self):
        items = list(range(64))
        serial = parallel_map(math.factorial, items, max_workers=1)
        parallel = parallel_map(math.factorial, items, max_workers=2)
        assert serial == parallel

    def test_empty(self):
        assert parallel_map(square, []) == []

    def test_explicit_chunksize(self):
        items = list(range(40))
        out = parallel_map(square, items, max_workers=2, chunksize=5)
        assert out == [i * i for i in items]
