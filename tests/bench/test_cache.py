"""Dataset persistence."""

import numpy as np
import pytest

from repro.bench.cache import load_dataset, save_dataset
from repro.bench.runner import BenchmarkRunner, RunnerConfig
from repro.kernels.params import config_space
from repro.sycl.device import Device
from repro.workloads.gemm import GemmShape


@pytest.fixture(scope="module")
def result():
    runner = BenchmarkRunner(
        Device.r9_nano(),
        configs=config_space(tile_sizes=(1, 2), work_groups=((8, 8),)),
        runner_config=RunnerConfig(seed=77),
    )
    return runner.run((GemmShape(m=64, k=64, n=64), GemmShape(m=1, k=256, n=64)))


class TestRoundTrip:
    def test_everything_preserved(self, result, tmp_path):
        path = save_dataset(result, tmp_path / "ds.npz")
        loaded = load_dataset(path)
        assert loaded.device_name == result.device_name
        assert loaded.shapes == result.shapes
        assert loaded.configs == result.configs
        np.testing.assert_array_equal(loaded.gflops, result.gflops)
        np.testing.assert_array_equal(loaded.seconds, result.seconds)
        assert loaded.runner == result.runner

    def test_suffix_normalisation(self, result, tmp_path):
        path = save_dataset(result, tmp_path / "noext")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_creates_parent_dirs(self, result, tmp_path):
        path = save_dataset(result, tmp_path / "a" / "b" / "ds.npz")
        assert path.exists()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "nothing.npz")

    def test_format_version_checked(self, result, tmp_path):
        import json

        path = save_dataset(result, tmp_path / "ds.npz")
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        meta = json.loads(str(arrays["meta"]))
        meta["format_version"] = 999
        arrays["meta"] = json.dumps(meta)
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="unsupported dataset format"):
            load_dataset(path)
