"""Dataset persistence."""

import dataclasses

import numpy as np
import pytest

from repro.bench.cache import CacheMismatchError, load_dataset, save_dataset
from repro.bench.runner import BenchmarkRunner, RunnerConfig
from repro.kernels.params import config_space
from repro.perfmodel.params import PerfModelParams
from repro.sycl.device import Device
from repro.workloads.gemm import GemmShape


@pytest.fixture(scope="module")
def result():
    runner = BenchmarkRunner(
        Device.r9_nano(),
        configs=config_space(tile_sizes=(1, 2), work_groups=((8, 8),)),
        runner_config=RunnerConfig(seed=77),
    )
    return runner.run((GemmShape(m=64, k=64, n=64), GemmShape(m=1, k=256, n=64)))


class TestRoundTrip:
    def test_everything_preserved(self, result, tmp_path):
        path = save_dataset(result, tmp_path / "ds.npz")
        loaded = load_dataset(path)
        assert loaded.device_name == result.device_name
        assert loaded.shapes == result.shapes
        assert loaded.configs == result.configs
        np.testing.assert_array_equal(loaded.gflops, result.gflops)
        np.testing.assert_array_equal(loaded.seconds, result.seconds)
        assert loaded.runner == result.runner

    def test_suffix_normalisation(self, result, tmp_path):
        path = save_dataset(result, tmp_path / "noext")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_creates_parent_dirs(self, result, tmp_path):
        path = save_dataset(result, tmp_path / "a" / "b" / "ds.npz")
        assert path.exists()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "nothing.npz")

    def test_model_params_recorded(self, result, tmp_path):
        params = PerfModelParams()
        path = save_dataset(result, tmp_path / "ds.npz", model_params=params)
        loaded = load_dataset(path, expected_model_params=params)
        assert loaded.device_name == result.device_name

    def test_format_version_checked(self, result, tmp_path):
        import json

        path = save_dataset(result, tmp_path / "ds.npz")
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        meta = json.loads(str(arrays["meta"]))
        meta["format_version"] = 999
        arrays["meta"] = json.dumps(meta)
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="unsupported dataset format"):
            load_dataset(path)


class TestCacheValidation:
    def test_no_expectations_accepts_any_cache(self, result, tmp_path):
        path = save_dataset(result, tmp_path / "ds.npz")
        load_dataset(path)  # must not raise

    def test_matching_expectations_accepted(self, result, tmp_path):
        path = save_dataset(result, tmp_path / "ds.npz")
        load_dataset(
            path,
            expected_runner=RunnerConfig(seed=77),
            expected_device_name=result.device_name,
        )

    def test_runner_mismatch_raises(self, result, tmp_path):
        path = save_dataset(result, tmp_path / "ds.npz")
        with pytest.raises(CacheMismatchError, match="runner"):
            load_dataset(path, expected_runner=RunnerConfig(seed=78))

    def test_device_mismatch_raises(self, result, tmp_path):
        path = save_dataset(result, tmp_path / "ds.npz")
        with pytest.raises(CacheMismatchError, match="device"):
            load_dataset(path, expected_device_name="other-gpu")

    def test_model_params_mismatch_raises(self, result, tmp_path):
        path = save_dataset(
            result, tmp_path / "ds.npz", model_params=PerfModelParams()
        )
        changed = dataclasses.replace(PerfModelParams(), noise_sigma=0.5)
        with pytest.raises(CacheMismatchError, match="model_params"):
            load_dataset(path, expected_model_params=changed)

    def test_cache_without_model_params_counts_as_mismatch(
        self, result, tmp_path
    ):
        # Old-format caches never recorded model constants; demanding
        # specific ones must be a miss, not a silent acceptance.
        path = save_dataset(result, tmp_path / "ds.npz")
        with pytest.raises(CacheMismatchError, match="absent"):
            load_dataset(path, expected_model_params=PerfModelParams())

    def test_all_mismatches_reported_together(self, result, tmp_path):
        path = save_dataset(result, tmp_path / "ds.npz")
        with pytest.raises(CacheMismatchError) as excinfo:
            load_dataset(
                path,
                expected_runner=RunnerConfig(seed=1),
                expected_device_name="other-gpu",
            )
        message = str(excinfo.value)
        assert "runner" in message and "device" in message

    def test_mismatch_is_a_value_error(self):
        # Callers catching ValueError from load_dataset keep working.
        assert issubclass(CacheMismatchError, ValueError)
