"""Benchmark runner."""

import numpy as np
import pytest

from repro.bench.runner import BenchmarkResult, BenchmarkRunner, RunnerConfig
from repro.kernels.params import KernelConfig, config_space
from repro.sycl.device import Device
from repro.workloads.gemm import GemmShape

SHAPES = (
    GemmShape(m=128, k=64, n=128),
    GemmShape(m=1, k=1024, n=512),
    GemmShape(m=3136, k=64, n=64),
)
CONFIGS = config_space(tile_sizes=(1, 4), work_groups=((8, 8), (1, 64)))


@pytest.fixture(scope="module")
def runner():
    return BenchmarkRunner(Device.r9_nano(), configs=CONFIGS)


class TestRunner:
    def test_result_dimensions(self, runner):
        result = runner.run(SHAPES)
        assert result.gflops.shape == (3, len(CONFIGS))
        assert result.seconds.shape == (3, len(CONFIGS))
        assert result.device_name == Device.r9_nano().name

    def test_gflops_consistent_with_seconds(self, runner):
        result = runner.run(SHAPES)
        for si, shape in enumerate(SHAPES):
            np.testing.assert_allclose(
                result.gflops[si],
                shape.flops / result.seconds[si] / 1e9,
                rtol=1e-12,
            )

    def test_deterministic_across_runs(self, runner):
        a = runner.run(SHAPES)
        b = runner.run(SHAPES)
        np.testing.assert_array_equal(a.gflops, b.gflops)

    def test_default_config_space_is_full(self):
        r = BenchmarkRunner(Device.r9_nano())
        assert len(r.configs) == 640

    def test_warmup_iterations_excluded(self):
        shapes = SHAPES[:1]
        no_warm = BenchmarkRunner(
            Device.r9_nano(),
            configs=CONFIGS[:2],
            runner_config=RunnerConfig(warmup_iterations=0, timed_iterations=3),
        ).run(shapes)
        warm = BenchmarkRunner(
            Device.r9_nano(),
            configs=CONFIGS[:2],
            runner_config=RunnerConfig(warmup_iterations=2, timed_iterations=3),
        ).run(shapes)
        # Different iteration windows -> different noise draws.
        assert not np.array_equal(no_warm.gflops, warm.gflops)

    def test_seed_controls_noise(self):
        a = BenchmarkRunner(
            Device.r9_nano(),
            configs=CONFIGS[:2],
            runner_config=RunnerConfig(seed=1),
        ).run(SHAPES[:1])
        b = BenchmarkRunner(
            Device.r9_nano(),
            configs=CONFIGS[:2],
            runner_config=RunnerConfig(seed=2),
        ).run(SHAPES[:1])
        assert not np.array_equal(a.gflops, b.gflops)

    def test_empty_shapes_rejected(self, runner):
        with pytest.raises(ValueError):
            runner.run(())

    def test_bench_single(self, runner):
        summary = runner.bench_single(SHAPES[0], CONFIGS[0])
        assert summary.iterations == RunnerConfig().timed_iterations
        assert summary.minimum > 0

    def test_invalid_runner_config(self):
        with pytest.raises(ValueError):
            RunnerConfig(warmup_iterations=-1)
        with pytest.raises(ValueError):
            RunnerConfig(timed_iterations=0)

    def test_result_shape_validation(self):
        with pytest.raises(ValueError):
            BenchmarkResult(
                device_name="x",
                shapes=SHAPES,
                configs=CONFIGS,
                gflops=np.ones((2, 2)),
                seconds=np.ones((2, 2)),
            )
