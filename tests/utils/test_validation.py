"""Input validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_array,
    check_in_range,
    check_positive_int,
    check_random_state,
)


class TestCheckPositiveInt:
    def test_passes_through(self):
        assert check_positive_int(3, "x") == 3

    def test_numpy_ints_accepted(self):
        assert check_positive_int(np.int64(5), "x") == 5

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_custom_minimum(self):
        assert check_positive_int(0, "x", minimum=0) == 0

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.0, "x")

    def test_error_mentions_name(self):
        with pytest.raises(ValueError, match="budget"):
            check_positive_int(-1, "budget")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(0.0, "x", low=0.0, high=1.0) == 0.0

    def test_exclusive_low(self):
        with pytest.raises(ValueError):
            check_in_range(0.0, "x", low=0.0, low_inclusive=False)

    def test_exclusive_high(self):
        with pytest.raises(ValueError):
            check_in_range(1.0, "x", high=1.0, high_inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="gamma"):
            check_in_range(2.0, "gamma", low=0.0, high=1.0)


class TestCheckArray:
    def test_coerces_lists(self):
        out = check_array([[1, 2], [3, 4]])
        assert out.dtype == np.float64 and out.shape == (2, 2)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            check_array([1.0, 2.0], ndim=2)

    def test_multiple_allowed_ndims(self):
        assert check_array([1.0, 2.0], ndim=(1, 2)).ndim == 1

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_array([[np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_array([[np.inf]])

    def test_rejects_empty_by_default(self):
        with pytest.raises(ValueError):
            check_array(np.empty((0, 3)))

    def test_allow_empty(self):
        assert check_array(np.empty((0, 3)), allow_empty=True).shape == (0, 3)

    def test_copy_is_independent(self):
        src = np.ones((2, 2))
        out = check_array(src, copy=True)
        out[0, 0] = 5.0
        assert src[0, 0] == 1.0


class TestCheckRandomState:
    def test_is_alias_of_rng_from(self):
        assert check_random_state(3).integers(10) == check_random_state(3).integers(10)
