"""Deterministic stream derivation."""

import numpy as np
import pytest

from repro.utils.rng import derive_seed, rng_from, stream


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_distinct_keys_distinct_seeds(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_distinct_roots_distinct_seeds(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_key_order_matters(self):
        assert derive_seed(0, "a", "b") != derive_seed(0, "b", "a")

    def test_int_vs_str_key_not_conflated(self):
        # "1" and 1 stringify identically by design; the path separator
        # prevents collisions between ("ab",) and ("a", "b").
        assert derive_seed(0, "a", "b") != derive_seed(0, "ab")

    def test_negative_root_supported(self):
        assert isinstance(derive_seed(-5, "x"), int)

    def test_rejects_float_keys(self):
        with pytest.raises(TypeError):
            derive_seed(0, 1.5)

    def test_rejects_bool_keys(self):
        with pytest.raises(TypeError):
            derive_seed(0, True)


class TestStream:
    def test_reproducible(self):
        a = stream(42, "noise", 3).standard_normal(5)
        b = stream(42, "noise", 3).standard_normal(5)
        np.testing.assert_array_equal(a, b)

    def test_independent_streams_differ(self):
        a = stream(42, "noise", 3).standard_normal(5)
        b = stream(42, "noise", 4).standard_normal(5)
        assert not np.allclose(a, b)

    def test_cross_platform_stability(self):
        # Pin an actual value so accidental hash-function changes surface.
        value = stream(2020, "anchor").integers(0, 1_000_000)
        assert value == stream(2020, "anchor").integers(0, 1_000_000)


class TestRngFrom:
    def test_none_gives_generator(self):
        assert isinstance(rng_from(None), np.random.Generator)

    def test_int_seeds(self):
        assert rng_from(7).integers(100) == rng_from(7).integers(100)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert rng_from(gen) is gen

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            rng_from("seed")
