"""ceil_div / round_up / geometric_mean."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.maths import ceil_div, geometric_mean, round_up


class TestCeilDiv:
    @pytest.mark.parametrize(
        "a,b,expected",
        [(0, 1, 0), (1, 1, 1), (5, 2, 3), (6, 2, 3), (7, 8, 1), (64, 8, 8)],
    )
    def test_values(self, a, b, expected):
        assert ceil_div(a, b) == expected

    def test_rejects_zero_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    def test_rejects_negative_numerator(self):
        with pytest.raises(ValueError):
            ceil_div(-1, 2)

    @given(st.integers(0, 10**9), st.integers(1, 10**6))
    def test_matches_math_definition(self, a, b):
        q = ceil_div(a, b)
        assert (q - 1) * b < a <= q * b or (a == 0 and q == 0)


class TestRoundUp:
    @given(st.integers(0, 10**6), st.integers(1, 10**4))
    def test_is_multiple_and_minimal(self, value, multiple):
        r = round_up(value, multiple)
        assert r % multiple == 0
        assert r >= value
        assert r - value < multiple


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_identity_on_constant(self):
        assert geometric_mean([3.0, 3.0, 3.0]) == pytest.approx(3.0)

    def test_axis(self):
        out = geometric_mean([[1.0, 4.0], [1.0, 16.0]], axis=0)
        np.testing.assert_allclose(out, [1.0, 8.0])

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, -2.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    @given(
        st.lists(st.floats(0.01, 100.0), min_size=1, max_size=20),
        st.floats(0.01, 100.0),
    )
    def test_scale_equivariance(self, values, scale):
        base = geometric_mean(values)
        scaled = geometric_mean([v * scale for v in values])
        assert scaled == pytest.approx(base * scale, rel=1e-9)

    @given(st.lists(st.floats(0.01, 100.0), min_size=1, max_size=20))
    def test_bounded_by_min_max(self, values):
        g = geometric_mean(values)
        assert min(values) - 1e-12 <= g <= max(values) + 1e-12
