"""Saturation reporting: offered-vs-achieved per worker, report meta."""

import json
import re
import time

import pytest

from repro.loadgen import (
    LoadReport,
    LoadgenConfig,
    QuantileSummary,
    RateProfile,
    WorkerLoad,
    git_revision,
    report_document,
    run_load,
)
from repro.loadgen.report import REPORT_SCHEMA
from repro.obs import MetricsRegistry
from repro.serving.router import RoutedDecision


def _summary(n=10):
    return QuantileSummary(
        count=n, mean_s=1e-4, p50_s=1e-4, p99_s=2e-4, p999_s=3e-4
    )


def _report(**overrides):
    fields = dict(
        duration_s=1.0,
        wall_s=1.0,
        offered=1000,
        completed=1000,
        late=0,
        achieved_qps=1000.0,
        request_latency=_summary(),
        lookup_latency=None,
        dispatched={"dev0": 1000},
        rerouted=0,
        paced=True,
        workers=(
            WorkerLoad(
                worker=0,
                offered=1000,
                completed=1000,
                late=0,
                offered_qps=1000.0,
                achieved_qps=1000.0,
            ),
        ),
    )
    fields.update(overrides)
    return LoadReport(**fields)


class TestSaturatedProperty:
    def test_keeping_up_is_not_saturated(self):
        assert not _report().saturated

    def test_excess_lateness_flags_saturation(self):
        assert _report(late=100).saturated

    def test_throughput_shortfall_flags_saturation(self):
        assert _report(achieved_qps=500.0, completed=500).saturated

    def test_unpaced_runs_never_saturate(self):
        report = _report(paced=False, late=500, achieved_qps=10.0)
        assert not report.saturated

    def test_empty_run_is_not_saturated(self):
        assert not _report(offered=0, completed=0, achieved_qps=0.0).saturated

    def test_render_warns_with_per_worker_lines(self):
        out = _report(late=100).render()
        assert "WARNING" in out
        assert "saturated" in out
        assert "worker 0" in out
        assert "offered 1,000 qps" in out

    def test_render_stays_quiet_when_keeping_up(self):
        assert "WARNING" not in _report().render()

    def test_to_dict_carries_saturation_and_workers(self):
        doc = _report(late=100).to_dict()
        assert doc["saturated"] is True
        assert doc["paced"] is True
        assert doc["workers"][0]["offered_qps"] == 1000.0


class _SlowRouter:
    """A router stub with a fixed per-select service time."""

    def __init__(self, registry, delay_s):
        self.registry = registry
        self._delay_s = delay_s

    def select(self, shape, policy=None):
        if self._delay_s:
            time.sleep(self._delay_s)
        return RoutedDecision(device_id="dev0", config=None)

    def complete(self, device_id, n=1):
        pass


class TestSaturatedRun:
    def test_overdriven_harness_reports_saturation(self):
        config = LoadgenConfig(
            profile=RateProfile(base_qps=400.0),
            duration_s=0.25,
            workers=1,
            seed=7,
        )
        router = _SlowRouter(MetricsRegistry(), delay_s=0.005)
        report = run_load(router, config)
        assert report.paced
        assert report.saturated
        assert report.late > 0
        assert len(report.workers) == 1
        assert report.workers[0].achieved_qps < report.workers[0].offered_qps
        assert "WARNING" in report.render()

    def test_sustainable_rate_is_not_saturated(self):
        config = LoadgenConfig(
            profile=RateProfile(base_qps=200.0),
            duration_s=0.25,
            workers=2,
            seed=7,
        )
        report = run_load(_SlowRouter(MetricsRegistry(), 0.0), config)
        assert not report.saturated
        assert sum(w.offered for w in report.workers) == report.offered


class TestReportDocument:
    def test_meta_rides_alongside_the_report_keys(self):
        doc = report_document(
            _report(), config={"qps": 1000.0}, command="repro loadgen run"
        )
        assert doc["meta"]["schema"] == REPORT_SCHEMA
        assert doc["meta"]["config"] == {"qps": 1000.0}
        assert doc["meta"]["command"] == "repro loadgen run"
        # The report's own keys stay top-level for existing consumers.
        assert doc["offered"] == 1000
        assert doc["achieved_qps"] == 1000.0
        json.dumps(doc)  # fully serializable

    def test_git_sha_is_the_checkout_head(self):
        sha = git_revision()
        if sha is None:
            pytest.skip("not in a git checkout")
        assert re.fullmatch(r"[0-9a-f]{40}", sha)
        doc = report_document(_report())
        assert doc["meta"]["git_sha"] == sha
