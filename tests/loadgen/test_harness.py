"""run_load against a cheap stub-policy fleet, plus report assembly."""

import pytest

from repro.kernels.params import config_space
from repro.loadgen import (
    LoadgenConfig,
    QuantileSummary,
    RateProfile,
    merged_quantiles,
    run_load,
)
from repro.obs import MetricsRegistry
from repro.serving import SelectionService
from repro.serving.router import FleetRouter

CONFIGS = config_space(tile_sizes=(1, 2), work_groups=((8, 8),))
ANSWER = CONFIGS[0]


class _InstantPolicy:
    def select(self, shape):
        return ANSWER

    def select_batch(self, shapes):
        return tuple(ANSWER for _ in shapes)


def _stub_router(registry, replicas=2):
    router = FleetRouter(registry=registry)
    for i in range(replicas):
        router.add_device(
            f"dev{i}",
            SelectionService(
                _InstantPolicy(), registry=registry, name=f"dev{i}"
            ),
            library=(ANSWER,),
        )
    return router


class TestRunLoad:
    def test_completes_every_offered_request(self):
        registry = MetricsRegistry()
        router = _stub_router(registry)
        config = LoadgenConfig(
            profile=RateProfile(base_qps=3000.0),
            duration_s=0.4,
            workers=3,
        )
        report = run_load(router, config)
        assert report.offered > 0
        assert report.completed == report.offered
        assert report.achieved_qps > 0
        assert sum(report.dispatched.values()) == report.completed
        assert set(report.dispatched) <= {"dev0", "dev1"}
        assert report.request_latency.count == report.completed
        # Lookup latency merges both devices' histograms.
        assert report.lookup_latency is not None
        assert report.lookup_latency.count == report.completed

    def test_metrics_land_in_the_shared_registry(self):
        registry = MetricsRegistry()
        router = _stub_router(registry)
        config = LoadgenConfig(
            profile=RateProfile(base_qps=1500.0), duration_s=0.3, workers=2
        )
        report = run_load(router, config)
        assert registry.counter("loadgen.requests").value == report.completed
        assert (
            registry.histogram("loadgen.request_seconds").count
            == report.completed
        )

    def test_least_outstanding_policy_flows_through(self):
        registry = MetricsRegistry()
        router = _stub_router(registry)
        config = LoadgenConfig(
            profile=RateProfile(base_qps=1000.0),
            duration_s=0.3,
            workers=2,
            routing_policy="least-outstanding",
        )
        report = run_load(router, config)
        assert report.completed == report.offered
        assert registry.counter(
            "fleet.placements", {"policy": "least-outstanding"}
        ).value == pytest.approx(report.completed)

    def test_worker_errors_propagate(self):
        registry = MetricsRegistry()
        router = _stub_router(registry)
        config = LoadgenConfig(
            profile=RateProfile(base_qps=500.0),
            duration_s=0.2,
            routing_policy="no-such-policy",
        )
        with pytest.raises(ValueError, match="policy"):
            run_load(router, config)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="duration_s"):
            LoadgenConfig(duration_s=0.0)
        with pytest.raises(ValueError, match="workers"):
            LoadgenConfig(workers=0)

    def test_report_to_dict_round_trips_the_essentials(self):
        registry = MetricsRegistry()
        router = _stub_router(registry, replicas=1)
        config = LoadgenConfig(
            profile=RateProfile(base_qps=800.0), duration_s=0.25, workers=1
        )
        report = run_load(router, config)
        doc = report.to_dict()
        assert doc["completed"] == report.completed
        assert doc["request_latency"]["count"] == report.completed
        assert doc["dispatched"] == report.dispatched
        rendered = report.render()
        assert "qps" in rendered
        assert "p999" in rendered


class TestHooks:
    def test_on_request_sees_every_scheduled_index_once(self):
        registry = MetricsRegistry()
        router = _stub_router(registry)
        config = LoadgenConfig(
            profile=RateProfile(base_qps=2000.0),
            duration_s=0.4,
            workers=3,
            pace=False,
        )
        seen = {}
        lock = __import__("threading").Lock()

        def on_request(index, due, shape, decision):
            with lock:
                seen[index] = (due, shape, decision.device_id)

        report = run_load(router, config, on_request=on_request)
        assert len(seen) == report.completed == report.offered
        assert sorted(seen) == list(range(report.offered))
        # Due times are the scheduled arrivals: non-negative, bounded.
        assert all(0.0 <= due <= config.duration_s for due, _, _ in seen.values())
        assert {dev for _, _, dev in seen.values()} <= {"dev0", "dev1"}

    def test_unpaced_run_records_no_lateness(self):
        registry = MetricsRegistry()
        router = _stub_router(registry)
        config = LoadgenConfig(
            profile=RateProfile(base_qps=50_000.0),
            duration_s=0.2,
            workers=2,
            pace=False,
        )
        report = run_load(router, config)
        assert report.completed == report.offered > 0
        assert report.late == 0
        assert registry.counter("loadgen.late_arrivals").value == 0

    def test_hook_errors_abort_the_run(self):
        registry = MetricsRegistry()
        router = _stub_router(registry)
        config = LoadgenConfig(
            profile=RateProfile(base_qps=500.0),
            duration_s=0.2,
            workers=1,
            pace=False,
        )

        def exploding(index, due, shape, decision):
            raise RuntimeError("hook boom")

        with pytest.raises(RuntimeError, match="hook boom"):
            run_load(router, config, on_request=exploding)


class TestMergedQuantiles:
    def test_merges_across_label_sets(self):
        registry = MetricsRegistry()
        a = registry.histogram("x.seconds", {"service": "a"})
        b = registry.histogram("x.seconds", {"service": "b"})
        for _ in range(90):
            a.observe(1e-6)
        for _ in range(10):
            b.observe(1e-3)
        merged = merged_quantiles(registry, "x.seconds")
        assert isinstance(merged, QuantileSummary)
        assert merged.count == 100
        assert merged.p50_s < 1e-4 < merged.p999_s

    def test_none_when_no_observations(self):
        registry = MetricsRegistry()
        registry.histogram("x.seconds")
        assert merged_quantiles(registry, "x.seconds") is None

    def test_mismatched_bounds_raise(self):
        registry = MetricsRegistry()
        registry.histogram("x.seconds", {"i": "0"}, bounds=(1.0,)).observe(0.5)
        registry.histogram("x.seconds", {"i": "1"}, bounds=(2.0,)).observe(0.5)
        with pytest.raises(ValueError, match="bounds"):
            merged_quantiles(registry, "x.seconds")
