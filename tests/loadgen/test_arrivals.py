"""Arrival process: determinism, rate fidelity, diurnal shaping."""

import math

import pytest

from repro.loadgen import RateProfile, poisson_arrivals


class TestRateProfile:
    def test_flat_profile_is_constant(self):
        profile = RateProfile(base_qps=500.0)
        assert profile.qps(0.0) == pytest.approx(500.0)
        assert profile.qps(123.4) == pytest.approx(500.0)
        assert profile.peak_qps == pytest.approx(500.0)

    def test_diurnal_trough_at_zero_peak_at_half_period(self):
        profile = RateProfile(base_qps=100.0, amplitude=0.5, period_s=60.0)
        assert profile.qps(0.0) == pytest.approx(50.0)
        assert profile.qps(30.0) == pytest.approx(150.0)
        assert profile.qps(60.0) == pytest.approx(50.0)
        assert profile.peak_qps == pytest.approx(150.0)

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(base_qps=0.0), "base_qps"),
            (dict(base_qps=-5.0), "base_qps"),
            (dict(base_qps=1.0, amplitude=1.0), "amplitude"),
            (dict(base_qps=1.0, amplitude=-0.1), "amplitude"),
            (dict(base_qps=1.0, period_s=0.0), "period_s"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            RateProfile(**kwargs)


class TestPoissonArrivals:
    def test_deterministic_given_seed(self):
        profile = RateProfile(base_qps=2000.0, amplitude=0.3)
        a = poisson_arrivals(profile, 2.0, seed=7)
        b = poisson_arrivals(profile, 2.0, seed=7)
        assert a == b
        assert poisson_arrivals(profile, 2.0, seed=8) != a

    def test_offsets_ascending_and_in_range(self):
        arrivals = poisson_arrivals(RateProfile(base_qps=1000.0), 3.0, seed=1)
        assert all(0.0 <= t < 3.0 for t in arrivals)
        assert arrivals == sorted(arrivals)

    def test_count_tracks_the_rate(self):
        # lambda * T = 20_000 expected; Poisson sd ~141, allow 5 sigma.
        arrivals = poisson_arrivals(RateProfile(base_qps=4000.0), 5.0, seed=3)
        assert abs(len(arrivals) - 20_000) < 5 * math.sqrt(20_000)

    def test_thinning_shapes_the_diurnal_ramp(self):
        # Trough-at-zero phase: running over the rising half-period, the
        # back quarter must be markedly busier than the front quarter.
        profile = RateProfile(base_qps=3000.0, amplitude=0.8, period_s=4.0)
        arrivals = poisson_arrivals(profile, 2.0, seed=5)
        first = sum(1 for t in arrivals if t < 1.0)
        second = len(arrivals) - first
        assert second > 1.5 * first

    def test_invalid_duration_raises(self):
        with pytest.raises(ValueError, match="duration_s"):
            poisson_arrivals(RateProfile(base_qps=10.0), 0.0)
