"""Load harness tests."""
