"""Shape streams: pool extraction, Zipf skew, determinism."""

from collections import Counter

import pytest

from repro.loadgen import DEFAULT_NETWORKS, ShapeStream, network_shape_pool


class TestNetworkShapePool:
    def test_default_pool_is_deduplicated_and_nonempty(self):
        pool = network_shape_pool()
        assert len(pool) > 0
        assert len({s.as_tuple() for s in pool}) == len(pool)

    def test_single_network_subset_of_default(self):
        vgg = network_shape_pool(("vgg16",))
        default_keys = {s.as_tuple() for s in network_shape_pool()}
        assert {s.as_tuple() for s in vgg} <= default_keys
        assert len(vgg) < len(network_shape_pool())

    def test_order_is_stable(self):
        assert network_shape_pool() == network_shape_pool(DEFAULT_NETWORKS)

    def test_empty_pool_raises(self):
        with pytest.raises(ValueError, match="no shapes"):
            network_shape_pool(())


class TestShapeStream:
    def test_deterministic_given_seed(self):
        pool = network_shape_pool(("mobilenet_v2",))
        a = ShapeStream(pool, seed=4).take(200)
        b = ShapeStream(pool, seed=4).take(200)
        assert a == b
        assert ShapeStream(pool, seed=5).take(200) != a

    def test_zipf_skew_concentrates_on_low_ranks(self):
        pool = network_shape_pool(("resnet50",))
        draws = ShapeStream(pool, skew=1.2, seed=0).take(4000)
        counts = Counter(s.as_tuple() for s in draws)
        hottest = counts[pool[0].as_tuple()]
        # Rank 0 must dominate any deep-tail rank by a wide margin.
        tail = counts.get(pool[-1].as_tuple(), 0)
        assert hottest > 10 * max(tail, 1)
        assert hottest > 4000 / len(pool)

    def test_zero_skew_is_roughly_uniform(self):
        pool = network_shape_pool(("vgg16",))
        draws = ShapeStream(pool, skew=0.0, seed=2).take(8000)
        counts = Counter(s.as_tuple() for s in draws)
        expected = 8000 / len(pool)
        assert all(0.4 * expected < counts[s.as_tuple()] < 2.5 * expected
                   for s in pool)

    def test_draws_stay_inside_the_pool(self):
        pool = network_shape_pool(("mobilenet_v2",))
        keys = {s.as_tuple() for s in pool}
        assert all(
            s.as_tuple() in keys for s in ShapeStream(pool, seed=9).take(500)
        )

    def test_validation(self):
        pool = network_shape_pool(("vgg16",))
        with pytest.raises(ValueError, match="non-empty"):
            ShapeStream(())
        with pytest.raises(ValueError, match="skew"):
            ShapeStream(pool, skew=-0.5)
        with pytest.raises(ValueError, match="n"):
            ShapeStream(pool).take(-1)
