"""The `repro loadgen run` command."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def base_args():
    # Small synthetic fleet, sub-second run: cheap enough for tier-1.
    return [
        "loadgen",
        "run",
        "--qps",
        "400",
        "--duration",
        "0.3",
        "--workers",
        "2",
        "--replicas",
        "2",
        "--budget",
        "2",
    ]


class TestLoadgenRun:
    def test_reports_throughput_and_tails(self, base_args, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        obs_path = tmp_path / "obs.json"
        code = main(
            base_args
            + [
                "--compiled",
                "--report-json",
                str(report_path),
                "--obs-export",
                str(obs_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "compiled policy" in out
        assert "qps" in out
        assert "p999" in out

        doc = json.loads(report_path.read_text())
        assert doc["completed"] == doc["offered"] > 0
        assert doc["request_latency"]["p99_s"] > 0
        assert set(doc["dispatched"]) == {"dev0", "dev1"}
        # Provenance meta: schema tag, producing git SHA, full config.
        meta = doc["meta"]
        assert meta["schema"].startswith("repro.loadgen-report/")
        assert meta["git_sha"] is None or len(meta["git_sha"]) == 40
        assert meta["config"]["qps"] == 400.0
        assert meta["config"]["compiled"] is True
        assert meta["command"] == "repro loadgen run"

        obs = json.loads(obs_path.read_text())
        histograms = {m["name"] for m in obs["metrics"]["histograms"]}
        counters = {m["name"] for m in obs["metrics"]["counters"]}
        assert "loadgen.request_seconds" in histograms
        assert "serving.lookups" in counters

    def test_min_qps_floor_fails_the_run(self, base_args, capsys):
        code = main(base_args + ["--min-qps", "1000000000"])
        captured = capsys.readouterr()
        assert code == 1
        assert "below the --min-qps floor" in captured.err
