"""End-to-end pipeline on the full dataset."""

import numpy as np
import pytest

from repro.core.deploy import tune
from repro.core.selection.evaluate import evaluate_selector
from repro.experiments import run_all
from repro.sycl.device import Device
from repro.sycl.queue import Queue


class TestTuneEndToEnd:
    def test_full_pipeline_beats_static_choice(self, full_dataset):
        """A tuned 8-config library with a decision-tree selector must
        beat shipping the single best-on-average kernel."""
        train, test = full_dataset.split(test_size=0.2, random_state=0)
        deployed = tune(train, n_configs=8, random_state=0)
        evaluation = evaluate_selector(deployed.selector, test)

        # Static baseline: ship the single config that is best on the
        # training data, score it on the held-out shapes.
        train_geomean = np.exp(np.mean(np.log(train.normalized()), axis=0))
        static_config = int(np.argmax(train_geomean))
        static_score = np.exp(
            np.mean(np.log(test.normalized()[:, static_config]))
        )
        assert evaluation.score > static_score + 0.02
        assert evaluation.score > 0.80

    def test_deployed_matmul_correct_and_profiled(self, full_dataset, rng):
        train, _ = full_dataset.split(test_size=0.2, random_state=0)
        deployed = tune(train, n_configs=6, random_state=0)
        a = rng.standard_normal((96, 64)).astype(np.float32)
        b = rng.standard_normal((64, 40)).astype(np.float32)
        c, event, config = deployed.matmul(Queue(Device.r9_nano()), a, b)
        np.testing.assert_allclose(c, a @ b, rtol=1e-4, atol=1e-5)
        assert event.profiling_duration_ns > 0

    def test_library_much_smaller_than_full_space(self, full_dataset):
        from repro.kernels.registry import KernelLibrary
        from repro.kernels.params import config_space

        train, _ = full_dataset.split(test_size=0.2, random_state=0)
        deployed = tune(train, n_configs=8)
        full_lib = KernelLibrary(config_space())
        assert deployed.library.binary_bytes < full_lib.binary_bytes / 4


class TestRunAll:
    def test_report_renders(self, full_dataset):
        results = run_all(full_dataset)
        text = results.render()
        for marker in ("Fig 1", "Fig 2", "Fig 3", "Fig 4", "Table I"):
            assert marker in text

    def test_exported_selector_agrees_across_split_seeds(self, full_dataset):
        # Export must agree with the live selector on every test shape
        # regardless of which split trained it.
        for seed in (0, 1):
            train, test = full_dataset.split(test_size=0.2, random_state=seed)
            deployed = tune(train, n_configs=6, random_state=0)
            src = deployed.export_python()
            namespace = {}
            exec(src, namespace)  # noqa: S102
            select = namespace["select_kernel"]
            for shape in test.shapes[:20]:
                assert select(*shape.features()) == deployed.select(
                    shape
                ).short_name()
