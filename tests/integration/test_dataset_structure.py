"""Calibration targets: the full dataset must reproduce the paper's
structure (DESIGN.md section 5).

These tests run against the real 640-config dataset and assert the
qualitative properties every downstream experiment depends on.  The
tolerances are wide: they fail when the performance model drifts away
from the paper's regime, not on noise.
"""

import numpy as np
import pytest

from repro.utils.maths import geometric_mean


@pytest.fixture(scope="module")
def normalized(full_dataset):
    return full_dataset.normalized()


class TestDatasetShape:
    def test_config_count_is_640(self, full_dataset):
        assert full_dataset.n_configs == 640

    def test_shape_count_near_paper(self, full_dataset):
        # Paper: 170 shape combinations.
        assert 130 <= full_dataset.n_shapes <= 220


class TestFig2Structure:
    """One dominant winner, a long tail (paper: 32 wins / 58 winners)."""

    def test_long_tail_of_winners(self, full_dataset):
        wins = full_dataset.win_counts()
        assert np.count_nonzero(wins) >= 35

    def test_dominant_winner(self, full_dataset):
        wins = np.sort(full_dataset.win_counts())[::-1]
        assert wins[0] >= 10
        assert wins[0] >= 1.3 * wins[1]


class TestFig1Structure:
    """Bad-everywhere configs and niche specialists."""

    def test_some_configs_bad_everywhere(self, normalized):
        best_anywhere = normalized.max(axis=0)
        assert np.sum(best_anywhere < 0.5) >= 20

    def test_niche_specialists_exist(self, full_dataset, normalized):
        # "Some configurations that perform poorly on the majority of
        # cases can be seen to perform well on a small number of specific
        # matrix sizes": winners with weak (< 0.6) mean performance.
        mean = normalized.mean(axis=0)
        winners = set(full_dataset.best_config_indices().tolist())
        niche = [c for c in winners if mean[c] < 0.6]
        assert len(niche) >= 5

    def test_no_single_config_is_good_everywhere(self, normalized):
        # The motivation for selection: even the best single config
        # leaves large losses on some shapes.
        best_single = np.exp(np.mean(np.log(normalized), axis=0)).max()
        assert best_single < 0.92

    def test_wide_per_shape_spread(self, normalized):
        # Choosing the worst config must be catastrophic on most shapes.
        worst = normalized.min(axis=1)
        assert np.median(worst) < 0.10


class TestFig3Structure:
    """PCA variance concentration (paper: 4 / 8 / 15 components)."""

    def test_components_for_thresholds(self, full_dataset):
        from repro.core.pca_analysis import analyze_dataset

        analysis = analyze_dataset(full_dataset)
        counts = analysis.components_for_threshold
        assert 2 <= counts[0.80] <= 7
        assert counts[0.80] <= counts[0.90] <= 12
        assert counts[0.90] <= counts[0.95] <= 20


class TestMagnitudes:
    def test_peak_gflops_regime(self, full_dataset):
        # Best configs on big GEMMs should reach GEMM-realistic rates on
        # an 8.2 TFLOP/s part: above 1 TFLOP/s, below peak.
        best = full_dataset.best_gflops().max()
        assert 1000.0 < best < 8192.0

    def test_m1_shapes_are_slow(self, full_dataset):
        # FC layers at batch 1 are memory/latency bound.
        for i, shape in enumerate(full_dataset.shapes):
            if shape.m == 1 and shape.k > 1000:
                assert full_dataset.best_gflops()[i] < 500.0

    def test_determinism_against_regeneration(self, full_dataset):
        from repro.core.dataset import generate_dataset

        again = generate_dataset()
        np.testing.assert_array_equal(full_dataset.gflops, again.gflops)
