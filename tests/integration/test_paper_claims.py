"""The paper's headline experimental claims, on the full dataset.

Each test corresponds to a sentence in the paper's evaluation; tolerances
accommodate the simulated substrate (we match shape, not absolute
numbers — see EXPERIMENTS.md).
"""

import numpy as np
import pytest

from repro.core.dataset import PerformanceDataset
from repro.core.pruning import DecisionTreePruner
from repro.core.pruning.evaluate import achievable_performance
from repro.core.selection.classifiers import make_selector
from repro.experiments import run_fig4, run_table1
from repro.sycl.device import Device
from repro.testing import FaultPlan, faulty_runner


@pytest.fixture(scope="module")
def fig4(full_dataset):
    # Average over three splits: 34-shape test sets make single-split
    # method rankings noisy (the paper reports one split; EXPERIMENTS.md
    # shows both).
    return run_fig4(
        full_dataset, budgets=(4, 5, 6, 8, 10, 12, 15), split_seeds=(0, 1, 2)
    )


@pytest.fixture(scope="module")
def table1(full_dataset):
    return run_table1(full_dataset)


class TestFig4Claims:
    def test_clustering_beats_naive_when_very_limited(self, fig4):
        """'When the number of configurations is very limited, the
        clustering methods all perform significantly better than the
        naive method.'"""
        naive = fig4.scores["top-n"][4]
        clustering_best = max(
            fig4.scores[m][4] for m in fig4.scores if m != "top-n"
        )
        assert clustering_best > naive + 0.01

    def test_best_methods_reach_mid_nineties_at_6(self, fig4):
        """'With a limit of 6 kernels, the decision tree and PCA+k-means
        could both achieve close to 95%.'"""
        assert fig4.scores["decision tree"][6] > 0.90
        assert fig4.scores["pca+k-means"][6] > 0.90

    def test_all_techniques_improve_with_budget(self, fig4):
        """'As more configurations were allowed all techniques improved.'"""
        for name, scores in fig4.scores.items():
            assert scores[15] >= scores[4] - 0.02, name

    def test_everything_converges_around_95_at_15(self, fig4):
        for scores in fig4.scores.values():
            assert scores[15] > 0.92

    def test_decision_tree_competitive_at_6_plus(self, fig4):
        """'The decision tree consistently provided the best results when
        6 or more kernel configurations were allowed.'  On the simulated
        dataset we require it to be within 2.5 points of the best
        technique at every budget >= 6 (single-split rankings are noisy;
        EXPERIMENTS.md reports the multi-seed comparison)."""
        for budget in (6, 8, 10, 12, 15):
            best = max(scores[budget] for scores in fig4.scores.values())
            assert fig4.scores["decision tree"][budget] >= best - 0.025

    def test_best_case_above_95(self, fig4):
        _, _, score = fig4.best_score()
        assert score > 0.95


class TestTable1Claims:
    def test_ceilings_in_paper_band(self, table1):
        """Caption: ceilings 92.99 / 94.98 / 95.37 / 96.61 %."""
        for budget in (5, 6, 8, 15):
            assert 0.90 <= table1.ceiling(budget) <= 0.99

    def test_ceilings_nondecreasing(self, table1):
        ceilings = [table1.ceiling(b) for b in (5, 6, 8, 15)]
        assert ceilings == sorted(ceilings)

    def test_no_classifier_reaches_its_ceiling(self, table1):
        """'None of the models achieve over 89%' while ceilings are
        93-97%: a persistent generalisation gap."""
        for budget in (5, 6, 8, 15):
            ceiling = table1.ceiling(budget)
            for ev in table1.evaluations[budget]:
                assert ev.score < ceiling

    def test_gap_is_substantial_somewhere(self, table1):
        gaps = [
            table1.ceiling(b) - max(ev.score for ev in table1.evaluations[b])
            for b in (5, 6, 8, 15)
        ]
        assert max(gaps) > 0.02

    def test_decision_tree_competitive(self, table1):
        """'The decision tree outperforms or comes close to the
        performance of all other classifiers.'"""
        for budget in (5, 6, 8):
            best = max(ev.score for ev in table1.evaluations[budget])
            assert table1.score("DecisionTree", budget) >= best - 0.05

    def test_radial_svm_collapses(self, table1):
        """The RadialSVM row sits far below the tree-based rows and is
        near-constant across budgets (the paper's flat ~55%)."""
        scores = [table1.score("RadialSVM", b) for b in (5, 6, 8, 15)]
        trees = [table1.score("DecisionTree", b) for b in (5, 6, 8, 15)]
        assert np.mean(scores) < np.mean(trees) - 0.05
        assert max(scores) - min(scores) < 0.15

    def test_nearest_neighbors_below_tree_methods(self, table1):
        for budget in (5, 6, 8, 15):
            knn = max(
                table1.score("1NearestNeighbor", budget),
                table1.score("3NearestNeighbors", budget),
            )
            tree_like = max(
                table1.score("DecisionTree", budget),
                table1.score("RandomForest", budget),
            )
            assert knn <= tree_like + 0.02


@pytest.fixture(scope="module")
def faulted_run(full_dataset):
    """The full 640-config sweep with 2% of cells fault-injected."""
    plan = FaultPlan(seed=7, rate=0.02)
    runner = faulty_runner(Device.r9_nano(), plan)
    return runner.run(full_dataset.shapes)


@pytest.fixture(scope="module")
def faulted_dataset(faulted_run):
    return PerformanceDataset.from_benchmark(faulted_run)


class TestFaultTolerantPipeline:
    """The paper's pipeline survives a realistically flaky benchmark
    sweep: failed cells are recorded and masked, and the headline
    pruning quality moves by less than a point."""

    def test_sweep_completes_with_failure_log(self, faulted_run):
        n_cells = faulted_run.gflops.size
        assert faulted_run.n_failed_cells > 0
        assert len(faulted_run.failures.fatal_records()) == (
            faulted_run.n_failed_cells
        )
        fraction = faulted_run.n_failed_cells / n_cells
        # Hash-drawn faults at rate 0.02 land within a loose band.
        assert 0.005 < fraction < 0.05
        summary = faulted_run.failures.summary()
        assert "failures" in summary and "abandoned" in summary

    def test_failed_cells_are_nan_and_masked(self, faulted_dataset):
        assert faulted_dataset.n_failed_cells > 0
        normalized = faulted_dataset.normalized()
        assert np.all(np.isfinite(normalized))
        assert np.all(normalized[faulted_dataset.failed_mask] == 0.0)

    def test_pruning_geomean_within_a_point_of_fault_free(
        self, full_dataset, faulted_dataset
    ):
        """Decision-tree pruning at the paper's budget of 6: the
        achievable-performance geomean under 2% faults stays within
        0.01 of the fault-free sweep."""
        pruner = DecisionTreePruner()
        clean = achievable_performance(
            pruner.select(full_dataset, 6), full_dataset
        )
        faulted = achievable_performance(
            pruner.select(faulted_dataset, 6), faulted_dataset
        )
        assert abs(clean - faulted) < 0.01

    def test_selector_trains_and_serves_on_masked_data(self, faulted_dataset):
        train, test = faulted_dataset.split(test_size=0.3, random_state=0)
        pruned = DecisionTreePruner().select(train, 6)
        selector = make_selector("DecisionTree", pruned, random_state=0).fit(
            train
        )
        configs = selector.select_batch(test.shapes)
        assert len(configs) == len(test.shapes)
        assert all(c in pruned.configs for c in configs)
        # Served performance on the faulted table is still a meaningful
        # fraction of optimal.  Cells that were themselves fault-masked
        # in the test table are unmeasurable, not selection errors.
        normalized = test.normalized()
        index = {c: i for i, c in enumerate(test.configs)}
        cols = np.array([index[c] for c in configs])
        rows = np.arange(len(configs))
        measurable = ~test.failed_mask[rows, cols]
        served = normalized[rows, cols][measurable]
        assert measurable.sum() >= 0.9 * len(configs)
        assert float(np.exp(np.mean(np.log(served)))) > 0.7
