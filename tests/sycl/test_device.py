"""Device specs and presets."""

import pytest

from repro.sycl.device import Device, DeviceSpec, DeviceType


class TestPresets:
    def test_r9_nano_peak_matches_datasheet(self):
        # Fiji: 4096 lanes x 2 flops x 1.0 GHz = 8192 GFLOP/s.
        assert Device.r9_nano().spec.peak_gflops == pytest.approx(8192.0)

    def test_r9_nano_bandwidth(self):
        assert Device.r9_nano().spec.dram_bandwidth_gbps == pytest.approx(512.0)

    def test_all_presets_listed(self):
        assert set(Device.available_presets()) >= {
            "r9-nano",
            "embedded-accelerator",
            "desktop-gpu",
        }

    def test_embedded_is_much_smaller(self):
        assert Device.embedded().spec.peak_gflops < Device.r9_nano().spec.peak_gflops / 10

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError, match="unknown device preset"):
            Device.from_preset("gtx-9000")

    def test_device_type_queries(self):
        assert Device.r9_nano().is_gpu()
        assert not Device.embedded().is_gpu()
        assert Device.embedded().device_type is DeviceType.ACCELERATOR


class TestDeviceSpec:
    def test_wave_issue_cycles_gcn(self):
        # 64-wide wavefront over 16-wide SIMDs: 4 cycles.
        assert Device.r9_nano().spec.wave_issue_cycles == 4

    def test_max_threads_per_cu(self):
        spec = Device.r9_nano().spec
        assert spec.max_threads_per_cu == 4 * 10 * 64

    def test_with_overrides(self):
        spec = Device.r9_nano().spec.with_overrides(compute_units=32)
        assert spec.compute_units == 32
        assert Device.r9_nano().spec.compute_units == 64  # original intact

    def test_rejects_nonpositive_fields(self):
        with pytest.raises(ValueError):
            Device.r9_nano().spec.with_overrides(compute_units=0)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            Device.r9_nano().spec.with_overrides(sustained_compute_efficiency=1.5)

    def test_equality_and_hash(self):
        assert Device.r9_nano() == Device.r9_nano()
        assert hash(Device.r9_nano()) == hash(Device.r9_nano())
        assert Device.r9_nano() != Device.embedded()


class TestRegistration:
    def test_register_custom_preset(self):
        spec = Device.r9_nano().spec.with_overrides(name="custom")
        Device.register_preset("custom-test", spec)
        assert Device.from_preset("custom-test").name == "custom"
