"""Buffer / accessor data-management semantics."""

import numpy as np
import pytest

from repro.sycl.buffer import AccessMode, Buffer
from repro.sycl.exceptions import AccessorError


class TestBuffer:
    def test_from_array_copies(self):
        src = np.ones((2, 2), dtype=np.float32)
        buf = Buffer.from_array(src)
        src[0, 0] = 99.0
        assert buf.to_host()[0, 0] == 1.0

    def test_zero_initialised(self):
        assert np.all(Buffer((3, 3)).to_host() == 0.0)

    def test_shape_dtype_nbytes(self):
        buf = Buffer((4, 8), dtype=np.float32)
        assert buf.shape == (4, 8)
        assert buf.dtype == np.float32
        assert buf.nbytes == 4 * 8 * 4
        assert buf.size == 32

    def test_rejects_empty_shape(self):
        with pytest.raises(ValueError):
            Buffer((0, 4))

    def test_destroyed_buffer_raises(self):
        buf = Buffer((2, 2))
        buf.destroy()
        with pytest.raises(AccessorError, match="destroyed"):
            buf.to_host()
        with pytest.raises(AccessorError):
            buf.get_access(AccessMode.READ)


class TestAccessor:
    def test_read_mode_blocks_writes(self):
        buf = Buffer((2, 2))
        acc = buf.get_access(AccessMode.READ)
        with pytest.raises(AccessorError, match="writing requires"):
            acc.write(np.ones((2, 2)))

    def test_read_view_is_not_writeable(self):
        acc = Buffer((2, 2)).get_access(AccessMode.READ)
        view = acc.view()
        with pytest.raises(ValueError):
            view[0, 0] = 1.0

    def test_write_mode_blocks_reads(self):
        acc = Buffer((2, 2)).get_access(AccessMode.WRITE)
        with pytest.raises(AccessorError, match="reading requires"):
            acc.read()

    def test_read_write_round_trip(self):
        buf = Buffer((2, 3))
        with buf.get_access(AccessMode.READ_WRITE) as acc:
            acc.write(np.full((2, 3), 7.0))
        np.testing.assert_array_equal(buf.to_host(), np.full((2, 3), 7.0))

    def test_write_shape_mismatch(self):
        acc = Buffer((2, 2)).get_access(AccessMode.WRITE)
        with pytest.raises(AccessorError, match="shape mismatch"):
            acc.write(np.ones((3, 3)))

    def test_use_after_release(self):
        buf = Buffer((2, 2))
        acc = buf.get_access(AccessMode.READ)
        acc.release()
        with pytest.raises(AccessorError, match="after release"):
            acc.read()

    def test_write_generation_counts_writable_releases(self):
        buf = Buffer((2, 2))
        assert buf.write_generation == 0
        with buf.get_access(AccessMode.READ):
            pass
        assert buf.write_generation == 0
        with buf.get_access(AccessMode.WRITE):
            pass
        assert buf.write_generation == 1

    def test_mode_properties(self):
        assert AccessMode.READ.can_read and not AccessMode.READ.can_write
        assert AccessMode.WRITE.can_write and not AccessMode.WRITE.can_read
        assert AccessMode.READ_WRITE.can_read and AccessMode.READ_WRITE.can_write

    def test_invalid_mode_type(self):
        from repro.sycl.buffer import Accessor

        with pytest.raises(TypeError):
            Accessor(Buffer((1, 1)), "read")
