"""Range / Id / NDRange index-space arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.sycl.exceptions import InvalidNDRangeError
from repro.sycl.ndrange import Id, NDRange, Range


class TestRange:
    def test_construction_from_ints(self):
        assert Range(4, 5).dims == (4, 5)

    def test_construction_from_tuple(self):
        assert Range((2, 3, 4)).dims == (2, 3, 4)

    def test_size(self):
        assert Range(3, 4, 5).size() == 60

    def test_iteration_and_index(self):
        r = Range(7, 8)
        assert list(r) == [7, 8] and r[1] == 8 and len(r) == 2

    def test_rejects_zero_dim(self):
        with pytest.raises(InvalidNDRangeError):
            Range(0, 4)

    def test_rejects_too_many_dims(self):
        with pytest.raises(InvalidNDRangeError):
            Range((1, 2, 3, 4))


class TestId:
    def test_zero_allowed(self):
        assert Id(0, 0).coords == (0, 0)

    def test_rejects_negative(self):
        with pytest.raises(InvalidNDRangeError):
            Id(-1, 0)


class TestNDRange:
    def test_dim_mismatch_rejected(self):
        with pytest.raises(InvalidNDRangeError):
            NDRange((8, 8), (4,))

    def test_exact_division(self):
        ndr = NDRange((64, 64), (8, 8))
        assert ndr.num_groups == (8, 8)
        assert ndr.rounded_global.dims == (64, 64)
        assert ndr.launched_work_items() == 64 * 64

    def test_ragged_rounds_up(self):
        ndr = NDRange((100, 3), (16, 2))
        assert ndr.num_groups == (7, 2)
        assert ndr.rounded_global.dims == (112, 4)

    def test_work_group_size(self):
        assert NDRange((10,), (4,)).work_group_size == 4

    def test_total_groups(self):
        assert NDRange((100, 3), (16, 2)).total_groups == 14

    def test_device_limit_validation(self):
        ndr = NDRange((512, 512), (32, 32))
        with pytest.raises(InvalidNDRangeError, match="exceeds device limit"):
            ndr.validate_for_device(256)
        ndr.validate_for_device(1024)  # no raise

    @given(
        st.integers(1, 10_000),
        st.integers(1, 10_000),
        st.integers(1, 64),
        st.integers(1, 64),
    )
    def test_rounded_global_covers_input(self, gm, gn, lm, ln):
        ndr = NDRange((gm, gn), (lm, ln))
        rm, rn = ndr.rounded_global.dims
        assert rm >= gm and rn >= gn
        assert rm - gm < lm and rn - gn < ln
        assert rm % lm == 0 and rn % ln == 0
