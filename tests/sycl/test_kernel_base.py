"""Kernel base class defaults."""

import pytest

from repro.sycl.device import Device
from repro.sycl.kernel import Kernel, ResourceUsage
from repro.sycl.ndrange import NDRange


class MinimalKernel(Kernel):
    name = "minimal"

    def run(self, device, ndrange, accessors):
        pass


class TestDefaultEstimate:
    def test_includes_launch_overhead(self):
        kernel = MinimalKernel()
        dev = Device.r9_nano()
        t = kernel.estimate_seconds(dev, NDRange((1,), (1,)), ())
        assert t >= dev.spec.kernel_launch_overhead_us * 1e-6

    def test_scales_with_work(self):
        kernel = MinimalKernel()
        dev = Device.r9_nano()
        small = kernel.estimate_seconds(dev, NDRange((1024,), (64,)), ())
        big = kernel.estimate_seconds(dev, NDRange((1024 * 4096,), (64,)), ())
        assert big > small

    def test_base_run_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Kernel().run(Device.r9_nano(), NDRange((1,), (1,)), ())

    def test_repr(self):
        assert "minimal" in repr(MinimalKernel())


class TestResourceUsage:
    def test_defaults(self):
        usage = ResourceUsage()
        assert usage.vgprs_per_lane > 0
        assert usage.lds_bytes_per_group == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ResourceUsage(vgprs_per_lane=0)
        with pytest.raises(ValueError):
            ResourceUsage(lds_bytes_per_group=-1)
