"""Queue submission, the simulated clock, and profiling events."""

import numpy as np
import pytest

from repro.sycl.buffer import AccessMode, Buffer
from repro.sycl.device import Device
from repro.sycl.event import Event, EventStatus
from repro.sycl.exceptions import DeviceError
from repro.sycl.kernel import Kernel, ResourceUsage
from repro.sycl.ndrange import NDRange
from repro.sycl.queue import Queue


class FillKernel(Kernel):
    """Writes a constant into its single accessor."""

    name = "fill"

    def __init__(self, value: float, duration: float = 1e-6):
        self._value = value
        self._duration = duration

    def run(self, device, ndrange, accessors):
        accessors[0].view()[...] = self._value

    def estimate_seconds(self, device, ndrange, accessors):
        return self._duration


class GreedyKernel(Kernel):
    name = "greedy"

    def run(self, device, ndrange, accessors):
        pass

    def resource_usage(self, device):
        return ResourceUsage(vgprs_per_lane=10_000)


@pytest.fixture
def queue():
    return Queue(Device.r9_nano(), enable_profiling=True)


class TestQueue:
    def test_submit_executes_kernel(self, queue):
        buf = Buffer((4, 4))
        queue.submit(FillKernel(3.0), NDRange((4, 4), (2, 2)), args=(buf,))
        assert np.all(buf.to_host() == 3.0)

    def test_clock_advances_by_duration(self, queue):
        buf = Buffer((2, 2))
        queue.submit(FillKernel(1.0, duration=5e-6), NDRange((2, 2), (2, 2)), args=(buf,))
        assert queue.device_time_ns == pytest.approx(5000, abs=1)

    def test_in_order_events_do_not_overlap(self, queue):
        buf = Buffer((2, 2))
        e1 = queue.submit(FillKernel(1.0, 1e-6), NDRange((2, 2), (2, 2)), args=(buf,))
        e2 = queue.submit(FillKernel(2.0, 1e-6), NDRange((2, 2), (2, 2)), args=(buf,))
        assert e2.profiling_start_ns >= e1.profiling_end_ns

    def test_submission_log(self, queue):
        buf = Buffer((2, 2))
        queue.submit(FillKernel(1.0), NDRange((2, 2), (2, 2)), args=(buf,))
        log = queue.submission_log
        assert len(log) == 1 and log[0][0] == "fill"

    def test_work_group_limit_enforced(self, queue):
        buf = Buffer((64, 64))
        with pytest.raises(Exception, match="exceeds device limit"):
            queue.submit(FillKernel(0.0), NDRange((64, 64), (32, 32)), args=(buf,))

    def test_register_spill_rejected(self, queue):
        buf = Buffer((2, 2))
        with pytest.raises(DeviceError, match="spill"):
            queue.submit(GreedyKernel(), NDRange((2, 2), (2, 2)), args=(buf,))

    def test_accessor_args_accepted(self, queue):
        buf = Buffer((2, 2))
        acc = buf.get_access(AccessMode.READ_WRITE)
        queue.submit(FillKernel(4.0), NDRange((2, 2), (2, 2)), args=(acc,))
        assert np.all(buf.to_host() == 4.0)

    def test_bad_arg_type_rejected(self, queue):
        with pytest.raises(TypeError):
            queue.submit(
                FillKernel(0.0), NDRange((2, 2), (2, 2)), args=(np.ones((2, 2)),)
            )

    def test_dependencies_must_be_complete(self, queue):
        buf = Buffer((2, 2))
        ev = queue.submit(FillKernel(1.0), NDRange((2, 2), (2, 2)), args=(buf,))
        queue.submit(
            FillKernel(2.0), NDRange((2, 2), (2, 2)), args=(buf,), depends_on=[ev]
        )


class TestEvent:
    def test_profiling_duration(self, queue):
        buf = Buffer((2, 2))
        ev = queue.submit(
            FillKernel(1.0, duration=2e-6), NDRange((2, 2), (2, 2)), args=(buf,)
        )
        assert ev.profiling_duration_ns == pytest.approx(2000, abs=1)
        assert ev.profiling_duration_s == pytest.approx(2e-6, rel=1e-3)

    def test_status_complete_after_submit(self, queue):
        buf = Buffer((2, 2))
        ev = queue.submit(FillKernel(1.0), NDRange((2, 2), (2, 2)), args=(buf,))
        assert ev.status is EventStatus.COMPLETE
        assert ev.wait() is ev

    def test_profiling_disabled_raises(self):
        q = Queue(Device.r9_nano(), enable_profiling=False)
        buf = Buffer((2, 2))
        ev = q.submit(FillKernel(1.0), NDRange((2, 2), (2, 2)), args=(buf,))
        with pytest.raises(RuntimeError, match="profiling"):
            _ = ev.profiling_duration_ns

    def test_unrecorded_event_has_no_timestamps(self):
        ev = Event(name="orphan", profiling_enabled=True)
        with pytest.raises(RuntimeError, match="no timestamps"):
            _ = ev.profiling_start_ns

    def test_record_rejects_unordered_timestamps(self):
        ev = Event(name="bad", profiling_enabled=True)
        with pytest.raises(ValueError):
            ev._record(10, 5, 20)
