"""Deployment: tune(), DeployedSelector, source export."""

import numpy as np
import pytest

from repro.core.deploy import DeployedSelector, tune
from repro.core.pruning import TopNPruner
from repro.kernels.registry import KernelLibrary
from repro.sycl.device import Device
from repro.sycl.queue import Queue
from repro.workloads.gemm import GemmShape


@pytest.fixture(scope="module")
def deployed(small_dataset):
    train, _ = small_dataset.split(test_size=0.3, random_state=0)
    return tune(train, n_configs=5, random_state=0)


class TestTune:
    def test_returns_consistent_artefact(self, deployed):
        assert isinstance(deployed, DeployedSelector)
        assert deployed.library.configs == deployed.selector.pruned.configs

    def test_custom_pruner_and_classifier(self, small_dataset):
        train, _ = small_dataset.split(test_size=0.3, random_state=0)
        dep = tune(
            train, n_configs=4, pruner=TopNPruner(), classifier="1NearestNeighbor"
        )
        assert dep.selector.name == "1NearestNeighbor"
        assert len(dep.library) <= 4

    def test_selection_is_in_library(self, deployed, small_dataset):
        for shape in small_dataset.shapes[:10]:
            assert deployed.select(shape) in deployed.library.configs

    def test_kernel_for_shape(self, deployed):
        kernel = deployed.kernel_for(GemmShape(m=128, k=64, n=128))
        assert kernel.config in deployed.library.configs

    def test_select_batch_matches_select(self, deployed, small_dataset):
        shapes = tuple(small_dataset.shapes[:12])
        batch = deployed.select_batch(shapes)
        assert batch == tuple(deployed.select(s) for s in shapes)


class TestEndToEndMatmul:
    def test_matmul_through_selector(self, deployed, rng):
        a = rng.standard_normal((48, 32)).astype(np.float32)
        b = rng.standard_normal((32, 24)).astype(np.float32)
        queue = Queue(Device.r9_nano())
        c, event, config = deployed.matmul(queue, a, b)
        np.testing.assert_allclose(c, a @ b, rtol=1e-4, atol=1e-5)
        assert event.profiling_duration_ns > 0
        assert config in deployed.library.configs


class TestSourceExport:
    def test_python_export_agrees_with_selector(self, deployed, small_dataset):
        src = deployed.export_python()
        namespace = {}
        exec(src, namespace)  # noqa: S102 - generated in-test
        select = namespace["select_kernel"]
        for shape in small_dataset.shapes[:12]:
            expected = deployed.select(shape).short_name()
            got = select(*shape.features())
            assert got == expected

    def test_cpp_export_well_formed(self, deployed):
        src = deployed.export_cpp()
        assert src.startswith("const char* select_kernel(")
        assert src.count("{") == src.count("}")
        assert "return \"" in src

    def test_non_tree_selector_cannot_export(self, small_dataset):
        train, _ = small_dataset.split(test_size=0.3, random_state=0)
        dep = tune(train, n_configs=4, classifier="1NearestNeighbor")
        with pytest.raises(TypeError, match="decision-tree"):
            dep.export_python()

    def test_mismatched_library_rejected(self, deployed, small_dataset):
        other = KernelLibrary([small_dataset.configs[0]])
        with pytest.raises(ValueError, match="same configurations"):
            DeployedSelector(other, deployed.selector)
