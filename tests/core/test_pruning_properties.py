"""Property-based tests: pipeline invariants on arbitrary datasets.

Hypothesis generates random performance tables; every pruning technique
and the scoring machinery must satisfy their contracts regardless of the
data's structure.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dataset import PerformanceDataset
from repro.core.pruning import (
    DecisionTreePruner,
    KMeansPruner,
    TopNPruner,
    achievable_performance,
)
from repro.core.pruning.base import PrunedSet
from repro.core.selection.selector import selection_labels
from repro.kernels.params import config_space
from repro.workloads.gemm import GemmShape

CONFIGS = tuple(config_space(tile_sizes=(1, 2), work_groups=((8, 8), (16, 16))))


@st.composite
def datasets(draw, min_shapes=4, max_shapes=16):
    n_shapes = draw(st.integers(min_shapes, max_shapes))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    shapes = []
    seen = set()
    while len(shapes) < n_shapes:
        m, k, n = (int(v) for v in rng.integers(1, 2048, size=3))
        if (m, k, n) not in seen:
            seen.add((m, k, n))
            shapes.append(GemmShape(m=m, k=k, n=n))
    gflops = np.exp(rng.normal(3.0, 1.5, size=(n_shapes, len(CONFIGS))))
    return PerformanceDataset(
        shapes=tuple(shapes), configs=CONFIGS, gflops=gflops
    )


PRUNERS = [TopNPruner(), KMeansPruner(n_init=2, random_state=0), DecisionTreePruner()]


class TestPrunerInvariants:
    @settings(max_examples=20, deadline=None)
    @given(dataset=datasets(), budget=st.integers(1, 10))
    @pytest.mark.parametrize("pruner", PRUNERS, ids=lambda p: p.name)
    def test_budget_and_validity(self, pruner, dataset, budget):
        pruned = pruner.select(dataset, budget)
        assert 1 <= len(pruned) <= budget
        assert len(set(pruned.indices)) == len(pruned.indices)
        for idx, cfg in zip(pruned.indices, pruned.configs):
            assert dataset.configs[idx] == cfg

    @settings(max_examples=20, deadline=None)
    @given(dataset=datasets())
    def test_full_budget_achieves_optimum_for_topn(self, dataset):
        pruned = TopNPruner().select(dataset, dataset.n_configs)
        assert achievable_performance(pruned, dataset) == pytest.approx(1.0)

    @settings(max_examples=20, deadline=None)
    @given(dataset=datasets(), budget=st.integers(1, 8))
    def test_achievable_performance_bounds(self, dataset, budget):
        pruned = TopNPruner().select(dataset, budget)
        score = achievable_performance(pruned, dataset)
        assert 0.0 < score <= 1.0

    @settings(max_examples=20, deadline=None)
    @given(dataset=datasets(), seed=st.integers(0, 1000))
    def test_superset_never_worse(self, dataset, seed):
        """Adding configurations to a set can only help the achievable
        score (max over a superset dominates)."""
        rng = np.random.default_rng(seed)
        base = sorted(rng.choice(dataset.n_configs, size=3, replace=False))
        extra = sorted(set(base) | {int(rng.integers(dataset.n_configs))})

        def make(indices):
            return PrunedSet(
                indices=tuple(int(i) for i in indices),
                configs=tuple(dataset.configs[i] for i in indices),
                method="manual",
            )

        assert achievable_performance(make(extra), dataset) >= achievable_performance(
            make(base), dataset
        ) - 1e-12

    @settings(max_examples=20, deadline=None)
    @given(dataset=datasets(), budget=st.integers(2, 6))
    def test_labels_select_in_set_optimum(self, dataset, budget):
        pruned = TopNPruner().select(dataset, budget)
        labels = selection_labels(dataset, pruned)
        cols = np.asarray(pruned.indices)
        achieved = dataset.gflops[np.arange(dataset.n_shapes), cols[labels]]
        np.testing.assert_allclose(
            achieved, dataset.gflops[:, cols].max(axis=1)
        )

    @settings(max_examples=15, deadline=None)
    @given(dataset=datasets(min_shapes=6))
    def test_split_preserves_columns(self, dataset):
        train, test = dataset.split(test_size=0.3, random_state=1)
        assert train.configs == test.configs == dataset.configs
        assert train.n_shapes + test.n_shapes == dataset.n_shapes
