"""Baseline selectors: static-best and oracle."""

import numpy as np
import pytest

from repro.core.pruning import DecisionTreePruner
from repro.core.selection.baselines import OracleSelector, StaticBestSelector
from repro.core.selection.evaluate import evaluate_selector


@pytest.fixture(scope="module")
def split(small_dataset):
    return small_dataset.split(test_size=0.3, random_state=0)


@pytest.fixture(scope="module")
def pruned(split):
    return DecisionTreePruner().select(split[0], 5)


class TestStaticBest:
    def test_predicts_one_constant_position(self, split, pruned):
        train, test = split
        selector = StaticBestSelector(pruned).fit(train)
        positions = selector.predict_indices(test.features())
        assert len(set(positions.tolist())) == 1

    def test_constant_is_train_geomean_winner(self, split, pruned):
        train, _ = split
        selector = StaticBestSelector(pruned).fit(train)
        cols = np.asarray(pruned.indices)
        in_set = train.normalized()[:, cols]
        geomeans = np.exp(np.mean(np.log(in_set), axis=0))
        expected = int(np.argmax(geomeans))
        assert selector.predict_indices(train.features()[0:1])[0] == expected

    def test_unfitted_raises(self, pruned, split):
        with pytest.raises(RuntimeError):
            StaticBestSelector(pruned).select(split[1].shapes[0])

    def test_evaluates_below_oracle(self, split, pruned):
        train, test = split
        static = StaticBestSelector(pruned).fit(train)
        oracle = OracleSelector(pruned, test)
        static_eval = evaluate_selector(static, test)
        oracle_eval = evaluate_selector(oracle, test)
        assert static_eval.score <= oracle_eval.score + 1e-12


class TestOracle:
    def test_scores_exactly_the_ceiling(self, split, pruned):
        _, test = split
        oracle = OracleSelector(pruned, test)
        evaluation = evaluate_selector(oracle, test)
        assert evaluation.score == pytest.approx(evaluation.ceiling)
        assert evaluation.accuracy == 1.0

    def test_select_matches_measured_best(self, split, pruned):
        _, test = split
        oracle = OracleSelector(pruned, test)
        cols = np.asarray(pruned.indices)
        for i, shape in enumerate(test.shapes[:10]):
            chosen = oracle.select(shape)
            best = pruned.configs[int(np.argmax(test.gflops[i, cols]))]
            assert chosen == best

    def test_unknown_shape_raises(self, split, pruned):
        from repro.workloads.gemm import GemmShape

        oracle = OracleSelector(pruned, split[1])
        with pytest.raises(KeyError, match="no measurement"):
            oracle.select(GemmShape(m=13, k=13, n=13))

    def test_every_table1_classifier_between_static_and_oracle(
        self, split, pruned
    ):
        """The baselines bound the learned selectors (sanity of the whole
        Table I construction)."""
        from repro.core.selection import default_selectors

        train, test = split
        static_score = evaluate_selector(
            StaticBestSelector(pruned).fit(train), test
        ).score
        oracle_score = evaluate_selector(OracleSelector(pruned, test), test).score
        for selector in default_selectors(pruned, random_state=0):
            selector.fit(train)
            score = evaluate_selector(selector, test).score
            # Learned selectors can dip below static on tiny test sets,
            # but never above the oracle.
            assert score <= oracle_score + 1e-12
        assert static_score <= oracle_score + 1e-12
