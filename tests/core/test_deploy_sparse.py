"""Deployment with a sparsity-aware selector (5-feature export)."""

import numpy as np
import pytest

from repro.bench.runner import BenchmarkRunner, RunnerConfig
from repro.core.dataset import PerformanceDataset
from repro.core.deploy import tune
from repro.kernels.params import config_space
from repro.perfmodel.sparse import SparseGemmPerfModel
from repro.sycl.device import Device
from repro.workloads.gemm import GemmShape
from repro.workloads.sparse import sparsify


@pytest.fixture(scope="module")
def sparse_deployed():
    base = [
        GemmShape(m=3136, k=576, n=128),
        GemmShape(m=1, k=4096, n=1000),
        GemmShape(m=196, k=256, n=512, batch=16),
        GemmShape(m=12544, k=64, n=256),
        GemmShape(m=49, k=960, n=160),
        GemmShape(m=784, k=1152, n=256),
    ]
    shapes = sparsify(base, densities=(1.0, 0.5, 0.1))
    runner = BenchmarkRunner(
        Device.r9_nano(),
        configs=config_space(tile_sizes=(1, 2, 4), work_groups=((8, 8), (1, 64), (16, 16))),
        runner_config=RunnerConfig(timed_iterations=2),
        model=SparseGemmPerfModel(Device.r9_nano()),
    )
    dataset = PerformanceDataset.from_benchmark(runner.run(shapes))
    return tune(dataset, n_configs=4, random_state=0), dataset


class TestSparseDeploy:
    def test_export_includes_density_feature(self, sparse_deployed):
        deployed, _ = sparse_deployed
        src = deployed.export_python()
        assert "def select_kernel(m, k, n, batch, density):" in src

    def test_exported_function_agrees(self, sparse_deployed):
        deployed, dataset = sparse_deployed
        namespace = {}
        exec(deployed.export_python(), namespace)  # noqa: S102
        select = namespace["select_kernel"]
        for shape in dataset.shapes:
            assert select(*shape.features()) == deployed.select(shape).short_name()

    def test_cpp_export_has_five_params(self, sparse_deployed):
        deployed, _ = sparse_deployed
        src = deployed.export_cpp()
        assert "double density" in src

    def test_selection_can_depend_on_density(self, sparse_deployed):
        deployed, dataset = sparse_deployed
        # Over all base shapes and densities, at least one base shape
        # gets different configs at different densities (the sparse
        # model's optimum shift) -- unless the pruned set collapsed.
        choices = {}
        for shape in dataset.shapes:
            key = shape.dense_equivalent().as_tuple()
            choices.setdefault(key, set()).add(deployed.select(shape))
        assert any(len(v) > 1 for v in choices.values()) or len(
            deployed.library
        ) == 1
