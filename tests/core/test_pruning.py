"""Pruning techniques and their evaluation."""

import numpy as np
import pytest

from repro.core.pruning import (
    DecisionTreePruner,
    HDBSCANPruner,
    KMeansPruner,
    PCAKMeansPruner,
    PrunedSet,
    TopNPruner,
    achievable_performance,
    default_pruners,
    sweep_pruners,
)

ALL_PRUNERS = [
    TopNPruner(),
    KMeansPruner(random_state=0),
    PCAKMeansPruner(random_state=0),
    HDBSCANPruner(),
    DecisionTreePruner(),
]


class TestPrunedSet:
    def test_duplicate_indices_rejected(self, small_dataset):
        with pytest.raises(ValueError, match="duplicate"):
            PrunedSet(
                indices=(0, 0),
                configs=(small_dataset.configs[0], small_dataset.configs[0]),
                method="x",
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PrunedSet(indices=(), configs=(), method="x")

    def test_length_mismatch_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            PrunedSet(indices=(0,), configs=(), method="x")


@pytest.mark.parametrize("pruner", ALL_PRUNERS, ids=lambda p: p.name)
class TestAllPruners:
    def test_respects_budget(self, small_dataset, pruner):
        for budget in (2, 4, 8):
            pruned = pruner.select(small_dataset, budget)
            assert 1 <= len(pruned) <= budget

    def test_indices_and_configs_align(self, small_dataset, pruner):
        pruned = pruner.select(small_dataset, 5)
        for idx, cfg in zip(pruned.indices, pruned.configs):
            assert small_dataset.configs[idx] == cfg

    def test_deterministic(self, small_dataset, pruner):
        a = pruner.select(small_dataset, 6)
        b = pruner.select(small_dataset, 6)
        assert a.indices == b.indices

    def test_achievable_performance_bounds(self, small_dataset, pruner):
        pruned = pruner.select(small_dataset, 6)
        score = achievable_performance(pruned, small_dataset)
        assert 0.0 < score <= 1.0

    def test_bigger_budget_not_worse_on_training_data(self, small_dataset, pruner):
        small = pruner.select(small_dataset, 3)
        # Evaluating on the *training* data itself, a superset budget
        # cannot do worse for monotone methods; allow tiny slack for the
        # clustering methods whose selections are not nested.
        big = pruner.select(small_dataset, 10)
        s_small = achievable_performance(small, small_dataset)
        s_big = achievable_performance(big, small_dataset)
        assert s_big >= s_small - 0.05


class TestTopN:
    def test_first_pick_is_most_frequent_winner(self, small_dataset):
        pruned = TopNPruner().select(small_dataset, 3)
        wins = small_dataset.win_counts()
        assert wins[pruned.indices[0]] == wins.max()

    def test_full_budget_returns_all_winners_first(self, small_dataset):
        pruned = TopNPruner().select(small_dataset, small_dataset.n_configs)
        assert len(pruned) == small_dataset.n_configs


class TestDecisionTreePruner:
    def test_stores_last_tree(self, small_dataset):
        pruner = DecisionTreePruner()
        pruner.select(small_dataset, 6)
        assert pruner.last_tree_.n_leaves_ <= 6

    def test_budget_one_degenerates_to_global_best(self, small_dataset):
        pruned = DecisionTreePruner().select(small_dataset, 1)
        mean_best = int(np.argmax(small_dataset.normalized().mean(axis=0)))
        assert pruned.indices == (mean_best,)


class TestOracleDataset:
    """A hand-built dataset with two obvious shape families."""

    @pytest.fixture
    def oracle(self, small_dataset):
        # Family A (first half of shapes): config 0 is optimal;
        # family B: config 1.  Everything else is far worse.
        n_s, n_c = small_dataset.n_shapes, small_dataset.n_configs
        g = np.full((n_s, n_c), 10.0)
        half = n_s // 2
        g[:half, 0] = 100.0
        g[half:, 1] = 100.0
        from repro.core.dataset import PerformanceDataset

        return PerformanceDataset(
            shapes=small_dataset.shapes,
            configs=small_dataset.configs,
            gflops=g,
        )

    @pytest.mark.parametrize("pruner", ALL_PRUNERS, ids=lambda p: p.name)
    def test_two_configs_suffice(self, oracle, pruner):
        pruned = pruner.select(oracle, 2)
        assert set(pruned.indices) == {0, 1}
        assert achievable_performance(pruned, oracle) == pytest.approx(1.0)


class TestSweep:
    def test_sweep_structure(self, small_dataset):
        train, test = small_dataset.split(test_size=0.3, random_state=0)
        out = sweep_pruners(train, test, budgets=(3, 5))
        assert set(out) == {p.name for p in default_pruners()}
        for scores in out.values():
            assert set(scores) == {3, 5}
            assert all(0 < v <= 1 for v in scores.values())

    def test_sweep_rejects_empty_budgets(self, small_dataset):
        train, test = small_dataset.split(test_size=0.3, random_state=0)
        with pytest.raises(ValueError):
            sweep_pruners(train, test, budgets=())
