"""Dynamic trial-run selection."""

import pytest

from repro.bench.runner import BenchmarkRunner
from repro.core.pruning import TopNPruner
from repro.core.selection.dynamic import DynamicTrialSelector
from repro.sycl.device import Device
from repro.workloads.gemm import GemmShape


@pytest.fixture(scope="module")
def runner(small_dataset):
    return BenchmarkRunner(
        Device.r9_nano(), configs=small_dataset.configs
    )


@pytest.fixture(scope="module")
def pruned(small_dataset):
    return TopNPruner().select(small_dataset, 4)


class TestDynamicSelector:
    def test_picks_true_best_in_set(self, runner, pruned):
        selector = DynamicTrialSelector(runner, pruned)
        shape = GemmShape(m=512, k=256, n=512)
        chosen = selector.select(shape)
        times = {
            config: runner.bench_single(shape, config).mean
            for config in pruned.configs
        }
        assert times[chosen] == min(times.values())

    def test_first_use_sweeps_then_caches(self, runner, pruned):
        selector = DynamicTrialSelector(runner, pruned)
        shape = GemmShape(m=128, k=128, n=128)
        first = selector.select(shape)
        spent_after_first = selector.stats.trial_seconds
        second = selector.select(shape)
        assert first == second
        assert selector.stats.trial_sweeps == 1
        assert selector.stats.lookups == 2
        assert selector.stats.trial_seconds == spent_after_first

    def test_distinct_shapes_trigger_new_trials(self, runner, pruned):
        selector = DynamicTrialSelector(runner, pruned)
        selector.select(GemmShape(m=64, k=64, n=64))
        selector.select(GemmShape(m=64, k=64, n=65))
        assert selector.stats.trial_sweeps == 2

    def test_hit_rate(self, runner, pruned):
        selector = DynamicTrialSelector(runner, pruned)
        shape = GemmShape(m=96, k=96, n=96)
        for _ in range(4):
            selector.select(shape)
        assert selector.stats.hit_rate == pytest.approx(0.75)

    def test_trial_cost_positive_and_accumulates(self, runner, pruned):
        selector = DynamicTrialSelector(runner, pruned)
        selector.select(GemmShape(m=200, k=200, n=200))
        one = selector.stats.trial_seconds
        assert one > 0
        selector.select(GemmShape(m=201, k=200, n=200))
        assert selector.stats.trial_seconds > one

    def test_reset(self, runner, pruned):
        selector = DynamicTrialSelector(runner, pruned)
        selector.select(GemmShape(m=64, k=64, n=64))
        selector.reset()
        assert selector.stats.lookups == 0
        selector.select(GemmShape(m=64, k=64, n=64))
        assert selector.stats.trial_sweeps == 1

    def test_empty_stats(self, runner, pruned):
        assert DynamicTrialSelector(runner, pruned).stats.hit_rate == 0.0

    def test_invalid_trial_iterations(self, runner, pruned):
        with pytest.raises(ValueError):
            DynamicTrialSelector(runner, pruned, trial_iterations=0)

    def test_empty_pruned_set_rejected(self, runner):
        class _EmptySet:
            def __len__(self):
                return 0

        with pytest.raises(ValueError, match="empty"):
            DynamicTrialSelector(runner, _EmptySet())

    def test_trial_iterations_is_applied(self, runner, pruned):
        """The constructor argument must shrink the trial sweep cost."""
        shape = GemmShape(m=300, k=300, n=300)
        cheap = DynamicTrialSelector(runner, pruned, trial_iterations=1)
        full = DynamicTrialSelector(runner, pruned)
        cheap.select(shape)
        full.select(shape)
        # warmup + 1 run per config vs warmup + timed_iterations runs.
        assert cheap.stats.trial_seconds < full.stats.trial_seconds

    def test_trial_iterations_count_reaches_runner(self, runner, pruned):
        shape = GemmShape(m=310, k=310, n=310)
        summary = runner.bench_single(shape, pruned.configs[0], iterations=2)
        assert summary.iterations == 2

    def test_runner_config_is_public(self, runner):
        assert runner.runner_config is runner._runner_config
        assert runner.runner_config.warmup_iterations >= 0

    def test_select_batch_matches_select_and_caches(self, runner, pruned):
        selector = DynamicTrialSelector(runner, pruned)
        shapes = [
            GemmShape(m=128, k=64, n=128),
            GemmShape(m=256, k=64, n=128),
            GemmShape(m=128, k=64, n=128),  # repeat: must hit the cache
        ]
        configs = selector.select_batch(shapes)
        assert selector.stats.trial_sweeps == 2  # two unique shapes
        reference = DynamicTrialSelector(runner, pruned)
        assert configs == tuple(reference.select(s) for s in shapes)
