"""PerformanceDataset."""

import warnings

import numpy as np
import pytest

from repro.bench.runner import RunnerConfig
from repro.core.dataset import PerformanceDataset, generate_dataset


class TestViews:
    def test_normalized_rows_max_one(self, small_dataset):
        N = small_dataset.normalized()
        np.testing.assert_allclose(N.max(axis=1), 1.0)
        assert np.all(N > 0)

    def test_features_shape(self, small_dataset):
        f = small_dataset.features()
        assert f.shape == (small_dataset.n_shapes, 4)
        assert np.all(f >= 1)

    def test_best_config_indices_are_argmax(self, small_dataset):
        best = small_dataset.best_config_indices()
        np.testing.assert_array_equal(best, small_dataset.gflops.argmax(axis=1))

    def test_win_counts_sum_to_shapes(self, small_dataset):
        assert small_dataset.win_counts().sum() == small_dataset.n_shapes

    def test_best_gflops(self, small_dataset):
        np.testing.assert_allclose(
            small_dataset.best_gflops(), small_dataset.gflops.max(axis=1)
        )

    def test_config_index_lookup(self, small_dataset):
        cfg = small_dataset.configs[5]
        assert small_dataset.config_index(cfg) == 5
        from repro.kernels.params import KernelConfig

        foreign = KernelConfig(acc=8, rows=8, cols=8, wg_rows=8, wg_cols=16)
        with pytest.raises(KeyError):
            small_dataset.config_index(foreign)


class TestRestructuring:
    def test_subset(self, small_dataset):
        sub = small_dataset.subset([0, 2, 4])
        assert sub.n_shapes == 3
        assert sub.shapes[1] == small_dataset.shapes[2]
        np.testing.assert_array_equal(sub.gflops[1], small_dataset.gflops[2])

    def test_subset_empty_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            small_dataset.subset([])

    def test_split_partition(self, small_dataset):
        train, test = small_dataset.split(test_size=0.25, random_state=0)
        assert train.n_shapes + test.n_shapes == small_dataset.n_shapes
        assert set(train.shapes).isdisjoint(test.shapes)

    def test_split_reproducible(self, small_dataset):
        a_train, _ = small_dataset.split(random_state=3)
        b_train, _ = small_dataset.split(random_state=3)
        assert a_train.shapes == b_train.shapes

    def test_split_seed_matters(self, small_dataset):
        a_train, _ = small_dataset.split(random_state=0)
        b_train, _ = small_dataset.split(random_state=1)
        assert a_train.shapes != b_train.shapes

    def test_split_bad_fraction(self, small_dataset):
        with pytest.raises(ValueError):
            small_dataset.split(test_size=0.0)


class TestPersistence:
    def test_save_load_round_trip(self, small_dataset, tmp_path):
        path = small_dataset.save(tmp_path / "ds.npz")
        loaded = PerformanceDataset.load(path)
        assert loaded.shapes == small_dataset.shapes
        assert loaded.configs == small_dataset.configs
        np.testing.assert_allclose(loaded.gflops, small_dataset.gflops)


class TestGenerateDatasetCache:
    NETWORKS = ("mobilenet_v2",)
    FAST = RunnerConfig(warmup_iterations=1, timed_iterations=2, seed=5)

    def test_stale_cache_warned_and_regenerated(self, tmp_path):
        cache = tmp_path / "cache.npz"
        generate_dataset(
            networks=self.NETWORKS, runner_config=self.FAST, cache_path=cache
        )
        reconfigured = RunnerConfig(
            warmup_iterations=1, timed_iterations=2, seed=6
        )
        with pytest.warns(UserWarning, match="stale dataset cache"):
            regenerated = generate_dataset(
                networks=self.NETWORKS,
                runner_config=reconfigured,
                cache_path=cache,
            )
        # The cache now holds the new sweep: a matching reload is silent
        # and identical.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            reloaded = generate_dataset(
                networks=self.NETWORKS,
                runner_config=reconfigured,
                cache_path=cache,
            )
        np.testing.assert_array_equal(reloaded.gflops, regenerated.gflops)

    def test_matching_cache_reused_silently(self, tmp_path):
        cache = tmp_path / "cache.npz"
        first = generate_dataset(
            networks=self.NETWORKS, runner_config=self.FAST, cache_path=cache
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            second = generate_dataset(
                networks=self.NETWORKS,
                runner_config=self.FAST,
                cache_path=cache,
            )
        np.testing.assert_array_equal(first.gflops, second.gflops)


class TestValidation:
    def test_rejects_mismatched_matrix(self, small_dataset):
        with pytest.raises(ValueError):
            PerformanceDataset(
                shapes=small_dataset.shapes,
                configs=small_dataset.configs,
                gflops=np.ones((2, 2)),
            )

    def test_rejects_nonpositive_gflops(self, small_dataset):
        bad = small_dataset.gflops.copy()
        bad[0, 0] = 0.0
        with pytest.raises(ValueError):
            PerformanceDataset(
                shapes=small_dataset.shapes,
                configs=small_dataset.configs,
                gflops=bad,
            )


class TestAllNanRows:
    """An all-NaN row must fail loudly, never argmax to config 0."""

    def _with_dead_row(self, dataset, row=1):
        bad = dataset.gflops.copy()
        bad[row, :] = np.nan
        return bad

    def test_constructor_names_the_dead_shape(self, small_dataset):
        bad = self._with_dead_row(small_dataset)
        with pytest.raises(ValueError) as excinfo:
            PerformanceDataset(
                shapes=small_dataset.shapes,
                configs=small_dataset.configs,
                gflops=bad,
            )
        message = str(excinfo.value)
        assert "no successful measurement" in message
        assert str(small_dataset.shapes[1]) in message

    def test_partial_rows_are_still_allowed(self, small_dataset):
        holey = small_dataset.gflops.copy()
        holey[:, 1:] = np.nan  # one finite cell per row is enough
        dataset = PerformanceDataset(
            shapes=small_dataset.shapes,
            configs=small_dataset.configs,
            gflops=holey,
        )
        assert np.array_equal(
            dataset.best_config_indices(),
            np.zeros(dataset.n_shapes, dtype=np.int64),
        )

    def _bypass_validation(self, dataset, bad):
        # Simulate a decoding path that skipped __post_init__.
        broken = object.__new__(PerformanceDataset)
        object.__setattr__(broken, "shapes", dataset.shapes)
        object.__setattr__(broken, "configs", dataset.configs)
        object.__setattr__(broken, "gflops", bad)
        object.__setattr__(broken, "device_name", dataset.device_name)
        return broken

    def test_normalized_rechecks(self, small_dataset):
        broken = self._bypass_validation(
            small_dataset, self._with_dead_row(small_dataset)
        )
        with pytest.raises(ValueError, match="normalized"):
            broken.normalized()

    def test_label_extraction_rechecks(self, small_dataset):
        broken = self._bypass_validation(
            small_dataset, self._with_dead_row(small_dataset)
        )
        with pytest.raises(ValueError, match="label extraction"):
            broken.best_config_indices()
