"""Runtime selection: labels, selectors, Table I evaluation, latency."""

import numpy as np
import pytest

from repro.core.pruning import DecisionTreePruner, TopNPruner
from repro.core.selection import (
    default_selectors,
    evaluate_selector,
    make_selector,
    selection_labels,
    sweep_selectors,
)
from repro.core.selection.classifiers import TABLE1_CLASSIFIERS
from repro.core.selection.latency import measure_selection_latency
from repro.workloads.gemm import GemmShape


@pytest.fixture(scope="module")
def split(small_dataset):
    return small_dataset.split(test_size=0.3, random_state=0)


@pytest.fixture(scope="module")
def pruned(split):
    return DecisionTreePruner().select(split[0], 5)


class TestLabels:
    def test_labels_within_set(self, split, pruned):
        labels = selection_labels(split[0], pruned)
        assert labels.shape == (split[0].n_shapes,)
        assert labels.min() >= 0 and labels.max() < len(pruned)

    def test_labels_are_best_in_set(self, split, pruned):
        train = split[0]
        labels = selection_labels(train, pruned)
        cols = np.asarray(pruned.indices)
        for row, label in enumerate(labels):
            in_set = train.gflops[row, cols]
            assert in_set[label] == in_set.max()


class TestSelector:
    def test_all_six_classifiers_fit_and_predict(self, split, pruned):
        train, test = split
        for selector in default_selectors(pruned, random_state=0):
            selector.fit(train)
            config = selector.select(test.shapes[0])
            assert config in pruned.configs

    def test_unfitted_raises(self, pruned, split):
        selector = make_selector("DecisionTree", pruned)
        with pytest.raises(RuntimeError, match="not fitted"):
            selector.select(split[1].shapes[0])

    def test_unknown_classifier(self, pruned):
        with pytest.raises(ValueError, match="unknown classifier"):
            make_selector("GradientBoosting", pruned)


class TestSelectBatch:
    @pytest.mark.parametrize("name", TABLE1_CLASSIFIERS)
    def test_batch_agrees_with_per_shape_select(self, split, pruned, name):
        train, test = split
        selector = make_selector(name, pruned, random_state=0).fit(train)
        shapes = tuple(test.shapes)
        batch = selector.select_batch(shapes)
        assert batch == tuple(selector.select(s) for s in shapes)

    def test_empty_batch(self, split, pruned):
        selector = make_selector("DecisionTree", pruned).fit(split[0])
        assert selector.select_batch(()) == ()

    def test_unfitted_raises(self, pruned, split):
        selector = make_selector("DecisionTree", pruned)
        with pytest.raises(RuntimeError, match="not fitted"):
            selector.select_batch(tuple(split[1].shapes[:2]))

    def test_batch_accepts_repeats(self, split, pruned):
        train, test = split
        selector = make_selector("DecisionTree", pruned).fit(train)
        shape = test.shapes[0]
        batch = selector.select_batch([shape] * 5)
        assert batch == (selector.select(shape),) * 5

    def test_constant_labels_handled(self, split, small_dataset):
        # A pruned set where one config dominates every shape.
        train = split[0]
        best_everywhere = int(
            np.argmax(train.normalized().mean(axis=0))
        )
        from repro.core.pruning.base import PrunedSet

        pruned1 = PrunedSet(
            indices=(best_everywhere,),
            configs=(train.configs[best_everywhere],),
            method="single",
        )
        selector = make_selector("DecisionTree", pruned1).fit(train)
        assert selector.select(train.shapes[0]) == train.configs[best_everywhere]

    def test_table1_names(self):
        assert TABLE1_CLASSIFIERS == (
            "DecisionTree",
            "RandomForest",
            "1NearestNeighbor",
            "3NearestNeighbors",
            "LinearSVM",
            "RadialSVM",
        )


class TestEvaluation:
    def test_score_bounded_by_ceiling(self, split, pruned):
        train, test = split
        for name in ("DecisionTree", "1NearestNeighbor"):
            selector = make_selector(name, pruned, random_state=0).fit(train)
            ev = evaluate_selector(selector, test)
            assert 0.0 < ev.score <= ev.ceiling + 1e-12
            assert 0.0 <= ev.accuracy <= 1.0
            assert ev.n_configs == len(pruned)

    def test_perfect_selector_hits_ceiling(self, split, pruned):
        """An oracle predicting best-in-set labels scores the ceiling."""
        train, test = split

        class Oracle:
            def fit(self, X, y):
                return self

            def predict(self, X):
                return selection_labels(test, pruned)

        from repro.core.selection.selector import Selector

        selector = Selector("oracle", Oracle(), pruned)
        selector.fit(train)
        ev = evaluate_selector(selector, test)
        assert ev.score == pytest.approx(ev.ceiling)
        assert ev.accuracy == 1.0

    def test_sweep_structure(self, split):
        train, test = split
        out = sweep_selectors(
            train, test, TopNPruner(), budgets=(3, 5), random_state=0
        )
        assert set(out) == {3, 5}
        for evaluations in out.values():
            assert [e.classifier for e in evaluations] == list(TABLE1_CLASSIFIERS)


class TestLatency:
    def test_latency_measured(self, split, pruned):
        train, _ = split
        selector = make_selector("DecisionTree", pruned).fit(train)
        lat = measure_selection_latency(
            selector, GemmShape(m=128, k=128, n=128), repeats=20, warmup=2
        )
        assert lat.mean > 0
        assert lat.p95 >= lat.median
        assert lat.repeats == 20

    def test_invalid_repeats(self, split, pruned):
        train, _ = split
        selector = make_selector("DecisionTree", pruned).fit(train)
        with pytest.raises(ValueError):
            measure_selection_latency(
                selector, GemmShape(m=1, k=1, n=1), repeats=0
            )
