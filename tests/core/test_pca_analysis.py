"""PCA-based target-count analysis."""

import numpy as np
import pytest

from repro.core.pca_analysis import analyze_dataset


class TestAnalysis:
    def test_thresholds_resolved(self, small_dataset):
        analysis = analyze_dataset(small_dataset, thresholds=(0.5, 0.8, 0.95))
        counts = analysis.components_for_threshold
        assert set(counts) == {0.5, 0.8, 0.95}
        assert counts[0.5] <= counts[0.8] <= counts[0.95]

    def test_budget_range(self, small_dataset):
        analysis = analyze_dataset(small_dataset, thresholds=(0.8, 0.95))
        low, high = analysis.suggested_budget_range()
        assert low == analysis.components_for_threshold[0.8]
        assert high == analysis.components_for_threshold[0.95]

    def test_cumulative_ratio_monotone(self, small_dataset):
        analysis = analyze_dataset(small_dataset)
        cum = analysis.cumulative_ratio
        assert np.all(np.diff(cum) >= -1e-12)
        assert cum[-1] <= 1.0 + 1e-9

    def test_empty_thresholds_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            analyze_dataset(small_dataset, thresholds=())
