"""Objective: caching, budget, history."""

import pytest

from repro.bench.runner import BenchmarkRunner
from repro.kernels.params import KernelConfig, config_space
from repro.sycl.device import Device
from repro.tuning.objective import Objective, TuningBudgetExceeded
from repro.workloads.gemm import GemmShape

SHAPE = GemmShape(m=256, k=256, n=256)


@pytest.fixture(scope="module")
def runner():
    return BenchmarkRunner(Device.r9_nano())


def cfg(acc=4, rows=4, cols=4, wg=(16, 16)):
    return KernelConfig(acc=acc, rows=rows, cols=cols, wg_rows=wg[0], wg_cols=wg[1])


class TestObjective:
    def test_returns_benchmark_mean(self, runner):
        obj = Objective(runner, SHAPE)
        assert obj(cfg()) == pytest.approx(
            runner.bench_single(SHAPE, cfg()).mean
        )

    def test_caching_counts_distinct_only(self, runner):
        obj = Objective(runner, SHAPE)
        a = obj(cfg())
        b = obj(cfg())
        assert a == b
        assert obj.evaluations == 1

    def test_budget_enforced(self, runner):
        obj = Objective(runner, SHAPE, max_evaluations=2)
        obj(cfg(acc=1))
        obj(cfg(acc=2))
        obj(cfg(acc=1))  # cached: free
        with pytest.raises(TuningBudgetExceeded):
            obj(cfg(acc=4))
        assert obj.remaining == 0

    def test_best_and_curve(self, runner):
        obj = Objective(runner, SHAPE)
        values = [obj(c) for c in (cfg(acc=1), cfg(acc=2), cfg(acc=4))]
        best_cfg, best_val = obj.best()
        assert best_val == min(values)
        curve = obj.best_so_far_curve()
        assert len(curve) == 3
        assert curve == sorted(curve, reverse=True) or curve[-1] == min(values)
        assert curve[-1] == best_val

    def test_best_before_any_eval(self, runner):
        with pytest.raises(ValueError):
            Objective(runner, SHAPE).best()

    def test_invalid_budget(self, runner):
        with pytest.raises(ValueError):
            Objective(runner, SHAPE, max_evaluations=0)

    def test_history_preserves_order(self, runner):
        obj = Objective(runner, SHAPE)
        configs = [cfg(acc=1), cfg(acc=8), cfg(acc=2)]
        for c in configs:
            obj(c)
        assert [c for c, _ in obj.history] == configs
