"""Search strategies: correctness, budget respect, quality floors."""

import numpy as np
import pytest

from repro.bench.runner import BenchmarkRunner
from repro.sycl.device import Device
from repro.tuning import (
    BasinHoppingTuner,
    ConfigSpace,
    EvolutionaryTuner,
    HillClimbingTuner,
    Objective,
    RandomSearchTuner,
    SimulatedAnnealingTuner,
)
from repro.workloads.gemm import GemmShape

SHAPE = GemmShape(m=3136, k=576, n=128)

ALL_TUNERS = [
    RandomSearchTuner(random_state=0),
    HillClimbingTuner(random_state=0),
    SimulatedAnnealingTuner(random_state=0),
    BasinHoppingTuner(random_state=0),
    EvolutionaryTuner(random_state=0),
]


@pytest.fixture(scope="module")
def runner():
    return BenchmarkRunner(Device.r9_nano())


@pytest.fixture(scope="module")
def space():
    return ConfigSpace()


@pytest.fixture(scope="module")
def optimum(runner, space):
    obj = Objective(runner, SHAPE)
    for config in space.all_configs():
        obj(config)
    return obj.best()[1]


@pytest.mark.parametrize("tuner", ALL_TUNERS, ids=lambda t: t.name)
class TestAllTuners:
    def test_respects_budget(self, tuner, runner, space):
        obj = Objective(runner, SHAPE, max_evaluations=40)
        result = tuner.tune(obj, space)
        assert result.evaluations <= 40
        assert result.best_config in space

    def test_result_is_actually_best_evaluated(self, tuner, runner, space):
        obj = Objective(runner, SHAPE, max_evaluations=30)
        result = tuner.tune(obj, space)
        assert result.best_seconds == min(v for _, v in obj.history)
        assert result.curve[-1] == result.best_seconds

    def test_deterministic(self, tuner, runner, space):
        a = tuner.tune(Objective(runner, SHAPE, max_evaluations=30), space)
        b = tuner.tune(Objective(runner, SHAPE, max_evaluations=30), space)
        assert a.best_config == b.best_config
        assert a.evaluations == b.evaluations

    def test_quality_floor_at_100_evals(self, tuner, runner, space, optimum):
        """Every strategy gets within 25% of the global optimum using at
        most 100 of the 640 evaluations (the whole point of tuning)."""
        obj = Objective(runner, SHAPE, max_evaluations=100)
        result = tuner.tune(obj, space)
        assert result.best_seconds <= optimum * 1.25

    def test_works_on_restricted_space(self, tuner, runner, space):
        restricted = space.restricted_to(lambda c: c.work_group_size <= 128)
        obj = Objective(runner, SHAPE, max_evaluations=30)
        result = tuner.tune(obj, restricted)
        assert result.best_config.work_group_size <= 128


class TestStrategySpecifics:
    def test_random_search_seed_changes_path(self, runner, space):
        a = RandomSearchTuner(random_state=0).tune(
            Objective(runner, SHAPE, max_evaluations=20), space
        )
        b = RandomSearchTuner(random_state=1).tune(
            Objective(runner, SHAPE, max_evaluations=20), space
        )
        assert a.best_config != b.best_config or a.curve != b.curve

    def test_hill_climbing_descends(self, runner, space):
        """Each restart's trajectory is non-increasing in accepted values
        (verified via the global best-so-far curve being reached early)."""
        obj = Objective(runner, SHAPE, max_evaluations=120)
        result = HillClimbingTuner(restarts=2, random_state=0).tune(obj, space)
        curve = result.curve
        assert curve == sorted(curve, reverse=True)[: len(curve)] or all(
            curve[i] >= curve[i + 1] - 1e-12 for i in range(len(curve) - 1)
        )

    def test_basin_hopping_beats_single_descent(self, runner, space, optimum):
        single = BasinHoppingTuner(hops=1, random_state=2).tune(
            Objective(runner, SHAPE, max_evaluations=200), space
        )
        many = BasinHoppingTuner(hops=12, random_state=2).tune(
            Objective(runner, SHAPE, max_evaluations=200), space
        )
        assert many.best_seconds <= single.best_seconds

    def test_evolutionary_population_validations(self):
        with pytest.raises(ValueError):
            EvolutionaryTuner(population=1)
        with pytest.raises(ValueError):
            EvolutionaryTuner(mutation_rate=1.5)
        with pytest.raises(ValueError):
            SimulatedAnnealingTuner(cooling=1.0)
        with pytest.raises(ValueError):
            BasinHoppingTuner(perturbation_strength=5)
        with pytest.raises(ValueError):
            HillClimbingTuner(restarts=0)
        with pytest.raises(ValueError):
            RandomSearchTuner(max_samples=0)

    def test_result_reporting(self, runner, space):
        result = RandomSearchTuner(random_state=0).tune(
            Objective(runner, SHAPE, max_evaluations=25), space
        )
        text = str(result)
        assert "random" in text and "evals" in text
        target = result.curve[-1]
        reached = result.evaluations_to_reach(target)
        assert 1 <= reached <= result.evaluations
        assert result.evaluations_to_reach(0.0) == -1
