"""Search-space coordinates, neighbourhoods and restriction."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.kernels.params import KernelConfig
from repro.tuning.space import ConfigSpace


@pytest.fixture(scope="module")
def space():
    return ConfigSpace()


class TestCoding:
    def test_size_is_640(self, space):
        assert space.size == 640
        assert len(space.all_configs()) == 640

    def test_encode_decode_round_trip(self, space):
        for config in space.all_configs():
            assert space.decode(space.encode(config)) == config

    def test_contains(self, space):
        assert KernelConfig(acc=2, rows=4, cols=8, wg_rows=8, wg_cols=16) in space
        assert KernelConfig(acc=3, rows=4, cols=8, wg_rows=8, wg_cols=16) not in space

    def test_foreign_config_rejected(self, space):
        with pytest.raises(ValueError):
            space.encode(KernelConfig(acc=16, rows=1, cols=1, wg_rows=8, wg_cols=8))

    def test_custom_axes(self):
        small = ConfigSpace(tile_sizes=(1, 2), work_groups=((8, 8),))
        assert small.size == 8

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            ConfigSpace(tile_sizes=())


class TestMoves:
    def test_neighbors_differ_by_one_step(self, space):
        coords = (1, 2, 3, 5)
        for nb in space.neighbors(coords):
            diffs = [abs(a - b) for a, b in zip(coords, nb)]
            assert sum(diffs) == 1

    def test_corner_has_fewer_neighbors(self, space):
        corner = (0, 0, 0, 0)
        interior = (1, 1, 1, 5)
        assert len(list(space.neighbors(corner))) == 4
        assert len(list(space.neighbors(interior))) == 8

    def test_neighbors_stay_in_bounds(self, space):
        for nb in space.neighbors((3, 3, 3, 9)):
            for value, dim in zip(nb, space.dims):
                assert 0 <= value < dim

    @given(st.integers(0, 2**32 - 1))
    def test_random_coords_valid(self, seed):
        space = ConfigSpace()
        coords = space.random_coords(np.random.default_rng(seed))
        for value, dim in zip(coords, space.dims):
            assert 0 <= value < dim

    def test_perturb_changes_at_most_strength_axes(self, space):
        rng = np.random.default_rng(0)
        coords = (2, 2, 2, 4)
        for _ in range(50):
            new = space.perturb(coords, rng, strength=2)
            changed = sum(a != b for a, b in zip(coords, new))
            assert changed <= 2


class TestRestriction:
    def test_predicate_filters(self, space):
        restricted = space.restricted_to(lambda c: c.work_group_size <= 128)
        assert all(c.work_group_size <= 128 for c in restricted.all_configs())
        assert restricted.size < space.size

    def test_contains_respects_predicate(self, space):
        restricted = space.restricted_to(lambda c: c.acc == 4)
        assert KernelConfig(acc=4, rows=1, cols=1, wg_rows=8, wg_cols=8) in restricted
        assert (
            KernelConfig(acc=2, rows=1, cols=1, wg_rows=8, wg_cols=8)
            not in restricted
        )

    def test_random_coords_feasible(self, space):
        restricted = space.restricted_to(lambda c: c.rows == 1)
        rng = np.random.default_rng(3)
        for _ in range(20):
            assert restricted.decode(restricted.random_coords(rng)).rows == 1

    def test_neighbors_filtered(self, space):
        restricted = space.restricted_to(lambda c: c.registers_per_item <= 64)
        coords = restricted.random_coords(np.random.default_rng(0))
        for nb in restricted.neighbors(coords):
            assert restricted.decode(nb).registers_per_item <= 64

    def test_unsatisfiable_predicate_rejected(self, space):
        with pytest.raises(ValueError):
            space.restricted_to(lambda c: False)

    def test_device_filtering_use_case(self, space):
        from repro.perfmodel import GemmPerfModel
        from repro.sycl.device import Device

        model = GemmPerfModel(Device.embedded())
        feasible = space.restricted_to(model.supported)
        assert 0 < feasible.size < 640
