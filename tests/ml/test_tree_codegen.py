"""Differential suite: compiled tree descent vs the reference walk.

Both codegen variants (generated nested-``if`` source and branchless
flat-array) must return leaf indices bit-identical to
``Tree.apply_loop`` for *any* fitted tree and *any* float64 input —
including samples landing exactly on split thresholds, negative and
astronomically large dims, and NaNs (which descend right, like the
reference walk's ``else`` branch).
"""

import numpy as np
import pytest

from repro.ml.tree import DecisionTreeClassifier
from repro.ml.tree.codegen import (
    COMPILE_VARIANTS,
    MAX_SOURCE_DEPTH,
    CompiledTree,
    compile_tree,
    tree_apply_source,
)


def _fit_tree(rng, n_samples=160, n_features=4, n_classes=5, **kwargs):
    X = rng.integers(1, 4096, size=(n_samples, n_features)).astype(np.float64)
    y = rng.integers(0, n_classes, size=n_samples)
    clf = DecisionTreeClassifier(random_state=0, **kwargs)
    clf.fit(X, y)
    return clf.tree_


def _boundary_rows(tree, rng, n_random=64):
    """Inputs that stress the descent: thresholds, extremes, randoms."""
    width = int(tree.feature.max(initial=-1)) + 1
    width = max(width, 1)
    rows = []
    thresholds = [
        float(t) for f, t in zip(tree.feature, tree.threshold) if f >= 0
    ]
    # Every split threshold, exactly: x <= t must take the left branch.
    for t in thresholds[:40]:
        rows.append([t] * width)
        rows.append([np.nextafter(t, np.inf)] * width)
        rows.append([np.nextafter(t, -np.inf)] * width)
    rows.append([0.0] * width)
    rows.append([-1e18] * width)
    rows.append([2.0**50] * width)
    rows.append([np.nan] * width)
    rows.extend(
        rng.uniform(-1e6, 1e6, size=(n_random, width)).tolist()
    )
    return np.asarray(rows, dtype=np.float64)


class TestDifferential:
    @pytest.mark.parametrize("variant", COMPILE_VARIANTS)
    @pytest.mark.parametrize("tree_seed", range(6))
    def test_random_trees_match_reference_walk(self, variant, tree_seed):
        rng = np.random.default_rng(tree_seed)
        tree = _fit_tree(rng, n_features=2 + tree_seed % 3)
        compiled = compile_tree(tree, variant=variant)
        X = _boundary_rows(tree, rng)
        np.testing.assert_array_equal(compiled.apply(X), tree.apply_loop(X))

    @pytest.mark.parametrize("variant", COMPILE_VARIANTS)
    def test_deep_unbalanced_tree(self, variant):
        # A staircase target forces a deep chain of axis splits.
        rng = np.random.default_rng(99)
        X = np.arange(64, dtype=np.float64).reshape(-1, 1)
        y = np.arange(64) // 2
        clf = DecisionTreeClassifier(random_state=0).fit(X, y)
        tree = clf.tree_
        compiled = compile_tree(tree, variant=variant)
        probe = _boundary_rows(tree, rng)
        np.testing.assert_array_equal(
            compiled.apply(probe), tree.apply_loop(probe)
        )

    @pytest.mark.parametrize("variant", COMPILE_VARIANTS)
    def test_stump_and_constant_targets(self, variant):
        rng = np.random.default_rng(3)
        X = rng.uniform(0, 10, size=(30, 2))
        clf = DecisionTreeClassifier(max_depth=1, random_state=0)
        clf.fit(X, np.zeros(30, dtype=np.int64))  # pure leaf, no split
        compiled = compile_tree(clf.tree_, variant=variant)
        np.testing.assert_array_equal(
            compiled.apply(X), clf.tree_.apply_loop(X)
        )

    def test_variants_agree_with_each_other(self):
        rng = np.random.default_rng(11)
        tree = _fit_tree(rng)
        source = compile_tree(tree, variant="source")
        flat = compile_tree(tree, variant="flat")
        X = _boundary_rows(tree, rng, n_random=128)
        np.testing.assert_array_equal(source.apply(X), flat.apply(X))


class TestSourceEmission:
    def test_source_round_trips_thresholds_exactly(self):
        rng = np.random.default_rng(5)
        tree = _fit_tree(rng)
        compiled = compile_tree(tree, variant="source")
        assert isinstance(compiled, CompiledTree)
        assert compiled.source is not None
        assert compiled.source.startswith("def tree_apply(")
        for f, t in zip(tree.feature, tree.threshold):
            if f >= 0:
                assert repr(float(t)) in compiled.source
        # The flat variant carries no source.
        assert compile_tree(tree, variant="flat").source is None

    def test_feature_names_become_arguments(self):
        rng = np.random.default_rng(6)
        tree = _fit_tree(rng, n_features=4)
        source = tree_apply_source(
            tree, feature_names=("m", "k", "n", "batch")
        )
        assert source.startswith("def tree_apply(m, k, n, batch):")

    def test_invalid_identifiers_rejected(self):
        rng = np.random.default_rng(7)
        tree = _fit_tree(rng, n_features=2)
        with pytest.raises(ValueError, match="identifier"):
            tree_apply_source(tree, feature_names=("m", "not valid"))
        with pytest.raises(ValueError, match="identifier"):
            tree_apply_source(tree, function_name="bad name")

    def test_too_few_feature_names_rejected(self):
        rng = np.random.default_rng(8)
        tree = _fit_tree(rng, n_features=3)
        if int(tree.feature.max(initial=-1)) < 2:
            pytest.skip("tree never split on the last feature")
        with pytest.raises(ValueError, match="feature names"):
            compile_tree(tree, feature_names=("a",))

    def test_unknown_variant_rejected(self):
        rng = np.random.default_rng(9)
        tree = _fit_tree(rng)
        with pytest.raises(ValueError, match="variant"):
            compile_tree(tree, variant="jit")


class TestDepthLimit:
    def _deep_tree(self):
        # A synthetic right-leaning chain deeper than CPython's nesting
        # limit: internal node i splits x0 <= i (left: leaf, right:
        # next internal node).  Fitting rarely produces such chains —
        # building the flat arrays directly pins the guard exactly.
        from repro.ml.tree.structure import LEAF, Tree

        depth = MAX_SOURCE_DEPTH + 10
        n_nodes = 2 * depth + 1
        feature = np.full(n_nodes, LEAF, dtype=np.int64)
        threshold = np.zeros(n_nodes)
        left = np.full(n_nodes, LEAF, dtype=np.int64)
        right = np.full(n_nodes, LEAF, dtype=np.int64)
        value = np.zeros((n_nodes, 1))
        for i in range(depth):
            node = 2 * i
            feature[node] = 0
            threshold[node] = float(i)
            left[node] = node + 1
            right[node] = node + 2
        return Tree(
            feature=feature,
            threshold=threshold,
            left=left,
            right=right,
            value=value,
            impurity=np.zeros(n_nodes),
            n_samples=np.ones(n_nodes, dtype=np.int64),
        )

    def test_source_variant_guards_python_nesting_limit(self):
        tree = self._deep_tree()
        assert tree.max_depth > MAX_SOURCE_DEPTH
        with pytest.raises(ValueError, match="flat"):
            compile_tree(tree, variant="source")

    def test_flat_variant_is_depth_unbounded(self):
        tree = self._deep_tree()
        compiled = compile_tree(tree, variant="flat")
        X = np.arange(tree.max_depth + 20, dtype=np.float64).reshape(-1, 1)
        np.testing.assert_array_equal(compiled.apply(X), tree.apply_loop(X))


class TestDeployedSelectorCompiled:
    @pytest.fixture(scope="class")
    def deployed(self, small_dataset):
        from repro.core.deploy import tune

        train, _ = small_dataset.split(test_size=0.3, random_state=0)
        return tune(train, n_configs=4, random_state=0)

    @pytest.mark.parametrize("variant", COMPILE_VARIANTS)
    def test_decisions_identical_to_selector(
        self, deployed, small_dataset, variant
    ):
        compiled = deployed.compiled(variant=variant)
        shapes = tuple(small_dataset.shapes)
        assert compiled.select_batch(shapes) == deployed.select_batch(shapes)
        for shape in shapes:
            assert compiled.select(shape) == deployed.select(shape)

    def test_source_property_exposed(self, deployed):
        compiled = deployed.compiled()
        assert compiled.variant == "source"
        assert "def tree_apply(m, k, n, batch):" in compiled.source

    def test_constant_selector_compiles_to_single_leaf(self, small_dataset):
        from repro.core.deploy import tune

        train, _ = small_dataset.split(test_size=0.3, random_state=0)
        deployed = tune(train, n_configs=1, random_state=0)
        compiled = deployed.compiled()
        shapes = tuple(small_dataset.shapes)
        assert compiled.select_batch(shapes) == deployed.select_batch(shapes)
