"""Random forest."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier


@pytest.fixture
def blobs(rng):
    X = np.vstack(
        [rng.normal(c, 0.8, (40, 2)) for c in ((0, 0), (6, 6), (0, 6))]
    )
    y = np.repeat([0, 1, 2], 40)
    return X, y


class TestForest:
    def test_fits_separable_data(self, blobs):
        X, y = blobs
        rf = RandomForestClassifier(n_estimators=15, random_state=0).fit(X, y)
        assert rf.score(X, y) > 0.95

    def test_reproducible(self, blobs):
        X, y = blobs
        a = RandomForestClassifier(n_estimators=10, random_state=3).fit(X, y)
        b = RandomForestClassifier(n_estimators=10, random_state=3).fit(X, y)
        np.testing.assert_array_equal(a.predict(X), b.predict(X))

    def test_seed_changes_model(self, blobs, rng):
        X, y = blobs
        Q = rng.normal(3, 3, (200, 2))
        a = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
        b = RandomForestClassifier(n_estimators=5, random_state=1).fit(X, y)
        assert not np.array_equal(a.predict_proba(Q), b.predict_proba(Q))

    def test_proba_rows_sum_to_one(self, blobs):
        X, y = blobs
        rf = RandomForestClassifier(n_estimators=8, random_state=0).fit(X, y)
        np.testing.assert_allclose(rf.predict_proba(X).sum(axis=1), 1.0)

    def test_estimator_count(self, blobs):
        X, y = blobs
        rf = RandomForestClassifier(n_estimators=7, random_state=0).fit(X, y)
        assert len(rf.estimators_) == 7

    def test_max_features_resolution(self, blobs):
        X, y = blobs
        assert RandomForestClassifier()._resolve_max_features(16) == 4
        assert RandomForestClassifier(max_features="log2")._resolve_max_features(16) == 4
        assert RandomForestClassifier(max_features=3)._resolve_max_features(16) == 3
        assert RandomForestClassifier(max_features=None)._resolve_max_features(16) is None
        with pytest.raises(ValueError):
            RandomForestClassifier(max_features="bogus")._resolve_max_features(16)

    def test_no_bootstrap_mode(self, blobs):
        X, y = blobs
        rf = RandomForestClassifier(
            n_estimators=5, bootstrap=False, random_state=0
        ).fit(X, y)
        assert rf.score(X, y) > 0.95

    def test_missing_class_in_bootstrap_handled(self, rng):
        # Tiny minority class: some bootstrap samples will miss it entirely;
        # the probability alignment must not crash or misattribute columns.
        X = np.vstack([rng.normal(0, 1, (50, 2)), rng.normal(10, 0.1, (2, 2))])
        y = np.array([0] * 50 + [1] * 2)
        rf = RandomForestClassifier(n_estimators=20, random_state=0).fit(X, y)
        proba = rf.predict_proba(X)
        assert proba.shape == (52, 2)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=2).fit(
                rng.normal(size=(5, 2)), np.zeros(4)
            )
