"""PCA."""

import numpy as np
import pytest

from repro.ml.pca import PCA


class TestFit:
    def test_components_orthonormal(self, rng):
        X = rng.normal(size=(50, 10))
        pca = PCA(n_components=5).fit(X)
        gram = pca.components_ @ pca.components_.T
        np.testing.assert_allclose(gram, np.eye(5), atol=1e-10)

    def test_ratios_sum_to_one_full_rank(self, rng):
        X = rng.normal(size=(30, 5))
        pca = PCA().fit(X)
        assert pca.explained_variance_ratio_.sum() == pytest.approx(1.0)

    def test_ratios_sorted_descending(self, rng):
        X = rng.normal(size=(40, 8)) * np.arange(1, 9)
        r = PCA().fit(X).explained_variance_ratio_
        assert np.all(np.diff(r) <= 1e-12)

    def test_first_component_finds_dominant_direction(self, rng):
        t = rng.normal(size=200)
        X = np.column_stack([t, 2 * t + rng.normal(0, 0.01, 200), rng.normal(0, 0.01, 200)])
        pca = PCA(n_components=1).fit(X)
        assert pca.explained_variance_ratio_[0] > 0.99
        direction = np.abs(pca.components_[0])
        assert direction[1] > direction[2]

    def test_deterministic_signs(self, rng):
        X = rng.normal(size=(30, 6))
        a = PCA(n_components=3).fit(X).components_
        b = PCA(n_components=3).fit(X).components_
        np.testing.assert_array_equal(a, b)

    def test_invalid_n_components(self, rng):
        X = rng.normal(size=(10, 4))
        with pytest.raises(ValueError):
            PCA(n_components=0).fit(X)
        with pytest.raises(ValueError):
            PCA(n_components=11).fit(X)


class TestTransform:
    def test_reduces_dimension(self, rng):
        X = rng.normal(size=(20, 7))
        Z = PCA(n_components=3).fit_transform(X)
        assert Z.shape == (20, 3)

    def test_transform_centers_data(self, rng):
        X = rng.normal(5.0, 1.0, (100, 4))
        Z = PCA(n_components=4).fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-9)

    def test_full_rank_inverse_round_trip(self, rng):
        X = rng.normal(size=(25, 6))
        pca = PCA(n_components=6).fit(X)
        np.testing.assert_allclose(
            pca.inverse_transform(pca.transform(X)), X, atol=1e-9
        )

    def test_truncated_inverse_is_best_approximation(self, rng):
        # Reconstruction error through k components must not exceed the
        # variance discarded (Eckart-Young).
        X = rng.normal(size=(60, 10))
        pca = PCA(n_components=4).fit(X)
        recon = pca.inverse_transform(pca.transform(X))
        err = np.sum((X - recon) ** 2) / (60 - 1)
        discarded = PCA().fit(X).explained_variance_[4:].sum()
        assert err == pytest.approx(discarded, rel=1e-6)

    def test_feature_mismatch(self, rng):
        pca = PCA(n_components=2).fit(rng.normal(size=(10, 5)))
        with pytest.raises(ValueError):
            pca.transform(rng.normal(size=(3, 6)))
        with pytest.raises(ValueError):
            pca.inverse_transform(rng.normal(size=(3, 3)))


class TestComponentsForVariance:
    def test_known_structure(self, rng):
        # Three strong directions, rest noise.
        n = 500
        basis = rng.normal(size=(6, 6))
        scales = np.array([10.0, 8.0, 6.0, 0.1, 0.1, 0.1])
        X = rng.normal(size=(n, 6)) * scales @ basis
        pca = PCA().fit(X)
        assert pca.components_for_variance(0.95) <= 3

    def test_full_variance_needs_all(self, rng):
        X = rng.normal(size=(20, 4))
        pca = PCA().fit(X)
        assert pca.components_for_variance(1.0) == 4

    def test_monotone_in_threshold(self, rng):
        X = rng.normal(size=(40, 10)) * np.arange(1, 11)
        pca = PCA().fit(X)
        counts = [pca.components_for_variance(t) for t in (0.5, 0.8, 0.9, 0.99)]
        assert counts == sorted(counts)

    def test_invalid_threshold(self, rng):
        pca = PCA().fit(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError):
            pca.components_for_variance(0.0)

    def test_unreachable_threshold_with_truncation(self, rng):
        X = rng.normal(size=(50, 10))
        pca = PCA(n_components=2).fit(X)
        with pytest.raises(ValueError, match="cannot reach"):
            pca.components_for_variance(0.999)
