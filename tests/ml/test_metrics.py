"""Metrics and pairwise distances."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    euclidean_distances,
    mean_squared_error,
    pairwise_sq_distances,
    r2_score,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([1, 2, 3], [1, 2, 3]) == 1.0

    def test_partial(self):
        assert accuracy_score([1, 2, 3, 4], [1, 2, 0, 0]) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score([1, 2], [1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])


class TestConfusion:
    def test_diagonal_on_perfect(self):
        cm = confusion_matrix([0, 1, 1, 2], [0, 1, 1, 2])
        np.testing.assert_array_equal(np.diag(cm), [1, 2, 1])
        assert cm.sum() == 4

    def test_off_diagonal(self):
        cm = confusion_matrix([0, 0], [1, 0])
        assert cm[0, 1] == 1 and cm[0, 0] == 1

    def test_explicit_labels(self):
        cm = confusion_matrix([0], [0], labels=[0, 1, 2])
        assert cm.shape == (3, 3)


class TestRegressionMetrics:
    def test_mse(self):
        assert mean_squared_error([1.0, 2.0], [1.0, 4.0]) == pytest.approx(2.0)

    def test_r2_perfect(self):
        assert r2_score([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == pytest.approx(1.0)

    def test_r2_mean_predictor_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_r2_multioutput(self, rng):
        y = rng.normal(size=(20, 3))
        assert r2_score(y, y) == pytest.approx(1.0)

    def test_r2_constant_target(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [1.0, 3.0]) == 0.0


class TestPairwiseDistances:
    def test_matches_naive(self, rng):
        X = rng.normal(size=(10, 4))
        Y = rng.normal(size=(7, 4))
        fast = euclidean_distances(X, Y)
        naive = np.array([[np.linalg.norm(x - y) for y in Y] for x in X])
        np.testing.assert_allclose(fast, naive, atol=1e-8)

    def test_self_distance_zero(self, rng):
        X = rng.normal(size=(5, 3))
        d = euclidean_distances(X, X)
        np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-6)

    def test_never_negative(self, rng):
        X = rng.normal(size=(20, 2)) * 1e6  # cancellation-prone scale
        assert np.all(pairwise_sq_distances(X, X) >= 0.0)

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            pairwise_sq_distances(np.ones((2, 3)), np.ones((2, 4)))

    @given(
        arrays(np.float64, st.tuples(st.integers(1, 8), st.just(3)),
               elements=st.floats(-50, 50)),
        arrays(np.float64, st.tuples(st.integers(1, 8), st.just(3)),
               elements=st.floats(-50, 50)),
    )
    def test_symmetry_property(self, X, Y):
        np.testing.assert_allclose(
            pairwise_sq_distances(X, Y), pairwise_sq_distances(Y, X).T, atol=1e-8
        )
