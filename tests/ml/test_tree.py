"""Decision trees: criteria, splitting, growth, prediction, export."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.tree import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    export_cpp,
    export_python,
    export_text,
)
from repro.ml.tree.criteria import GiniCriterion, MSECriterion
from repro.ml.tree.splitter import find_best_split


class TestGiniCriterion:
    def test_pure_node_zero_impurity(self):
        y = np.array([[1.0, 0.0]] * 5)
        assert GiniCriterion().node_impurity(y) == pytest.approx(0.0)

    def test_balanced_binary_is_half(self):
        y = np.array([[1.0, 0.0], [0.0, 1.0]] * 3)
        assert GiniCriterion().node_impurity(y) == pytest.approx(0.5)

    def test_split_costs_match_direct_evaluation(self, rng):
        labels = rng.integers(0, 3, 12)
        y = np.eye(3)[labels]
        costs = GiniCriterion().split_costs(y)
        for i in range(1, 12):
            left, right = y[:i], y[i:]
            direct = i * GiniCriterion().node_impurity(left) + (
                12 - i
            ) * GiniCriterion().node_impurity(right)
            assert costs[i - 1] == pytest.approx(direct)

    def test_node_value_is_distribution(self):
        y = np.eye(2)[[0, 0, 1, 0]]
        np.testing.assert_allclose(GiniCriterion().node_value(y), [0.75, 0.25])


class TestMSECriterion:
    def test_constant_target_zero(self):
        y = np.full((5, 2), 3.0)
        assert MSECriterion().node_impurity(y) == pytest.approx(0.0)

    def test_split_costs_match_direct_sse(self, rng):
        y = rng.normal(size=(10, 3))
        costs = MSECriterion().split_costs(y)
        for i in range(1, 10):
            left, right = y[:i], y[i:]
            sse = lambda a: float(np.sum((a - a.mean(axis=0)) ** 2))
            assert costs[i - 1] == pytest.approx(sse(left) + sse(right), abs=1e-9)

    def test_costs_never_negative(self, rng):
        y = rng.normal(size=(30, 4)) * 1e6
        assert np.all(MSECriterion().split_costs(y) >= 0.0)


class TestSplitter:
    def test_finds_obvious_split(self):
        X = np.array([[0.0], [1.0], [10.0], [11.0]])
        y = np.eye(2)[[0, 0, 1, 1]]
        split = find_best_split(X, y, GiniCriterion())
        assert split.feature == 0
        assert 1.0 < split.threshold < 10.0
        np.testing.assert_array_equal(split.left_mask, [True, True, False, False])

    def test_pure_node_returns_none(self):
        X = np.arange(6.0)[:, None]
        y = np.eye(2)[[0] * 6]
        assert find_best_split(X, y, GiniCriterion()) is None

    def test_constant_features_return_none(self):
        X = np.ones((6, 2))
        y = np.eye(2)[[0, 1] * 3]
        assert find_best_split(X, y, GiniCriterion()) is None

    def test_min_samples_leaf_respected(self):
        X = np.array([[0.0], [5.0], [6.0], [7.0]])
        y = np.eye(2)[[0, 1, 1, 1]]
        split = find_best_split(X, y, GiniCriterion(), min_samples_leaf=2)
        assert split is None or split.left_mask.sum() >= 2

    def test_feature_subset(self):
        X = np.column_stack([np.array([0, 0, 1, 1.0]), np.array([0, 1, 0, 1.0])])
        y = np.eye(2)[[0, 0, 1, 1]]
        split = find_best_split(X, y, GiniCriterion(), features=[1])
        assert split is None or split.feature == 1

    def test_threshold_separates(self, rng):
        X = rng.normal(size=(40, 3))
        y = np.eye(2)[(X[:, 1] > 0).astype(int)]
        split = find_best_split(X, y, GiniCriterion())
        col = X[:, split.feature]
        assert np.array_equal(split.left_mask, col <= split.threshold)


class TestApplyVectorized:
    """The vectorized descent must match the scalar walk exactly."""

    def _fitted_tree(self, rng, n=300, d=5, classes=4):
        X = rng.normal(size=(n, d))
        y = rng.integers(0, classes, n)
        return DecisionTreeClassifier(random_state=0).fit(X, y).tree_, X

    def test_bit_identical_to_loop_on_random_inputs(self, rng):
        tree, X_train = self._fitted_tree(rng)
        for X in (X_train, rng.normal(size=(500, 5)), rng.normal(size=(1, 5))):
            np.testing.assert_array_equal(tree.apply(X), tree.apply_loop(X))

    def test_bit_identical_at_thresholds(self, rng):
        # Samples exactly on split thresholds exercise the <= boundary.
        tree, _ = self._fitted_tree(rng)
        internal = tree.feature != -1
        if not internal.any():
            pytest.skip("degenerate tree with no splits")
        X = np.zeros((int(internal.sum()), 5))
        for row, node in enumerate(np.nonzero(internal)[0]):
            X[row, tree.feature[node]] = tree.threshold[node]
        np.testing.assert_array_equal(tree.apply(X), tree.apply_loop(X))

    def test_empty_batch(self, rng):
        tree, _ = self._fitted_tree(rng)
        assert tree.apply(np.empty((0, 5))).shape == (0,)

    def test_single_leaf_tree(self):
        X = np.zeros((4, 2))
        y = np.zeros(4, dtype=int)
        tree = DecisionTreeClassifier().fit(X, y).tree_
        np.testing.assert_array_equal(tree.apply(X), np.zeros(4, dtype=np.int64))


class TestClassifier:
    def test_fits_xor_with_depth_2(self):
        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]] * 5, dtype=float)
        y = np.array([0, 1, 1, 0] * 5)
        clf = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert clf.score(X, y) == 1.0

    def test_max_depth_limits(self, rng):
        X = rng.normal(size=(100, 4))
        y = rng.integers(0, 2, 100)
        clf = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert clf.tree_.max_depth <= 3

    def test_max_leaf_nodes_limits(self, rng):
        X = rng.normal(size=(100, 4))
        y = rng.integers(0, 4, 100)
        clf = DecisionTreeClassifier(max_leaf_nodes=5).fit(X, y)
        assert clf.n_leaves_ <= 5

    def test_min_samples_leaf(self, rng):
        X = rng.normal(size=(60, 3))
        y = rng.integers(0, 2, 60)
        clf = DecisionTreeClassifier(min_samples_leaf=10).fit(X, y)
        leaf_sizes = clf.tree_.n_samples[clf.tree_.feature == -1]
        assert leaf_sizes.min() >= 10

    def test_predict_proba_rows_sum_to_one(self, rng):
        X = rng.normal(size=(50, 3))
        y = rng.integers(0, 3, 50)
        proba = DecisionTreeClassifier().fit(X, y).predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_string_labels(self, rng):
        X = rng.normal(size=(20, 2))
        y = np.array(["cat", "dog"] * 10)
        clf = DecisionTreeClassifier().fit(X, y)
        assert set(clf.predict(X)) <= {"cat", "dog"}

    def test_unbounded_tree_memorises(self, rng):
        X = rng.normal(size=(80, 5))
        y = rng.integers(0, 3, 80)
        assert DecisionTreeClassifier().fit(X, y).score(X, y) == 1.0

    def test_rejects_2d_y(self, rng):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(rng.normal(size=(4, 2)), np.zeros((4, 2)))


class TestRegressor:
    def test_single_output_shape(self, rng):
        X = rng.normal(size=(50, 2))
        y = X[:, 0] * 2.0
        reg = DecisionTreeRegressor(max_depth=6).fit(X, y)
        assert reg.predict(X).shape == (50,)
        assert reg.score(X, y) > 0.9

    def test_multi_output(self, rng):
        X = rng.normal(size=(60, 2))
        y = np.column_stack([X[:, 0], -X[:, 1], X.sum(axis=1)])
        reg = DecisionTreeRegressor(max_leaf_nodes=16).fit(X, y)
        assert reg.predict(X).shape == (60, 3)
        assert reg.n_outputs_ == 3

    def test_leaf_representatives_count(self, rng):
        X = rng.normal(size=(80, 3))
        y = rng.normal(size=(80, 5))
        reg = DecisionTreeRegressor(max_leaf_nodes=6).fit(X, y)
        reps = reg.leaf_representatives()
        assert reps.shape == (reg.n_leaves_, 5)
        assert reg.n_leaves_ <= 6

    def test_best_first_beats_random_subset_of_leaves(self, rng):
        # Best-first with a budget should capture the dominant structure:
        # a step function with one huge and several small steps.
        X = np.linspace(0, 1, 200)[:, None]
        y = np.where(X[:, 0] < 0.5, 0.0, 10.0) + np.sin(20 * X[:, 0]) * 0.1
        reg = DecisionTreeRegressor(max_leaf_nodes=2).fit(X, y)
        # The single split must be the big step at 0.5.
        assert abs(reg.tree_.threshold[0] - 0.5) < 0.05

    def test_prediction_is_leaf_mean(self, rng):
        X = rng.normal(size=(30, 2))
        y = rng.normal(size=30)
        reg = DecisionTreeRegressor(max_depth=2).fit(X, y)
        leaves = reg.tree_.apply(X)
        for leaf in np.unique(leaves):
            members = leaves == leaf
            np.testing.assert_allclose(
                reg.predict(X[members]),
                y[members].mean(),
                atol=1e-10,
            )

    @settings(max_examples=20, deadline=None)
    @given(budget=st.integers(2, 20), seed=st.integers(0, 100))
    def test_leaf_budget_property(self, budget, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(50, 3))
        y = rng.normal(size=(50, 2))
        reg = DecisionTreeRegressor(max_leaf_nodes=budget).fit(X, y)
        assert 1 <= reg.n_leaves_ <= budget


class TestExport:
    @pytest.fixture
    def fitted(self, rng):
        X = rng.normal(size=(60, 2))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        return DecisionTreeClassifier(max_depth=3).fit(X, y)

    def test_text_contains_structure(self, fitted):
        text = export_text(fitted.tree_, feature_names=["m", "k"])
        assert "m <=" in text or "k <=" in text
        assert "value:" in text

    def test_python_export_is_executable_and_agrees(self, fitted, rng):
        src = export_python(fitted.tree_, feature_names=["f0", "f1"])
        namespace = {}
        exec(src, namespace)  # noqa: S102 - generated by us, test only
        select = namespace["select"]
        X = rng.normal(size=(40, 2))
        expected = fitted.predict(X)
        got = np.array([int(select(*row)) for row in X])
        np.testing.assert_array_equal(got, expected)

    def test_python_export_with_class_names(self, fitted):
        src = export_python(fitted.tree_, class_names=["cfgA", "cfgB"])
        namespace = {}
        exec(src, namespace)  # noqa: S102
        assert namespace["select"](0.0, 0.0) in ("cfgA", "cfgB")

    def test_cpp_export_structure(self, fitted):
        src = export_cpp(fitted.tree_, feature_names=["m", "k"])
        assert src.startswith("int select_kernel(double m, double k)")
        assert "if (" in src and "return" in src
        assert src.count("{") == src.count("}")

    def test_cpp_export_class_names(self, fitted):
        src = export_cpp(
            fitted.tree_,
            class_names=["KernelA", "KernelB"],
            return_type="Kernel",
        )
        assert "return KernelA;" in src or "return KernelB;" in src
