"""k-means."""

import numpy as np
import pytest

from repro.ml.base import NotFittedError
from repro.ml.kmeans import KMeans, kmeans_plusplus


def blobs(rng, centers, n=30, spread=0.3):
    return np.vstack([rng.normal(c, spread, (n, len(c))) for c in centers])


class TestKMeans:
    def test_recovers_separated_blobs(self, rng):
        X = blobs(rng, [(0, 0), (10, 10), (0, 10)])
        km = KMeans(n_clusters=3, random_state=0).fit(X)
        # Each blob maps to exactly one label.
        labels = km.labels_.reshape(3, 30)
        assert all(len(np.unique(row)) == 1 for row in labels)
        assert len(np.unique(labels[:, 0])) == 3

    def test_centers_near_blob_means(self, rng):
        X = blobs(rng, [(0, 0), (10, 10)])
        km = KMeans(n_clusters=2, random_state=0).fit(X)
        dists = np.linalg.norm(
            km.cluster_centers_[:, None] - np.array([[0, 0], [10, 10]])[None], axis=2
        )
        assert dists.min(axis=1).max() < 0.5

    def test_inertia_decreases_with_k(self, rng):
        X = rng.normal(size=(100, 3))
        inertias = [
            KMeans(n_clusters=k, random_state=0, n_init=3).fit(X).inertia_
            for k in (1, 2, 4, 8)
        ]
        assert inertias == sorted(inertias, reverse=True)

    def test_exactly_k_clusters_even_on_hard_data(self, rng):
        # Heavily duplicated points invite empty clusters; re-seeding must
        # still deliver the requested count.
        X = np.repeat(rng.normal(size=(3, 2)), 20, axis=0)
        X += rng.normal(0, 1e-6, X.shape)
        km = KMeans(n_clusters=5, random_state=0).fit(X)
        assert km.cluster_centers_.shape == (5, 2)

    def test_reproducible(self, rng):
        X = rng.normal(size=(60, 4))
        a = KMeans(n_clusters=4, random_state=7).fit(X)
        b = KMeans(n_clusters=4, random_state=7).fit(X)
        np.testing.assert_array_equal(a.labels_, b.labels_)

    def test_predict_matches_fit_labels(self, rng):
        X = blobs(rng, [(0, 0), (8, 8)])
        km = KMeans(n_clusters=2, random_state=0).fit(X)
        np.testing.assert_array_equal(km.predict(X), km.labels_)

    def test_fit_predict(self, rng):
        X = rng.normal(size=(20, 2))
        km = KMeans(n_clusters=2, random_state=0)
        np.testing.assert_array_equal(km.fit_predict(X), km.labels_)

    def test_k_exceeds_samples(self, rng):
        with pytest.raises(ValueError):
            KMeans(n_clusters=10).fit(rng.normal(size=(5, 2)))

    def test_unfitted_predict(self):
        with pytest.raises(NotFittedError):
            KMeans(n_clusters=2).predict(np.ones((2, 2)))

    def test_predict_feature_mismatch(self, rng):
        km = KMeans(n_clusters=2, random_state=0).fit(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError):
            km.predict(rng.normal(size=(2, 4)))

    def test_labels_in_range(self, rng):
        X = rng.normal(size=(50, 2))
        km = KMeans(n_clusters=6, random_state=0, n_init=2).fit(X)
        assert set(km.labels_.tolist()) <= set(range(6))


class TestKMeansPlusPlus:
    def test_returns_k_centers_from_data(self, rng):
        X = rng.normal(size=(40, 3))
        centers = kmeans_plusplus(X, 5, np.random.default_rng(0))
        assert centers.shape == (5, 3)
        # Every center is an actual data point.
        d = np.min(
            np.linalg.norm(X[None] - centers[:, None], axis=2), axis=1
        )
        np.testing.assert_allclose(d, 0.0, atol=1e-12)

    def test_spreads_over_blobs(self, rng):
        X = blobs(rng, [(0, 0), (50, 50), (0, 50), (50, 0)], n=25)
        centers = kmeans_plusplus(X, 4, np.random.default_rng(3))
        # With blobs 50 apart, ++ seeding picks one per blob.
        from repro.ml.metrics import pairwise_sq_distances

        cross = pairwise_sq_distances(centers, centers)
        np.fill_diagonal(cross, np.inf)
        assert cross.min() > 100.0

    def test_degenerate_identical_points(self):
        X = np.ones((10, 2))
        centers = kmeans_plusplus(X, 3, np.random.default_rng(0))
        assert centers.shape == (3, 2)
