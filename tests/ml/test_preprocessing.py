"""Scalers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.base import NotFittedError
from repro.ml.preprocessing import MinMaxScaler, StandardScaler

matrices = arrays(
    np.float64,
    st.tuples(st.integers(2, 30), st.integers(1, 6)),
    elements=st.floats(-100, 100),
)


class TestStandardScaler:
    def test_zero_mean_unit_std(self, rng):
        X = rng.normal(5.0, 3.0, (200, 4))
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_not_divided_by_zero(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))
        np.testing.assert_allclose(Z[:, 0], 0.0)

    def test_inverse_round_trip(self, rng):
        X = rng.normal(0, 5, (50, 3))
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(X)), X, atol=1e-9
        )

    def test_without_mean(self, rng):
        X = rng.normal(10, 1, (50, 2))
        Z = StandardScaler(with_mean=False).fit_transform(X)
        assert Z.mean() > 1.0  # mean not removed

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_feature_count_mismatch(self, rng):
        scaler = StandardScaler().fit(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError, match="features"):
            scaler.transform(rng.normal(size=(10, 4)))

    @given(matrices)
    def test_transform_finite(self, X):
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))


class TestMinMaxScaler:
    def test_unit_range(self, rng):
        X = rng.normal(0, 10, (100, 3))
        Z = MinMaxScaler().fit_transform(X)
        np.testing.assert_allclose(Z.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(Z.max(axis=0), 1.0, atol=1e-12)

    def test_custom_range(self, rng):
        X = rng.normal(0, 10, (100, 2))
        Z = MinMaxScaler(feature_range=(-1.0, 1.0)).fit_transform(X)
        np.testing.assert_allclose(Z.min(axis=0), -1.0, atol=1e-12)
        np.testing.assert_allclose(Z.max(axis=0), 1.0, atol=1e-12)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            MinMaxScaler(feature_range=(1.0, 0.0)).fit(np.ones((3, 1)))

    def test_constant_feature(self):
        X = np.full((5, 1), 3.0)
        Z = MinMaxScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))
