"""Estimator protocol."""

import pytest

from repro.ml.base import BaseEstimator, NotFittedError, check_is_fitted, clone


class Toy(BaseEstimator):
    def __init__(self, alpha: float = 1.0, beta: int = 2):
        self.alpha = alpha
        self.beta = beta

    def fit(self):
        self.coef_ = self.alpha * self.beta
        return self


class TestParams:
    def test_get_params(self):
        assert Toy(alpha=3.0).get_params() == {"alpha": 3.0, "beta": 2}

    def test_set_params(self):
        toy = Toy().set_params(beta=5)
        assert toy.beta == 5

    def test_set_invalid_param(self):
        with pytest.raises(ValueError, match="invalid parameter"):
            Toy().set_params(gamma=1)

    def test_repr_shows_params(self):
        assert "alpha=1.0" in repr(Toy())


class TestClone:
    def test_clone_copies_params_not_state(self):
        toy = Toy(alpha=2.0).fit()
        fresh = clone(toy)
        assert fresh.alpha == 2.0
        assert not hasattr(fresh, "coef_")

    def test_clone_is_new_object(self):
        toy = Toy()
        assert clone(toy) is not toy


class TestCheckIsFitted:
    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            check_is_fitted(Toy())

    def test_fitted_passes(self):
        check_is_fitted(Toy().fit())

    def test_specific_attribute(self):
        toy = Toy().fit()
        check_is_fitted(toy, "coef_")
        with pytest.raises(NotFittedError):
            check_is_fitted(toy, "other_")
