"""KD-tree and kNN classification."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.metrics import euclidean_distances
from repro.ml.neighbors import KDTree, KNeighborsClassifier


class TestKDTree:
    def test_nearest_matches_brute_force(self, rng):
        X = rng.normal(size=(200, 3))
        Q = rng.normal(size=(20, 3))
        tree = KDTree(X)
        d_tree, i_tree = tree.query(Q, k=3)
        d_all = euclidean_distances(Q, X)
        i_brute = np.argsort(d_all, axis=1)[:, :3]
        d_brute = np.take_along_axis(d_all, i_brute, axis=1)
        np.testing.assert_allclose(np.sort(d_tree, axis=1), d_brute, atol=1e-8)

    def test_query_self_returns_self(self, rng):
        X = rng.normal(size=(50, 2))
        tree = KDTree(X)
        d, i = tree.query(X, k=1)
        np.testing.assert_array_equal(i.ravel(), np.arange(50))
        np.testing.assert_allclose(d, 0.0, atol=1e-12)

    def test_k_too_large(self, rng):
        tree = KDTree(rng.normal(size=(5, 2)))
        with pytest.raises(ValueError):
            tree.query(rng.normal(size=(1, 2)), k=6)

    def test_duplicate_points_handled(self):
        X = np.vstack([np.zeros((20, 2)), np.ones((20, 2))])
        tree = KDTree(X)
        d, i = tree.query(np.array([[0.0, 0.0]]), k=5)
        assert np.all(d == 0.0)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(2, 60),
        k=st.integers(1, 4),
        seed=st.integers(0, 1000),
    )
    def test_property_matches_brute(self, n, k, seed):
        rng = np.random.default_rng(seed)
        k = min(k, n)
        X = rng.normal(size=(n, 2))
        q = rng.normal(size=(3, 2))
        d_tree, _ = KDTree(X, leaf_size=4).query(q, k=k)
        d_brute = np.sort(euclidean_distances(q, X), axis=1)[:, :k]
        np.testing.assert_allclose(np.sort(d_tree, axis=1), d_brute, atol=1e-8)


class TestKNNClassifier:
    def test_1nn_memorises_training_set(self, rng):
        X = rng.normal(size=(30, 2))
        y = rng.integers(0, 3, 30)
        knn = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        np.testing.assert_array_equal(knn.predict(X), y)

    def test_3nn_majority_vote(self):
        X = np.array([[0.0], [0.1], [0.2], [10.0]])
        y = np.array([0, 0, 1, 1])
        knn = KNeighborsClassifier(n_neighbors=3).fit(X, y)
        assert knn.predict(np.array([[0.05]]))[0] == 0

    def test_string_labels(self, rng):
        X = rng.normal(size=(20, 2))
        y = np.array(["a", "b"] * 10)
        knn = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert set(knn.predict(X)) <= {"a", "b"}

    def test_brute_and_tree_agree(self, rng):
        X = rng.normal(size=(60, 3))
        y = rng.integers(0, 4, 60)
        Q = rng.normal(size=(15, 3))
        tree = KNeighborsClassifier(n_neighbors=3, algorithm="kd_tree").fit(X, y)
        brute = KNeighborsClassifier(n_neighbors=3, algorithm="brute").fit(X, y)
        np.testing.assert_array_equal(tree.predict(Q), brute.predict(Q))

    def test_high_dimensional_uses_brute(self, rng):
        X = rng.normal(size=(20, 32))
        knn = KNeighborsClassifier(n_neighbors=1).fit(X, rng.integers(0, 2, 20))
        assert knn.tree_ is None

    def test_k_exceeds_training(self, rng):
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=10).fit(
                rng.normal(size=(5, 2)), np.zeros(5)
            )

    def test_bad_algorithm(self, rng):
        with pytest.raises(ValueError):
            KNeighborsClassifier(algorithm="ball_tree").fit(
                rng.normal(size=(5, 2)), np.zeros(5)
            )

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            KNeighborsClassifier().fit(rng.normal(size=(5, 2)), np.zeros(6))
