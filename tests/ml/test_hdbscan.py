"""HDBSCAN: every pipeline stage plus the estimator."""

import numpy as np
import pytest

from repro.ml.hdbscan import HDBSCAN
from repro.ml.hdbscan.condense import condense_tree
from repro.ml.hdbscan.core import core_distances, mutual_reachability
from repro.ml.hdbscan.extract import cluster_stabilities, extract_clusters
from repro.ml.hdbscan.hierarchy import single_linkage
from repro.ml.hdbscan.mst import minimum_spanning_tree
from repro.ml.metrics import euclidean_distances


def blobs(rng, centers, n=25, spread=0.3):
    return np.vstack([rng.normal(c, spread, (n, len(c))) for c in centers])


class TestCoreDistances:
    def test_kth_neighbour_distance(self):
        X = np.array([[0.0], [1.0], [2.0], [10.0]])
        d = euclidean_distances(X, X)
        core = core_distances(d, min_samples=2)
        # Point 0's 2nd neighbour (beyond itself) is at distance 2.
        assert core[0] == pytest.approx(2.0)
        assert core[3] == pytest.approx(9.0)

    def test_min_samples_bounds(self):
        d = euclidean_distances(np.arange(4.0)[:, None], np.arange(4.0)[:, None])
        with pytest.raises(ValueError):
            core_distances(d, min_samples=4)


class TestMutualReachability:
    def test_at_least_euclidean(self, rng):
        X = rng.normal(size=(20, 3))
        mr = mutual_reachability(X, min_samples=3)
        d = euclidean_distances(X, X)
        off = ~np.eye(20, dtype=bool)
        assert np.all(mr[off] >= d[off] - 1e-12)

    def test_symmetric_zero_diagonal(self, rng):
        X = rng.normal(size=(15, 2))
        mr = mutual_reachability(X, min_samples=3)
        np.testing.assert_allclose(mr, mr.T)
        np.testing.assert_allclose(np.diag(mr), 0.0)


class TestMST:
    def test_edge_count_and_sorted(self, rng):
        X = rng.normal(size=(12, 2))
        mst = minimum_spanning_tree(euclidean_distances(X, X))
        assert mst.shape == (11, 3)
        assert np.all(np.diff(mst[:, 2]) >= 0)

    def test_spans_all_vertices(self, rng):
        X = rng.normal(size=(10, 2))
        mst = minimum_spanning_tree(euclidean_distances(X, X))
        vertices = set(mst[:, 0].astype(int)) | set(mst[:, 1].astype(int))
        assert vertices == set(range(10))

    def test_total_weight_matches_scipy(self, rng):
        from scipy.sparse.csgraph import minimum_spanning_tree as scipy_mst

        X = rng.normal(size=(25, 3))
        d = euclidean_distances(X, X)
        ours = minimum_spanning_tree(d)[:, 2].sum()
        theirs = scipy_mst(d).sum()
        assert ours == pytest.approx(theirs, rel=1e-9)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            minimum_spanning_tree(np.ones((3, 4)))

    def test_single_point(self):
        assert minimum_spanning_tree(np.zeros((1, 1))).shape == (0, 3)


class TestSingleLinkage:
    def test_linkage_shape_and_sizes(self, rng):
        X = rng.normal(size=(8, 2))
        mst = minimum_spanning_tree(euclidean_distances(X, X))
        linkage = single_linkage(mst)
        assert linkage.shape == (7, 4)
        assert linkage[-1, 3] == 8  # final merge holds everything

    def test_sizes_monotone(self, rng):
        X = rng.normal(size=(20, 2))
        mst = minimum_spanning_tree(euclidean_distances(X, X))
        linkage = single_linkage(mst)
        # Each row's size is at least 2 and at most n.
        assert np.all(linkage[:, 3] >= 2)
        assert np.all(linkage[:, 3] <= 20)


class TestCondensedTree:
    @pytest.fixture
    def tree(self, rng):
        X = blobs(rng, [(0, 0), (10, 10)], n=20)
        mr = mutual_reachability(X, min_samples=5)
        return condense_tree(single_linkage(minimum_spanning_tree(mr)), 5)

    def test_root_is_n_points(self, tree):
        assert tree.n_points == 40
        assert int(tree.parent.min()) == 40

    def test_every_point_appears_once(self, tree):
        points = tree.child[tree.child_size == 1]
        assert sorted(points.tolist()) == list(range(40))

    def test_two_blob_split(self, tree):
        assert len(tree.children_clusters(40)) == 2

    def test_rejects_small_mcs(self, rng):
        X = blobs(rng, [(0, 0)], n=10)
        linkage = single_linkage(
            minimum_spanning_tree(mutual_reachability(X, min_samples=3))
        )
        with pytest.raises(ValueError):
            condense_tree(linkage, 1)

    def test_stabilities_nonnegative(self, tree):
        stability = cluster_stabilities(tree)
        assert all(v >= 0 for v in stability.values())


class TestHDBSCANEstimator:
    def test_recovers_blobs(self, rng):
        X = blobs(rng, [(0, 0), (10, 10), (0, 10)])
        h = HDBSCAN(min_cluster_size=10).fit(X)
        assert h.n_clusters_ == 3
        # Every blob coherently labelled.
        for start in range(0, 75, 25):
            labels = h.labels_[start : start + 25]
            labels = labels[labels >= 0]
            assert len(np.unique(labels)) == 1

    def test_noise_points_labelled_minus_one(self, rng):
        X = np.vstack(
            [blobs(rng, [(0, 0), (20, 20)], n=30), [[10.0, 10.0]]]
        )
        h = HDBSCAN(min_cluster_size=10).fit(X)
        assert h.labels_[-1] == -1

    def test_uniform_noise_mostly_unclustered(self, rng):
        X = rng.uniform(0, 1, (60, 2))
        h = HDBSCAN(min_cluster_size=25).fit(X)
        assert h.n_clusters_ <= 1

    def test_fit_predict(self, rng):
        X = blobs(rng, [(0, 0), (8, 8)])
        h = HDBSCAN(min_cluster_size=10)
        np.testing.assert_array_equal(h.fit_predict(X), h.labels_)

    def test_medoids_one_per_cluster_and_member(self, rng):
        X = blobs(rng, [(0, 0), (9, 9)])
        h = HDBSCAN(min_cluster_size=10).fit(X)
        medoids = h.cluster_medoids()
        assert len(medoids) == h.n_clusters_
        for label, medoid in enumerate(medoids):
            assert h.labels_[medoid] == label

    def test_medoids_are_central(self, rng):
        X = blobs(rng, [(0, 0), (9, 9)], spread=0.2)
        h = HDBSCAN(min_cluster_size=10).fit(X)
        for label, medoid in enumerate(h.cluster_medoids()):
            members = X[h.labels_ == label]
            center = members.mean(axis=0)
            assert np.linalg.norm(X[medoid] - center) < 0.25

    def test_min_samples_defaults_to_mcs(self, rng):
        X = blobs(rng, [(0, 0), (8, 8)])
        a = HDBSCAN(min_cluster_size=8).fit(X)
        b = HDBSCAN(min_cluster_size=8, min_samples=8).fit(X)
        np.testing.assert_array_equal(a.labels_, b.labels_)

    def test_too_few_samples(self, rng):
        with pytest.raises(ValueError):
            HDBSCAN(min_cluster_size=10).fit(rng.normal(size=(5, 2)))

    def test_no_cluster_medoids_raises(self, rng):
        X = rng.uniform(0, 1, (40, 2))
        h = HDBSCAN(min_cluster_size=30).fit(X)
        if h.n_clusters_ == 0:
            with pytest.raises(ValueError):
                h.cluster_medoids()

    def test_varying_density_clusters(self, rng):
        # A tight cluster and a loose one; density-based methods should
        # find both where a global-threshold method could not.
        tight = rng.normal(0, 0.1, (30, 2))
        loose = rng.normal((12, 12), 1.2, (30, 2))
        X = np.vstack([tight, loose])
        h = HDBSCAN(min_cluster_size=10).fit(X)
        assert h.n_clusters_ == 2
