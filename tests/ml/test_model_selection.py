"""Splitting and cross-validation."""

import numpy as np
import pytest

from repro.ml.model_selection import KFold, cross_val_score, train_test_split
from repro.ml.tree.classifier import DecisionTreeClassifier


class TestTrainTestSplit:
    def test_paper_split_sizes(self):
        # 170 shapes at test_size 0.2 -> 136/34, the paper's split.
        X = np.arange(170 * 2).reshape(170, 2)
        Xtr, Xte = train_test_split(X, test_size=0.2, random_state=0)
        assert len(Xtr) == 136 and len(Xte) == 34

    def test_partition_is_exact(self):
        X = np.arange(50)
        tr, te = train_test_split(X, test_size=0.3, random_state=1)
        assert sorted(np.concatenate([tr, te]).tolist()) == list(range(50))

    def test_multiple_arrays_aligned(self):
        X = np.arange(20)
        y = np.arange(20) * 10
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.25, random_state=2)
        np.testing.assert_array_equal(ytr, Xtr * 10)
        np.testing.assert_array_equal(yte, Xte * 10)

    def test_reproducible(self):
        X = np.arange(30)
        a = train_test_split(X, random_state=5)
        b = train_test_split(X, random_state=5)
        np.testing.assert_array_equal(a[0], b[0])

    def test_no_shuffle(self):
        X = np.arange(10)
        tr, te = train_test_split(X, test_size=0.2, shuffle=False)
        np.testing.assert_array_equal(te, [0, 1])

    def test_absolute_count(self):
        X = np.arange(10)
        tr, te = train_test_split(X, test_size=3, random_state=0)
        assert len(te) == 3

    def test_list_inputs(self):
        items = [f"s{i}" for i in range(10)]
        tr, te = train_test_split(items, test_size=0.2, random_state=0)
        assert isinstance(tr, list) and len(tr) == 8

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            train_test_split(np.arange(5), np.arange(6))

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(np.arange(5), test_size=1.5)


class TestKFold:
    def test_folds_partition(self):
        X = np.arange(23)
        seen = []
        for train_idx, test_idx in KFold(n_splits=5).split(X):
            assert len(np.intersect1d(train_idx, test_idx)) == 0
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(23))

    def test_shuffled_folds_differ_by_seed(self):
        X = np.arange(20)
        a = [t.tolist() for _, t in KFold(5, shuffle=True, random_state=0).split(X)]
        b = [t.tolist() for _, t in KFold(5, shuffle=True, random_state=1).split(X)]
        assert a != b

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(np.arange(3)))

    def test_invalid_n_splits(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)


class TestCrossValScore:
    def test_scores_shape_and_range(self, rng):
        X = np.vstack([rng.normal(0, 1, (30, 2)), rng.normal(5, 1, (30, 2))])
        y = np.repeat([0, 1], 30)
        scores = cross_val_score(
            DecisionTreeClassifier(max_depth=3), X, y, cv=5, random_state=0
        )
        assert scores.shape == (5,)
        assert np.all((0.0 <= scores) & (scores <= 1.0))
        assert scores.mean() > 0.8
