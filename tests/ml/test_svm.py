"""SMO-trained SVC."""

import numpy as np
import pytest

from repro.ml.svm import SVC, _resolve_gamma


@pytest.fixture
def linearly_separable(rng):
    X = np.vstack([rng.normal(-2, 0.5, (30, 2)), rng.normal(2, 0.5, (30, 2))])
    y = np.repeat([0, 1], 30)
    return X, y


class TestBinary:
    def test_linear_separable(self, linearly_separable):
        X, y = linearly_separable
        svc = SVC(kernel="linear", random_state=0).fit(X, y)
        assert svc.score(X, y) >= 0.95

    def test_rbf_separable(self, linearly_separable):
        X, y = linearly_separable
        svc = SVC(kernel="rbf", random_state=0).fit(X, y)
        assert svc.score(X, y) >= 0.95

    def test_rbf_nonlinear_rings(self, rng):
        # Inner blob vs surrounding ring: not linearly separable.
        inner = rng.normal(0, 0.3, (40, 2))
        angles = rng.uniform(0, 2 * np.pi, 40)
        ring = np.column_stack([3 * np.cos(angles), 3 * np.sin(angles)])
        ring += rng.normal(0, 0.1, ring.shape)
        X = np.vstack([inner, ring])
        y = np.repeat([0, 1], 40)
        rbf = SVC(kernel="rbf", random_state=0).fit(X, y)
        lin = SVC(kernel="linear", random_state=0).fit(X, y)
        assert rbf.score(X, y) > lin.score(X, y)
        assert rbf.score(X, y) >= 0.9

    def test_decision_function_shape(self, linearly_separable):
        X, y = linearly_separable
        svc = SVC(kernel="linear", random_state=0).fit(X, y)
        assert svc.decision_function(X).shape == (60, 2)


class TestMulticlass:
    def test_three_blobs(self, rng):
        X = np.vstack([rng.normal(c, 0.4, (25, 2)) for c in ((0, 0), (5, 5), (0, 5))])
        y = np.repeat([0, 1, 2], 25)
        svc = SVC(kernel="linear", C=10.0, random_state=0).fit(X, y)
        assert svc.score(X, y) >= 0.95

    def test_string_labels(self, rng):
        X = np.vstack([rng.normal(-2, 0.3, (15, 1)), rng.normal(2, 0.3, (15, 1))])
        y = np.array(["neg"] * 15 + ["pos"] * 15)
        svc = SVC(kernel="linear", random_state=0).fit(X, y)
        assert set(svc.predict(X)) <= {"neg", "pos"}


class TestDegenerateRegimes:
    def test_rbf_on_unscaled_huge_features_collapses(self, rng):
        """The Table I RadialSVM mechanism: gamma='auto' on raw
        matrix-size-scale features makes K approach identity and the
        prediction constant."""
        X = rng.uniform(1, 1e5, (60, 3))
        y = rng.integers(0, 4, 60)
        svc = SVC(kernel="rbf", gamma="auto", random_state=0).fit(X, y)
        # Training points sit on the kernel matrix's diagonal and can be
        # memorised; *unseen* points see a ~zero kernel vector, so the
        # decision degenerates to the per-class biases -> one constant.
        unseen = rng.uniform(1, 1e5, (40, 3))
        assert len(set(svc.predict(unseen).tolist())) == 1

    def test_single_class_rejected(self, rng):
        with pytest.raises(ValueError, match="two classes"):
            SVC().fit(rng.normal(size=(5, 2)), np.zeros(5))

    def test_invalid_c(self, rng):
        X = rng.normal(size=(6, 2))
        y = np.array([0, 1] * 3)
        with pytest.raises(ValueError):
            SVC(C=0.0).fit(X, y)

    def test_invalid_kernel(self, rng):
        X = rng.normal(size=(6, 2))
        y = np.array([0, 1] * 3)
        with pytest.raises(ValueError, match="unsupported kernel"):
            SVC(kernel="poly").fit(X, y)


class TestGammaResolution:
    def test_scale(self, rng):
        X = rng.normal(size=(10, 4))
        assert _resolve_gamma("scale", X) == pytest.approx(1.0 / (4 * X.var()))

    def test_auto(self, rng):
        X = rng.normal(size=(10, 4))
        assert _resolve_gamma("auto", X) == pytest.approx(0.25)

    def test_numeric(self, rng):
        assert _resolve_gamma(0.5, rng.normal(size=(3, 2))) == 0.5

    def test_rejects_nonpositive(self, rng):
        with pytest.raises(ValueError):
            _resolve_gamma(0.0, rng.normal(size=(3, 2)))

    def test_constant_data_scale(self):
        X = np.ones((5, 2))
        assert _resolve_gamma("scale", X) == 1.0


class TestDeterminism:
    def test_reproducible(self, linearly_separable):
        X, y = linearly_separable
        a = SVC(kernel="rbf", random_state=42).fit(X, y).predict(X)
        b = SVC(kernel="rbf", random_state=42).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)
