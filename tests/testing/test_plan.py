"""FaultPlan: deterministic decisions, poisoning, transient faults."""

import pytest

from repro.kernels.params import config_space
from repro.sycl.exceptions import DeviceError, DeviceTimeoutError
from repro.testing import FaultKind, FaultPlan, InjectedFault, raise_fault
from repro.workloads.gemm import GemmShape

CONFIGS = config_space()
SHAPE = GemmShape(m=128, k=64, n=256)


class TestDecisions:
    def test_zero_rate_plan_never_faults(self):
        plan = FaultPlan(seed=3, rate=0.0)
        assert all(
            plan.fault_for(SHAPE, c) is None for c in CONFIGS[:50]
        )
        assert plan.fault_for_submission("matmul", 0) is None

    def test_full_rate_plan_always_faults(self):
        plan = FaultPlan(seed=3, rate=1.0)
        assert all(
            plan.fault_for(SHAPE, c) is not None for c in CONFIGS[:50]
        )

    def test_same_seed_same_decisions(self):
        a = FaultPlan(seed=11, rate=0.1)
        b = FaultPlan(seed=11, rate=0.1)
        assert [a.fault_for(SHAPE, c) for c in CONFIGS] == [
            b.fault_for(SHAPE, c) for c in CONFIGS
        ]

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, rate=0.5)
        b = FaultPlan(seed=2, rate=0.5)
        assert [a.fault_for(SHAPE, c) for c in CONFIGS] != [
            b.fault_for(SHAPE, c) for c in CONFIGS
        ]

    def test_rate_roughly_respected(self):
        plan = FaultPlan(seed=5, rate=0.2)
        hits = sum(
            plan.fault_for(s, c) is not None
            for s in (SHAPE, GemmShape(m=64, k=64, n=64))
            for c in CONFIGS
        )
        assert 0.1 < hits / (2 * len(CONFIGS)) < 0.3

    def test_decision_is_order_independent(self):
        plan = FaultPlan(seed=9, rate=0.3)
        forward = [plan.fault_for(SHAPE, c) for c in CONFIGS]
        backward = [plan.fault_for(SHAPE, c) for c in reversed(CONFIGS)]
        assert forward == list(reversed(backward))

    def test_mixed_kinds_both_occur(self):
        plan = FaultPlan(seed=5, rate=1.0)
        kinds = {plan.fault_for(SHAPE, c) for c in CONFIGS}
        assert kinds == {FaultKind.DEVICE_ERROR, FaultKind.TIMEOUT}

    def test_fixed_kind_is_honoured(self):
        plan = FaultPlan(seed=5, rate=1.0, kind=FaultKind.TIMEOUT)
        assert all(
            plan.fault_for(SHAPE, c) is FaultKind.TIMEOUT
            for c in CONFIGS[:20]
        )


class TestPoisoning:
    def test_poisoned_cell_faults_and_others_do_not(self):
        plan = FaultPlan().poison(SHAPE, CONFIGS[3])
        assert plan.fault_for(SHAPE, CONFIGS[3]) is FaultKind.DEVICE_ERROR
        assert plan.fault_for(SHAPE, CONFIGS[4]) is None

    def test_transient_poison_recovers_after_attempts(self):
        plan = FaultPlan().poison(SHAPE, CONFIGS[0], fail_attempts=2)
        assert plan.fault_for(SHAPE, CONFIGS[0], attempt=0) is not None
        assert plan.fault_for(SHAPE, CONFIGS[0], attempt=1) is not None
        assert plan.fault_for(SHAPE, CONFIGS[0], attempt=2) is None

    def test_hard_poison_never_recovers(self):
        plan = FaultPlan().poison(SHAPE, CONFIGS[0])
        assert plan.fault_for(SHAPE, CONFIGS[0], attempt=99) is not None

    def test_poisoned_submission(self):
        plan = FaultPlan().poison_submission("gemm", 2, kind=FaultKind.TIMEOUT)
        assert plan.fault_for_submission("gemm", 0) is None
        assert plan.fault_for_submission("gemm", 2) is FaultKind.TIMEOUT
        assert plan.fault_for_submission("other", 2) is None

    def test_poison_chains(self):
        plan = (
            FaultPlan()
            .poison(SHAPE, CONFIGS[0])
            .poison_submission("gemm", 0)
        )
        assert plan.fault_for(SHAPE, CONFIGS[0]) is not None
        assert plan.fault_for_submission("gemm", 0) is not None


class TestValidationAndRaising:
    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            FaultPlan(rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(rate=-0.1)

    def test_invalid_fail_attempts(self):
        with pytest.raises(ValueError):
            FaultPlan(fail_attempts=0)

    def test_invalid_submission_index(self):
        with pytest.raises(ValueError):
            FaultPlan().poison_submission("gemm", -1)

    def test_raise_fault_kinds(self):
        with pytest.raises(DeviceError):
            raise_fault(FaultKind.DEVICE_ERROR, "ctx")
        with pytest.raises(DeviceTimeoutError):
            raise_fault(FaultKind.TIMEOUT, "ctx")

    def test_timeout_is_a_device_error(self):
        # Handlers written for DeviceError must also catch timeouts.
        with pytest.raises(DeviceError):
            raise_fault(FaultKind.TIMEOUT, "ctx")

    def test_injected_fault_fires_on(self):
        assert InjectedFault(FaultKind.TIMEOUT).fires_on(1000)
        transient = InjectedFault(FaultKind.TIMEOUT, fail_attempts=1)
        assert transient.fires_on(0)
        assert not transient.fires_on(1)
