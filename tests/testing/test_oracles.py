"""Differential oracles: every fast path pinned to its reference path,
>= 200 randomized cases each, all seeds fixed."""

import numpy as np
import pytest

from repro.bench.runner import BenchmarkRunner
from repro.core.pruning import TopNPruner
from repro.core.selection.classifiers import make_selector
from repro.core.selection.dynamic import DynamicTrialSelector
from repro.kernels.params import config_space
from repro.sycl.device import Device
from repro.testing import (
    OracleReport,
    adaptive_select_oracle,
    batch_select_oracle,
    queue_equivalence_oracle,
    random_shapes,
    random_tree,
    tree_apply_oracle,
)
from repro.utils.rng import stream


class TestTreeApplyOracle:
    def test_200_randomized_cases_agree(self):
        report = tree_apply_oracle(cases=200, seed=0).raise_on_failure()
        assert report.ok and report.cases == 200

    def test_deterministic_across_runs(self):
        a = tree_apply_oracle(cases=50, seed=7)
        b = tree_apply_oracle(cases=50, seed=7)
        assert a == b

    def test_single_leaf_tree_routes_everything_to_root(self):
        rng = stream(0, "test", "single-leaf")
        tree = random_tree(rng, leaf_probability=1.0)
        assert tree.node_count == 1
        X = rng.standard_normal((32, 4))
        np.testing.assert_array_equal(tree.apply(X), np.zeros(32, dtype=np.intp))
        np.testing.assert_array_equal(tree.apply(X), tree.apply_loop(X))

    def test_empty_batch(self):
        rng = stream(0, "test", "empty-batch")
        tree = random_tree(rng)
        X = np.empty((0, 4))
        assert tree.apply(X).shape == (0,)
        np.testing.assert_array_equal(tree.apply(X), tree.apply_loop(X))


class TestBatchSelectOracle:
    @pytest.fixture(scope="class")
    def pruned_and_dataset(self, small_dataset):
        return TopNPruner().select(small_dataset, 4), small_dataset

    def test_decision_tree_selector(self, pruned_and_dataset):
        pruned, dataset = pruned_and_dataset
        policy = make_selector("DecisionTree", pruned, random_state=0).fit(dataset)
        batch_select_oracle(policy, cases=200, seed=1).raise_on_failure()

    def test_dynamic_trial_selector(self, pruned_and_dataset):
        pruned, _ = pruned_and_dataset
        runner = BenchmarkRunner(
            Device.r9_nano(),
            configs=config_space(tile_sizes=(1, 2), work_groups=((8, 8),)),
        )
        policy = DynamicTrialSelector(runner, pruned, trial_iterations=1)
        batch_select_oracle(policy, cases=200, seed=2).raise_on_failure()

    def test_oracle_detects_a_lying_batch_path(self):
        class _Lying:
            def select(self, shape):
                return ("scalar", shape.m)

            def select_batch(self, shapes):
                # Deliberately wrong for one specific shape in the stream.
                return tuple(
                    ("batch", s.m) if i == 3 else ("scalar", s.m)
                    for i, s in enumerate(shapes)
                )

        report = batch_select_oracle(_Lying(), cases=16, seed=3, batch=16)
        assert not report.ok
        with pytest.raises(AssertionError, match="select_batch chose"):
            report.raise_on_failure()


class TestAdaptiveSelectOracle:
    @pytest.fixture(scope="class")
    def tree_policy(self, small_dataset):
        pruned = TopNPruner().select(small_dataset, 4)
        return make_selector("DecisionTree", pruned, random_state=0).fit(
            small_dataset
        )

    def test_200_randomized_cases_agree(self, tree_policy):
        report = adaptive_select_oracle(
            tree_policy, cases=200, seed=0
        ).raise_on_failure()
        assert report.ok and report.cases >= 200

    def test_deterministic_across_runs(self, tree_policy):
        a = adaptive_select_oracle(tree_policy, cases=50, seed=7)
        b = adaptive_select_oracle(tree_policy, cases=50, seed=7)
        assert a == b

    def test_oracle_detects_a_stateful_policy(self):
        # A policy whose answers depend on call order breaks the
        # pass-through equivalence: the reference and adaptive services
        # memoise different answers per shape, and the oracle must see
        # the disagreement.  (No library/pruned attribute either, so
        # the dummy-candidate fallback path is exercised too.)
        class _Stateful:
            def __init__(self):
                self.calls = 0

            def select(self, shape):
                self.calls += 1
                return ("answer", self.calls)

            def select_batch(self, shapes):
                return tuple(self.select(s) for s in shapes)

        report = adaptive_select_oracle(_Stateful(), cases=32, seed=1)
        assert not report.ok
        with pytest.raises(AssertionError, match="adaptive chose"):
            report.raise_on_failure()


class TestQueueEquivalenceOracle:
    def test_200_randomized_cases_agree(self):
        report = queue_equivalence_oracle(cases=200, seed=4).raise_on_failure()
        assert report.ok and report.cases == 200

    def test_other_device(self):
        queue_equivalence_oracle(
            cases=25, seed=5, device=Device.desktop()
        ).raise_on_failure()


class TestGenerators:
    def test_random_shapes_are_valid_and_repeat(self):
        rng = stream(0, "test", "shapes")
        shapes = random_shapes(rng, 200)
        assert len(shapes) == 200
        assert all(s.m >= 1 and s.k >= 1 and s.n >= 1 for s in shapes)
        assert len(set(shapes)) < 200  # repeats occurred

    def test_random_tree_respects_depth(self):
        rng = stream(0, "test", "tree-depth")
        tree = random_tree(rng, max_depth=3, leaf_probability=0.0)
        # A full binary tree of depth 3 has 2**4 - 1 nodes.
        assert tree.node_count == 15

    def test_report_repr_and_ok(self):
        good = OracleReport("demo", 10, ())
        bad = OracleReport("demo", 10, ("case 0: boom",))
        assert good.ok and "ok" in repr(good)
        assert not bad.ok and "1 mismatches" in repr(bad)
