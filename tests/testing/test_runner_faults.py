"""BenchmarkRunner under injected faults: skip-and-record, retries,
NaN-masked datasets flowing through pruning and selection."""

import numpy as np
import pytest

from repro.bench.runner import BenchmarkRunner, RunnerConfig
from repro.core.dataset import PerformanceDataset
from repro.core.pruning import TopNPruner
from repro.core.pruning.evaluate import achievable_performance
from repro.core.selection.classifiers import make_selector
from repro.core.selection.selector import selection_labels
from repro.kernels.params import config_space
from repro.sycl.device import Device
from repro.testing import FaultKind, FaultPlan, faulty_runner
from repro.workloads.gemm import GemmShape

SHAPES = (
    GemmShape(m=128, k=64, n=128),
    GemmShape(m=1, k=1024, n=512),
    GemmShape(m=3136, k=64, n=64),
    GemmShape(m=256, k=256, n=256),
)
SMALL_CONFIGS = config_space(tile_sizes=(1, 2, 4), work_groups=((8, 8), (16, 16)))


class TestPoisonedSweepRegression:
    def test_one_poisoned_config_keeps_639_cells(self):
        """The headline regression: a single failing configuration must
        not zero out the sweep — 639 of 640 cells stay valid."""
        shape = SHAPES[0]
        configs = config_space()
        plan = FaultPlan().poison(shape, configs[100])
        runner = faulty_runner(Device.r9_nano(), plan)
        result = runner.run([shape])
        assert result.gflops.shape == (1, 640)
        assert int(np.isfinite(result.gflops).sum()) == 639
        assert result.n_failed_cells == 1
        assert np.isnan(result.gflops[0, 100])
        cells = result.failures.failed_cells()
        assert cells == ((shape, configs[100]),)

    def test_fault_free_cells_bit_identical_to_clean_run(self):
        plan = FaultPlan().poison(SHAPES[0], SMALL_CONFIGS[2])
        faulted = faulty_runner(
            Device.r9_nano(), plan, configs=SMALL_CONFIGS
        ).run(SHAPES)
        clean = BenchmarkRunner(
            Device.r9_nano(), configs=SMALL_CONFIGS
        ).run(SHAPES)
        mask = np.isfinite(faulted.gflops)
        np.testing.assert_array_equal(
            faulted.gflops[mask], clean.gflops[mask]
        )

    def test_sweep_determinism_under_faults(self):
        def sweep():
            plan = FaultPlan(seed=13, rate=0.1)
            return faulty_runner(
                Device.r9_nano(), plan, configs=SMALL_CONFIGS
            ).run(SHAPES)

        a, b = sweep(), sweep()
        np.testing.assert_array_equal(a.gflops, b.gflops)
        assert a.failures.failed_cells() == b.failures.failed_cells()


class TestRetrySemantics:
    def test_transient_fault_recovered_by_retry(self):
        plan = FaultPlan().poison(SHAPES[0], SMALL_CONFIGS[0], fail_attempts=1)
        rc = RunnerConfig(max_retries=1, retry_backoff_s=0.25)
        result = faulty_runner(
            Device.r9_nano(), plan, configs=SMALL_CONFIGS, runner_config=rc
        ).run(SHAPES[:1])
        assert result.n_failed_cells == 0
        assert len(result.failures) == 1
        record = result.failures.records[0]
        assert not record.fatal
        assert record.backoff_s == pytest.approx(0.25)
        assert result.failures.retries == 1

    def test_hard_fault_exhausts_retries(self):
        plan = FaultPlan().poison(
            SHAPES[0], SMALL_CONFIGS[0], kind=FaultKind.TIMEOUT
        )
        rc = RunnerConfig(max_retries=2, retry_backoff_s=0.1)
        result = faulty_runner(
            Device.r9_nano(), plan, configs=SMALL_CONFIGS, runner_config=rc
        ).run(SHAPES[:1])
        assert result.n_failed_cells == 1
        records = result.failures.records
        assert len(records) == 3  # initial + 2 retries
        assert [r.attempt for r in records] == [0, 1, 2]
        assert records[-1].fatal and not records[0].fatal
        assert {r.kind for r in records} == {"DeviceTimeoutError"}
        # Exponential backoff charged for the attempts that retried.
        assert result.failures.total_backoff_seconds == pytest.approx(
            0.1 * (1 + 2)
        )

    def test_recovered_measurement_equals_clean_value(self):
        # A retried cell re-measures through the same deterministic noise
        # streams, so recovery reproduces the clean number exactly.
        plan = FaultPlan().poison(SHAPES[0], SMALL_CONFIGS[0], fail_attempts=1)
        rc = RunnerConfig(max_retries=1)
        faulted = faulty_runner(
            Device.r9_nano(), plan, configs=SMALL_CONFIGS, runner_config=rc
        ).run(SHAPES[:1])
        clean = BenchmarkRunner(
            Device.r9_nano(), configs=SMALL_CONFIGS
        ).run(SHAPES[:1])
        np.testing.assert_array_equal(faulted.gflops, clean.gflops)

    def test_runner_config_validation(self):
        with pytest.raises(ValueError):
            RunnerConfig(max_retries=-1)
        with pytest.raises(ValueError):
            RunnerConfig(retry_backoff_s=-0.5)


class TestNaNMaskedDataset:
    @pytest.fixture()
    def faulted_dataset(self):
        plan = FaultPlan(seed=4, rate=0.1)
        result = faulty_runner(
            Device.r9_nano(), plan, configs=SMALL_CONFIGS
        ).run(SHAPES)
        return PerformanceDataset.from_benchmark(result)

    def test_dataset_accepts_nan_cells(self, faulted_dataset):
        assert faulted_dataset.n_failed_cells > 0
        assert faulted_dataset.failed_mask.sum() == faulted_dataset.n_failed_cells

    def test_normalized_masks_failures_to_zero(self, faulted_dataset):
        normalized = faulted_dataset.normalized()
        assert np.all(np.isfinite(normalized))
        assert np.all(normalized[faulted_dataset.failed_mask] == 0.0)
        assert np.all(normalized.max(axis=1) == 1.0)

    def test_best_config_never_a_failed_cell(self, faulted_dataset):
        best = faulted_dataset.best_config_indices()
        rows = np.arange(faulted_dataset.n_shapes)
        assert not np.any(faulted_dataset.failed_mask[rows, best])
        assert np.all(np.isfinite(faulted_dataset.best_gflops()))

    def test_selection_labels_skip_failed_cells(self, faulted_dataset):
        pruned = TopNPruner().select(faulted_dataset, 4)
        labels = selection_labels(faulted_dataset, pruned)
        cols = np.asarray(pruned.indices)
        rows = np.arange(faulted_dataset.n_shapes)
        chosen = cols[labels]
        assert not np.any(faulted_dataset.failed_mask[rows, chosen])

    def test_pruning_and_selection_run_end_to_end(self, faulted_dataset):
        pruned = TopNPruner().select(faulted_dataset, 4)
        score = achievable_performance(pruned, faulted_dataset)
        assert 0.0 < score <= 1.0
        selector = make_selector(
            "DecisionTree", pruned, random_state=0
        ).fit(faulted_dataset)
        config = selector.select(SHAPES[0])
        assert config in pruned.configs

    def test_all_failed_shape_row_rejected(self):
        gflops = np.ones((2, 3))
        gflops[0, :] = np.nan
        shapes = (GemmShape(m=8, k=8, n=8), GemmShape(m=16, k=8, n=8))
        with pytest.raises(ValueError):
            PerformanceDataset(
                shapes=shapes,
                configs=tuple(SMALL_CONFIGS[:3]),
                gflops=gflops,
            )
