"""FaultyModel / FaultyQueue / FaultyDevice wrappers and the queue's
failure bookkeeping."""

import pickle

import numpy as np
import pytest

from repro.kernels.matmul import TiledMatmulKernel, matmul
from repro.kernels.params import config_space
from repro.perfmodel.model import GemmPerfModel
from repro.sycl.buffer import AccessMode, Buffer
from repro.sycl.device import Device
from repro.sycl.exceptions import DeviceError, DeviceTimeoutError
from repro.sycl.queue import Queue
from repro.testing import (
    FaultKind,
    FaultPlan,
    FaultyDevice,
    FaultyModel,
    FaultyQueue,
)
from repro.workloads.gemm import GemmShape

CONFIGS = config_space(tile_sizes=(1, 2, 4), work_groups=((8, 8), (16, 16)))
SHAPE = GemmShape(m=96, k=48, n=64)


@pytest.fixture
def device():
    return Device.r9_nano()


class TestFaultyModel:
    def test_passthrough_without_faults(self, device):
        base = GemmPerfModel(device)
        wrapped = FaultyModel(GemmPerfModel(device), FaultPlan(rate=0.0))
        np.testing.assert_array_equal(
            base.measured_times_seconds(SHAPE, CONFIGS[0], iterations=4),
            wrapped.measured_times_seconds(SHAPE, CONFIGS[0], iterations=4),
        )

    def test_poisoned_cell_raises(self, device):
        plan = FaultPlan().poison(SHAPE, CONFIGS[1])
        wrapped = FaultyModel(GemmPerfModel(device), plan)
        with pytest.raises(DeviceError):
            wrapped.measured_times_seconds(SHAPE, CONFIGS[1], iterations=4)

    def test_timeout_kind_raises_timeout(self, device):
        plan = FaultPlan().poison(SHAPE, CONFIGS[1], kind=FaultKind.TIMEOUT)
        wrapped = FaultyModel(GemmPerfModel(device), plan)
        with pytest.raises(DeviceTimeoutError):
            wrapped.measured_times_seconds(SHAPE, CONFIGS[1], iterations=4)

    def test_attempt_counting_and_transient_recovery(self, device):
        plan = FaultPlan().poison(SHAPE, CONFIGS[0], fail_attempts=2)
        wrapped = FaultyModel(GemmPerfModel(device), plan)
        for _ in range(2):
            with pytest.raises(DeviceError):
                wrapped.measured_times_seconds(SHAPE, CONFIGS[0], iterations=4)
        # Third attempt recovers.
        times = wrapped.measured_times_seconds(SHAPE, CONFIGS[0], iterations=4)
        assert np.all(times > 0)
        assert wrapped.attempts_for(SHAPE, CONFIGS[0]) == 3

    def test_reset_restarts_attempts(self, device):
        plan = FaultPlan().poison(SHAPE, CONFIGS[0], fail_attempts=1)
        wrapped = FaultyModel(GemmPerfModel(device), plan)
        with pytest.raises(DeviceError):
            wrapped.measured_times_seconds(SHAPE, CONFIGS[0], iterations=2)
        wrapped.measured_times_seconds(SHAPE, CONFIGS[0], iterations=2)
        wrapped.reset()
        assert wrapped.attempts_for(SHAPE, CONFIGS[0]) == 0
        with pytest.raises(DeviceError):
            wrapped.measured_times_seconds(SHAPE, CONFIGS[0], iterations=2)

    def test_delegates_model_surface(self, device):
        wrapped = FaultyModel(GemmPerfModel(device), FaultPlan())
        assert wrapped.time_seconds(SHAPE, CONFIGS[0]) > 0
        assert wrapped.seed == GemmPerfModel(device).seed

    def test_picklable_for_process_pools(self, device):
        plan = FaultPlan(seed=3, rate=0.1).poison(SHAPE, CONFIGS[0])
        wrapped = FaultyModel(GemmPerfModel(device), plan)
        clone = pickle.loads(pickle.dumps(wrapped))
        with pytest.raises(DeviceError):
            clone.measured_times_seconds(SHAPE, CONFIGS[0], iterations=2)


class TestFaultyQueue:
    def test_fault_free_submission_delegates(self, device):
        fq = FaultyQueue(Queue(device), FaultPlan(rate=0.0))
        rng = np.random.default_rng(0)
        a = rng.standard_normal((16, 8)).astype(np.float32)
        b = rng.standard_normal((8, 12)).astype(np.float32)
        c, event = matmul(fq, a, b, CONFIGS[0])
        np.testing.assert_allclose(c, a.astype(np.float64) @ b, rtol=1e-5)
        assert event.profiling_duration_ns > 0
        assert len(fq.submission_log) == 1
        assert not fq.failure_log

    def test_poisoned_submission_raises_and_logs(self, device):
        kernel_name = TiledMatmulKernel(CONFIGS[0]).name
        plan = FaultPlan().poison_submission(kernel_name, 1)
        fq = FaultyQueue(Queue(device), plan)
        rng = np.random.default_rng(0)
        a = rng.standard_normal((8, 8)).astype(np.float32)
        b = rng.standard_normal((8, 8)).astype(np.float32)
        matmul(fq, a, b, CONFIGS[0])  # submission 0 is fine
        with pytest.raises(DeviceError):
            matmul(fq, a, b, CONFIGS[0])  # submission 1 faults
        assert fq.submission_counts[kernel_name] == 2
        assert len(fq.failure_log) == 1
        assert fq.failure_log.records[0].where == kernel_name
        # The completed launch survives in the log; the queue stays usable.
        assert len(fq.submission_log) == 1
        matmul(fq, a, b, CONFIGS[0])
        assert len(fq.submission_log) == 2

    def test_faulted_submission_does_not_advance_clock(self, device):
        kernel_name = TiledMatmulKernel(CONFIGS[0]).name
        plan = FaultPlan().poison_submission(kernel_name, 0)
        fq = FaultyQueue(Queue(device), plan)
        rng = np.random.default_rng(0)
        a = rng.standard_normal((8, 8)).astype(np.float32)
        with pytest.raises(DeviceError):
            matmul(fq, a, a, CONFIGS[0])
        assert fq.device_time_ns == 0

    def test_requires_real_queue(self):
        with pytest.raises(TypeError):
            FaultyQueue(object(), FaultPlan())

    def test_delegated_properties(self, device):
        fq = FaultyQueue(Queue(device, enable_profiling=False), FaultPlan())
        assert fq.device == device
        assert not fq.profiling_enabled
        fq.wait()


class TestFaultyDevice:
    def test_is_a_device(self, device):
        fd = FaultyDevice(device, FaultPlan())
        assert isinstance(fd, Device)
        assert fd.spec == device.spec

    def test_queue_factory_injects_plan(self, device):
        kernel_name = TiledMatmulKernel(CONFIGS[0]).name
        plan = FaultPlan().poison_submission(kernel_name, 0)
        fd = FaultyDevice(device, plan)
        queue = fd.queue()
        assert queue.plan is plan
        rng = np.random.default_rng(0)
        a = rng.standard_normal((8, 8)).astype(np.float32)
        with pytest.raises(DeviceError):
            matmul(queue, a, a, CONFIGS[0])


class TestQueueFailureBookkeeping:
    """The Queue itself: partial logs and accessor release on failure."""

    class _ExplodingKernel(TiledMatmulKernel):
        def run(self, device, ndrange, accessors):
            raise DeviceError("kernel crashed mid-flight")

    def test_failed_run_records_and_releases(self, device):
        queue = Queue(device)
        kernel = self._ExplodingKernel(CONFIGS[0])
        buf_a = Buffer((8, 8))
        buf_b = Buffer((8, 8))
        buf_c = Buffer((8, 8))
        accs = (
            buf_a.get_access(AccessMode.READ),
            buf_b.get_access(AccessMode.READ),
            buf_c.get_access(AccessMode.WRITE),
        )
        with pytest.raises(DeviceError):
            queue.submit(kernel, kernel.nd_range_for(SHAPE), accs)
        assert queue.submission_log == []
        assert len(queue.failed_submissions) == 1
        name, message = queue.failed_submissions[0]
        assert name == kernel.name
        assert "crashed" in message
        # Accessors were released despite the failure: the write
        # generation advanced and the buffer remains usable.
        assert buf_c.write_generation == 1
        buf_c.get_access(AccessMode.READ_WRITE).release()

    def test_completed_work_survives_later_failure(self, device):
        queue = Queue(device)
        rng = np.random.default_rng(0)
        a = rng.standard_normal((8, 8)).astype(np.float32)
        matmul(queue, a, a, CONFIGS[0])
        kernel = self._ExplodingKernel(CONFIGS[0])
        with pytest.raises(DeviceError):
            matmul_through(queue, kernel, a)
        assert len(queue.submission_log) == 1
        assert len(queue.failed_submissions) == 1

    def test_validation_failure_is_recorded(self, device):
        queue = Queue(device)
        config = CONFIGS[0]
        kernel = TiledMatmulKernel(config)

        class _Greedy(TiledMatmulKernel):
            def resource_usage(self, device):
                from repro.sycl.kernel import ResourceUsage

                return ResourceUsage(vgprs_per_lane=10_000)

        greedy = _Greedy(config)
        buf = Buffer((8, 8))
        with pytest.raises(DeviceError):
            queue.submit(
                greedy,
                kernel.nd_range_for(GemmShape(m=8, k=8, n=8)),
                (buf, buf, buf),
            )
        assert len(queue.failed_submissions) == 1


def matmul_through(queue, kernel, a):
    """Submit a prepared kernel through the queue with fresh buffers."""
    shape = GemmShape(m=a.shape[0], k=a.shape[1], n=a.shape[1])
    buf_a = Buffer.from_array(a)
    buf_b = Buffer.from_array(a)
    buf_c = Buffer((a.shape[0], a.shape[1]))
    return queue.submit(
        kernel,
        kernel.nd_range_for(shape),
        (
            buf_a.get_access(AccessMode.READ),
            buf_b.get_access(AccessMode.READ),
            buf_c.get_access(AccessMode.WRITE),
        ),
    )
