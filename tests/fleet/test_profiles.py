"""The device-profile registry and the profile artifact codec."""

from __future__ import annotations

import pytest

from repro.fleet import (
    DEFAULT_FLEET,
    DeviceProfile,
    available_profiles,
    fleet_profiles,
    get_profile,
    register_profile,
)
from repro.fleet.profile import _REGISTRY
from repro.perfmodel.params import PerfModelParams
from repro.pipeline.codecs import get_codec
from repro.sycl.device import Device


@pytest.fixture
def scratch_registry():
    """Snapshot/restore the global registry around a mutating test."""
    saved = dict(_REGISTRY)
    yield
    _REGISTRY.clear()
    _REGISTRY.update(saved)


class TestRegistry:
    def test_default_fleet_is_registered(self):
        for device_id in DEFAULT_FLEET:
            assert get_profile(device_id).device_id == device_id

    def test_baseline_matches_paper_device(self):
        assert get_profile("r9-nano").spec == Device.from_preset("r9-nano").spec

    def test_profiles_span_the_three_axes(self):
        nano = get_profile("r9-nano").spec
        assert get_profile("compute-heavy").spec.compute_units > nano.compute_units
        assert (
            get_profile("bandwidth-lean").spec.dram_bandwidth_gbps
            < nano.dram_bandwidth_gbps
        )
        assert (
            get_profile("latency-bound").spec.kernel_launch_overhead_us
            > nano.kernel_launch_overhead_us
        )

    def test_unknown_id_names_known_profiles(self):
        with pytest.raises(ValueError, match="r9-nano"):
            get_profile("not-a-device")

    def test_duplicate_registration_refused(self, scratch_registry):
        profile = get_profile("r9-nano")
        with pytest.raises(ValueError, match="already registered"):
            register_profile(profile)
        register_profile(profile, replace=True)  # explicit replace is fine

    def test_fleet_profiles_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            fleet_profiles(("r9-nano", "r9-nano"))

    def test_available_profiles_sorted(self):
        names = available_profiles()
        assert names == sorted(names)
        assert set(DEFAULT_FLEET) <= set(names)


class TestDeviceProfile:
    def test_reserved_id_characters_rejected(self):
        spec = Device.from_preset("r9-nano").spec
        for bad in ("a@b", "a:b", "a/b", "a b", ""):
            with pytest.raises(ValueError):
                DeviceProfile(device_id=bad, spec=spec)

    def test_device_and_model_derive_from_profile(self):
        profile = get_profile("bandwidth-lean")
        assert profile.device().spec == profile.spec
        model = profile.perf_model(seed=7)
        assert model.params == PerfModelParams(alignment_penalty=0.20)


class TestProfileCodec:
    def test_round_trip(self, tmp_path):
        codec = get_codec("profile")
        profile = get_profile("latency-bound")
        codec.save(profile, tmp_path)
        loaded = codec.load(tmp_path)
        assert loaded == profile

    def test_rejects_non_profile_values(self, tmp_path):
        with pytest.raises(TypeError):
            get_codec("profile").save({"not": "a profile"}, tmp_path)
