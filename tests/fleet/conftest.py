"""Fleet fixtures: one small two-device build shared across the module.

The build uses the reduced configuration space and a single network so
the per-device sweeps stay well under a second; the store and run are
session-scoped (the fleet pipeline is deterministic, so sharing them is
safe), while routers are function-scoped — they carry mutable counters.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import RunnerConfig
from repro.fleet import (
    FleetPipelineConfig,
    router_from_store,
    run_fleet_pipeline,
)
from repro.pipeline import ArtifactStore

SMALL_FLEET = ("r9-nano", "compute-heavy", "bandwidth-lean", "latency-bound")


@pytest.fixture(scope="session")
def fleet_config(small_configs) -> FleetPipelineConfig:
    return FleetPipelineConfig(
        device_ids=SMALL_FLEET,
        networks=("mobilenet_v2",),
        runner=RunnerConfig(warmup_iterations=1, timed_iterations=3),
        configs=small_configs,
    )


@pytest.fixture(scope="session")
def fleet_store(tmp_path_factory) -> ArtifactStore:
    return ArtifactStore(tmp_path_factory.mktemp("fleet") / "store")


@pytest.fixture(scope="session")
def fleet_run(fleet_store, fleet_config):
    return run_fleet_pipeline(fleet_store, fleet_config)


@pytest.fixture
def fleet_router(fleet_store, fleet_config, fleet_run):
    return router_from_store(fleet_store, fleet_config)
