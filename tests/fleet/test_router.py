"""FleetRouter dispatch: policies, breaker-driven fallback, degradation.

The degradation tests build their routers by hand from the session
build's trained selectors so a :class:`FaultyPolicy` can sit between one
device's service and its selector — the router never sees the fault
plan, only the failing service.
"""

from __future__ import annotations

import pytest

from repro.fleet import get_profile
from repro.serving import FleetRouter, ROUTING_POLICIES, SelectionService
from repro.testing import FaultPlan, FaultyPolicy
from tests.fleet.conftest import SMALL_FLEET

VICTIM = "compute-heavy"


def _faulty_router(
    fleet_run, plan, *, fallback=True, victims=(VICTIM,), **service_kwargs
):
    """A four-device router whose ``victims`` hit ``plan``'s faults."""
    service_kwargs.setdefault("breaker_threshold", 2)
    router = FleetRouter()
    for did in SMALL_FLEET:
        deployed = fleet_run.value("train", did)
        policy = (
            FaultyPolicy(deployed, plan, device_id=did)
            if did in victims
            else deployed
        )
        kwargs = dict(service_kwargs)
        if fallback:
            kwargs.setdefault("fallback", deployed.library.configs[0])
        router.add_device(
            did,
            SelectionService(policy, **kwargs),
            model=get_profile(did).perf_model(),
            library=tuple(deployed.library.configs),
        )
    return router


class TestDispatch:
    def test_targeted_requests_stay_on_their_device(
        self, fleet_router, all_shapes
    ):
        for i, shape in enumerate(all_shapes[:12]):
            did = SMALL_FLEET[i % len(SMALL_FLEET)]
            decision = fleet_router.select(shape, device_id=did)
            assert decision.device_id == did
            assert not decision.rerouted

    def test_unknown_device_raises(self, fleet_router, all_shapes):
        with pytest.raises(KeyError, match="no device"):
            fleet_router.select(all_shapes[0], device_id="mystery-gpu")

    def test_unknown_policy_raises(self, fleet_router, all_shapes):
        with pytest.raises(ValueError, match="unknown routing policy"):
            fleet_router.select(all_shapes[0], policy="fastest-first")

    def test_round_robin_cycles_the_fleet(self, fleet_router, all_shapes):
        placed = [
            fleet_router.select(shape, policy="round-robin").device_id
            for shape in all_shapes[: 2 * len(SMALL_FLEET)]
        ]
        assert placed == list(SMALL_FLEET) * 2

    def test_least_outstanding_tracks_completion(
        self, fleet_router, all_shapes
    ):
        # Load every device once; the ordering then follows insertion.
        for shape in all_shapes[: len(SMALL_FLEET)]:
            fleet_router.select(shape, policy="least-outstanding")
        # Retire r9-nano's request: it becomes the unique least-loaded.
        fleet_router.complete("r9-nano")
        decision = fleet_router.select(
            all_shapes[len(SMALL_FLEET)], policy="least-outstanding"
        )
        assert decision.device_id == "r9-nano"

    def test_perf_aware_picks_the_predicted_fastest_device(
        self, fleet_router, all_shapes
    ):
        for shape in all_shapes[::5]:
            expected = min(
                fleet_router.device_ids,
                key=lambda did: fleet_router.estimate(did, shape),
            )
            decision = fleet_router.select(shape, policy="perf-aware")
            assert decision.device_id == expected

    def test_perf_aware_is_shape_sensitive(self, fleet_router, all_shapes):
        # Across the workload the predicted-fastest device is not a
        # constant: heterogeneity must show up in placement.
        winners = {
            fleet_router.select(shape, policy="perf-aware").device_id
            for shape in all_shapes
        }
        assert len(winners) > 1

    def test_estimate_requires_a_model(self, all_shapes):
        class _Stub:
            def select(self, shape):
                return None

        router = FleetRouter().add_device("bare", SelectionService(_Stub()))
        with pytest.raises(RuntimeError, match="perf-aware"):
            router.estimate("bare", all_shapes[0])

    def test_batch_routing_matches_single_routing(
        self, fleet_router, all_shapes
    ):
        shapes = list(all_shapes[:10])
        batched = fleet_router.select_batch(shapes, policy="perf-aware")
        for shape, decision in zip(shapes, batched):
            single = fleet_router.select(shape, policy="perf-aware")
            assert single.device_id == decision.device_id
            assert single.config == decision.config


class TestPolicyRegistry:
    def test_known_policies(self):
        assert set(ROUTING_POLICIES) == {
            "round-robin",
            "least-outstanding",
            "perf-aware",
        }

    def test_default_policy_validated(self):
        with pytest.raises(ValueError, match="unknown routing policy"):
            FleetRouter(default_policy="warp-speed")


class TestDegradation:
    def test_killed_device_trips_breaker_and_reroutes(
        self, fleet_run, all_shapes
    ):
        # The issue's acceptance scenario: kill one device mid-traffic,
        # keep targeting it, and demand zero failed lookups end to end.
        plan = FaultPlan().kill_device(VICTIM, after=0)
        router = _faulty_router(fleet_run, plan)
        decisions = [
            router.select(shape, device_id=VICTIM) for shape in all_shapes
        ]
        assert all(d.config is not None for d in decisions)
        assert router.service(VICTIM).breaker_open
        assert VICTIM not in router.healthy_ids()
        # Once the breaker opened, traffic flows to healthy devices.
        rerouted = [d for d in decisions if d.rerouted]
        assert rerouted
        assert {d.device_id for d in rerouted} <= set(SMALL_FLEET) - {VICTIM}
        assert router.stats().rerouted == len(rerouted)

    def test_reroute_without_fallback_never_raises(
        self, fleet_run, all_shapes
    ):
        # Without a configured fallback the victim's service re-raises;
        # the router must catch it and try the next candidate.
        plan = FaultPlan().kill_device(VICTIM, after=0)
        router = _faulty_router(fleet_run, plan, fallback=False)
        for shape in all_shapes[:8]:
            decision = router.select(shape, device_id=VICTIM)
            assert decision.rerouted
            assert decision.device_id != VICTIM

    def test_batch_partition_reroutes_wholesale(self, fleet_run, all_shapes):
        plan = FaultPlan().kill_device(VICTIM, after=0)
        router = _faulty_router(fleet_run, plan, fallback=False)
        decisions = router.select_batch(
            list(all_shapes[:12]), device_id=VICTIM
        )
        assert len(decisions) == 12
        assert all(d.rerouted for d in decisions)
        assert all(d.device_id != VICTIM for d in decisions)

    def test_batch_survives_two_dead_devices(self, fleet_run, all_shapes):
        # Two devices die at once, mid breaker warm-up, no fallback: the
        # reroute must walk each shape's candidate list once (no
        # ping-pong between the two dead devices, no RecursionError) and
        # land every shape on one of the two healthy devices.
        victims = ("compute-heavy", "bandwidth-lean")
        plan = FaultPlan()
        for did in victims:
            plan.kill_device(did, after=0)
        router = _faulty_router(
            fleet_run, plan, fallback=False, victims=victims
        )
        shapes = list(all_shapes[:8])
        decisions = router.select_batch(shapes, policy="round-robin")
        assert len(decisions) == len(shapes)
        assert all(d.device_id not in victims for d in decisions)
        assert all(d.config is not None for d in decisions)
        # Bounded reroutes: at most one count per (shape, dead device).
        assert router.stats().rerouted <= len(shapes) * len(victims)

    def test_targeted_batch_fallback_prefers_healthy_devices(
        self, fleet_run, all_shapes
    ):
        # Trip the breaker of the fleet's first device, then kill the
        # batch's (still healthy-looking) target: the wholesale reroute
        # must try the remaining healthy devices before the open-breaker
        # one, so exactly one reroute hop happens per shape.
        victims = ("r9-nano", "bandwidth-lean")
        plan = FaultPlan().kill_device("r9-nano", after=0)
        router = _faulty_router(
            fleet_run, plan, fallback=False, victims=victims
        )
        for shape in all_shapes[:2]:
            router.select(shape, device_id="r9-nano")
        assert router.service("r9-nano").breaker_open
        router.clear()
        plan.kill_device("bandwidth-lean", after=0)
        shapes = list(all_shapes[:6])
        decisions = router.select_batch(shapes, device_id="bandwidth-lean")
        assert all(d.rerouted for d in decisions)
        assert all(
            d.device_id in ("compute-heavy", "latency-bound")
            for d in decisions
        )
        # One failed device per shape — the open breaker was never tried.
        assert router.stats().rerouted == len(shapes)

    def test_agnostic_traffic_avoids_the_open_breaker(
        self, fleet_run, all_shapes
    ):
        plan = FaultPlan().kill_device(VICTIM, after=0)
        router = _faulty_router(fleet_run, plan, fallback=False)
        # Trip the breaker with two targeted lookups...
        for shape in all_shapes[:2]:
            router.select(shape, device_id=VICTIM)
        assert router.service(VICTIM).breaker_open
        # ...then device-agnostic round-robin must skip it entirely.
        placed = {
            router.select(shape).device_id for shape in all_shapes[2:14]
        }
        assert VICTIM not in placed
        assert placed == set(SMALL_FLEET) - {VICTIM}

    def test_revived_device_rejoins_after_breaker_reset(
        self, fleet_run, all_shapes
    ):
        plan = FaultPlan().kill_device(VICTIM, after=0)
        router = _faulty_router(fleet_run, plan)
        for shape in all_shapes[:4]:
            router.select(shape, device_id=VICTIM)
        assert router.service(VICTIM).breaker_open
        plan.revive_device(VICTIM)
        router.reset_breaker(VICTIM)
        decision = router.select(all_shapes[20], device_id=VICTIM)
        assert decision.device_id == VICTIM
        assert not decision.rerouted

    def test_poisoned_single_lookup_degrades_only_that_query(
        self, fleet_run, all_shapes
    ):
        plan = FaultPlan().poison_selection(VICTIM, index=0)
        router = _faulty_router(fleet_run, plan)
        first = router.select(all_shapes[0], device_id=VICTIM)
        # Fallback answer, served by the victim itself (breaker needs
        # two consecutive errors to trip).
        assert first.device_id == VICTIM
        second = router.select(all_shapes[1], device_id=VICTIM)
        assert second.device_id == VICTIM
        assert not router.service(VICTIM).breaker_open

    def test_fleet_stats_aggregate_the_outage(self, fleet_run, all_shapes):
        plan = FaultPlan().kill_device(VICTIM, after=0)
        router = _faulty_router(fleet_run, plan)
        for shape in all_shapes[:10]:
            router.select(shape, device_id=VICTIM)
        stats = router.stats()
        assert stats.n_devices == len(SMALL_FLEET)
        assert stats.targeted == 10
        assert stats.open_breakers == (VICTIM,)
        assert stats.devices[VICTIM].policy_errors >= 2
        assert stats.total_policy_errors >= 2
        rendered = stats.render()
        assert "breaker OPEN" in rendered
        assert VICTIM in rendered
