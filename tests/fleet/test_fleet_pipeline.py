"""The fleet DAG: per-device branches, incremental rebuilds, serving.

Uses the shared session-scoped four-device build from ``conftest`` and
asserts the issue's core guarantees: every device owns an independent
content-addressed branch, rebuilding is a 100% cache hit, and adding a
fifth profile re-runs exactly that profile's stages.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.fleet import (
    DeviceProfile,
    FleetPipelineConfig,
    fleet_fingerprints,
    get_profile,
    register_profile,
    parse_stage_name,
    router_from_store,
    run_fleet_pipeline,
    stage_name,
)
from repro.fleet.pipeline import FLEET_STAGES
from repro.fleet.profile import _REGISTRY
from tests.fleet.conftest import SMALL_FLEET


def _small_config(base: FleetPipelineConfig, device_ids) -> FleetPipelineConfig:
    return dataclasses.replace(base, device_ids=tuple(device_ids))


class TestFirstBuild:
    def test_runs_every_stage_of_every_device(self, fleet_run):
        executed = set(fleet_run.stats.executed_stages)
        expected = {
            stage_name(stage, did)
            for stage in FLEET_STAGES
            for did in SMALL_FLEET
        }
        assert expected <= executed

    def test_branches_share_no_fingerprints(self, fleet_config):
        fingerprints = fleet_fingerprints(fleet_config)
        assert len(set(fingerprints.values())) == len(fingerprints)

    def test_stage_names_parse_back(self, fleet_config):
        for name in fleet_fingerprints(fleet_config):
            stage, did = parse_stage_name(name)
            assert stage in FLEET_STAGES
            assert did in SMALL_FLEET

    def test_selectors_differ_across_devices(self, fleet_run):
        selectors = fleet_run.selectors()
        assert set(selectors) == set(SMALL_FLEET)
        # Heterogeneous hardware should not all agree on every decision:
        # at least two devices ship different pruned libraries or trees.
        exported = {did: s.export_python() for did, s in selectors.items()}
        assert len(set(exported.values())) > 1

    def test_eval_scores_are_sane(self, fleet_run):
        for did in SMALL_FLEET:
            evaluation = fleet_run.value("eval", did)
            assert 0.5 < evaluation.score <= 1.0


class TestIncrementalRebuild:
    def test_rebuild_is_fully_cached(self, fleet_store, fleet_config, fleet_run):
        again = run_fleet_pipeline(fleet_store, fleet_config)
        assert again.stats.all_cached
        for did in SMALL_FLEET:
            assert (
                again.artifact("train", did).artifact_id
                == fleet_run.artifact("train", did).artifact_id
            )

    def test_adding_fifth_profile_runs_only_its_branch(
        self, fleet_store, fleet_config, fleet_run
    ):
        nano = get_profile("r9-nano")
        fifth = DeviceProfile(
            device_id="hotfix-gpu",
            spec=nano.spec.with_overrides(
                name="Hotfix GPU (simulated)", compute_units=80
            ),
            description="Added after the initial fleet build.",
        )
        register_profile(fifth)
        try:
            config = _small_config(fleet_config, SMALL_FLEET + ("hotfix-gpu",))
            run = run_fleet_pipeline(fleet_store, config)
            executed = set(run.stats.executed_stages)
            assert executed == {
                stage_name(stage, "hotfix-gpu") for stage in FLEET_STAGES
            }
            # The original branches are bit-identical cache hits.
            for did in SMALL_FLEET:
                assert stage_name("train", did) in run.stats.cached_stages
                assert (
                    run.artifact("train", did).artifact_id
                    == fleet_run.artifact("train", did).artifact_id
                )
        finally:
            _REGISTRY.pop("hotfix-gpu", None)

    def test_editing_a_profile_refingerprints_only_its_branch(
        self, fleet_config
    ):
        before = fleet_fingerprints(fleet_config)
        original = get_profile("bandwidth-lean")
        edited = dataclasses.replace(
            original,
            spec=original.spec.with_overrides(dram_bandwidth_gbps=96.0),
        )
        register_profile(edited, replace=True)
        try:
            after = fleet_fingerprints(fleet_config)
        finally:
            register_profile(original, replace=True)
        for name in before:
            _, did = parse_stage_name(name)
            if did == "bandwidth-lean":
                assert after[name] != before[name]
            else:
                assert after[name] == before[name]

    def test_split_seed_change_keeps_sweeps_cached(
        self, fleet_store, fleet_config
    ):
        config = dataclasses.replace(fleet_config, split_seed=123)
        run = run_fleet_pipeline(fleet_store, config)
        for did in SMALL_FLEET:
            assert stage_name("sweep", did) in run.stats.cached_stages
            assert stage_name("dataset", did) in run.stats.cached_stages
            assert stage_name("split", did) in run.stats.executed_stages


class TestServingFromStore:
    def test_router_serves_every_device(self, fleet_router):
        assert set(fleet_router.device_ids) == set(SMALL_FLEET)
        assert fleet_router.healthy_ids() == fleet_router.device_ids

    def test_targeted_answers_match_the_device_selector(
        self, fleet_router, fleet_run, all_shapes
    ):
        for did in SMALL_FLEET:
            deployed = fleet_run.value("train", did)
            for shape in all_shapes[::9]:
                decision = fleet_router.select(shape, device_id=did)
                assert decision.device_id == did
                assert not decision.rerouted
                assert decision.config == deployed.select(shape)

    def test_missing_build_raises_keyerror(self, tmp_path, fleet_config):
        from repro.pipeline import ArtifactStore

        with pytest.raises(KeyError, match="run the fleet build first"):
            router_from_store(ArtifactStore(tmp_path / "empty"), fleet_config)
