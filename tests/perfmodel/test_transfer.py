"""Transfer-phase model: padding, staged copies, overlap, placement."""

import numpy as np
import pytest

from repro.kernels.params import KernelConfig
from repro.perfmodel.model import GemmPerfModel
from repro.perfmodel.params import PerfModelParams
from repro.perfmodel.transfer import (
    padded_operand_bytes,
    resolve_placement,
    transfer_copies,
    transfer_phases,
)
from repro.sycl.device import Device
from repro.utils.maths import ceil_div
from repro.workloads.gemm import GemmShape
from repro.workloads.placement import DataPlacement, PlacedGemmShape


def cfg(acc=2, rows=2, cols=2, wg=(8, 8)):
    return KernelConfig(acc=acc, rows=rows, cols=cols, wg_rows=wg[0], wg_cols=wg[1])


class TestPaddedBytes:
    def test_exact_padding_math(self):
        config = cfg()
        macro_m, macro_n = config.macro_tile
        shape = GemmShape(m=macro_m + 1, k=7, n=macro_n - 1, batch=3)
        h2d, d2h = padded_operand_bytes(shape, config)
        padded_m = 2 * macro_m
        padded_n = macro_n
        assert h2d == 4 * 3 * (padded_m * 7 + 7 * padded_n)
        assert d2h == 4 * 3 * padded_m * padded_n

    def test_no_padding_when_divisible(self):
        config = cfg()
        macro_m, macro_n = config.macro_tile
        shape = GemmShape(m=4 * macro_m, k=32, n=2 * macro_n)
        h2d, d2h = padded_operand_bytes(shape, config)
        assert h2d == 4 * (shape.m * shape.k + shape.k * shape.n)
        assert d2h == 4 * shape.m * shape.n

    def test_larger_macro_tile_transfers_more_of_a_small_problem(self):
        small = cfg(rows=1, cols=1, wg=(8, 4))
        large = cfg(rows=8, cols=8, wg=(16, 16))
        shape = GemmShape(m=49, k=576, n=32)
        assert sum(padded_operand_bytes(shape, large)) > sum(
            padded_operand_bytes(shape, small)
        )


class TestTransferCopies:
    def test_panel_counts(self):
        config = cfg()
        macro_m, macro_n = config.macro_tile
        shape = GemmShape(m=5 * macro_m, k=64, n=3 * macro_n, batch=2)
        h2d, d2h = transfer_copies(shape, config)
        assert h2d == 2 * (5 + 3)
        assert d2h == 2 * 5

    def test_small_macro_tiles_launch_more_copies(self):
        small = cfg(rows=1, cols=1, wg=(8, 4))
        large = cfg(rows=8, cols=8, wg=(16, 16))
        shape = GemmShape(m=3136, k=64, n=64)
        assert transfer_copies(shape, small)[0] > transfer_copies(shape, large)[0]

    def test_matches_macro_tile_rounding(self):
        config = cfg(acc=4, rows=4, cols=2, wg=(8, 16))
        macro_m, macro_n = config.macro_tile
        shape = GemmShape(m=100, k=10, n=77)
        h2d, d2h = transfer_copies(shape, config)
        assert d2h == ceil_div(100, macro_m)
        assert h2d == ceil_div(100, macro_m) + ceil_div(77, macro_n)


class TestTransferPhases:
    def test_setup_latency_scales_with_copies(self):
        params = PerfModelParams()
        config = cfg()
        shape = GemmShape(m=640, k=64, n=64)
        phases = transfer_phases(shape, config, params, kernel_seconds=0.0)
        assert phases.h2d_seconds == pytest.approx(
            phases.h2d_copies * params.h2d_overhead_s
            + phases.h2d_bytes / (params.h2d_bandwidth_gbps * 1e9)
        )
        assert phases.d2h_seconds == pytest.approx(
            phases.d2h_copies * params.d2h_overhead_s
            + phases.d2h_bytes / (params.d2h_bandwidth_gbps * 1e9)
        )

    def test_no_overlap_budget_exposes_everything(self):
        phases = transfer_phases(
            GemmShape(m=64, k=64, n=64),
            cfg(),
            PerfModelParams(),
            kernel_seconds=0.0,
        )
        assert phases.hidden_seconds == 0.0
        assert phases.visible_seconds == pytest.approx(
            phases.h2d_seconds + phases.d2h_seconds
        )

    def test_huge_budget_hides_streams_but_never_setup(self):
        params = PerfModelParams(transfer_overlap=1.0)
        shape = GemmShape(m=64, k=64, n=64, batch=4)
        phases = transfer_phases(shape, cfg(), params, kernel_seconds=10.0)
        h2d_stream = phases.h2d_bytes / (params.h2d_bandwidth_gbps * 1e9)
        d2h_stream = phases.d2h_bytes / (params.d2h_bandwidth_gbps * 1e9)
        assert phases.hidden_seconds == pytest.approx(
            h2d_stream + d2h_stream * (1.0 - 1.0 / 4)
        )
        # Setup latencies always remain visible.
        assert phases.visible_seconds >= (
            phases.h2d_copies * params.h2d_overhead_s
            + phases.d2h_copies * params.d2h_overhead_s
        )

    def test_single_batch_exposes_full_readback(self):
        params = PerfModelParams(transfer_overlap=1.0)
        shape = GemmShape(m=64, k=64, n=64, batch=1)
        phases = transfer_phases(shape, cfg(), params, kernel_seconds=10.0)
        d2h_stream = phases.d2h_bytes / (params.d2h_bandwidth_gbps * 1e9)
        h2d_stream = phases.h2d_bytes / (params.h2d_bandwidth_gbps * 1e9)
        assert phases.hidden_seconds == pytest.approx(h2d_stream)
        assert phases.visible_seconds >= d2h_stream

    def test_negative_kernel_time_rejected(self):
        with pytest.raises(ValueError, match="kernel_seconds"):
            transfer_phases(
                GemmShape(m=8, k=8, n=8),
                cfg(),
                PerfModelParams(),
                kernel_seconds=-1.0,
            )


class TestResolvePlacement:
    def test_plain_shape_is_device(self):
        assert resolve_placement(GemmShape(m=8, k=8, n=8)) == "device"

    def test_placed_shape_reports_its_placement(self):
        placed = PlacedGemmShape(m=8, k=8, n=8, placement="host")
        assert resolve_placement(placed) == "host"


class TestModelIntegration:
    @pytest.fixture
    def model(self):
        return GemmPerfModel(Device.r9_nano())

    def test_device_placement_is_bit_identical_to_plain(self, model):
        config = cfg()
        plain = GemmShape(m=196, k=576, n=128)
        placed = PlacedGemmShape(m=196, k=576, n=128, placement="device")
        assert (
            model.breakdown(plain, config).total_seconds
            == model.breakdown(placed, config).total_seconds
        )
        assert model.time_seconds(plain, config) == model.time_seconds(
            placed, config
        )
        # Measured times share the deterministic mean but draw from
        # independent noise streams (the identity tuple is wider), so
        # only the deterministic path is bit-compared.
        assert model.measured_time_seconds(placed, config) > 0

    def test_host_placement_adds_visible_transfer_time(self, model):
        config = cfg()
        plain = GemmShape(m=196, k=576, n=128)
        host = PlacedGemmShape(m=196, k=576, n=128, placement="host")
        b_plain = model.breakdown(plain, config)
        b_host = model.breakdown(host, config)
        assert b_host.total_seconds > b_plain.total_seconds
        assert b_host.visible_transfer_seconds > 0
        assert b_host.total_seconds == pytest.approx(
            b_host.kernel_seconds + b_host.visible_transfer_seconds
        )

    def test_transfer_bound_reported_when_transfers_dominate(self, model):
        # A tiny problem from host memory is all transfer.
        host = PlacedGemmShape(m=8, k=8, n=8, placement="host")
        breakdown = model.breakdown(host, cfg())
        assert breakdown.bound == "transfer"

    def test_device_rows_never_transfer_bound(self, model):
        breakdown = model.breakdown(GemmShape(m=8, k=8, n=8), cfg())
        assert breakdown.bound in ("compute", "memory")
        assert breakdown.visible_transfer_seconds == 0.0

    def test_host_optimum_differs_from_device_optimum(self, model):
        # The point of the whole exercise: placement flips the
        # deterministic argmin over the full configuration space.
        from repro.kernels.params import config_space

        configs = list(config_space())
        for shape in (
            GemmShape(m=3136, k=64, n=64),
            GemmShape(m=49, k=576, n=128),
        ):
            host = PlacedGemmShape(
                m=shape.m, k=shape.k, n=shape.n, placement="host"
            )
            best_device = min(
                configs, key=lambda c: model.breakdown(shape, c).total_seconds
            )
            best_host = min(
                configs, key=lambda c: model.breakdown(host, c).total_seconds
            )
            assert best_device != best_host


class TestParamsValidation:
    def test_bandwidths_must_be_positive(self):
        with pytest.raises(ValueError, match="h2d_bandwidth_gbps"):
            PerfModelParams(h2d_bandwidth_gbps=0.0)
        with pytest.raises(ValueError, match="d2h_bandwidth_gbps"):
            PerfModelParams(d2h_bandwidth_gbps=-1.0)

    def test_overheads_must_be_non_negative(self):
        with pytest.raises(ValueError, match="h2d_overhead_s"):
            PerfModelParams(h2d_overhead_s=-1e-6)
        with pytest.raises(ValueError, match="d2h_overhead_s"):
            PerfModelParams(d2h_overhead_s=-1e-6)

    def test_overlap_must_be_a_fraction(self):
        with pytest.raises(ValueError, match="transfer_overlap"):
            PerfModelParams(transfer_overlap=1.5)
        with pytest.raises(ValueError, match="transfer_overlap"):
            PerfModelParams(transfer_overlap=-0.1)
        PerfModelParams(transfer_overlap=0.0)
        PerfModelParams(transfer_overlap=1.0)
