"""Sparse performance model."""

import numpy as np
import pytest

from repro.kernels.params import KernelConfig, config_space
from repro.perfmodel.sparse import SparseGemmPerfModel
from repro.sycl.device import Device
from repro.workloads.gemm import GemmShape
from repro.workloads.sparse import SparseGemmShape


@pytest.fixture(scope="module")
def model():
    return SparseGemmPerfModel(Device.r9_nano())


def cfg(acc=4, rows=4, cols=4, wg=(16, 16)):
    return KernelConfig(acc=acc, rows=rows, cols=cols, wg_rows=wg[0], wg_cols=wg[1])


def sparse(density, m=1024, k=1024, n=1024):
    return SparseGemmShape(m=m, k=k, n=n, density=density)


class TestDenseConsistency:
    def test_density_one_matches_dense_model(self, model):
        shape = sparse(1.0)
        dense_time = model.dense_model.time_seconds(
            shape.dense_equivalent(), cfg()
        )
        assert model.time_seconds(shape, cfg()) == pytest.approx(dense_time)

    def test_accepts_plain_gemm_shape(self, model):
        shape = GemmShape(m=256, k=256, n=256)
        assert model.time_seconds(shape, cfg()) == pytest.approx(
            model.dense_model.time_seconds(shape, cfg())
        )


class TestSparsityEffects:
    def test_sparse_is_faster_than_dense_in_absolute_time(self, model):
        # 10x fewer multiplies should still win despite overheads.
        assert model.time_seconds(sparse(0.1), cfg()) < model.time_seconds(
            sparse(1.0), cfg()
        )

    def test_sparse_efficiency_lower_than_dense(self, model):
        # GFLOP/s on useful flops drop with sparsity (index/gather tax).
        dense_rate = model.gflops(sparse(1.0), cfg())
        sparse_rate = model.gflops(sparse(0.1), cfg())
        assert sparse_rate < dense_rate

    def test_time_monotone_in_low_density_regime(self, model):
        # Below the break-even point, fewer nonzeros means less time.
        times = [
            model.time_seconds(sparse(d), cfg()) for d in (0.05, 0.1, 0.25)
        ]
        assert times == sorted(times)

    def test_break_even_density_exists(self, model):
        """Moderate sparsity does NOT pay on GPU-like hardware (index and
        imbalance overheads eat the 2x flop saving); only high sparsity
        wins — the well-known break-even behaviour the model reproduces."""
        dense_time = model.time_seconds(sparse(1.0), cfg())
        assert model.time_seconds(sparse(0.5), cfg()) > 0.9 * dense_time
        assert model.time_seconds(sparse(0.1), cfg()) < dense_time

    def test_gather_penalty_grows_with_acc(self, model):
        """Wide accumulator steps pay the gather tax; visible wherever
        compute (not memory) bounds the kernel — isolate it by comparing
        against a gather-free model."""
        no_gather = SparseGemmPerfModel(Device.r9_nano(), gather_cost=0.0)
        shape = sparse(0.5)  # compute-bound at this density
        slowdown_wide = model.time_seconds(shape, cfg(acc=8)) / no_gather.time_seconds(
            shape, cfg(acc=8)
        )
        slowdown_narrow = model.time_seconds(
            shape, cfg(acc=1)
        ) / no_gather.time_seconds(shape, cfg(acc=1))
        assert slowdown_wide > slowdown_narrow

    def test_optimum_shifts_with_density(self, model):
        configs = config_space()
        shape_dense = sparse(1.0, m=3136, k=576, n=128)
        shape_sparse = sparse(0.1, m=3136, k=576, n=128)
        best_dense = min(configs, key=lambda c: model.time_seconds(shape_dense, c))
        best_sparse = min(configs, key=lambda c: model.time_seconds(shape_sparse, c))
        assert best_dense != best_sparse


class TestMeasurement:
    def test_noise_independent_across_densities(self, model):
        a = model.measured_times_seconds(sparse(0.5), cfg(), iterations=3)
        b = model.measured_times_seconds(sparse(0.25), cfg(), iterations=3)
        # Ratios differ -> noise streams are independent per density.
        assert not np.allclose(a / a[0], b / b[0])

    def test_measured_reproducible(self, model):
        a = model.measured_times_seconds(sparse(0.5), cfg(), iterations=4)
        b = model.measured_times_seconds(sparse(0.5), cfg(), iterations=4)
        np.testing.assert_array_equal(a, b)

    def test_scalar_accessor(self, model):
        v = model.measured_time_seconds(sparse(0.5), cfg(), iteration=2)
        block = model.measured_times_seconds(sparse(0.5), cfg(), iterations=3)
        assert v == block[2]

    def test_supported_delegates(self, model):
        assert model.supported(cfg())

    def test_invalid_costs_rejected(self):
        with pytest.raises(ValueError):
            SparseGemmPerfModel(Device.r9_nano(), decode_cost=-1)


class TestRunnerIntegration:
    def test_runner_with_sparse_model(self):
        from repro.bench.runner import BenchmarkRunner, RunnerConfig
        from repro.kernels.params import config_space as full_space

        model = SparseGemmPerfModel(Device.r9_nano())
        runner = BenchmarkRunner(
            Device.r9_nano(),
            configs=full_space()[:8],
            runner_config=RunnerConfig(timed_iterations=2),
            model=model,
        )
        result = runner.run([sparse(0.5, m=128, k=128, n=128)])
        assert result.gflops.shape == (1, 8)
        assert np.all(result.gflops > 0)

    def test_runner_rejects_model_and_params(self):
        from repro.bench.runner import BenchmarkRunner
        from repro.perfmodel.params import PerfModelParams

        with pytest.raises(ValueError):
            BenchmarkRunner(
                Device.r9_nano(),
                model=SparseGemmPerfModel(Device.r9_nano()),
                model_params=PerfModelParams(),
            )
