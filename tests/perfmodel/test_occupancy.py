"""Occupancy limits."""

import pytest

from repro.kernels.params import KernelConfig
from repro.perfmodel.occupancy import occupancy_for
from repro.sycl.device import Device

SPEC = Device.r9_nano().spec


def cfg(acc=4, rows=4, cols=4, wg=(16, 16)):
    return KernelConfig(acc=acc, rows=rows, cols=cols, wg_rows=wg[0], wg_cols=wg[1])


class TestRegisterLimit:
    def test_small_tile_hits_wave_slots(self):
        # 1x1x1 tile needs ~19 registers -> register limit 13 > 10 slots.
        occ = occupancy_for(cfg(acc=1, rows=1, cols=1), SPEC)
        assert occ.waves_per_simd == SPEC.max_waves_per_simd
        assert occ.limited_by == "wave-slots"

    def test_large_tile_register_limited(self):
        # 8x8 tile with acc=8: 64 + 8*16 + 16 = 208 registers -> 1 wave.
        occ = occupancy_for(cfg(acc=8, rows=8, cols=8), SPEC)
        assert occ.limited_by == "registers"
        assert occ.waves_per_simd == 1

    def test_monotone_in_tile_volume(self):
        small = occupancy_for(cfg(acc=2, rows=2, cols=2), SPEC)
        big = occupancy_for(cfg(acc=8, rows=8, cols=4), SPEC)
        assert big.waves_per_simd <= small.waves_per_simd

    def test_occupancy_fraction(self):
        occ = occupancy_for(cfg(acc=1, rows=1, cols=1), SPEC)
        assert occ.occupancy == pytest.approx(1.0)


class TestGroupGeometry:
    def test_waves_per_group(self):
        occ = occupancy_for(cfg(wg=(16, 16)), SPEC)  # 256 items / 64 = 4 waves
        assert occ.waves_per_group == 4

    def test_small_group_one_wave(self):
        occ = occupancy_for(cfg(wg=(8, 8)), SPEC)
        assert occ.waves_per_group == 1


class TestRejections:
    def test_oversized_work_group(self):
        huge = SPEC.with_overrides(max_work_group_size=64)
        with pytest.raises(ValueError, match="work-group size"):
            occupancy_for(cfg(wg=(16, 16)), huge)

    def test_register_demand_exceeds_file(self):
        tiny = SPEC.with_overrides(vgprs_per_lane=32)
        with pytest.raises(ValueError, match="register"):
            occupancy_for(cfg(acc=8, rows=8, cols=8), tiny)


class TestLDSLimit:
    def test_lds_bound_kernel(self):
        occ = occupancy_for(cfg(wg=(8, 8)), SPEC, lds_bytes_per_group=32 * 1024)
        # 2 groups per CU, 1 wave each, over 4 SIMDs -> sub-slot residency,
        # clamped to the one-group minimum.
        assert occ.waves_per_simd >= 1
        assert occ.limited_by in ("lds", "group-size")
