"""Counter-based measurement noise."""

import numpy as np
import pytest

from repro.kernels.params import KernelConfig
from repro.perfmodel.noise import measurement_noise_factor, noise_factors
from repro.workloads.gemm import GemmShape

SHAPE = GemmShape(m=128, k=64, n=32)
CFG = KernelConfig(acc=2, rows=2, cols=2, wg_rows=8, wg_cols=8)


class TestNoiseFactors:
    def test_reproducible(self):
        a = noise_factors(1, SHAPE, CFG, 5, sigma=0.05)
        b = noise_factors(1, SHAPE, CFG, 5, sigma=0.05)
        np.testing.assert_array_equal(a, b)

    def test_prefix_property(self):
        # Requesting more iterations must not change earlier factors.
        short = noise_factors(1, SHAPE, CFG, 3, sigma=0.05)
        long = noise_factors(1, SHAPE, CFG, 8, sigma=0.05)
        np.testing.assert_array_equal(short, long[:3])

    def test_start_iteration_slices(self):
        full = noise_factors(1, SHAPE, CFG, 8, sigma=0.05)
        tail = noise_factors(1, SHAPE, CFG, 5, sigma=0.05, start_iteration=3)
        np.testing.assert_array_equal(full[3:], tail)

    def test_positive(self):
        assert np.all(noise_factors(1, SHAPE, CFG, 50, sigma=0.2) > 0)

    def test_sigma_zero_is_ones(self):
        np.testing.assert_array_equal(
            noise_factors(1, SHAPE, CFG, 4, sigma=0.0), np.ones(4)
        )

    def test_distinct_configs_independent(self):
        other = KernelConfig(acc=4, rows=2, cols=2, wg_rows=8, wg_cols=8)
        a = noise_factors(1, SHAPE, CFG, 5, sigma=0.05)
        b = noise_factors(1, SHAPE, other, 5, sigma=0.05)
        assert not np.allclose(a, b)

    def test_distinct_shapes_independent(self):
        other = GemmShape(m=128, k=64, n=33)
        a = noise_factors(1, SHAPE, CFG, 5, sigma=0.05)
        b = noise_factors(1, other, CFG, 5, sigma=0.05)
        assert not np.allclose(a, b)

    def test_statistics_lognormal(self):
        sigma = 0.05
        factors = noise_factors(7, SHAPE, CFG, 4000, sigma=sigma)
        log = np.log(factors)
        assert abs(log.mean()) < 0.01
        assert log.std() == pytest.approx(sigma, rel=0.1)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            noise_factors(1, SHAPE, CFG, 0, sigma=0.1)
        with pytest.raises(ValueError):
            noise_factors(1, SHAPE, CFG, 3, sigma=-0.1)
        with pytest.raises(ValueError):
            noise_factors(1, SHAPE, CFG, 3, sigma=0.1, start_iteration=-1)


class TestScalarFactor:
    def test_matches_vector(self):
        vec = noise_factors(1, SHAPE, CFG, 5, sigma=0.05)
        for i in range(5):
            assert measurement_noise_factor(1, SHAPE, CFG, i, sigma=0.05) == vec[i]
