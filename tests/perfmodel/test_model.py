"""Whole-kernel time model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.params import KernelConfig, config_space
from repro.perfmodel.model import GemmPerfModel
from repro.perfmodel.params import PerfModelParams
from repro.sycl.device import Device
from repro.workloads.gemm import GemmShape


@pytest.fixture(scope="module")
def model():
    return GemmPerfModel(Device.r9_nano())


def cfg(acc=4, rows=4, cols=4, wg=(16, 16)):
    return KernelConfig(acc=acc, rows=rows, cols=cols, wg_rows=wg[0], wg_cols=wg[1])


shape_strategy = st.builds(
    GemmShape,
    m=st.integers(1, 4096),
    k=st.integers(1, 4096),
    n=st.integers(1, 4096),
    batch=st.integers(1, 8),
)

config_strategy = st.builds(
    cfg,
    acc=st.sampled_from((1, 2, 4, 8)),
    rows=st.sampled_from((1, 2, 4, 8)),
    cols=st.sampled_from((1, 2, 4, 8)),
    wg=st.sampled_from(((1, 64), (8, 16), (16, 16), (64, 1))),
)


class TestBasicSanity:
    def test_time_positive(self, model):
        assert model.time_seconds(GemmShape(m=256, k=256, n=256), cfg()) > 0

    def test_gflops_below_peak(self, model):
        g = model.gflops(GemmShape(m=4096, k=4096, n=4096), cfg())
        assert 0 < g < model.device_spec.peak_gflops

    def test_time_at_least_overhead(self, model):
        t = model.time_seconds(GemmShape(m=1, k=1, n=1), cfg(rows=1, cols=1))
        assert t >= model.device_spec.kernel_launch_overhead_us * 1e-6

    def test_all_640_configs_supported_on_r9_nano(self, model):
        assert all(model.supported(c) for c in config_space())

    def test_breakdown_consistency(self, model):
        b = model.breakdown(GemmShape(m=512, k=512, n=512), cfg())
        assert b.total_seconds >= max(b.compute_seconds, b.memory_seconds)
        assert b.bound in ("compute", "memory")
        assert 0 < b.tile_utilization <= 1.0
        assert b.k_tail_factor >= 1.0
        assert b.quantization >= 1.0


class TestScaling:
    def test_time_grows_with_problem(self, model):
        small = model.time_seconds(GemmShape(m=256, k=256, n=256), cfg())
        big = model.time_seconds(GemmShape(m=2048, k=2048, n=2048), cfg())
        assert big > small

    def test_batch_increases_time_but_not_worse_than_linear(self, model):
        # A larger launch fills the device better, so a 4x batch costs
        # more than 1x but less than 4x (higher achieved GFLOP/s).
        t1 = model.time_seconds(GemmShape(m=512, k=512, n=512), cfg())
        t4 = model.time_seconds(GemmShape(m=512, k=512, n=512, batch=4), cfg())
        assert t1 < t4 <= 4 * t1

    def test_m1_prefers_single_row_tiles(self, model):
        shape = GemmShape(m=1, k=4096, n=4096)
        row1 = model.time_seconds(shape, cfg(rows=1, cols=4, wg=(1, 64)))
        row8 = model.time_seconds(shape, cfg(rows=8, cols=4, wg=(1, 64)))
        assert row1 < row8

    def test_large_square_prefers_big_tiles(self, model):
        shape = GemmShape(m=2048, k=2048, n=2048)
        tiny = model.gflops(shape, cfg(acc=1, rows=1, cols=1))
        big = model.gflops(shape, cfg(acc=4, rows=4, cols=4))
        assert big > 3 * tiny

    def test_faster_device_is_faster(self):
        # A configuration small enough to fit the embedded device's
        # register file and wave budget.
        config = cfg(acc=2, rows=2, cols=2, wg=(8, 8))
        shape = GemmShape(m=1024, k=1024, n=1024)
        nano = GemmPerfModel(Device.r9_nano()).time_seconds(shape, config)
        emb = GemmPerfModel(Device.embedded()).time_seconds(shape, config)
        assert emb > 5 * nano

    def test_embedded_device_rejects_register_heavy_configs(self):
        heavy = cfg(acc=8, rows=8, cols=8, wg=(16, 16))
        assert not GemmPerfModel(Device.embedded()).supported(heavy)


class TestDeterminismAndNoise:
    def test_time_deterministic(self, model):
        shape = GemmShape(m=300, k=300, n=300)
        assert model.time_seconds(shape, cfg()) == model.time_seconds(shape, cfg())

    def test_measured_reproducible_per_iteration(self, model):
        shape = GemmShape(m=300, k=300, n=300)
        a = model.measured_time_seconds(shape, cfg(), iteration=3)
        b = model.measured_time_seconds(shape, cfg(), iteration=3)
        assert a == b

    def test_iterations_differ(self, model):
        shape = GemmShape(m=300, k=300, n=300)
        a = model.measured_time_seconds(shape, cfg(), iteration=0)
        b = model.measured_time_seconds(shape, cfg(), iteration=1)
        assert a != b

    def test_block_matches_scalar(self, model):
        shape = GemmShape(m=128, k=256, n=64)
        block = model.measured_times_seconds(shape, cfg(), iterations=4)
        scalars = [
            model.measured_time_seconds(shape, cfg(), iteration=i) for i in range(4)
        ]
        np.testing.assert_allclose(block, scalars)

    def test_block_offset_consistency(self, model):
        shape = GemmShape(m=128, k=256, n=64)
        full = model.measured_times_seconds(shape, cfg(), iterations=6)
        tail = model.measured_times_seconds(
            shape, cfg(), iterations=4, start_iteration=2
        )
        np.testing.assert_allclose(full[2:], tail)

    def test_different_seeds_different_noise(self):
        shape = GemmShape(m=128, k=128, n=128)
        m1 = GemmPerfModel(Device.r9_nano(), seed=1)
        m2 = GemmPerfModel(Device.r9_nano(), seed=2)
        assert m1.measured_time_seconds(shape, cfg()) != m2.measured_time_seconds(
            shape, cfg()
        )

    def test_zero_sigma_noise_free(self):
        params = PerfModelParams(noise_sigma=0.0)
        m = GemmPerfModel(Device.r9_nano(), params=params)
        shape = GemmShape(m=128, k=128, n=128)
        assert m.measured_time_seconds(shape, cfg(), iteration=0) == m.time_seconds(
            shape, cfg()
        )

    def test_quirk_disabled(self):
        params = PerfModelParams(alignment_penalty=0.0)
        m = GemmPerfModel(Device.r9_nano(), params=params)
        b = m.breakdown(GemmShape(m=512, k=512, n=512), cfg())
        assert b.quirk == 1.0


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(shape=shape_strategy, config=config_strategy)
    def test_time_finite_positive(self, model, shape, config):
        t = model.time_seconds(shape, config)
        assert np.isfinite(t) and t > 0

    @settings(max_examples=60, deadline=None)
    @given(shape=shape_strategy, config=config_strategy)
    def test_gflops_never_exceeds_peak(self, model, shape, config):
        assert model.gflops(shape, config) <= model.device_spec.peak_gflops

    @settings(max_examples=40, deadline=None)
    @given(shape=shape_strategy, config=config_strategy)
    def test_quirk_bounded(self, model, shape, config):
        b = model.breakdown(shape, config)
        amp = model.params.alignment_penalty
        assert 1.0 - amp <= b.quirk <= 1.0 + amp
