"""Compute-efficiency components."""

import pytest

from repro.kernels.params import KernelConfig
from repro.perfmodel.compute import compute_efficiency, latency_hiding
from repro.perfmodel.params import PerfModelParams

P = PerfModelParams()


def cfg(acc, rows, cols):
    return KernelConfig(acc=acc, rows=rows, cols=cols, wg_rows=8, wg_cols=8)


class TestInstructionMix:
    def test_bigger_tiles_amortise_overhead(self):
        small = compute_efficiency(cfg(1, 1, 1), P)
        big = compute_efficiency(cfg(4, 4, 4), P)
        assert big.instruction_mix > small.instruction_mix

    def test_mix_in_unit_interval(self):
        for acc in (1, 8):
            for rows in (1, 8):
                eff = compute_efficiency(cfg(acc, rows, 4), P)
                assert 0.0 < eff.instruction_mix < 1.0

    def test_tiny_tile_is_overhead_dominated(self):
        eff = compute_efficiency(cfg(1, 1, 1), P)
        assert eff.instruction_mix < 0.2


class TestILP:
    def test_single_accumulator_stalls(self):
        eff = compute_efficiency(cfg(4, 1, 1), P)
        assert eff.ilp < 0.3

    def test_saturates_at_latency(self):
        eff = compute_efficiency(cfg(1, 4, 4), P)  # 16 independent chains
        assert eff.ilp == pytest.approx(1.0)

    def test_monotone_in_independent_chains(self):
        prev = 0.0
        for rows, cols in ((1, 1), (1, 2), (2, 2), (2, 4), (4, 4)):
            eff = compute_efficiency(cfg(2, rows, cols), P)
            assert eff.ilp >= prev
            prev = eff.ilp

    def test_static_total_is_product(self):
        eff = compute_efficiency(cfg(2, 2, 2), P)
        assert eff.static_total == pytest.approx(eff.instruction_mix * eff.ilp)


class TestLatencyHiding:
    def test_monotone_in_waves(self):
        values = [latency_hiding(w, 0.5, P, max_waves=10) for w in (1, 2, 4, 8, 10)]
        assert values == sorted(values)

    def test_full_occupancy_reaches_one(self):
        assert latency_hiding(10, 1.0, P, max_waves=10) == pytest.approx(1.0)

    def test_ilp_substitutes_for_waves(self):
        low_ilp = latency_hiding(2, 0.0, P, max_waves=10)
        high_ilp = latency_hiding(2, 1.0, P, max_waves=10)
        assert high_ilp > low_ilp

    def test_rejects_sub_one_waves(self):
        with pytest.raises(ValueError):
            latency_hiding(0.5, 0.5, P, max_waves=10)

    def test_bounded_by_one(self):
        assert latency_hiding(10, 1.0, P, max_waves=4) <= 1.0
