"""Memory traffic model."""

import pytest

from repro.kernels.params import KernelConfig
from repro.perfmodel.memory import memory_traffic
from repro.perfmodel.params import PerfModelParams
from repro.sycl.device import Device
from repro.workloads.gemm import GemmShape

SPEC = Device.r9_nano().spec
P = PerfModelParams()


def cfg(rows=4, cols=4, acc=4, wg=(16, 16)):
    return KernelConfig(acc=acc, rows=rows, cols=cols, wg_rows=wg[0], wg_cols=wg[1])


class TestVolumes:
    def test_compulsory_matches_operands(self):
        shape = GemmShape(m=128, k=64, n=256)
        mem = memory_traffic(shape, cfg(), SPEC, P)
        assert mem.compulsory_bytes == 4 * (128 * 64 + 64 * 256 + 128 * 256)

    def test_l2_traffic_at_least_compulsory(self):
        shape = GemmShape(m=512, k=512, n=512)
        mem = memory_traffic(shape, cfg(), SPEC, P)
        assert mem.l2_bytes >= mem.compulsory_bytes

    def test_dram_between_compulsory_and_l2(self):
        shape = GemmShape(m=2048, k=2048, n=2048)
        mem = memory_traffic(shape, cfg(), SPEC, P)
        assert mem.compulsory_bytes <= mem.dram_bytes <= mem.l2_bytes

    def test_bigger_macro_tiles_reduce_l2_traffic(self):
        shape = GemmShape(m=1024, k=1024, n=1024)
        small = memory_traffic(shape, cfg(rows=1, cols=1), SPEC, P)
        big = memory_traffic(shape, cfg(rows=8, cols=8), SPEC, P)
        assert big.l2_bytes < small.l2_bytes

    def test_small_problem_fully_cached(self):
        # Operands fit in L2 -> only compulsory traffic reaches DRAM.
        shape = GemmShape(m=64, k=64, n=64)
        mem = memory_traffic(shape, cfg(), SPEC, P)
        assert mem.dram_bytes == pytest.approx(mem.compulsory_bytes)

    def test_batch_scales_traffic(self):
        s1 = memory_traffic(GemmShape(m=256, k=256, n=256), cfg(), SPEC, P)
        s4 = memory_traffic(GemmShape(m=256, k=256, n=256, batch=4), cfg(), SPEC, P)
        assert s4.l2_bytes == 4 * s1.l2_bytes


class TestCoalescing:
    def test_wide_groups_coalesce(self):
        shape = GemmShape(m=1024, k=512, n=1024)
        wide = memory_traffic(shape, cfg(wg=(8, 32)), SPEC, P)
        tall = memory_traffic(shape, cfg(wg=(128, 1)), SPEC, P)
        assert wide.access_efficiency > tall.access_efficiency

    def test_efficiency_bounded(self):
        shape = GemmShape(m=333, k=77, n=555)
        for wg in ((1, 64), (64, 1), (16, 16)):
            mem = memory_traffic(shape, cfg(wg=wg), SPEC, P)
            assert P.min_coalescing_efficiency <= mem.access_efficiency <= 1.0

    def test_channel_camping_penalty(self):
        # N*4 divisible by 1024 plus a tall-thin group triggers camping.
        camped = memory_traffic(
            GemmShape(m=512, k=512, n=256), cfg(wg=(128, 1)), SPEC, P
        )
        clear = memory_traffic(
            GemmShape(m=512, k=512, n=255), cfg(wg=(128, 1)), SPEC, P
        )
        assert camped.access_efficiency < clear.access_efficiency

    def test_hit_rate_in_unit_interval(self):
        mem = memory_traffic(GemmShape(m=999, k=333, n=111), cfg(), SPEC, P)
        assert 0.0 <= mem.l2_hit_rate <= 1.0
