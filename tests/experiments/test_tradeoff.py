"""Library-size/performance tradeoff experiment."""

import pytest

from repro.experiments.tradeoff import run_tradeoff


@pytest.fixture(scope="module")
def result(small_dataset):
    return run_tradeoff(small_dataset, budgets=(2, 4, 8))


class TestTradeoff:
    def test_points_structure(self, result):
        budgets = [p.budget for p in result.points]
        assert budgets == [2, 4, 8]
        for p in result.points:
            assert 0 < p.achievable <= 1.0
            assert 0 < p.binary_bytes < result.full_library_bytes
            assert 1 <= p.compiled_templates <= p.budget

    def test_size_nondecreasing_in_budget(self, result):
        sizes = [p.binary_bytes for p in result.points]
        assert sizes == sorted(sizes)

    def test_knee_is_a_swept_budget(self, result):
        assert result.knee_budget() in {p.budget for p in result.points}

    def test_render(self, result):
        text = result.render()
        assert "Library size vs performance" in text
        assert "knee" in text

    def test_empty_budgets_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            run_tradeoff(small_dataset, budgets=())
