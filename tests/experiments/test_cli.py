"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "r9-nano" in out and "GF" in out

    def test_shapes(self, capsys):
        assert main(["shapes", "--network", "mobilenet_v2"]) == 0
        out = capsys.readouterr().out
        assert "unique GEMM shapes" in out
        assert "im2col" in out

    def test_shapes_unknown_network(self):
        with pytest.raises(SystemExit):
            main(["shapes", "--network", "alexnet"])

    def test_dataset_saved_and_reused(self, tmp_path, capsys, small_dataset):
        # Pre-save a dataset so the CLI loads instead of regenerating.
        path = small_dataset.save(tmp_path / "ds.npz")
        assert main(["dataset", "--dataset", str(path)]) == 0
        out = capsys.readouterr().out
        assert "PerformanceDataset" in out

    def test_experiments_fig2_on_saved_dataset(self, tmp_path, capsys, small_dataset):
        path = small_dataset.save(tmp_path / "ds.npz")
        assert main(["experiments", "--dataset", str(path), "--which", "2"]) == 0
        assert "win counts" in capsys.readouterr().out

    def test_experiments_fig3(self, tmp_path, capsys, small_dataset):
        path = small_dataset.save(tmp_path / "ds.npz")
        assert main(["experiments", "--dataset", str(path), "--which", "3"]) == 0
        assert "variance" in capsys.readouterr().out

    def test_tune_with_export(self, tmp_path, capsys, small_dataset):
        path = small_dataset.save(tmp_path / "ds.npz")
        assert (
            main(
                [
                    "tune",
                    "--dataset",
                    str(path),
                    "--budget",
                    "4",
                    "--export",
                    "py",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "test score" in out
        assert "def select_kernel" in out


class TestExtensionCommands:
    def test_experiments_tradeoff(self, tmp_path, capsys, small_dataset):
        from repro.cli import main

        path = small_dataset.save(tmp_path / "ds.npz")
        assert (
            main(["experiments", "--dataset", str(path), "--which", "tradeoff"])
            == 0
        )
        assert "Library size vs performance" in capsys.readouterr().out

    def test_tune_cpp_export(self, tmp_path, capsys, small_dataset):
        from repro.cli import main

        path = small_dataset.save(tmp_path / "ds.npz")
        assert (
            main(
                [
                    "tune",
                    "--dataset",
                    str(path),
                    "--budget",
                    "4",
                    "--export",
                    "cpp",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "const char* select_kernel" in out
