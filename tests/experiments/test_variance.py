"""Variance experiment mechanics on the small dataset."""

import pytest

from repro.experiments.variance import run_variance


@pytest.fixture(scope="module")
def result(small_dataset):
    return run_variance(
        small_dataset,
        seeds=(0, 1, 2),
        budgets=(4, 6),
        selection_budget=4,
        classifiers=("DecisionTree", "RadialSVM"),
    )


class TestVariance:
    def test_structure(self, result):
        assert set(result.budgets) == {4, 6}
        for per_budget in result.pruning.values():
            for mean, std in per_budget.values():
                assert 0 < mean <= 1.0
                assert std >= 0.0

    def test_selection_entries(self, result):
        assert set(result.selection) == {"DecisionTree", "RadialSVM"}
        for mean, std in result.selection.values():
            assert 0 < mean <= 1.0

    def test_robust_winner_is_method_or_none(self, result):
        winner = result.robust_winner(4)
        assert winner is None or winner in result.pruning

    def test_render(self, result):
        text = result.render()
        assert "+/-" in text and "across 3 splits" in text

    def test_empty_seeds_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            run_variance(small_dataset, seeds=())
