"""The placement-flip experiment (small strides for test speed)."""

import json

import pytest

from repro.experiments.placement import (
    PlacementFlipResult,
    run_placement_flip,
)


@pytest.fixture(scope="module")
def result():
    return run_placement_flip(shape_stride=16)


class TestPlacementFlip:
    def test_flip_fraction_is_a_fraction(self, result):
        assert 0.0 <= result.flip_fraction <= 1.0
        assert result.n_base_shapes > 0

    def test_placement_actually_flips_best_configs(self, result):
        # The acceptance bar for the full-stride CI gate is 10%; even
        # the subsampled test run clears it comfortably.
        assert result.flip_fraction >= 0.1

    def test_scores_are_normalized(self, result):
        for score in (
            result.score_placement_blind,
            result.score_placement_aware,
            result.ceiling_placement_blind,
            result.ceiling_placement_aware,
        ):
            assert 0.0 < score <= 1.0

    def test_per_placement_scores_cover_both_placements(self, result):
        assert set(result.per_placement_scores) == {"device", "host"}

    def test_render_mentions_the_headline_numbers(self, result):
        text = result.render()
        assert "placement-blind" in text
        assert "placement-aware" in text
        assert "flip fraction" in text
        assert "margin" in text

    def test_report_round_trips_through_json(self, result):
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["budget"] == result.budget
        assert payload["flip_fraction"] == pytest.approx(result.flip_fraction)
        assert payload["margin"] == pytest.approx(result.margin)
        assert payload["placements"] == ["device", "host"]

    def test_margin_is_the_score_difference(self, result):
        assert result.margin == pytest.approx(
            result.score_placement_aware - result.score_placement_blind
        )


class TestValidation:
    def test_device_placement_required(self):
        with pytest.raises(ValueError, match="device"):
            run_placement_flip(placements=("host",))

    def test_two_distinct_placements_required(self):
        with pytest.raises(ValueError, match="two distinct"):
            run_placement_flip(placements=("device", "device"))
