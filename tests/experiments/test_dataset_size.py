"""Dataset-size experiment mechanics (small scale)."""

import pytest

from repro.experiments.dataset_size import run_dataset_size


@pytest.fixture(scope="module")
def result():
    return run_dataset_size(sizes=(30, 60), budget=6)


class TestDatasetSize:
    def test_scores_structure(self, result):
        assert set(result.scores) == {30, 60}
        for score, ceiling in result.scores.values():
            assert 0 < score <= ceiling <= 1.0

    def test_improvement_accessor(self, result):
        small = result.scores[30][0]
        large = result.scores[60][0]
        assert result.improvement == pytest.approx(large - small)

    def test_render(self, result):
        text = result.render()
        assert "train shapes" in text and "gap" in text

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            run_dataset_size(sizes=(4,), budget=8)
        with pytest.raises(ValueError):
            run_dataset_size(sizes=())
