"""ASCII rendering helpers."""

import pytest

from repro.experiments.report import ascii_bars, ascii_series, ascii_table


class TestTable:
    def test_alignment(self):
        out = ascii_table(["name", "v"], [["a", 1], ["longer", 22]])
        lines = out.splitlines()
        assert len({len(l) for l in lines}) == 1  # rectangular
        assert "longer" in out

    def test_title(self):
        out = ascii_table(["x"], [[1]], title="My table")
        assert out.splitlines()[0] == "My table"

    def test_empty_rows(self):
        out = ascii_table(["a", "b"], [])
        assert "a" in out and "b" in out


class TestBars:
    def test_proportional_lengths(self):
        out = ascii_bars(["a", "b"], [1.0, 2.0], width=10)
        bar_a = out.splitlines()[0].count("#")
        bar_b = out.splitlines()[1].count("#")
        assert bar_b == 10 and bar_a == 5

    def test_zero_values_no_crash(self):
        out = ascii_bars(["a"], [0.0])
        assert "a" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_bars(["a"], [1.0, 2.0])


class TestSeries:
    def test_markers_and_legend(self):
        out = ascii_series([1, 2, 3], {"up": [1, 2, 3], "down": [3, 2, 1]})
        assert "legend:" in out
        assert "* = up" in out and "o = down" in out

    def test_constant_series_no_crash(self):
        out = ascii_series([1, 2], {"flat": [5.0, 5.0]})
        assert "flat" in out
