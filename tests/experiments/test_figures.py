"""Experiment drivers on the small dataset (mechanics, not calibration)."""

import numpy as np
import pytest

from repro.experiments import (
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_table1,
)


class TestFig1:
    def test_sorted_means(self, small_dataset):
        result = run_fig1(small_dataset)
        assert np.all(np.diff(result.mean_sorted) >= -1e-12)
        assert len(result.order) == small_dataset.n_configs

    def test_min_le_mean_le_max(self, small_dataset):
        result = run_fig1(small_dataset)
        assert np.all(result.min_sorted <= result.mean_sorted + 1e-12)
        assert np.all(result.mean_sorted <= result.max_sorted + 1e-12)

    def test_render(self, small_dataset):
        text = run_fig1(small_dataset).render()
        assert "Fig 1" in text and "config rank" in text


class TestFig2:
    def test_winner_counts_sum(self, small_dataset):
        result = run_fig2(small_dataset)
        assert sum(w for _, w in result.winners) == small_dataset.n_shapes

    def test_sorted_descending(self, small_dataset):
        counts = [w for _, w in run_fig2(small_dataset).winners]
        assert counts == sorted(counts, reverse=True)

    def test_dominance_ratio(self, small_dataset):
        result = run_fig2(small_dataset)
        if len(result.winners) >= 2:
            assert result.dominance_ratio >= 1.0

    def test_render(self, small_dataset):
        text = run_fig2(small_dataset).render()
        assert "win counts" in text and "distinct winning" in text


class TestFig3:
    def test_components_monotone(self, small_dataset):
        result = run_fig3(small_dataset, thresholds=(0.7, 0.9))
        assert (
            result.components_for_threshold[0.7]
            <= result.components_for_threshold[0.9]
        )

    def test_render(self, small_dataset):
        text = run_fig3(small_dataset).render()
        assert "variance" in text and "budget range" in text


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self, small_dataset):
        return run_fig4(small_dataset, budgets=(3, 5, 8))

    def test_all_methods_present(self, result):
        assert set(result.scores) == {
            "top-n",
            "k-means",
            "pca+k-means",
            "hdbscan",
            "decision tree",
        }

    def test_scores_in_range(self, result):
        for per_budget in result.scores.values():
            assert all(0 < v <= 1 for v in per_budget.values())

    def test_best_technique_query(self, result):
        best = result.best_technique(5)
        assert best in result.scores
        assert result.scores[best][5] == max(s[5] for s in result.scores.values())

    def test_best_score_cell(self, result):
        tech, budget, score = result.best_score()
        assert result.scores[tech][budget] == score

    def test_render(self, result):
        text = result.render()
        assert "Fig 4" in text and "decision tree" in text


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self, small_dataset):
        return run_table1(small_dataset, budgets=(4, 6))

    def test_all_classifiers_scored(self, result):
        from repro.core.selection.classifiers import TABLE1_CLASSIFIERS

        for name in TABLE1_CLASSIFIERS:
            for budget in (4, 6):
                assert 0 < result.score(name, budget) <= 1.0

    def test_scores_below_ceiling(self, result):
        for budget in (4, 6):
            ceiling = result.ceiling(budget)
            for ev in result.evaluations[budget]:
                assert ev.score <= ceiling + 1e-9

    def test_best_classifier(self, result):
        best = result.best_classifier(4)
        assert result.score(best, 4) == max(
            ev.score for ev in result.evaluations[4]
        )

    def test_render(self, result):
        text = result.render()
        assert "Table I" in text and "RadialSVM" in text and "(ceiling)" in text
