"""Sparse-generalization experiment mechanics (small scale)."""

import pytest

from repro.experiments.sparse import run_sparse_generalization


@pytest.fixture(scope="module")
def result():
    # Heavily strided base shapes keep this fast; the full-scale run is
    # the benchmark's job.
    return run_sparse_generalization(
        densities=(1.0, 0.5, 0.1), budget=6, shape_stride=9
    )


class TestSparseGeneralization:
    def test_scores_in_range(self, result):
        assert 0 < result.score_dense_trained <= 1
        assert 0 < result.score_sparsity_aware <= 1
        assert result.score_dense_trained <= result.ceiling_dense_trained + 1e-9
        assert result.score_sparsity_aware <= result.ceiling_sparsity_aware + 1e-9

    def test_per_density_scores_cover_sparse_levels(self, result):
        assert set(result.per_density_scores) == {0.5, 0.1}
        assert all(0 < v <= 1 for v in result.per_density_scores.values())

    def test_aware_not_worse(self, result):
        # The point of the experiment: density-aware training should not
        # lose to density-blind training on sparse test rows.
        assert result.generalization_gap >= -0.02

    def test_render(self, result):
        text = result.render()
        assert "dense-trained" in text
        assert "sparsity-aware" in text
        assert "generalization gap" in text

    def test_requires_dense_rows(self):
        with pytest.raises(ValueError, match="must include 1.0"):
            run_sparse_generalization(densities=(0.5, 0.1))
