"""Transformer shape family lowering."""

import pytest

from repro.workloads.extract import (
    DEFAULT_BATCHES,
    KNOWN_NETWORKS,
    extract_dataset_shapes,
    extract_network_shapes,
)
from repro.workloads.transformer import (
    TransformerSpec,
    lower_transformer,
    transformer_base,
)

#: Operators emitted per (batch, sequence): 4 projections, QK^T, AV,
#: MLP up/down, decode projection, decode scores, decode context.
OPS_PER_CONFIG = 11


def tiny_spec(**overrides):
    defaults = dict(
        name="tiny", d_model=64, n_heads=4, d_ff=128, seq_lengths=(16,)
    )
    defaults.update(overrides)
    return TransformerSpec(**defaults)


class TestTransformerSpec:
    def test_d_head(self):
        assert tiny_spec().d_head == 16

    def test_d_model_must_divide_by_heads(self):
        with pytest.raises(ValueError, match="divisible"):
            tiny_spec(d_model=65)

    def test_dimensions_must_be_positive(self):
        with pytest.raises(ValueError, match="d_ff"):
            tiny_spec(d_ff=0)

    def test_seq_lengths_must_be_positive_and_non_empty(self):
        with pytest.raises(ValueError, match="seq_lengths"):
            tiny_spec(seq_lengths=())
        with pytest.raises(ValueError, match="seq_lengths"):
            tiny_spec(seq_lengths=(16, -1))

    def test_base_preset_is_the_original_paper_config(self):
        spec = transformer_base()
        assert (spec.d_model, spec.n_heads, spec.d_ff) == (512, 8, 2048)


class TestLowerTransformer:
    def test_operator_count(self):
        spec = tiny_spec(seq_lengths=(16, 32))
        lowered = lower_transformer(spec, batches=(1, 2))
        assert len(lowered) == 2 * 2 * OPS_PER_CONFIG

    def test_projection_shape(self):
        spec = tiny_spec()
        lowered = lower_transformer(spec, batches=(2,))
        projs = [lg for lg in lowered if lg.transform == "attn-proj"]
        assert len(projs) == 4
        for lg in projs:
            assert (lg.shape.m, lg.shape.k, lg.shape.n, lg.shape.batch) == (
                2 * 16, 64, 64, 1
            )

    def test_attention_is_batched_per_head(self):
        spec = tiny_spec()
        lowered = lower_transformer(spec, batches=(2,))
        (qkt,) = [lg for lg in lowered if lg.transform == "attn-qkt"]
        assert (qkt.shape.m, qkt.shape.k, qkt.shape.n) == (16, 16, 16)
        assert qkt.shape.batch == 2 * 4
        (av,) = [lg for lg in lowered if lg.transform == "attn-av"]
        assert (av.shape.m, av.shape.k, av.shape.n) == (16, 16, 16)
        assert av.shape.batch == 2 * 4

    def test_mlp_shapes(self):
        spec = tiny_spec()
        lowered = lower_transformer(spec, batches=(1,))
        up, down = [lg.shape for lg in lowered if lg.transform == "mlp"]
        assert (up.m, up.k, up.n) == (16, 64, 128)
        assert (down.m, down.k, down.n) == (16, 128, 64)

    def test_decode_degenerates_to_single_rows(self):
        spec = tiny_spec()
        lowered = lower_transformer(spec, batches=(1,))
        (proj,) = [
            lg.shape for lg in lowered if lg.transform == "attn-proj-decode"
        ]
        assert proj.m == 1  # a true GEMV at batch 1
        (scores,) = [
            lg.shape for lg in lowered if lg.transform == "attn-qkt-decode"
        ]
        assert (scores.m, scores.k, scores.n) == (1, 16, 16)
        assert scores.batch == 4

    def test_provenance_names_the_network(self):
        lowered = lower_transformer(tiny_spec(), batches=(1,))
        assert all(lg.network == "tiny" for lg in lowered)

    def test_bad_batches_rejected(self):
        with pytest.raises(ValueError, match="batches"):
            lower_transformer(tiny_spec(), batches=())
        with pytest.raises(ValueError, match="batches"):
            lower_transformer(tiny_spec(), batches=(0,))


class TestExtraction:
    def test_transformer_is_a_known_network(self):
        assert "transformer" in KNOWN_NETWORKS
        assert "transformer" in DEFAULT_BATCHES

    def test_extract_network_shapes_deduplicates(self):
        shape_set = extract_network_shapes("transformer")
        assert shape_set.network == "transformer"
        assert len(shape_set.shapes) == len(set(shape_set.shapes))
        assert len(shape_set.shapes) > 0
        # Provenance queries work for transformer-lowered shapes too.
        assert shape_set.provenance(shape_set.shapes[0])

    def test_dataset_union_with_cnns(self):
        shapes, per_network = extract_dataset_shapes(
            networks=("mobilenet_v2", "transformer")
        )
        assert "transformer" in per_network
        assert set(per_network["transformer"].shapes) <= set(shapes)

    def test_unknown_network_error_names_known_set(self):
        with pytest.raises(ValueError, match="transformer"):
            extract_network_shapes("alexnet")
