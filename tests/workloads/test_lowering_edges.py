"""Lowering edge cases: Winograd applicability and grouped convolutions."""

import pytest

from repro.workloads.layers import Conv2d, InputSpec
from repro.workloads.lowering import lower_conv_im2col, lower_conv_winograd


SPEC = InputSpec(height=14, width=14, channels=64)


class TestWinogradApplicability:
    def test_stride_one_3x3_lowers(self):
        conv = Conv2d(out_channels=128, kernel=3, stride=1, padding=1)
        shape = lower_conv_winograd(conv, SPEC, tile=2)
        assert shape is not None
        # F(2x2, 3x3): 7x7 output tiles, (2+2)^2 transformed matrices.
        assert shape.m == 7 * 7
        assert shape.k == 64
        assert shape.n == 128
        assert shape.batch == 16

    def test_tile_four_rounds_partial_tiles_up(self):
        conv = Conv2d(out_channels=32, kernel=3, stride=1, padding=1)
        shape = lower_conv_winograd(conv, SPEC, tile=4)
        # 14/4 -> 4 tiles per axis (partial edge tiles count whole).
        assert shape.m == 4 * 4
        assert shape.batch == 36

    def test_strided_convolution_not_applicable(self):
        conv = Conv2d(out_channels=128, kernel=3, stride=2, padding=1)
        assert lower_conv_winograd(conv, SPEC) is None

    def test_grouped_convolution_not_applicable(self):
        conv = Conv2d(out_channels=128, kernel=3, stride=1, padding=1, groups=2)
        assert lower_conv_winograd(conv, SPEC) is None

    def test_non_3x3_kernel_not_applicable(self):
        for kernel in (1, 5, 7):
            conv = Conv2d(out_channels=128, kernel=kernel)
            assert lower_conv_winograd(conv, SPEC) is None

    def test_unsupported_tile_rejected(self):
        conv = Conv2d(out_channels=128, kernel=3, stride=1, padding=1)
        with pytest.raises(ValueError, match="Winograd tiles"):
            lower_conv_winograd(conv, SPEC, tile=3)


class TestGroupedIm2col:
    def test_grouped_conv_lowers_per_group(self):
        conv = Conv2d(out_channels=128, kernel=3, stride=1, padding=1, groups=4)
        shape = lower_conv_im2col(conv, SPEC)
        # One GEMM per group: k and n shrink by the group count, the
        # group count rides the GEMM batch.
        assert shape.k == 3 * 3 * (64 // 4)
        assert shape.n == 128 // 4
        assert shape.batch == 4

    def test_image_batch_multiplies_m(self):
        conv = Conv2d(out_channels=32, kernel=3, stride=1, padding=1)
        single = lower_conv_im2col(conv, SPEC, batch=1)
        quad = lower_conv_im2col(conv, SPEC, batch=4)
        assert quad.m == 4 * single.m

    def test_stride_shrinks_the_output_grid(self):
        conv = Conv2d(out_channels=32, kernel=3, stride=2, padding=1)
        shape = lower_conv_im2col(conv, SPEC)
        assert shape.m == 7 * 7  # (14 + 2*1 - 3)//2 + 1 = 7

    def test_depthwise_rejected(self):
        conv = Conv2d(out_channels=64, kernel=3, stride=1, padding=1, groups=64)
        assert conv.is_depthwise(SPEC)
        with pytest.raises(ValueError, match="depthwise"):
            lower_conv_im2col(conv, SPEC)

    def test_indivisible_groups_rejected(self):
        conv = Conv2d(out_channels=30, kernel=3, stride=1, padding=1, groups=7)
        with pytest.raises(ValueError, match="divisible"):
            lower_conv_im2col(conv, SPEC)
