"""Conv/FC -> GEMM lowering."""

import pytest

from repro.workloads.gemm import GemmShape
from repro.workloads.layers import Conv2d, Dense, InputSpec
from repro.workloads.lowering import (
    lower_conv_im2col,
    lower_conv_winograd,
    lower_dense,
    lower_network,
)
from repro.workloads.networks import vgg16


class TestIm2col:
    def test_vgg_conv1_shape(self):
        # 3x3x3 kernel on 224x224 -> M=224*224, K=27, N=64.
        conv = Conv2d(out_channels=64, kernel=3, padding=1)
        shape = lower_conv_im2col(conv, InputSpec(224, 224, 3))
        assert shape == GemmShape(m=224 * 224, k=27, n=64)

    def test_batch_folds_into_m(self):
        conv = Conv2d(out_channels=64, kernel=3, padding=1)
        shape = lower_conv_im2col(conv, InputSpec(56, 56, 64), batch=4)
        assert shape.m == 4 * 56 * 56

    def test_pointwise(self):
        conv = Conv2d(out_channels=128, kernel=1)
        shape = lower_conv_im2col(conv, InputSpec(14, 14, 96))
        assert shape == GemmShape(m=196, k=96, n=128)

    def test_strided(self):
        conv = Conv2d(out_channels=64, kernel=7, stride=2, padding=3)
        shape = lower_conv_im2col(conv, InputSpec(224, 224, 3))
        assert shape == GemmShape(m=112 * 112, k=147, n=64)

    def test_grouped_non_depthwise(self):
        conv = Conv2d(out_channels=64, kernel=3, groups=2, padding=1)
        shape = lower_conv_im2col(conv, InputSpec(28, 28, 32))
        assert shape.k == 3 * 3 * 16
        assert shape.n == 32
        assert shape.batch == 2

    def test_depthwise_rejected(self):
        conv = Conv2d(out_channels=32, kernel=3, groups=32, padding=1)
        with pytest.raises(ValueError, match="depthwise"):
            lower_conv_im2col(conv, InputSpec(56, 56, 32))


class TestWinograd:
    def test_f2_tile_counts(self):
        conv = Conv2d(out_channels=64, kernel=3, padding=1)
        shape = lower_conv_winograd(conv, InputSpec(56, 56, 32), tile=2)
        assert shape == GemmShape(m=28 * 28, k=32, n=64, batch=16)

    def test_f4_tile_counts(self):
        conv = Conv2d(out_channels=64, kernel=3, padding=1)
        shape = lower_conv_winograd(conv, InputSpec(56, 56, 32), tile=4)
        assert shape == GemmShape(m=14 * 14, k=32, n=64, batch=36)

    def test_ragged_output_rounds_up(self):
        conv = Conv2d(out_channels=8, kernel=3, padding=1)
        shape = lower_conv_winograd(conv, InputSpec(7, 7, 4), tile=2)
        assert shape.m == 4 * 4  # ceil(7/2)^2

    def test_inapplicable_returns_none(self):
        strided = Conv2d(out_channels=8, kernel=3, stride=2, padding=1)
        assert lower_conv_winograd(strided, InputSpec(28, 28, 8)) is None
        one_by_one = Conv2d(out_channels=8, kernel=1)
        assert lower_conv_winograd(one_by_one, InputSpec(28, 28, 8)) is None
        grouped = Conv2d(out_channels=8, kernel=3, groups=8, padding=1)
        assert lower_conv_winograd(grouped, InputSpec(28, 28, 8)) is None

    def test_unsupported_tile_size(self):
        conv = Conv2d(out_channels=8, kernel=3, padding=1)
        with pytest.raises(ValueError, match="Winograd tiles"):
            lower_conv_winograd(conv, InputSpec(28, 28, 8), tile=3)


class TestDense:
    def test_vgg_fc6(self):
        shape = lower_dense(Dense(out_features=4096), InputSpec(7, 7, 512))
        assert shape == GemmShape(m=1, k=25088, n=4096)

    def test_batched(self):
        shape = lower_dense(Dense(out_features=10), InputSpec(1, 1, 64), batch=32)
        assert shape.m == 32


class TestLowerNetwork:
    def test_vgg_counts(self):
        lowered = lower_network(vgg16(), batches=(1,))
        im2col = [lg for lg in lowered if lg.transform == "im2col"]
        wino2 = [lg for lg in lowered if lg.transform == "winograd2"]
        fc = [lg for lg in lowered if lg.transform == "fc"]
        assert len(im2col) == 13
        assert len(wino2) == 13  # every VGG conv is Winograd-eligible
        assert len(fc) == 3

    def test_provenance_attached(self):
        lowered = lower_network(vgg16(), batches=(1,))
        assert all(lg.network == "vgg16" for lg in lowered)
        assert any(lg.layer == "conv1_1" for lg in lowered)

    def test_multiple_batches_multiply(self):
        one = lower_network(vgg16(), batches=(1,))
        two = lower_network(vgg16(), batches=(1, 4))
        assert len(two) == 2 * len(one)

    def test_invalid_batches(self):
        with pytest.raises(ValueError):
            lower_network(vgg16(), batches=())
        with pytest.raises(ValueError):
            lower_network(vgg16(), batches=(0,))
