"""Placed GEMM shapes and the placement axis."""

import numpy as np
import pytest

from repro.workloads.gemm import GemmShape
from repro.workloads.placement import DataPlacement, PlacedGemmShape, place_shapes


class TestDataPlacement:
    def test_parse_accepts_enum_and_strings(self):
        assert DataPlacement.parse(DataPlacement.HOST) is DataPlacement.HOST
        assert DataPlacement.parse("host") is DataPlacement.HOST
        assert DataPlacement.parse("DEVICE") is DataPlacement.DEVICE

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown data placement"):
            DataPlacement.parse("pinned")


class TestPlacedGemmShape:
    def test_is_a_gemm_shape_defaulting_to_device(self):
        shape = PlacedGemmShape(m=8, k=8, n=8)
        assert isinstance(shape, GemmShape)
        assert shape.placement == "device"
        assert not shape.host_resident

    def test_placement_is_normalized(self):
        shape = PlacedGemmShape(m=8, k=8, n=8, placement="HOST")
        assert shape.placement == "host"
        assert shape.host_resident

    def test_invalid_placement_rejected(self):
        with pytest.raises(ValueError, match="unknown data placement"):
            PlacedGemmShape(m=8, k=8, n=8, placement="nowhere")

    def test_features_include_host_indicator(self):
        host = PlacedGemmShape(m=1, k=2, n=3, batch=4, placement="host")
        np.testing.assert_allclose(host.features(), [1.0, 2.0, 3.0, 4.0, 1.0])
        device = PlacedGemmShape(m=1, k=2, n=3, batch=4)
        np.testing.assert_allclose(device.features(), [1.0, 2.0, 3.0, 4.0, 0.0])
        assert PlacedGemmShape.N_FEATURES == 5
        assert PlacedGemmShape.FEATURE_NAMES[-1] == "host_placed"

    def test_identity_tuple_distinguishes_placements(self):
        a = PlacedGemmShape(m=8, k=8, n=8, placement="device")
        b = PlacedGemmShape(m=8, k=8, n=8, placement="host")
        assert a.as_tuple() != b.as_tuple()
        assert a != b

    def test_unplaced_strips_the_annotation(self):
        shape = PlacedGemmShape(m=8, k=16, n=4, batch=2, placement="host")
        assert shape.unplaced() == GemmShape(m=8, k=16, n=4, batch=2)
        assert type(shape.unplaced()) is GemmShape

    def test_str_marks_host_rows(self):
        host = PlacedGemmShape(m=8, k=8, n=8, placement="host")
        device = PlacedGemmShape(m=8, k=8, n=8)
        assert str(host).endswith("@host")
        assert not str(device).endswith("@host")

    def test_flops_unchanged_by_placement(self):
        plain = GemmShape(m=8, k=16, n=4)
        placed = PlacedGemmShape(m=8, k=16, n=4, placement="host")
        assert placed.flops == plain.flops


class TestPlaceShapes:
    def test_crosses_shapes_with_placements(self):
        shapes = [GemmShape(m=8, k=8, n=8), GemmShape(m=16, k=8, n=8)]
        placed = place_shapes(shapes)
        assert len(placed) == 4
        assert {p.placement for p in placed} == {"device", "host"}

    def test_deduplicates_and_sorts(self):
        shapes = [GemmShape(m=8, k=8, n=8), GemmShape(m=8, k=8, n=8)]
        placed = place_shapes(shapes, ("device", "host"))
        assert len(placed) == 2
        assert placed == sorted(placed)

    def test_single_placement(self):
        placed = place_shapes([GemmShape(m=8, k=8, n=8)], ("host",))
        assert len(placed) == 1
        assert placed[0].host_resident

    def test_empty_placements_rejected(self):
        with pytest.raises(ValueError, match="at least one placement"):
            place_shapes([GemmShape(m=8, k=8, n=8)], ())

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError, match="unknown data placement"):
            place_shapes([GemmShape(m=8, k=8, n=8)], ("managed",))
