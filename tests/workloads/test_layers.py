"""Layer shape inference."""

import pytest

from repro.workloads.layers import Conv2d, Dense, GlobalPool, InputSpec, Pool2d


class TestConv2d:
    def test_same_padding(self):
        out = Conv2d(out_channels=64, kernel=3, padding=1).output(
            InputSpec(224, 224, 3)
        )
        assert (out.height, out.width, out.channels) == (224, 224, 64)

    def test_stride_halves(self):
        out = Conv2d(out_channels=64, kernel=3, stride=2, padding=1).output(
            InputSpec(224, 224, 32)
        )
        assert (out.height, out.width) == (112, 112)

    def test_7x7_stride2_pad3(self):
        out = Conv2d(out_channels=64, kernel=7, stride=2, padding=3).output(
            InputSpec(224, 224, 3)
        )
        assert (out.height, out.width) == (112, 112)

    def test_pointwise(self):
        conv = Conv2d(out_channels=128, kernel=1)
        assert conv.is_pointwise()
        out = conv.output(InputSpec(14, 14, 64))
        assert (out.height, out.width, out.channels) == (14, 14, 128)

    def test_depthwise_detection(self):
        dw = Conv2d(out_channels=32, kernel=3, groups=32, padding=1)
        assert dw.is_depthwise(InputSpec(56, 56, 32))
        assert not dw.is_depthwise(InputSpec(56, 56, 64))

    def test_group_divisibility_enforced(self):
        with pytest.raises(ValueError, match="divisible"):
            Conv2d(out_channels=8, kernel=1, groups=3).output(InputSpec(4, 4, 8))

    def test_collapsed_output_rejected(self):
        with pytest.raises(ValueError, match="collapsed"):
            Conv2d(out_channels=8, kernel=9).output(InputSpec(4, 4, 3))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Conv2d(out_channels=0, kernel=3)
        with pytest.raises(ValueError):
            Conv2d(out_channels=8, kernel=3, padding=-1)


class TestPooling:
    def test_max_pool_halves(self):
        out = Pool2d(kernel=2, stride=2).output(InputSpec(224, 224, 64))
        assert (out.height, out.width, out.channels) == (112, 112, 64)

    def test_resnet_pool(self):
        out = Pool2d(kernel=3, stride=2, padding=1).output(InputSpec(112, 112, 64))
        assert (out.height, out.width) == (56, 56)

    def test_global_pool(self):
        out = GlobalPool().output(InputSpec(7, 7, 2048))
        assert (out.height, out.width, out.channels) == (1, 1, 2048)


class TestDense:
    def test_flattens_input(self):
        dense = Dense(out_features=4096)
        spec = InputSpec(7, 7, 512)
        assert dense.in_features(spec) == 25088
        assert dense.output(spec).channels == 4096

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Dense(out_features=0)


class TestInputSpec:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            InputSpec(0, 4, 4)
