"""Synthetic shape generation."""

import numpy as np
import pytest

from repro.workloads.gemm import GemmShape
from repro.workloads.synthetic import random_gemm_shapes, shape_envelope


class TestEnvelope:
    def test_min_max(self):
        shapes = [GemmShape(m=1, k=10, n=100), GemmShape(m=50, k=5, n=200)]
        env = shape_envelope(shapes)
        assert env == ((1, 50), (5, 10), (100, 200))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            shape_envelope([])


class TestRandomShapes:
    def test_count_and_distinctness(self):
        shapes = random_gemm_shapes(100, random_state=0)
        assert len(shapes) == 100
        assert len({s.as_tuple() for s in shapes}) == 100

    def test_reproducible(self):
        a = random_gemm_shapes(20, random_state=7)
        b = random_gemm_shapes(20, random_state=7)
        assert a == b

    def test_seed_matters(self):
        assert random_gemm_shapes(20, random_state=0) != random_gemm_shapes(
            20, random_state=1
        )

    def test_within_envelope(self):
        env = ((10, 1000), (20, 2000), (30, 3000))
        shapes = random_gemm_shapes(
            200, random_state=0, envelope=env, fc_fraction=0.0
        )
        for s in shapes:
            # Log-uniform rounding can nudge one past the bound.
            assert env[0][0] <= s.m <= env[0][1] + 1
            assert env[1][0] <= s.k <= env[1][1] + 1
            assert env[2][0] <= s.n <= env[2][1] + 1

    def test_fc_family_present(self):
        shapes = random_gemm_shapes(300, random_state=0, fc_fraction=0.3)
        fc_like = [s for s in shapes if s.m <= 64 and s.k >= 256]
        assert len(fc_like) >= 30

    def test_batch_multiplicities(self):
        shapes = random_gemm_shapes(300, random_state=0, fc_fraction=0.0)
        batches = {s.batch for s in shapes}
        assert batches <= {1, 16, 36}
        assert 16 in batches or 36 in batches

    def test_log_uniform_spreads_orders_of_magnitude(self):
        shapes = random_gemm_shapes(300, random_state=0, fc_fraction=0.0)
        ms = np.array([s.m for s in shapes], dtype=float)
        assert ms.max() / ms.min() > 100

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            random_gemm_shapes(0)
        with pytest.raises(ValueError):
            random_gemm_shapes(5, fc_fraction=1.5)
