"""The three network architectures."""

import pytest

from repro.workloads.layers import Conv2d, Dense
from repro.workloads.networks import mobilenet_v2, resnet50, vgg16


class TestVGG16:
    def test_layer_counts(self):
        net = vgg16()
        assert len(net.convs()) == 13
        assert len(net.denses()) == 3

    def test_final_spatial_size(self):
        net = vgg16()
        # The layer before fc6 sees 7x7x512.
        fc6 = next(li for li in net.layers if li.name == "fc6")
        assert (fc6.input.height, fc6.input.width, fc6.input.channels) == (7, 7, 512)

    def test_stage_channels(self):
        net = vgg16()
        conv5 = next(li for li in net.layers if li.name == "conv5_1")
        assert conv5.layer.out_channels == 512
        assert (conv5.input.height, conv5.input.width) == (14, 14)

    def test_all_convs_are_3x3_stride1(self):
        assert all(
            li.layer.kernel == 3 and li.layer.stride == 1 for li in vgg16().convs()
        )

    def test_classifier_dims(self):
        names = [li.layer.out_features for li in vgg16().denses()]
        assert names == [4096, 4096, 1000]


class TestResNet50:
    def test_conv_count(self):
        # 1 stem + per-stage (3 convs per block + 1 projection):
        # (3*3+1) + (4*3+1) + (6*3+1) + (3*3+1) = 10+13+19+10 = 52, +1 = 53.
        assert len(resnet50().convs()) == 53

    def test_stage_output_sizes(self):
        net = resnet50()
        last = net.convs()[-1]
        assert last.output.channels == 2048
        assert (last.output.height, last.output.width) == (7, 7)

    def test_fc(self):
        denses = resnet50().denses()
        assert len(denses) == 1 and denses[0].layer.out_features == 1000
        assert denses[0].input.channels == 2048

    def test_projection_shortcuts_present(self):
        names = [li.name for li in resnet50().layers]
        assert "res2a_shortcut" in names
        assert "res5a_shortcut" in names
        assert "res2b_shortcut" not in names  # only first block per stage

    def test_bottleneck_structure(self):
        net = resnet50()
        block = [li for li in net.layers if li.name.startswith("res3a_conv")]
        kernels = [li.layer.kernel for li in block]
        assert kernels == [1, 3, 1]
        assert block[1].layer.stride == 2  # stage entry downsamples


class TestMobileNetV2:
    def test_depthwise_layers_marked(self):
        net = mobilenet_v2()
        depthwise = [
            li for li in net.convs() if li.layer.is_depthwise(li.input)
        ]
        assert len(depthwise) == 17  # one per inverted-residual block

    def test_block_count(self):
        net = mobilenet_v2()
        projects = [li for li in net.convs() if li.name.endswith("_project")]
        assert len(projects) == 17

    def test_first_block_has_no_expansion(self):
        names = [li.name for li in mobilenet_v2().layers]
        assert "block1_expand" not in names
        assert "block2_expand" in names

    def test_final_conv_and_fc(self):
        net = mobilenet_v2()
        last_conv = net.convs()[-1]
        assert last_conv.layer.out_channels == 1280
        assert net.denses()[0].layer.out_features == 1000

    def test_output_channel_progression(self):
        net = mobilenet_v2()
        projects = [li for li in net.convs() if li.name.endswith("_project")]
        channels = sorted({li.layer.out_channels for li in projects})
        assert channels == [16, 24, 32, 64, 96, 160, 320]
