"""Sparse GEMM shapes."""

import numpy as np
import pytest

from repro.workloads.gemm import GemmShape
from repro.workloads.sparse import SparseGemmShape, sparsify


class TestSparseShape:
    def test_is_a_gemm_shape(self):
        shape = SparseGemmShape(m=8, k=8, n=8, density=0.5)
        assert isinstance(shape, GemmShape)

    def test_flops_scale_with_density(self):
        dense = SparseGemmShape(m=10, k=10, n=10, density=1.0)
        half = SparseGemmShape(m=10, k=10, n=10, density=0.5)
        assert half.flops == dense.flops // 2

    def test_nnz(self):
        shape = SparseGemmShape(m=4, k=100, n=10, density=0.25)
        assert shape.nnz == 250

    def test_features_include_density(self):
        shape = SparseGemmShape(m=1, k=2, n=3, batch=4, density=0.1)
        np.testing.assert_allclose(
            shape.features(), [1.0, 2.0, 3.0, 4.0, 0.1]
        )
        assert SparseGemmShape.N_FEATURES == 5

    def test_identity_tuple_distinguishes_densities(self):
        a = SparseGemmShape(m=8, k=8, n=8, density=0.5)
        b = SparseGemmShape(m=8, k=8, n=8, density=0.25)
        assert a.as_tuple() != b.as_tuple()
        assert a != b

    def test_dense_equivalent(self):
        shape = SparseGemmShape(m=8, k=16, n=4, batch=2, density=0.3)
        assert shape.dense_equivalent() == GemmShape(m=8, k=16, n=4, batch=2)

    def test_str(self):
        assert str(SparseGemmShape(m=1, k=2, n=3, density=0.25)) == "[1x2x3]@25%"
        assert str(SparseGemmShape(m=1, k=2, n=3, density=1.0)) == "[1x2x3]"

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            SparseGemmShape(m=1, k=1, n=1, density=0.0)
        with pytest.raises(ValueError):
            SparseGemmShape(m=1, k=1, n=1, density=1.5)


class TestSparsify:
    def test_cross_product(self):
        shapes = [GemmShape(m=8, k=8, n=8), GemmShape(m=4, k=4, n=4)]
        out = sparsify(shapes, densities=(1.0, 0.5))
        assert len(out) == 4
        assert all(isinstance(s, SparseGemmShape) for s in out)

    def test_deduplicated_and_sorted(self):
        shapes = [GemmShape(m=8, k=8, n=8)] * 2
        out = sparsify(shapes, densities=(0.5,))
        assert len(out) == 1

    def test_empty_densities_rejected(self):
        with pytest.raises(ValueError):
            sparsify([GemmShape(m=1, k=1, n=1)], densities=())
