"""Dataset shape extraction."""

import pytest

from repro.workloads.extract import (
    extract_dataset_shapes,
    extract_network_shapes,
)
from repro.workloads.gemm import GemmShape


class TestPerNetwork:
    def test_counts_in_paper_order(self):
        # Paper: VGG 78, ResNet 66, MobileNet 26.  Ours differ (documented
        # in EXPERIMENTS.md) but must keep the same ordering and scale.
        vgg = len(extract_network_shapes("vgg16"))
        resnet = len(extract_network_shapes("resnet50"))
        mobilenet = len(extract_network_shapes("mobilenet_v2"))
        assert vgg > resnet > mobilenet
        assert 50 <= vgg <= 110
        assert 40 <= resnet <= 90
        assert 15 <= mobilenet <= 40

    def test_shapes_deduplicated(self):
        shape_set = extract_network_shapes("vgg16")
        assert len(set(shape_set.shapes)) == len(shape_set.shapes)

    def test_shapes_sorted(self):
        shape_set = extract_network_shapes("resnet50")
        assert list(shape_set.shapes) == sorted(shape_set.shapes)

    def test_provenance_lookup(self):
        shape_set = extract_network_shapes("vgg16", batches=(1,))
        conv1 = GemmShape(m=224 * 224, k=27, n=64)
        provenance = shape_set.provenance(conv1)
        assert any(lg.layer == "conv1_1" for lg in provenance)

    def test_unknown_network(self):
        with pytest.raises(ValueError, match="unknown network"):
            extract_network_shapes("alexnet")

    def test_custom_batches(self):
        b1 = extract_network_shapes("mobilenet_v2", batches=(1,))
        b2 = extract_network_shapes("mobilenet_v2", batches=(1, 8))
        assert len(b2) > len(b1)


class TestCombined:
    def test_union_size_near_paper(self):
        union, per = extract_dataset_shapes()
        # Paper: 170 total; ours lands in the same range.
        assert 130 <= len(union) <= 220
        assert set(per) == {"vgg16", "resnet50", "mobilenet_v2"}

    def test_union_is_deduplicated_union(self):
        union, per = extract_dataset_shapes()
        rebuilt = set()
        for shape_set in per.values():
            rebuilt.update(shape_set.shapes)
        assert set(union) == rebuilt
        assert list(union) == sorted(union)

    def test_subset_of_networks(self):
        union, per = extract_dataset_shapes(networks=("mobilenet_v2",))
        assert set(per) == {"mobilenet_v2"}
        assert len(union) == len(per["mobilenet_v2"])


class TestGemmShape:
    def test_flops(self):
        assert GemmShape(m=2, k=3, n=4).flops == 48
        assert GemmShape(m=2, k=3, n=4, batch=2).flops == 96

    def test_features_vector(self):
        f = GemmShape(m=10, k=20, n=30, batch=4).features()
        assert f.tolist() == [10.0, 20.0, 30.0, 4.0]

    def test_arithmetic_intensity(self):
        shape = GemmShape(m=1024, k=1024, n=1024)
        assert shape.arithmetic_intensity > 100  # compute bound

    def test_ordering_and_str(self):
        a = GemmShape(m=1, k=2, n=3)
        b = GemmShape(m=2, k=1, n=1)
        assert a < b
        assert str(a) == "[1x2x3]"
        assert str(GemmShape(m=1, k=2, n=3, batch=16)) == "[1x2x3]x16"

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            GemmShape(m=0, k=1, n=1)
        with pytest.raises(TypeError):
            GemmShape(m=1.5, k=1, n=1)
