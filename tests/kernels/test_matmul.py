"""Functional correctness of the tiled GEMM kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.matmul import TiledMatmulKernel, matmul, work_item_tile
from repro.kernels.naive import NaiveMatmulKernel
from repro.kernels.params import KernelConfig
from repro.sycl.buffer import AccessMode, Buffer
from repro.sycl.device import Device
from repro.sycl.queue import Queue
from repro.utils.maths import ceil_div
from repro.workloads.gemm import GemmShape


def cfg(acc=2, rows=2, cols=2, wg=(8, 8)):
    return KernelConfig(acc=acc, rows=rows, cols=cols, wg_rows=wg[0], wg_cols=wg[1])


@pytest.fixture
def queue():
    return Queue(Device.r9_nano())


class TestMatmulCorrectness:
    def test_matches_numpy(self, queue, rng):
        a = rng.standard_normal((33, 17)).astype(np.float32)
        b = rng.standard_normal((17, 29)).astype(np.float32)
        c, _ = matmul(queue, a, b, cfg())
        np.testing.assert_allclose(c, a @ b, rtol=1e-4, atol=1e-5)

    @pytest.mark.parametrize("acc", [1, 2, 4, 8])
    @pytest.mark.parametrize("rows,cols", [(1, 1), (2, 4), (8, 8)])
    def test_all_tile_shapes(self, queue, rng, acc, rows, cols):
        a = rng.standard_normal((19, 23)).astype(np.float32)
        b = rng.standard_normal((23, 13)).astype(np.float32)
        c, _ = matmul(queue, a, b, cfg(acc=acc, rows=rows, cols=cols))
        np.testing.assert_allclose(c, a @ b, rtol=1e-4, atol=1e-5)

    def test_identity(self, queue):
        eye = np.eye(16, dtype=np.float32)
        x = np.arange(16 * 8, dtype=np.float32).reshape(16, 8)
        c, _ = matmul(queue, eye, x, cfg())
        np.testing.assert_allclose(c, x, rtol=1e-6)

    def test_k_not_divisible_by_acc(self, queue, rng):
        a = rng.standard_normal((8, 7)).astype(np.float32)  # k=7, acc=4
        b = rng.standard_normal((7, 8)).astype(np.float32)
        c, _ = matmul(queue, a, b, cfg(acc=4))
        np.testing.assert_allclose(c, a @ b, rtol=1e-4, atol=1e-5)

    def test_incompatible_operands_rejected(self, queue):
        with pytest.raises(ValueError, match="incompatible"):
            matmul(queue, np.ones((2, 3)), np.ones((4, 2)), cfg())

    def test_event_reports_model_time(self, queue):
        a = np.ones((64, 64), dtype=np.float32)
        _, event = matmul(queue, a, a, cfg())
        assert event.profiling_duration_ns > 0

    @settings(max_examples=25, deadline=None)
    @given(
        m=st.integers(1, 40),
        k=st.integers(1, 40),
        n=st.integers(1, 40),
        acc=st.sampled_from((1, 2, 4, 8)),
        rows=st.sampled_from((1, 2, 4)),
        cols=st.sampled_from((1, 2, 4)),
    )
    def test_property_matches_numpy(self, m, k, n, acc, rows, cols):
        rng = np.random.default_rng(m * 10007 + k * 101 + n)
        a = rng.standard_normal((m, k)).astype(np.float32)
        b = rng.standard_normal((k, n)).astype(np.float32)
        c, _ = matmul(Queue(Device.r9_nano()), a, b, cfg(acc, rows, cols))
        np.testing.assert_allclose(c, a @ b, rtol=1e-3, atol=1e-4)


class TestWorkItemReference:
    """The scalar per-work-item reference pins the vectorised kernel."""

    @pytest.mark.parametrize("gi,gj", [(0, 0), (1, 2), (3, 0)])
    def test_tile_matches_output_slice(self, rng, gi, gj):
        config = cfg(acc=2, rows=2, cols=2)
        a = rng.standard_normal((9, 5))
        b = rng.standard_normal((5, 7))
        tile = work_item_tile(a, b, config, gi, gj)
        expected = np.zeros((2, 2))
        r0, c0 = gi * 2, gj * 2
        for r in range(2):
            for c in range(2):
                if r0 + r < 9 and c0 + c < 7:
                    expected[r, c] = a[r0 + r] @ b[:, c0 + c]
        np.testing.assert_allclose(tile, expected, rtol=1e-10)

    def test_edge_tile_zero_padded(self, rng):
        config = cfg(acc=4, rows=4, cols=4)
        a = rng.standard_normal((5, 6))
        b = rng.standard_normal((6, 5))
        last = work_item_tile(a, b, config, 1, 1)
        # Only the (1, 1) element of the last tile is in range (row 4, col 4).
        assert last[1, 1] == 0.0 or True  # row index 5 is out of range
        assert np.all(last[1:, :] == 0.0) and np.all(last[:, 1:] == 0.0)

    def test_full_grid_reconstructs_product(self, rng):
        config = cfg(acc=2, rows=2, cols=3)
        a = rng.standard_normal((6, 4))
        b = rng.standard_normal((4, 9))
        items_m = ceil_div(6, config.rows)
        items_n = ceil_div(9, config.cols)
        out = np.zeros((items_m * config.rows, items_n * config.cols))
        for gi in range(items_m):
            for gj in range(items_n):
                out[
                    gi * config.rows : (gi + 1) * config.rows,
                    gj * config.cols : (gj + 1) * config.cols,
                ] = work_item_tile(a, b, config, gi, gj)
        np.testing.assert_allclose(out[:6, :9], a @ b, rtol=1e-10)


class TestKernelInterface:
    def test_nd_range_geometry(self):
        kernel = TiledMatmulKernel(cfg(rows=4, cols=2, wg=(8, 16)))
        ndr = kernel.nd_range_for(GemmShape(m=100, k=64, n=30))
        assert ndr.global_range.dims == (25, 15)
        assert ndr.local_range.dims == (8, 16)

    def test_wrong_arg_count(self, queue):
        kernel = TiledMatmulKernel(cfg())
        buf = Buffer((4, 4))
        with pytest.raises(ValueError, match="expects accessors"):
            queue.submit(kernel, kernel.nd_range_for(GemmShape(4, 4, 4)), args=(buf,))

    def test_inner_dim_mismatch(self, queue):
        kernel = TiledMatmulKernel(cfg())
        a, b, c = Buffer((4, 5)), Buffer((6, 4)), Buffer((4, 4))
        with pytest.raises(ValueError, match="inner dimensions"):
            queue.submit(kernel, kernel.nd_range_for(GemmShape(4, 5, 4)),
                         args=(a, b, c))

    def test_resource_usage_tracks_registers(self):
        light = TiledMatmulKernel(cfg(acc=1, rows=1, cols=1))
        heavy = TiledMatmulKernel(cfg(acc=8, rows=8, cols=8))
        dev = Device.r9_nano()
        assert heavy.resource_usage(dev).vgprs_per_lane > light.resource_usage(
            dev
        ).vgprs_per_lane


class TestNaiveKernel:
    def test_matches_numpy(self, queue, rng):
        a = rng.standard_normal((12, 9)).astype(np.float32)
        b = rng.standard_normal((9, 7)).astype(np.float32)
        buf_a = Buffer.from_array(a)
        buf_b = Buffer.from_array(b)
        buf_c = Buffer((12, 7), dtype=np.float32)
        kernel = NaiveMatmulKernel()
        from repro.sycl.ndrange import NDRange

        queue.submit(
            kernel,
            NDRange((12, 7), (4, 4)),
            args=(
                buf_a.get_access(AccessMode.READ),
                buf_b.get_access(AccessMode.READ),
                buf_c.get_access(AccessMode.WRITE),
            ),
        )
        np.testing.assert_allclose(buf_c.to_host(), a @ b, rtol=1e-4, atol=1e-5)
