"""Family dispatch: which kernel serves which GEMM shape."""

import pytest

from repro.kernels.batched import BatchedMatmulKernel
from repro.kernels.families import (
    FAMILIES,
    FAMILY_BATCHED,
    FAMILY_GEMM,
    FAMILY_GEMV,
    family_for_shape,
    make_kernel,
)
from repro.kernels.gemv import GemvKernel
from repro.kernels.matmul import TiledMatmulKernel
from repro.kernels.params import KernelConfig
from repro.kernels.registry import KernelLibrary
from repro.workloads.gemm import GemmShape
from repro.workloads.placement import PlacedGemmShape


def cfg(acc=2, rows=2, cols=2, wg=(8, 8)):
    return KernelConfig(acc=acc, rows=rows, cols=cols, wg_rows=wg[0], wg_cols=wg[1])


class TestFamilyForShape:
    def test_general_shape_is_gemm(self):
        assert family_for_shape(GemmShape(m=64, k=64, n=64)) == FAMILY_GEMM

    def test_unit_output_dimension_is_gemv(self):
        assert family_for_shape(GemmShape(m=1, k=64, n=64)) == FAMILY_GEMV
        assert family_for_shape(GemmShape(m=64, k=64, n=1)) == FAMILY_GEMV

    def test_batched_stack_wins_over_gemv(self):
        # Per-head decode attention: vector-shaped slices, but the batch
        # is what fills the device.
        shape = GemmShape(m=1, k=64, n=64, batch=8)
        assert family_for_shape(shape) == FAMILY_BATCHED

    def test_every_family_is_reachable(self):
        shapes = [
            GemmShape(m=64, k=64, n=64),
            GemmShape(m=1, k=64, n=64),
            GemmShape(m=16, k=16, n=16, batch=4),
        ]
        assert {family_for_shape(s) for s in shapes} == set(FAMILIES)

    def test_placed_shapes_dispatch_like_their_base(self):
        placed = PlacedGemmShape(m=1, k=64, n=64, placement="host")
        assert family_for_shape(placed) == FAMILY_GEMV


class TestMakeKernel:
    def test_no_shape_returns_the_general_matmul(self):
        kernel = make_kernel(cfg())
        assert type(kernel) is TiledMatmulKernel

    def test_shape_routes_to_the_family(self):
        assert isinstance(
            make_kernel(cfg(), GemmShape(m=1, k=8, n=8)), GemvKernel
        )
        assert isinstance(
            make_kernel(cfg(), GemmShape(m=8, k=8, n=8, batch=2)),
            BatchedMatmulKernel,
        )
        assert type(make_kernel(cfg(), GemmShape(m=8, k=8, n=8))) is (
            TiledMatmulKernel
        )


class TestLibraryDispatch:
    def test_library_dispenses_family_kernels(self):
        library = KernelLibrary([cfg()])
        assert isinstance(
            library.kernel(cfg(), GemmShape(m=1, k=8, n=8)), GemvKernel
        )
        assert isinstance(
            library.kernel(cfg(), GemmShape(m=8, k=8, n=8, batch=2)),
            BatchedMatmulKernel,
        )
        assert type(library.kernel(cfg())) is TiledMatmulKernel

    def test_unbundled_config_still_rejected(self):
        library = KernelLibrary([cfg()])
        with pytest.raises(KeyError):
            library.kernel(cfg(acc=8), GemmShape(m=1, k=8, n=8))

    def test_all_families_share_the_config_vocabulary(self):
        config = cfg(acc=4, rows=4, cols=2)
        for shape in (
            None,
            GemmShape(m=1, k=8, n=8),
            GemmShape(m=8, k=8, n=8, batch=2),
        ):
            assert make_kernel(config, shape).config == config
