"""Batched GEMM family: differential agreement with a loop of GEMMs."""

import numpy as np
import pytest

from repro.kernels.batched import BatchedMatmulKernel, batched_matmul
from repro.kernels.matmul import matmul
from repro.kernels.params import KernelConfig
from repro.sycl.device import Device
from repro.sycl.queue import Queue
from repro.workloads.gemm import GemmShape


def cfg(acc=2, rows=2, cols=2, wg=(8, 8)):
    return KernelConfig(acc=acc, rows=rows, cols=cols, wg_rows=wg[0], wg_cols=wg[1])


@pytest.fixture
def queue():
    return Queue(Device.r9_nano())


class TestBatchedDifferential:
    @pytest.mark.parametrize("batch", [1, 3, 16])
    def test_matches_loop_of_gemms_bitwise(self, queue, rng, batch):
        """One batched launch equals per-slice GEMM launches, bit for bit."""
        a = rng.standard_normal((batch, 13, 21)).astype(np.float32)
        b = rng.standard_normal((batch, 21, 9)).astype(np.float32)
        batched, _ = batched_matmul(queue, a, b, cfg())
        for i in range(batch):
            single, _ = matmul(queue, a[i], b[i], cfg())
            assert np.array_equal(batched[i], single)

    @pytest.mark.parametrize(
        "config", [cfg(), cfg(acc=8, rows=4, cols=1), cfg(acc=1, rows=1, cols=1)]
    )
    def test_agreement_across_configs(self, queue, rng, config):
        a = rng.standard_normal((5, 8, 33)).astype(np.float32)
        b = rng.standard_normal((5, 33, 12)).astype(np.float32)
        batched, _ = batched_matmul(queue, a, b, config)
        for i in range(5):
            single, _ = matmul(queue, a[i], b[i], config)
            assert np.array_equal(batched[i], single)

    def test_close_to_float64_oracle(self, queue, rng):
        a = rng.standard_normal((4, 16, 32)).astype(np.float32)
        b = rng.standard_normal((4, 32, 16)).astype(np.float32)
        batched, _ = batched_matmul(queue, a, b, cfg())
        oracle = np.einsum(
            "bik,bkj->bij", a.astype(np.float64), b.astype(np.float64)
        )
        np.testing.assert_allclose(batched, oracle, rtol=1e-5, atol=1e-5)


class TestBatchedLaunch:
    def test_batch_rides_the_third_dimension(self):
        kernel = BatchedMatmulKernel(cfg())
        nd = kernel.nd_range_for(GemmShape(m=32, k=8, n=32, batch=7))
        assert nd.global_range[2] == 7
        assert nd.local_range[2] == 1

    def test_estimate_matches_the_perf_model(self, queue, rng):
        from repro.perfmodel.model import GemmPerfModel

        a = rng.standard_normal((3, 16, 16)).astype(np.float32)
        b = rng.standard_normal((3, 16, 16)).astype(np.float32)
        _, event = batched_matmul(queue, a, b, cfg())
        expected = GemmPerfModel(queue.device).time_seconds(
            GemmShape(m=16, k=16, n=16, batch=3), cfg()
        )
        # The event clock quantises to whole nanoseconds.
        assert event.profiling_duration_s == pytest.approx(expected, abs=1e-9)

    def test_name_marks_the_family(self):
        assert BatchedMatmulKernel(cfg()).name.startswith(
            "tiled_batched_matmul<"
        )


class TestBatchedValidation:
    def test_batch_count_mismatch_rejected(self, queue, rng):
        a = rng.standard_normal((2, 4, 4)).astype(np.float32)
        b = rng.standard_normal((3, 4, 4)).astype(np.float32)
        with pytest.raises(ValueError, match="incompatible"):
            batched_matmul(queue, a, b, cfg())

    def test_inner_dimension_mismatch_rejected(self, queue, rng):
        a = rng.standard_normal((2, 4, 5)).astype(np.float32)
        b = rng.standard_normal((2, 6, 4)).astype(np.float32)
        with pytest.raises(ValueError, match="incompatible"):
            batched_matmul(queue, a, b, cfg())

    def test_two_dimensional_operands_rejected(self, queue, rng):
        a = rng.standard_normal((4, 4)).astype(np.float32)
        b = rng.standard_normal((4, 4)).astype(np.float32)
        with pytest.raises(ValueError, match="incompatible"):
            batched_matmul(queue, a, b, cfg())
