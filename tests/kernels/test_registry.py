"""Kernel library: dedup, size accounting, dispatch."""

import pytest

from repro.kernels.params import KernelConfig, config_space
from repro.kernels.registry import CompiledKernel, KernelLibrary


def cfg(acc=2, rows=2, cols=2, wg=(8, 8)):
    return KernelConfig(acc=acc, rows=rows, cols=cols, wg_rows=wg[0], wg_cols=wg[1])


class TestLibrary:
    def test_holds_configs_in_order(self):
        configs = [cfg(wg=(8, 8)), cfg(wg=(16, 16)), cfg(acc=4)]
        lib = KernelLibrary(configs)
        assert lib.configs == tuple(configs)
        assert len(lib) == 3

    def test_duplicate_configs_collapsed(self):
        lib = KernelLibrary([cfg(), cfg(), cfg(acc=4)])
        assert lib.num_configs == 2

    def test_compiled_templates_deduplicated_across_wg(self):
        # Same template, different work groups: one compiled kernel.
        lib = KernelLibrary([cfg(wg=(8, 8)), cfg(wg=(16, 16)), cfg(wg=(1, 64))])
        assert lib.num_configs == 3
        assert lib.num_compiled == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            KernelLibrary([])

    def test_contains_and_index(self):
        lib = KernelLibrary([cfg(), cfg(acc=4)])
        assert cfg() in lib
        assert cfg(acc=8) not in lib
        assert lib.index_of(cfg(acc=4)) == 1
        with pytest.raises(KeyError):
            lib.index_of(cfg(acc=8))

    def test_kernel_dispatch(self):
        lib = KernelLibrary([cfg()])
        kernel = lib.kernel(cfg())
        assert kernel.config == cfg()
        with pytest.raises(KeyError):
            lib.kernel(cfg(acc=8))

    def test_kernel_by_index(self):
        lib = KernelLibrary([cfg(), cfg(acc=4)])
        assert lib.kernel_by_index(1).config == cfg(acc=4)


class TestSizeAccounting:
    def test_size_grows_with_templates_not_wg(self):
        one = KernelLibrary([cfg()])
        same_template = KernelLibrary([cfg(wg=(8, 8)), cfg(wg=(16, 16))])
        two_templates = KernelLibrary([cfg(), cfg(acc=4)])
        assert same_template.binary_bytes == one.binary_bytes
        assert two_templates.binary_bytes > one.binary_bytes

    def test_bigger_tiles_bigger_ir(self):
        small = CompiledKernel((1, 1, 1))
        big = CompiledKernel((8, 8, 8))
        assert big.ir_bytes > small.ir_bytes

    def test_full_space_library_is_much_larger_than_pruned(self):
        full = KernelLibrary(config_space())
        pruned = KernelLibrary(config_space()[:8])
        # The motivation of the whole paper: pruning shrinks the binary.
        assert full.binary_bytes > 5 * pruned.binary_bytes
