"""Convolution-through-GEMM: im2col and Winograd vs the direct oracle."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.conv import (
    conv2d_direct,
    conv2d_im2col,
    conv2d_winograd,
    im2col,
    winograd_gemm_shape,
)
from repro.kernels.params import KernelConfig
from repro.sycl.device import Device
from repro.sycl.queue import Queue
from repro.workloads.layers import Conv2d, InputSpec
from repro.workloads.lowering import lower_conv_im2col, lower_conv_winograd

CFG = KernelConfig(acc=2, rows=2, cols=2, wg_rows=8, wg_cols=8)


@pytest.fixture
def queue():
    return Queue(Device.r9_nano())


class TestDirectOracle:
    def test_identity_filter(self, rng):
        x = rng.standard_normal((5, 5, 3))
        w = np.zeros((1, 1, 3, 3))
        for c in range(3):
            w[0, 0, c, c] = 1.0
        np.testing.assert_allclose(conv2d_direct(x, w), x, atol=1e-12)

    def test_averaging_filter(self):
        x = np.ones((4, 4, 1))
        w = np.full((2, 2, 1, 1), 0.25)
        out = conv2d_direct(x, w)
        np.testing.assert_allclose(out, np.ones((3, 3, 1)), atol=1e-12)

    def test_stride_and_padding_shapes(self, rng):
        x = rng.standard_normal((7, 9, 2))
        w = rng.standard_normal((3, 3, 2, 4))
        out = conv2d_direct(x, w, stride=2, padding=1)
        assert out.shape == (4, 5, 4)

    def test_channel_mismatch(self, rng):
        with pytest.raises(ValueError, match="channel mismatch"):
            conv2d_direct(
                rng.standard_normal((4, 4, 2)), rng.standard_normal((3, 3, 3, 1))
            )


class TestIm2col:
    def test_matrix_shape_matches_lowering(self, rng):
        x = rng.standard_normal((14, 14, 16)).astype(np.float32)
        cols = im2col(x, (3, 3), stride=1, padding=1)
        predicted = lower_conv_im2col(
            Conv2d(out_channels=1, kernel=3, padding=1), InputSpec(14, 14, 16)
        )
        assert cols.shape == (predicted.m, predicted.k)

    def test_values_are_patches(self):
        x = np.arange(9, dtype=np.float64).reshape(3, 3, 1)
        cols = im2col(x, (2, 2))
        np.testing.assert_allclose(cols[0].ravel(), [0, 1, 3, 4])
        np.testing.assert_allclose(cols[-1].ravel(), [4, 5, 7, 8])

    def test_collapsed_output_rejected(self):
        with pytest.raises(ValueError, match="collapsed"):
            im2col(np.zeros((2, 2, 1)), (5, 5))


class TestIm2colConv:
    def test_matches_direct(self, queue, rng):
        x = rng.standard_normal((9, 11, 4)).astype(np.float32)
        w = rng.standard_normal((3, 3, 4, 6)).astype(np.float32)
        got, event = conv2d_im2col(queue, x, w, CFG, stride=1, padding=1)
        want = conv2d_direct(x, w, stride=1, padding=1)
        np.testing.assert_allclose(got, want, rtol=1e-3, atol=1e-4)
        assert event.profiling_duration_ns > 0

    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 1), (2, 3)])
    def test_strided_padded(self, queue, rng, stride, padding):
        x = rng.standard_normal((12, 10, 3)).astype(np.float32)
        w = rng.standard_normal((3, 3, 3, 5)).astype(np.float32)
        got, _ = conv2d_im2col(queue, x, w, CFG, stride=stride, padding=padding)
        want = conv2d_direct(x, w, stride=stride, padding=padding)
        np.testing.assert_allclose(got, want, rtol=1e-3, atol=1e-4)

    def test_1x1_pointwise(self, queue, rng):
        x = rng.standard_normal((8, 8, 16)).astype(np.float32)
        w = rng.standard_normal((1, 1, 16, 8)).astype(np.float32)
        got, _ = conv2d_im2col(queue, x, w, CFG)
        want = conv2d_direct(x, w)
        np.testing.assert_allclose(got, want, rtol=1e-3, atol=1e-4)

    @settings(max_examples=15, deadline=None)
    @given(
        h=st.integers(4, 12),
        w_dim=st.integers(4, 12),
        c=st.integers(1, 6),
        f=st.integers(1, 6),
        seed=st.integers(0, 99),
    )
    def test_property_matches_direct(self, h, w_dim, c, f, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((h, w_dim, c)).astype(np.float32)
        w = rng.standard_normal((3, 3, c, f)).astype(np.float32)
        got, _ = conv2d_im2col(
            Queue(Device.r9_nano()), x, w, CFG, stride=1, padding=1
        )
        want = conv2d_direct(x, w, stride=1, padding=1)
        np.testing.assert_allclose(got, want, rtol=1e-3, atol=1e-3)


class TestWinogradConv:
    def test_matches_direct(self, queue, rng):
        x = rng.standard_normal((10, 10, 4)).astype(np.float32)
        w = rng.standard_normal((3, 3, 4, 6)).astype(np.float32)
        got, events = conv2d_winograd(queue, x, w, CFG, padding=1)
        want = conv2d_direct(x, w, padding=1)
        np.testing.assert_allclose(got, want, rtol=1e-2, atol=1e-3)
        assert len(events) == 16  # the batch=16 GEMM launch

    def test_odd_output_sizes(self, queue, rng):
        x = rng.standard_normal((7, 9, 2)).astype(np.float32)
        w = rng.standard_normal((3, 3, 2, 3)).astype(np.float32)
        got, _ = conv2d_winograd(queue, x, w, CFG, padding=1)
        want = conv2d_direct(x, w, padding=1)
        assert got.shape == want.shape == (7, 9, 3)
        np.testing.assert_allclose(got, want, rtol=1e-2, atol=1e-3)

    def test_no_padding(self, queue, rng):
        x = rng.standard_normal((8, 8, 3)).astype(np.float32)
        w = rng.standard_normal((3, 3, 3, 2)).astype(np.float32)
        got, _ = conv2d_winograd(queue, x, w, CFG)
        want = conv2d_direct(x, w)
        np.testing.assert_allclose(got, want, rtol=1e-2, atol=1e-3)

    def test_rejects_non_3x3(self, queue, rng):
        with pytest.raises(ValueError, match="3x3"):
            conv2d_winograd(
                queue,
                rng.standard_normal((6, 6, 2)).astype(np.float32),
                rng.standard_normal((5, 5, 2, 2)).astype(np.float32),
                CFG,
            )

    def test_gemm_shape_matches_lowering(self, rng):
        x = rng.standard_normal((14, 14, 32)).astype(np.float32)
        w = rng.standard_normal((3, 3, 32, 64)).astype(np.float32)
        actual = winograd_gemm_shape(x, w, padding=1)
        predicted = lower_conv_winograd(
            Conv2d(out_channels=64, kernel=3, padding=1),
            InputSpec(14, 14, 32),
            tile=2,
        )
        assert actual == predicted

    def test_queue_saw_16_launches(self, rng):
        queue = Queue(Device.r9_nano())
        x = rng.standard_normal((6, 6, 2)).astype(np.float32)
        w = rng.standard_normal((3, 3, 2, 2)).astype(np.float32)
        conv2d_winograd(queue, x, w, CFG, padding=1)
        assert len(queue.submission_log) == 16
