"""GEMV family: differential agreement with the GEMM path."""

import numpy as np
import pytest

from repro.kernels.gemv import GemvKernel, gemv
from repro.kernels.matmul import matmul
from repro.kernels.params import KernelConfig
from repro.sycl.buffer import AccessMode, Buffer
from repro.sycl.device import Device
from repro.sycl.queue import Queue
from repro.workloads.gemm import GemmShape


def cfg(acc=2, rows=2, cols=2, wg=(8, 8)):
    return KernelConfig(acc=acc, rows=rows, cols=cols, wg_rows=wg[0], wg_cols=wg[1])


@pytest.fixture
def queue():
    return Queue(Device.r9_nano())


class TestGemvDifferential:
    @pytest.mark.parametrize("k", [1, 7, 32, 65])
    def test_n_equals_one_matches_gemm_bitwise(self, queue, rng, k):
        """A (m, k, 1) GEMM and the GEMV kernel agree bit for bit."""
        a = rng.standard_normal((33, k)).astype(np.float32)
        x = rng.standard_normal((k,)).astype(np.float32)
        via_gemm, _ = matmul(queue, a, x[:, None], cfg())
        via_gemv, _ = gemv(queue, a, x, cfg())
        assert np.array_equal(via_gemm[:, 0], via_gemv)

    @pytest.mark.parametrize("config", [cfg(), cfg(acc=8, rows=1, cols=4)])
    def test_agreement_across_configs(self, queue, rng, config):
        a = rng.standard_normal((17, 23)).astype(np.float32)
        x = rng.standard_normal((23,)).astype(np.float32)
        via_gemm, _ = matmul(queue, a, x[:, None], config)
        via_gemv, _ = gemv(queue, a, x, config)
        assert np.array_equal(via_gemm[:, 0], via_gemv)

    def test_m_equals_one_row_vector(self, queue, rng):
        """x^T @ B through the kernel matches the GEMM path bitwise."""
        x = rng.standard_normal((1, 19)).astype(np.float32)
        b = rng.standard_normal((19, 27)).astype(np.float32)
        via_gemm, _ = matmul(queue, x, b, cfg())

        kernel = GemvKernel(cfg())
        shape = GemmShape(m=1, k=19, n=27)
        buf_x = Buffer.from_array(x, name="x")
        buf_b = Buffer.from_array(b, name="B")
        buf_y = Buffer((1, 27), dtype=np.float32, name="y")
        queue.submit(
            kernel,
            kernel.nd_range_for(shape),
            args=(
                buf_x.get_access(AccessMode.READ),
                buf_b.get_access(AccessMode.READ),
                buf_y.get_access(AccessMode.WRITE),
            ),
        )
        assert np.array_equal(via_gemm, buf_y.to_host())

    def test_column_and_flat_x_agree(self, queue, rng):
        a = rng.standard_normal((9, 11)).astype(np.float32)
        x = rng.standard_normal((11,)).astype(np.float32)
        flat, _ = gemv(queue, a, x, cfg())
        column, _ = gemv(queue, a, x[:, None], cfg())
        assert np.array_equal(flat, column)


class TestGemvValidation:
    def test_rejects_matrix_matrix_shapes(self, queue, rng):
        kernel = GemvKernel(cfg())
        a = rng.standard_normal((8, 8)).astype(np.float32)
        b = rng.standard_normal((8, 8)).astype(np.float32)
        buf_a = Buffer.from_array(a, name="A")
        buf_b = Buffer.from_array(b, name="B")
        buf_c = Buffer((8, 8), dtype=np.float32, name="C")
        with pytest.raises(ValueError, match="matrix-vector"):
            queue.submit(
                kernel,
                kernel.nd_range_for(GemmShape(m=8, k=8, n=8)),
                args=(
                    buf_a.get_access(AccessMode.READ),
                    buf_b.get_access(AccessMode.READ),
                    buf_c.get_access(AccessMode.WRITE),
                ),
            )

    def test_incompatible_operands_rejected(self, queue, rng):
        a = rng.standard_normal((4, 5)).astype(np.float32)
        x = rng.standard_normal((6,)).astype(np.float32)
        with pytest.raises(ValueError, match="incompatible"):
            gemv(queue, a, x, cfg())

    def test_launch_collapses_unit_dimension(self):
        kernel = GemvKernel(cfg(rows=4, cols=4))
        nd = kernel.nd_range_for(GemmShape(m=1, k=64, n=128))
        assert nd.global_range[0] == 1  # single item row
        nd = kernel.nd_range_for(GemmShape(m=128, k=64, n=1))
        assert nd.global_range[1] == 1

    def test_name_marks_the_family(self):
        assert GemvKernel(cfg()).name.startswith("tiled_gemv<")
