"""Kernel configuration space."""

import pytest
from hypothesis import given, strategies as st

from repro.kernels.params import (
    KernelConfig,
    TILE_SIZES,
    WORK_GROUP_SHAPES,
    config_from_index,
    config_index,
    config_space,
)


class TestSpace:
    def test_exactly_640_configurations(self):
        assert len(config_space()) == 640

    def test_64_compiled_kernels(self):
        templates = {c.template_key for c in config_space()}
        assert len(templates) == 64

    def test_no_duplicates(self):
        assert len(set(config_space())) == 640

    def test_paper_work_group_shapes(self):
        assert WORK_GROUP_SHAPES == (
            (1, 64), (1, 128), (8, 8), (8, 16), (8, 32),
            (16, 8), (16, 16), (32, 8), (64, 1), (128, 1),
        )

    def test_tile_values(self):
        assert TILE_SIZES == (1, 2, 4, 8)

    def test_custom_space(self):
        small = config_space(tile_sizes=(1, 2), work_groups=((8, 8),))
        assert len(small) == 8


class TestIndexing:
    def test_round_trip_all(self):
        for i, cfg in enumerate(config_space()):
            assert config_index(cfg) == i
            assert config_from_index(i) == cfg

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            config_from_index(640)
        with pytest.raises(ValueError):
            config_from_index(-1)

    def test_foreign_config_rejected(self):
        foreign = KernelConfig(acc=3, rows=1, cols=1, wg_rows=8, wg_cols=8)
        with pytest.raises(ValueError):
            config_index(foreign)


class TestDerivedQuantities:
    def test_macro_tile(self):
        cfg = KernelConfig(acc=2, rows=4, cols=8, wg_rows=8, wg_cols=16)
        assert cfg.macro_tile == (32, 128)

    def test_work_group_size(self):
        cfg = KernelConfig(acc=1, rows=1, cols=1, wg_rows=16, wg_cols=8)
        assert cfg.work_group_size == 128

    def test_registers_grow_with_tiles(self):
        small = KernelConfig(acc=1, rows=1, cols=1, wg_rows=8, wg_cols=8)
        big = KernelConfig(acc=8, rows=8, cols=8, wg_rows=8, wg_cols=8)
        assert big.registers_per_item > small.registers_per_item

    def test_flops_per_step(self):
        cfg = KernelConfig(acc=4, rows=2, cols=8, wg_rows=8, wg_cols=8)
        assert cfg.flops_per_item_step == 2 * 2 * 8 * 4

    def test_compiled_distinctness_ignores_wg(self):
        a = KernelConfig(acc=2, rows=2, cols=2, wg_rows=8, wg_cols=8)
        b = KernelConfig(acc=2, rows=2, cols=2, wg_rows=16, wg_cols=16)
        c = KernelConfig(acc=4, rows=2, cols=2, wg_rows=8, wg_cols=8)
        assert not a.is_compiled_distinct_from(b)
        assert a.is_compiled_distinct_from(c)

    def test_short_name_round_trips_parameters(self):
        cfg = KernelConfig(acc=4, rows=2, cols=8, wg_rows=16, wg_cols=8)
        assert cfg.short_name() == "a4r2c8_wg16x8"

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            KernelConfig(acc=0, rows=1, cols=1, wg_rows=1, wg_cols=1)

    def test_ordering_is_total(self):
        configs = config_space()
        assert sorted(configs) == sorted(configs, key=lambda c: (
            c.acc, c.rows, c.cols, c.wg_rows, c.wg_cols
        ))
