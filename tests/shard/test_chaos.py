"""Failover chaos: worker death mid-run must never fail a lookup.

The acceptance bar for sharded serving: SIGKILL one worker while
traffic flows, and (a) every select still answers, (b) the dead worker
restarts and serves again, (c) the merged obs counters stay exact —
requests in == decisions out, nothing double-counted or lost.
"""

import time

import pytest

from repro.pipeline.mapped import load_mapped_selector
from repro.shard import ShardedFleet


@pytest.fixture
def fleet(mapped_dir):
    fleet = ShardedFleet(
        mapped_dir,
        processes=2,
        batch_wait_s=0.002,
        heartbeat_interval_s=0.2,
        request_timeout_s=15.0,
    )
    yield fleet
    fleet.close()


class TestKillOneWorker:
    def test_mid_run_death_reroutes_with_zero_failed_lookups(
        self, fleet, mapped_dir, shape_pool
    ):
        reference = load_mapped_selector(mapped_dir)
        expected = {
            shape.as_tuple(): config
            for shape, config in zip(
                shape_pool, reference.select_batch(shape_pool)
            )
        }
        rounds = 30
        kill_at = 10
        served = 0
        for round_number in range(rounds):
            if round_number == kill_at:
                fleet.kill_worker(0)
            decisions = fleet.select_batch(shape_pool)
            served += len(decisions)
            for shape, decision in zip(shape_pool, decisions):
                assert decision.config == expected[shape.as_tuple()]
        assert served == rounds * len(shape_pool)

        # Exactness: every request the front door accepted produced a
        # decision, even across the kill.
        requests = fleet.registry.counter("shard.requests").value
        decisions_total = fleet.registry.counter("shard.decisions").value
        assert requests == served == decisions_total

        stats = fleet.stats()
        assert stats.restarts >= 1
        assert stats.rerouted > 0

    def test_killed_worker_restarts_and_serves_again(
        self, fleet, shape_pool
    ):
        # Find a shape homed on worker0 so we can prove the restarted
        # process answers its own shard again.
        from repro.shard import shard_of

        homed = next(
            s for s in shape_pool if shard_of(s.as_tuple(), 2) == 0
        )
        assert fleet.select(homed).device_id == "worker0"
        fleet.kill_worker(0)
        # The very next lookups must succeed (rerouted while down).
        fleet.select(homed)
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            if fleet.workers_alive == 2:
                break
            time.sleep(0.05)
        assert fleet.workers_alive == 2
        decision = fleet.select(homed)
        assert decision.device_id == "worker0"
        assert fleet.stats(pull=False).restarts >= 1

    def test_idle_death_is_noticed_by_the_heartbeat(self, fleet):
        # No traffic at all: the monitor's ping must detect the death
        # and drive the restart on its own.
        fleet.kill_worker(1)
        deadline = time.monotonic() + 20.0
        restarted = False
        while time.monotonic() < deadline:
            if fleet.registry.counter("shard.restarts").value >= 1:
                restarted = True
                break
            time.sleep(0.05)
        assert restarted
        assert fleet.workers_alive == 2


class TestNoRestart:
    def test_all_workers_dead_surfaces_a_clean_error(
        self, mapped_dir, shape_pool
    ):
        with ShardedFleet(
            mapped_dir,
            processes=1,
            restart=False,
            heartbeat_interval_s=0.2,
            request_timeout_s=5.0,
        ) as fleet:
            fleet.select(shape_pool[0])
            fleet.kill_worker(0)
            with pytest.raises(RuntimeError, match="no healthy shard workers"):
                for _ in range(5):
                    fleet.select(shape_pool[0])
