"""Mapped selector layout: zero-copy loads, digests, corruption handling."""

import numpy as np
import pytest

from repro.core.deploy import DeployedSelector
from repro.pipeline.mapped import (
    MAPPED_META_FILE,
    MappedIntegrityError,
    SharedSelectorBlock,
    load_mapped_selector,
    mapped_digest,
    read_mapped_meta,
    verify_mapped,
    write_mapped_selector,
)


class TestMappedRoundTrip:
    def test_selections_survive_the_round_trip(
        self, tiny_deployed, mapped_dir, shape_pool
    ):
        loaded = load_mapped_selector(mapped_dir)
        assert loaded.select_batch(shape_pool) == tiny_deployed.select_batch(
            shape_pool
        )

    def test_arrays_are_memory_mapped_by_default(self, mapped_dir):
        loaded = load_mapped_selector(mapped_dir)
        tree = loaded.selector.estimator.tree_
        assert isinstance(tree.threshold, np.memmap)
        assert not tree.threshold.flags.writeable

    def test_mmap_false_loads_plain_arrays(self, mapped_dir):
        loaded = load_mapped_selector(mapped_dir, mmap=False)
        tree = loaded.selector.estimator.tree_
        assert not isinstance(tree.threshold, np.memmap)

    def test_from_mapped_constructor(self, mapped_dir, shape_pool):
        loaded = DeployedSelector.from_mapped(mapped_dir)
        direct = load_mapped_selector(mapped_dir)
        assert loaded.select_batch(shape_pool) == direct.select_batch(
            shape_pool
        )

    def test_digest_is_deterministic(self, tiny_deployed, tmp_path):
        a = write_mapped_selector(tiny_deployed, tmp_path / "a")
        b = write_mapped_selector(tiny_deployed, tmp_path / "b")
        assert a == b
        assert mapped_digest(tmp_path / "a") == a
        assert verify_mapped(tmp_path / "a") == a

    def test_compiled_path_works_off_mapped_arrays(
        self, mapped_dir, shape_pool
    ):
        loaded = load_mapped_selector(mapped_dir)
        compiled = loaded.compiled()
        assert compiled.select_batch(shape_pool[:32]) == loaded.select_batch(
            shape_pool[:32]
        )


class TestMappedIntegrity:
    def test_corrupt_array_file_is_a_clean_integrity_error(
        self, tiny_deployed, tmp_path
    ):
        directory = tmp_path / "m"
        write_mapped_selector(tiny_deployed, directory)
        path = directory / "threshold.npy"
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # flip one data byte past the .npy header
        path.write_bytes(bytes(raw))
        with pytest.raises(MappedIntegrityError, match="SHA-256"):
            load_mapped_selector(directory)

    def test_tampered_metadata_fails_the_digest_check(
        self, tiny_deployed, tmp_path
    ):
        from repro.pipeline.serialize import dumps

        directory = tmp_path / "m"
        write_mapped_selector(tiny_deployed, directory)
        meta = read_mapped_meta(directory)
        meta["classifier"] = "SomethingElse"
        (directory / MAPPED_META_FILE).write_text(dumps(meta))
        with pytest.raises(MappedIntegrityError, match="digest"):
            load_mapped_selector(directory)

    def test_unparseable_metadata_is_an_integrity_error(
        self, tiny_deployed, tmp_path
    ):
        directory = tmp_path / "m"
        write_mapped_selector(tiny_deployed, directory)
        (directory / MAPPED_META_FILE).write_text("{not json")
        with pytest.raises(MappedIntegrityError, match="unreadable"):
            load_mapped_selector(directory)

    def test_missing_directory_is_an_integrity_error(self, tmp_path):
        with pytest.raises(MappedIntegrityError, match="no mapped selector"):
            load_mapped_selector(tmp_path / "nowhere")

    def test_missing_array_file_is_an_integrity_error(
        self, tiny_deployed, tmp_path
    ):
        directory = tmp_path / "m"
        write_mapped_selector(tiny_deployed, directory)
        (directory / "left.npy").unlink()
        with pytest.raises(MappedIntegrityError, match="missing"):
            load_mapped_selector(directory)

    def test_verify_false_skips_the_check(self, tiny_deployed, tmp_path):
        directory = tmp_path / "m"
        write_mapped_selector(tiny_deployed, directory)
        path = directory / "threshold.npy"
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        load_mapped_selector(directory, verify=False)  # caller's risk


class TestSelectorCodecIntegration:
    def test_codec_payload_carries_the_mapped_layout(
        self, tiny_deployed, tmp_path, shape_pool
    ):
        from repro.pipeline.artifact import Provenance
        from repro.pipeline.store import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        provenance = Provenance(
            stage="train",
            fingerprint="f" * 64,
            code_version="test",
            params={},
            parents={},
            codec="selector",
        )
        store.put(tiny_deployed, provenance)
        loaded = store.get(provenance.fingerprint).value
        tree = loaded.selector.estimator.tree_
        assert isinstance(tree.threshold, np.memmap)
        assert loaded.select_batch(shape_pool) == tiny_deployed.select_batch(
            shape_pool
        )

    def test_codec_falls_back_to_npz_for_legacy_payloads(
        self, tiny_deployed, tmp_path, shape_pool
    ):
        import shutil

        from repro.pipeline.codecs import get_codec

        codec = get_codec("selector")
        directory = tmp_path / "payload"
        directory.mkdir()
        codec.save(tiny_deployed, directory)
        shutil.rmtree(directory / "mapped")  # pre-mapped-era artifact
        loaded = codec.load(directory)
        assert loaded.select_batch(shape_pool) == tiny_deployed.select_batch(
            shape_pool
        )


class TestSharedSelectorBlock:
    def test_shared_memory_round_trip(self, mapped_dir, shape_pool):
        with SharedSelectorBlock.create(mapped_dir) as block:
            attached = SharedSelectorBlock.attach(block.spec)
            try:
                deployed = attached.deployed()
                reference = load_mapped_selector(mapped_dir)
                assert deployed.select_batch(
                    shape_pool[:64]
                ) == reference.select_batch(shape_pool[:64])
            finally:
                attached.close()

    def test_tampered_segment_fails_attach_verification(self, mapped_dir):
        with SharedSelectorBlock.create(mapped_dir) as block:
            field, dtype, shape, offset = block.spec.layout[1]  # threshold
            view = np.ndarray(
                shape, dtype=dtype, buffer=block._shm.buf, offset=offset
            )
            view[0] += 1.0
            with pytest.raises(MappedIntegrityError, match="SHA-256"):
                SharedSelectorBlock.attach(block.spec)
