"""Shared fixtures: one small tuned selector, written once per session.

Tuning even a reduced sweep costs ~a second, and every shard test needs
the same deployable artefact — so the selector and its mapped layout
are session-scoped and the per-test fleets are built from the mapped
directory (exactly how production workers consume it).
"""

import pytest


@pytest.fixture(scope="session")
def tiny_deployed():
    from repro.bench.runner import BenchmarkRunner, RunnerConfig
    from repro.core.dataset import PerformanceDataset
    from repro.core.deploy import tune
    from repro.kernels.params import config_space
    from repro.sycl.device import Device
    from repro.workloads.extract import extract_dataset_shapes

    configs = config_space(
        tile_sizes=(1, 2), work_groups=((8, 8), (16, 16))
    )
    shapes, _ = extract_dataset_shapes()
    runner = BenchmarkRunner(
        Device.r9_nano(),
        configs=configs,
        runner_config=RunnerConfig(
            warmup_iterations=1, timed_iterations=1, seed=0
        ),
    )
    dataset = PerformanceDataset.from_benchmark(runner.run(shapes[::11]))
    return tune(dataset, n_configs=4, random_state=0)


@pytest.fixture(scope="session")
def mapped_dir(tiny_deployed, tmp_path_factory):
    from repro.pipeline.mapped import write_mapped_selector

    directory = tmp_path_factory.mktemp("mapped") / "selector"
    write_mapped_selector(tiny_deployed, directory)
    return directory


@pytest.fixture(scope="session")
def shape_pool():
    from repro.loadgen.workload import network_shape_pool

    return network_shape_pool()
