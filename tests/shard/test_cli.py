"""The `repro shard` subcommand and `repro loadgen run --processes`."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def small_args():
    # Tiny synthetic selector, short flat-out runs: tier-1 friendly.
    return ["--budget", "2", "--seed", "0"]


class TestShardServe:
    def test_serves_and_exports_shard_metrics(
        self, small_args, capsys, tmp_path
    ):
        obs_path = tmp_path / "obs.json"
        code = main(
            [
                "shard",
                "serve",
                "--processes",
                "2",
                "--requests",
                "600",
                "--batch-size",
                "128",
                "--obs-export",
                str(obs_path),
            ]
            + small_args
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "served 600 requests" in out
        assert "workers alive" in out

        doc = json.loads(obs_path.read_text())
        counters = {m["name"]: m for m in doc["metrics"]["counters"]}
        assert counters["shard.requests"]["value"] == 600
        assert counters["shard.decisions"]["value"] == 600
        # Worker-side metrics arrived over the control pipe too.
        assert "serving.lookups" in counters

    def test_kill_mid_run_still_answers_everything(
        self, small_args, capsys
    ):
        code = main(
            [
                "shard",
                "serve",
                "--processes",
                "2",
                "--requests",
                "800",
                "--batch-size",
                "100",
                "--kill",
                "0",
            ]
            + small_args
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "killing worker 0" in out
        assert "served 800 requests" in out


class TestShardStats:
    def test_renders_only_shard_metrics(self, small_args, capsys, tmp_path):
        obs_path = tmp_path / "obs.json"
        assert (
            main(
                [
                    "shard",
                    "serve",
                    "--processes",
                    "1",
                    "--requests",
                    "200",
                    "--obs-export",
                    str(obs_path),
                ]
                + small_args
            )
            == 0
        )
        capsys.readouterr()
        code = main(["shard", "stats", "--snapshot", str(obs_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "shard.requests" in out
        assert "serving.lookups" not in out

    def test_missing_snapshot_fails_cleanly(self, capsys, tmp_path):
        code = main(
            ["shard", "stats", "--snapshot", str(tmp_path / "nope.json")]
        )
        assert code == 1
        assert "no obs snapshot" in capsys.readouterr().err

    def test_requires_a_snapshot_path(self, capsys):
        code = main(["shard", "stats"])
        assert code == 1
        assert "--snapshot" in capsys.readouterr().err


class TestShardBench:
    def test_scaling_report_with_meta(self, small_args, capsys, tmp_path):
        report_path = tmp_path / "scaling.json"
        code = main(
            [
                "shard",
                "bench",
                "--processes",
                "2",
                "--qps",
                "2000",
                "--duration",
                "0.3",
                "--workers",
                "2",
                "--min-scaling",
                "3.0",
                "--report-json",
                str(report_path),
            ]
            + small_args
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "scaling:" in out

        doc = json.loads(report_path.read_text())
        assert doc["scaling"] > 0
        assert doc["efficiency"] > 0
        assert doc["processes"] == 2
        assert doc["usable_cpus"] >= 1
        assert doc["baseline"]["completed"] == doc["baseline"]["offered"]
        assert doc["completed"] == doc["offered"]
        meta = doc["meta"]
        assert meta["command"] == "repro shard bench"
        assert meta["config"]["processes"] == 2
        assert meta["git_sha"] is None or len(meta["git_sha"]) == 40


class TestLoadgenProcesses:
    def test_sharded_loadgen_run_with_report_meta(
        self, small_args, capsys, tmp_path
    ):
        report_path = tmp_path / "report.json"
        code = main(
            [
                "loadgen",
                "run",
                "--processes",
                "2",
                "--qps",
                "2000",
                "--duration",
                "0.3",
                "--workers",
                "2",
                "--no-pace",
                "--report-json",
                str(report_path),
            ]
            + small_args
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "shard worker processes" in out
        assert "workers alive" in out

        doc = json.loads(report_path.read_text())
        assert doc["completed"] == doc["offered"] > 0
        assert doc["meta"]["command"] == "repro loadgen run"
        assert doc["meta"]["config"]["processes"] == 2

    def test_processes_is_incompatible_with_adaptive(self, capsys):
        code = main(
            ["loadgen", "run", "--processes", "2", "--adaptive"]
        )
        assert code == 1
        assert "--adaptive" in capsys.readouterr().err
