"""run_sharded_load: the chunked load driver over a ShardedFleet."""

import pytest

from repro.loadgen import LoadgenConfig, RateProfile, run_sharded_load
from repro.shard import ShardedFleet


@pytest.fixture(scope="module")
def fleet(mapped_dir):
    fleet = ShardedFleet(
        mapped_dir,
        processes=2,
        batch_wait_s=0.002,
        heartbeat_interval_s=0.5,
        request_timeout_s=15.0,
    )
    yield fleet
    fleet.close()


def _config(**overrides):
    fields = dict(
        profile=RateProfile(base_qps=4000.0),
        duration_s=0.4,
        workers=2,
        seed=11,
        pace=False,
    )
    fields.update(overrides)
    return LoadgenConfig(**fields)


class TestRunShardedLoad:
    def test_answers_every_offered_request(self, fleet):
        report = run_sharded_load(fleet, _config(), chunk_size=128)
        assert report.offered > 0
        assert report.completed == report.offered
        assert not report.paced
        assert not report.saturated
        assert set(report.dispatched) <= {"worker0", "worker1"}
        assert sum(report.dispatched.values()) == report.completed

    def test_lookup_latency_is_the_fleet_wide_merged_view(self, fleet):
        before = sum(
            metric.count
            for name, _, metric in fleet.registry.collect()
            if name == "serving.lookup_seconds"
        )
        report = run_sharded_load(fleet, _config(seed=12), chunk_size=64)
        after = sum(
            metric.count
            for name, _, metric in fleet.registry.collect()
            if name == "serving.lookup_seconds"
        )
        # The driver pulled every worker's delta: the merged registry
        # grew by exactly this run's request count, and the report's
        # quantiles read from that merged view.
        assert after - before == report.offered
        assert report.lookup_latency is not None
        assert report.lookup_latency.count == after

    def test_per_worker_breakdown_covers_the_schedule(self, fleet):
        report = run_sharded_load(fleet, _config(seed=13), chunk_size=64)
        assert len(report.workers) == 2
        assert sum(w.offered for w in report.workers) == report.offered
        assert sum(w.completed for w in report.workers) == report.completed

    def test_front_door_counters_stay_exact(self, fleet):
        run_sharded_load(fleet, _config(seed=14), chunk_size=32)
        requests = fleet.registry.counter("shard.requests").value
        decisions = fleet.registry.counter("shard.decisions").value
        assert requests == decisions > 0

    def test_rejects_a_nonpositive_chunk(self, fleet):
        with pytest.raises(ValueError, match="chunk_size"):
            run_sharded_load(fleet, _config(), chunk_size=0)
