"""ShardedFleet correctness: routing, batching, obs merge, lifecycle."""

import threading

import pytest

from repro.obs import MetricsRegistry
from repro.pipeline.mapped import load_mapped_selector
from repro.shard import ShardedFleet, WorkerStartupError, shard_of


@pytest.fixture(scope="module")
def fleet(mapped_dir):
    fleet = ShardedFleet(
        mapped_dir,
        processes=2,
        batch_wait_s=0.01,
        heartbeat_interval_s=0.2,
        request_timeout_s=15.0,
    )
    yield fleet
    fleet.close()


class TestShardOf:
    def test_deterministic_and_in_range(self):
        key = (64, 128, 256, 1)
        assert shard_of(key, 4) == shard_of(key, 4)
        for n in (1, 2, 3, 7):
            assert 0 <= shard_of(key, n) < n

    def test_spreads_across_shards(self, shape_pool):
        shards = {shard_of(s.as_tuple(), 4) for s in shape_pool}
        assert len(shards) > 1

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="n_shards"):
            shard_of((1, 2, 3, 4), 0)


class TestFleetServing:
    def test_select_matches_the_local_selector(
        self, fleet, mapped_dir, shape_pool
    ):
        reference = load_mapped_selector(mapped_dir)
        for shape in shape_pool[:24]:
            decision = fleet.select(shape)
            assert decision.config == reference.select(shape)
            assert decision.device_id.startswith("worker")

    def test_select_batch_matches_the_local_selector(
        self, fleet, mapped_dir, shape_pool
    ):
        reference = load_mapped_selector(mapped_dir)
        decisions = fleet.select_batch(shape_pool)
        expected = reference.select_batch(shape_pool)
        assert tuple(d.config for d in decisions) == expected

    def test_same_shape_always_lands_on_the_same_worker(
        self, fleet, shape_pool
    ):
        shape = shape_pool[0]
        devices = {fleet.select(shape).device_id for _ in range(6)}
        assert len(devices) == 1

    def test_requests_equal_decisions(self, fleet, shape_pool):
        fleet.select_batch(shape_pool[:50])
        requests = fleet.registry.counter("shard.requests").value
        decisions = fleet.registry.counter("shard.decisions").value
        assert requests == decisions > 0

    def test_concurrent_callers_micro_batch(self, fleet, shape_pool):
        shape = shape_pool[3]
        fleet.select(shape)  # warm the route
        before = fleet.registry.counter("shard.batches").value
        n_threads = 16
        barrier = threading.Barrier(n_threads)

        def caller():
            barrier.wait()
            fleet.select(shape)

        threads = [threading.Thread(target=caller) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        flushes = fleet.registry.counter("shard.batches").value - before
        # 16 concurrent single-shape callers must coalesce into fewer
        # pipe round trips than callers (the point of micro-batching).
        assert 0 < flushes < n_threads

    def test_empty_batch(self, fleet):
        assert fleet.select_batch(()) == ()


class TestObsAggregation:
    def test_pull_metrics_merges_worker_registries(self, fleet, shape_pool):
        fleet.select_batch(shape_pool)
        answered = fleet.pull_metrics()
        assert answered == 2
        # Worker-side serving counters arrive labelled per worker and
        # total exactly the keys the front door dispatched.
        total_lookups = sum(
            metric.value
            for name, labels, metric in fleet.registry.collect()
            if name == "serving.lookups"
        )
        assert total_lookups == fleet.registry.counter("shard.requests").value

    def test_stats_reads_the_merged_fleet_view(self, fleet, shape_pool):
        fleet.select_batch(shape_pool[:64])
        stats = fleet.stats()
        assert stats.requests == stats.decisions > 0
        assert len(stats.workers) == 2
        assert all(w.alive for w in stats.workers)
        assert stats.lookup_latency is not None
        assert stats.lookup_latency.count > 0
        assert "workers alive" in stats.render()

    def test_fleet_wide_quantiles_cover_every_worker(self, fleet, shape_pool):
        from repro.loadgen.report import merged_quantiles

        fleet.select_batch(shape_pool)
        fleet.pull_metrics()
        per_worker = [
            metric.count
            for name, labels, metric in fleet.registry.collect()
            if name == "serving.lookup_seconds" and metric.count
        ]
        assert len(per_worker) == 2  # both workers contributed
        merged = merged_quantiles(fleet.registry, "serving.lookup_seconds")
        assert merged.count == sum(per_worker)


class TestLifecycle:
    def test_corrupt_mapped_artifact_fails_startup_cleanly(
        self, tiny_deployed, tmp_path
    ):
        from repro.pipeline.mapped import write_mapped_selector

        directory = tmp_path / "m"
        write_mapped_selector(tiny_deployed, directory)
        path = directory / "threshold.npy"
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(
            WorkerStartupError, match="MappedIntegrityError"
        ):
            ShardedFleet(directory, processes=1)

    def test_from_deployed_owns_and_cleans_its_export(self, tiny_deployed):
        fleet = ShardedFleet.from_deployed(
            tiny_deployed, processes=1, heartbeat_interval_s=0.2
        )
        tempdir = fleet._owned_tempdir
        assert tempdir is not None and tempdir.exists()
        fleet.close()
        assert not tempdir.exists()

    def test_from_artifact_serves_the_stored_mapped_bytes(
        self, tiny_deployed, tmp_path, shape_pool
    ):
        from repro.pipeline.artifact import Provenance
        from repro.pipeline.store import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        provenance = Provenance(
            stage="train",
            fingerprint="c" * 64,
            code_version="test",
            params={},
            parents={},
            codec="selector",
        )
        store.put(tiny_deployed, provenance)
        with ShardedFleet.from_artifact(
            store, "train:cccc", processes=1, heartbeat_interval_s=0.2
        ) as fleet:
            assert fleet._owned_tempdir is None  # mapped in place
            decision = fleet.select(shape_pool[0])
            assert decision.config == tiny_deployed.select(shape_pool[0])

    def test_closed_fleet_rejects_traffic(self, tiny_deployed, shape_pool):
        fleet = ShardedFleet.from_deployed(tiny_deployed, processes=1)
        fleet.close()
        with pytest.raises(RuntimeError, match="closed"):
            fleet.select(shape_pool[0])
        fleet.close()  # idempotent

    def test_custom_registry_is_used(self, mapped_dir, shape_pool):
        registry = MetricsRegistry()
        with ShardedFleet(
            mapped_dir, processes=1, registry=registry
        ) as fleet:
            fleet.select(shape_pool[0])
            assert registry.counter("shard.requests").value == 1
