"""Router-driven adaptive feedback: ``auto_record`` parity with record().

The oracle: a serving loop that reports completions through
``FleetRouter.complete(..., shape=, config=, seconds=)`` against an
``auto_record=True`` adaptive service must leave the bandit in exactly
the state an explicit ``service.record(...)`` loop produces — same
promotions, same stats, same subsequent picks.
"""

from repro.adaptive import AdaptiveConfig
from repro.kernels.params import config_space
from repro.obs.registry import MetricsRegistry
from repro.serving import AdaptiveSelectionService, SelectionService
from repro.serving.router import FleetRouter
from repro.workloads.gemm import GemmShape

CONFIGS = tuple(config_space(tile_sizes=(1, 2), work_groups=((8, 8), (16, 16))))
BASE = CONFIGS[0]
SHAPE = GemmShape(m=64, k=64, n=64)

#: Latency oracle: one config is clearly fastest, the base is slow.
FAST = CONFIGS[1]
_SECONDS = {config: (0.001 if config == FAST else 0.010) for config in CONFIGS}


class _Library:
    def __init__(self, configs):
        self.configs = tuple(configs)


class _StubPolicy:
    def __init__(self):
        self.library = _Library(CONFIGS[:4])

    def select(self, shape):
        return BASE

    def select_batch(self, shapes):
        return tuple(BASE for _ in shapes)


def make_adaptive(*, auto_record):
    registry = MetricsRegistry()
    inner = SelectionService(_StubPolicy(), registry=registry, name="auto")
    return AdaptiveSelectionService(
        inner,
        config=AdaptiveConfig(
            trial_fraction=0.5,
            seed=0,
            min_trials=2,
            promote_margin=1.2,
            admission_threshold=2,
        ),
        registry=registry,
        auto_record=auto_record,
    )


def drive(select, feedback, rounds=40):
    """One serving loop: select, 'run' the kernel, report its latency."""
    picks = []
    for _ in range(rounds):
        config = select()
        picks.append(config)
        feedback(config, _SECONDS[config])
    return picks


class TestAutoRecordFlag:
    def test_default_is_off(self):
        assert make_adaptive(auto_record=False).auto_record is False
        registry = MetricsRegistry()
        inner = SelectionService(_StubPolicy(), registry=registry)
        assert AdaptiveSelectionService(inner).auto_record is False

    def test_opt_in(self):
        assert make_adaptive(auto_record=True).auto_record is True


class TestRouterParity:
    def _route(self, service):
        router = FleetRouter(registry=service.registry)
        router.add_device("dev", service)
        return router

    def test_complete_matches_explicit_record(self):
        auto = make_adaptive(auto_record=True)
        explicit = make_adaptive(auto_record=False)
        auto_router = self._route(auto)
        explicit_router = self._route(explicit)

        auto_picks = drive(
            lambda: auto_router.select(SHAPE).config,
            lambda config, seconds: auto_router.complete(
                "dev", shape=SHAPE, config=config, seconds=seconds
            ),
        )
        explicit_picks = drive(
            lambda: explicit_router.select(SHAPE).config,
            lambda config, seconds: (
                explicit.record(SHAPE, config, seconds),
                explicit_router.complete("dev"),
            ),
        )

        # Identical seeds + identical feedback => identical trajectories.
        assert auto_picks == explicit_picks
        assert auto.adaptive_stats() == explicit.adaptive_stats()
        assert [e.kind for e in auto.events()] == [
            e.kind for e in explicit.events()
        ]
        # Both loops found the fast config and promoted it.
        assert auto.select(SHAPE) == FAST
        assert explicit.select(SHAPE) == FAST
        # The router's outstanding gauge drained in both loops.
        assert auto_router.stats().outstanding["dev"] == 0
        assert explicit_router.stats().outstanding["dev"] == 0

    def test_auto_record_off_ignores_latency_kwargs(self):
        service = make_adaptive(auto_record=False)
        router = self._route(service)
        drive(
            lambda: router.select(SHAPE).config,
            lambda config, seconds: router.complete(
                "dev", shape=SHAPE, config=config, seconds=seconds
            ),
        )
        # No feedback ever reached the bandit: nothing promoted, and
        # the feedback counter never moved.
        assert service.adaptive_stats().promotions == 0
        assert service.select(SHAPE) == BASE
        feedback = service.registry.counter(
            "adaptive.feedback", {"service": "auto"}
        )
        assert feedback.value == 0

    def test_partial_kwargs_do_not_record(self):
        service = make_adaptive(auto_record=True)
        router = self._route(service)
        router.select(SHAPE)
        router.complete("dev", shape=SHAPE, config=BASE)  # no seconds
        router.complete("dev", seconds=0.001)  # no shape/config
        feedback = service.registry.counter(
            "adaptive.feedback", {"service": "auto"}
        )
        assert feedback.value == 0

    def test_plain_service_without_auto_record_is_safe(self):
        registry = MetricsRegistry()
        inner = SelectionService(_StubPolicy(), registry=registry)
        router = FleetRouter(registry=registry)
        router.add_device("dev", inner)
        router.select(SHAPE)
        # A bare SelectionService has no auto_record; kwargs are ignored.
        router.complete("dev", shape=SHAPE, config=BASE, seconds=0.001)
        assert router.stats().outstanding["dev"] == 0
