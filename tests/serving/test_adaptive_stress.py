"""Concurrency stress: threads hammering one AdaptiveSelectionService.

Mirrors ``test_stress.py``'s hammer/barrier idiom: 8 threads mix warm
selects, batch selects and feedback records, and afterwards every
counter must balance exactly — admission hits + misses equals total
lookups, feedback equals total records, and each shape's served trials
never exceed the arming budget ``feedbacks // trial_interval``.
"""

import threading

from repro.adaptive import AdaptiveConfig
from repro.kernels.params import config_space
from repro.obs.registry import MetricsRegistry
from repro.serving import AdaptiveSelectionService, SelectionService
from repro.workloads.gemm import GemmShape

CONFIGS = tuple(config_space(tile_sizes=(1, 2), work_groups=((8, 8), (16, 16))))
BASE = CONFIGS[0]
N_THREADS = 8
ROUNDS = 50
SHAPES = tuple(GemmShape(m=8 * (i + 1), k=16, n=16) for i in range(16))


class _Library:
    def __init__(self, configs):
        self.configs = tuple(configs)


class _StubPolicy:
    def __init__(self):
        self.library = _Library(CONFIGS[:4])

    def select(self, shape):
        return BASE

    def select_batch(self, shapes):
        return tuple(BASE for _ in shapes)


def hammer(worker, n_threads=N_THREADS):
    """Run ``worker(thread_index)`` on N threads; re-raise any error."""
    errors = []
    barrier = threading.Barrier(n_threads)

    def body(tid):
        try:
            barrier.wait()
            worker(tid)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=body, args=(tid,)) for tid in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


def make_service(trial_fraction=0.125):
    registry = MetricsRegistry()
    inner = SelectionService(
        _StubPolicy(), registry=registry, name="stress"
    )
    return AdaptiveSelectionService(
        inner,
        config=AdaptiveConfig(
            trial_fraction=trial_fraction,
            seed=0,
            min_trials=2,
            promote_margin=1.0,
            admission_threshold=1,
        ),
        registry=registry,
    )


class TestConcurrentAdaptiveServing:
    def test_counter_totals_are_exact_under_mixed_load(self):
        service = make_service()

        def worker(tid):
            for r in range(ROUNDS):
                shape = SHAPES[(tid + r) % len(SHAPES)]
                config = service.select(shape)
                assert config in CONFIGS[:4]
                service.record(shape, config, 1e-3 + 1e-5 * (r % 7))
                if r % 5 == 0:
                    batch = service.select_batch(SHAPES[:4])
                    assert all(c in CONFIGS[:4] for c in batch)
                if r % 9 == 0:
                    service.adaptive_stats()  # snapshots interleave

        hammer(worker)
        stats = service.adaptive_stats()
        selects = N_THREADS * ROUNDS
        batch_items = N_THREADS * len(range(0, ROUNDS, 5)) * 4
        # Every lookup lands in exactly one of hits/misses.
        assert stats.requests == selects + batch_items
        assert stats.feedback == selects
        assert stats.tracked_shapes == len(SHAPES)
        # Trials counted == trial events logged; both within budget.
        assert stats.trials <= stats.feedback

    def test_per_shape_trials_never_exceed_the_arming_budget(self):
        service = make_service(trial_fraction=0.25)

        def worker(tid):
            for r in range(ROUNDS):
                shape = SHAPES[(tid * 3 + r) % len(SHAPES)]
                config = service.select(shape)
                service.record(shape, config, 1e-3)

        hammer(worker)
        interval = service.config.trial_interval
        total_trials = 0
        for state in service.tracked().values():
            assert state.trials <= state.feedbacks // interval
            total_trials += state.trials
        assert total_trials == service.adaptive_stats().trials
        assert sum(
            state.feedbacks for state in service.tracked().values()
        ) == service.adaptive_stats().feedback

    def test_every_thread_sees_a_candidate_config(self):
        service = make_service(trial_fraction=1.0)
        results = [None] * N_THREADS

        def worker(tid):
            local = []
            for r in range(ROUNDS):
                shape = SHAPES[r % len(SHAPES)]
                local.append(service.select(shape))
                service.record(shape, local[-1], 1e-3)
            results[tid] = local

        hammer(worker)
        served = {config for local in results for config in local}
        # Trials may serve any candidate, but never something outside
        # the candidate set.
        assert served <= set(CONFIGS[:4])

    def test_exploration_off_stays_passthrough_under_contention(self):
        service = make_service(trial_fraction=0.0)

        def worker(tid):
            for r in range(ROUNDS):
                shape = SHAPES[(tid + r) % len(SHAPES)]
                assert service.select(shape) == BASE
                service.record(shape, BASE, 1e-3)

        hammer(worker)
        stats = service.adaptive_stats()
        assert stats.trials == 0
        assert stats.promotions == 0
        assert stats.active_overrides == 0
