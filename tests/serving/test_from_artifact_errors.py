"""Failure paths of ``SelectionService.from_artifact``.

A serving process bootstrapping from a store must fail loudly and
legibly: unknown or ambiguous artifact ids, artifacts of the wrong
stage, and corrupted payloads each get a distinct, self-describing
exception rather than a stack trace from store internals.
"""

from __future__ import annotations

import pytest

from repro.core.deploy import tune
from repro.pipeline import ArtifactPayloadError, ArtifactStore, Provenance
from repro.serving import SelectionService

TRAIN_FP = "a" * 64
DATASET_FP = "b" * 64
TWIN_FPS = ("ab" + "0" * 62, "ab" + "1" * 62)


def _provenance(stage, fingerprint, codec):
    return Provenance(
        stage=stage,
        fingerprint=fingerprint,
        code_version="test",
        params={},
        parents={},
        codec=codec,
    )


@pytest.fixture(scope="module")
def deployed(small_dataset):
    train, _ = small_dataset.split(test_size=0.2, random_state=0)
    return tune(train, n_configs=4, classifier="DecisionTree", random_state=0)


@pytest.fixture
def store(tmp_path, deployed, small_dataset):
    store = ArtifactStore(tmp_path / "store")
    store.put(deployed, _provenance("train", TRAIN_FP, "selector"))
    store.put(small_dataset, _provenance("dataset", DATASET_FP, "dataset"))
    return store


class TestUnknownArtifacts:
    def test_unknown_id_raises_keyerror_naming_the_id(self, store):
        with pytest.raises(KeyError, match="f{10}"):
            SelectionService.from_artifact(store, "f" * 64)

    def test_unknown_display_id(self, store):
        with pytest.raises(KeyError, match="train:feedc0de"):
            SelectionService.from_artifact(store, "train:feedc0de")

    def test_ambiguous_prefix_raises_keyerror(self, deployed, store):
        for fp in TWIN_FPS:
            store.put(deployed, _provenance("train", fp, "selector"))
        with pytest.raises(KeyError, match="ambiguous"):
            SelectionService.from_artifact(store, "ab")

    def test_ambiguous_error_keeps_the_requested_id(self, deployed, store):
        for fp in TWIN_FPS:
            store.put(deployed, _provenance("train", fp, "selector"))
        with pytest.raises(KeyError, match="cannot resolve artifact 'ab'"):
            SelectionService.from_artifact(store, "ab")


class TestWrongArtifacts:
    def test_non_policy_artifact_raises_typeerror(self, store):
        with pytest.raises(TypeError, match="not a selection policy"):
            SelectionService.from_artifact(store, DATASET_FP)

    def test_wrong_stage_error_names_the_stage(self, store):
        with pytest.raises(TypeError, match="stage 'dataset'"):
            SelectionService.from_artifact(store, DATASET_FP)


class TestCorruptedPayloads:
    def _payload_files(self, store, fingerprint):
        # The selector payload is nested (tree.npz + selector.json plus
        # the zero-copy mapped/ layout): corrupt every file, recursively.
        payload_dir = store.root / "objects" / fingerprint / "payload"
        return sorted(p for p in payload_dir.rglob("*") if p.is_file())

    def test_truncated_payload_raises_payload_error(self, store):
        for path in self._payload_files(store, TRAIN_FP):
            path.write_bytes(b"\x00garbage")
        with pytest.raises(ArtifactPayloadError, match="unreadable payload"):
            SelectionService.from_artifact(store, TRAIN_FP)

    def test_missing_payload_member_raises_payload_error(self, store):
        for path in self._payload_files(store, TRAIN_FP):
            path.unlink()
        with pytest.raises(ArtifactPayloadError, match="train:aaaaaaaaaaaa"):
            SelectionService.from_artifact(store, TRAIN_FP)

    def test_intact_artifact_still_serves(self, store, small_dataset):
        service = SelectionService.from_artifact(store, TRAIN_FP)
        shape = small_dataset.shapes[0]
        assert service.select(shape) is not None
        assert service.stats().artifact_id == f"train:{TRAIN_FP[:12]}"
