"""SelectionService degradation: fallback configs, error counters and
the circuit breaker."""

import pytest

from repro.kernels.params import config_space
from repro.serving import SelectionService
from repro.sycl.exceptions import DeviceError
from repro.workloads.gemm import GemmShape

CONFIGS = config_space(tile_sizes=(1, 2), work_groups=((8, 8),))
FALLBACK = CONFIGS[0]
GOOD = CONFIGS[1]


class _ScriptedPolicy:
    """Fails on demand: ``fail_next(n)`` poisons the next n selects."""

    def __init__(self, answer=GOOD):
        self.answer = answer
        self.calls = 0
        self.failures_left = 0

    def fail_next(self, n):
        self.failures_left += n
        return self

    def select(self, shape):
        self.calls += 1
        if self.failures_left > 0:
            self.failures_left -= 1
            raise DeviceError("policy backend unavailable")
        return self.answer


class _ScriptedBatchPolicy(_ScriptedPolicy):
    def select_batch(self, shapes):
        return tuple(self.select(s) for s in shapes)


def shape(i):
    return GemmShape(m=8 * (i + 1), k=8, n=8)


class TestFallbackServing:
    def test_policy_error_served_from_fallback(self):
        service = SelectionService(_ScriptedPolicy().fail_next(1), fallback=FALLBACK)
        assert service.select(shape(0)) == FALLBACK
        stats = service.stats()
        assert stats.policy_errors == 1
        assert stats.fallback_serves == 1
        assert not stats.breaker_open

    def test_last_known_good_preferred_over_fallback(self):
        policy = _ScriptedPolicy()
        service = SelectionService(policy, fallback=FALLBACK)
        assert service.select(shape(0)) == GOOD
        policy.fail_next(1)
        assert service.select(shape(1)) == GOOD  # last-known-good, not FALLBACK
        assert service.stats().fallback_serves == 1

    def test_no_fallback_no_history_reraises(self):
        service = SelectionService(_ScriptedPolicy().fail_next(1))
        with pytest.raises(DeviceError):
            service.select(shape(0))

    def test_degraded_answers_are_not_memoised(self):
        policy = _ScriptedPolicy().fail_next(1)
        service = SelectionService(policy, fallback=FALLBACK)
        assert service.select(shape(0)) == FALLBACK
        # Policy recovered: the same shape re-consults it.
        assert service.select(shape(0)) == GOOD
        assert policy.calls == 2

    def test_fallback_property(self):
        service = SelectionService(_ScriptedPolicy(), fallback=FALLBACK)
        assert service.fallback == FALLBACK


class TestCircuitBreaker:
    def make(self, policy, **kw):
        kw.setdefault("fallback", FALLBACK)
        kw.setdefault("breaker_threshold", 3)
        kw.setdefault("breaker_probe_interval", 4)
        return SelectionService(policy, **kw)

    def test_breaker_opens_after_consecutive_errors(self):
        policy = _ScriptedPolicy().fail_next(100)
        service = self.make(policy)
        for i in range(3):
            service.select(shape(i))
        stats = service.stats()
        assert stats.breaker_open
        assert stats.breaker_trips == 1
        assert policy.calls == 3

    def test_open_breaker_stops_hammering_the_policy(self):
        policy = _ScriptedPolicy().fail_next(100)
        service = self.make(policy)
        for i in range(3):
            service.select(shape(i))
        calls_at_trip = policy.calls
        # Three more misses: none is the 4th open miss, so no probes.
        for i in range(3, 6):
            assert service.select(shape(i)) == FALLBACK
        assert policy.calls == calls_at_trip

    def test_probe_closes_breaker_on_recovery(self):
        policy = _ScriptedPolicy().fail_next(3)
        service = self.make(policy)
        for i in range(3):
            service.select(shape(i))
        assert service.stats().breaker_open
        # Misses 1-3 while open are degraded; the 4th probes the (now
        # recovered) policy and closes the circuit.
        answers = [service.select(shape(10 + i)) for i in range(4)]
        assert answers == [FALLBACK, FALLBACK, FALLBACK, GOOD]
        stats = service.stats()
        assert not stats.breaker_open
        assert stats.breaker_trips == 1

    def test_failed_probe_keeps_breaker_open(self):
        policy = _ScriptedPolicy().fail_next(100)
        service = self.make(policy)
        for i in range(3):
            service.select(shape(i))
        for i in range(8):  # two probe cycles, both probes fail
            service.select(shape(10 + i))
        stats = service.stats()
        assert stats.breaker_open
        assert stats.breaker_trips == 1  # an open breaker does not re-trip
        assert stats.policy_errors == 5  # 3 trips + 2 failed probes

    def test_consecutive_resets_on_success(self):
        policy = _ScriptedPolicy()
        service = self.make(policy)
        for round_ in range(4):
            policy.fail_next(2)  # 2 < threshold of 3
            service.select(shape(3 * round_))
            service.select(shape(3 * round_ + 1))
            service.select(shape(3 * round_ + 2))  # success resets streak
        assert not service.stats().breaker_open
        assert service.stats().policy_errors == 8

    def test_reset_breaker_closes_but_keeps_counters(self):
        policy = _ScriptedPolicy().fail_next(3)
        service = self.make(policy)
        for i in range(3):
            service.select(shape(i))
        service.reset_breaker()
        stats = service.stats()
        assert not stats.breaker_open
        assert stats.policy_errors == 3
        assert stats.breaker_trips == 1
        assert service.select(shape(9)) == GOOD

    def test_clear_resets_breaker_state_and_history(self):
        policy = _ScriptedPolicy().fail_next(3)
        service = self.make(policy)
        service.select(shape(0))  # establishes nothing; first calls fail
        for i in range(1, 3):
            service.select(shape(i))
        service.clear()
        stats = service.stats()
        assert stats.policy_errors == 0
        assert stats.breaker_trips == 0
        assert not stats.breaker_open
        # last-known-good was dropped too: with the policy still broken
        # the fallback is served, not a stale answer.
        policy.fail_next(1)
        assert service.select(shape(5)) == FALLBACK

    def test_validation(self):
        with pytest.raises(ValueError):
            SelectionService(_ScriptedPolicy(), breaker_threshold=0)
        with pytest.raises(ValueError):
            SelectionService(_ScriptedPolicy(), breaker_probe_interval=0)


class TestBatchDegradation:
    def test_batch_path_falls_back_per_item(self):
        policy = _ScriptedBatchPolicy()
        service = SelectionService(policy, fallback=FALLBACK)
        service.select(shape(0))  # prime last-known-good
        policy.fail_next(100)
        out = service.select_batch([shape(1), shape(2), shape(3)])
        assert out == (GOOD, GOOD, GOOD)  # last-known-good per item
        # batch_fn failed once, then each miss failed individually.
        assert service.stats().policy_errors == 4

    def test_open_breaker_skips_policy_batch_api(self):
        policy = _ScriptedBatchPolicy().fail_next(100)
        service = SelectionService(
            policy,
            fallback=FALLBACK,
            breaker_threshold=2,
            breaker_probe_interval=100,
        )
        service.select(shape(0))
        service.select(shape(1))
        assert service.stats().breaker_open
        calls = policy.calls
        out = service.select_batch([shape(2), shape(3)])
        assert out == (FALLBACK, FALLBACK)
        assert policy.calls == calls  # breaker open: policy untouched

    def test_batch_success_closes_breaker(self):
        policy = _ScriptedPolicy().fail_next(2)  # scalar-only policy
        service = SelectionService(
            policy,
            fallback=FALLBACK,
            breaker_threshold=2,
            breaker_probe_interval=1,  # every open miss probes
        )
        service.select(shape(0))
        service.select(shape(1))
        assert service.stats().breaker_open
        out = service.select_batch([shape(2)])
        assert out == (GOOD,)
        assert not service.stats().breaker_open


class TestStatsRendering:
    def test_render_mentions_errors_and_breaker(self):
        policy = _ScriptedPolicy().fail_next(3)
        service = SelectionService(
            policy, fallback=FALLBACK, breaker_threshold=3
        )
        for i in range(3):
            service.select(shape(i))
        text = service.stats().render()
        assert "policy errors" in text
        assert "circuit breaker" in text
        assert "OPEN" in text
