"""AdaptiveSelectionService: admission, warm paths, batch merge, fleet fit.

Uses a stub static policy so every path is driven explicitly: cold
selects, Bloom admission at the threshold-th sighting, trial serving,
promoted overrides, and the batch path's first-occurrence-only trial
rule.  Counter assertions use a real MetricsRegistry so the adaptive.*
metrics surface is covered too.
"""

import pytest

from repro.adaptive import AdaptiveConfig
from repro.kernels.params import config_space
from repro.obs.registry import MetricsRegistry
from repro.serving import (
    AdaptiveSelectionService,
    AdaptiveStats,
    SelectionService,
)
from repro.serving.router import FleetRouter
from repro.workloads.gemm import GemmShape

CONFIGS = tuple(config_space(tile_sizes=(1, 2), work_groups=((8, 8), (16, 16))))
BASE, FAST = CONFIGS[0], CONFIGS[1]
SHAPE = GemmShape(m=64, k=64, n=64)
OTHER_SHAPE = GemmShape(m=128, k=32, n=8)


class _Library:
    def __init__(self, configs):
        self.configs = tuple(configs)


class _StubPolicy:
    def __init__(self):
        self.library = _Library(CONFIGS[:4])

    def select(self, shape):
        return BASE

    def select_batch(self, shapes):
        return tuple(BASE for _ in shapes)


class _BarePolicy:
    """No library/pruned attribute: candidate inference must fail."""

    def select(self, shape):
        return BASE


def make_service(threshold=2, **overrides):
    knobs = dict(
        trial_fraction=0.25,
        seed=0,
        min_trials=2,
        promote_margin=1.0,
        admission_threshold=threshold,
    )
    knobs.update(overrides)
    registry = MetricsRegistry()
    inner = SelectionService(
        _StubPolicy(), registry=registry, name="adapt-test"
    )
    return AdaptiveSelectionService(
        inner, config=AdaptiveConfig(**knobs), registry=registry
    )


def admit(service, shape, threshold=2):
    for _ in range(threshold):
        service.select(shape)


class TestConstruction:
    def test_candidates_inferred_from_the_policy_library(self):
        service = make_service()
        assert service.candidates == CONFIGS[:4]

    def test_candidates_inferred_from_pruned(self):
        class _Pruned:
            pruned = _Library(CONFIGS[:2])

            def select(self, shape):
                return BASE

        inner = SelectionService(_Pruned(), registry=MetricsRegistry())
        service = AdaptiveSelectionService(inner)
        assert service.candidates == CONFIGS[:2]

    def test_uninferable_candidates_raise(self):
        inner = SelectionService(_BarePolicy(), registry=MetricsRegistry())
        with pytest.raises(ValueError, match="pass candidates="):
            AdaptiveSelectionService(inner)

    def test_explicit_candidates_override_inference(self):
        inner = SelectionService(_BarePolicy(), registry=MetricsRegistry())
        service = AdaptiveSelectionService(inner, candidates=CONFIGS[:3])
        assert service.candidates == CONFIGS[:3]

    def test_empty_candidates_rejected(self):
        inner = SelectionService(_StubPolicy(), registry=MetricsRegistry())
        with pytest.raises(ValueError, match="non-empty"):
            AdaptiveSelectionService(inner, candidates=())


class TestAdmission:
    def test_shape_earns_state_at_the_threshold_sighting(self):
        service = make_service(threshold=3)
        for _ in range(2):
            service.select(SHAPE)
            assert service.tracked() == {}
        service.select(SHAPE)
        assert SHAPE.as_tuple() in service.tracked()
        stats = service.adaptive_stats()
        assert stats.admission_misses == 3
        assert stats.admission_hits == 0
        assert stats.tracked_shapes == 1

    def test_warm_selects_count_as_hits(self):
        service = make_service(threshold=2)
        admit(service, SHAPE)
        for _ in range(5):
            assert service.select(SHAPE) == BASE
        stats = service.adaptive_stats()
        assert stats.admission_hits == 5
        assert stats.admission_misses == 2
        assert stats.requests == 7

    def test_unadmitted_record_keeps_no_state(self):
        service = make_service(threshold=2)
        service.select(SHAPE)
        assert service.record(SHAPE, BASE, 1e-3) == ()
        assert service.tracked() == {}
        assert service.adaptive_stats().feedback == 1


class TestWarmPath:
    def test_trial_is_served_exactly_once(self):
        service = make_service(trial_fraction=1.0)
        admit(service, SHAPE)
        service.record(SHAPE, BASE, 1e-3)  # arms a challenger
        state = service.tracked()[SHAPE.as_tuple()]
        assert state.next_trial is not None
        challenger = service.select(SHAPE)
        assert challenger != BASE
        assert service.select(SHAPE) == BASE  # slot consumed
        stats = service.adaptive_stats()
        assert stats.trials == 1
        kinds = [event.kind for event in service.events()]
        assert kinds.count("trial") == 1

    def test_promoted_override_is_served(self):
        service = make_service(trial_fraction=0.0)
        admit(service, SHAPE)
        for _ in range(2):
            service.record(SHAPE, BASE, 1e-3)
        events = []
        for _ in range(2):
            events.extend(service.record(SHAPE, FAST, 1e-4))
        assert [event.kind for event in events] == ["promotion"]
        assert service.select(SHAPE) == FAST
        stats = service.adaptive_stats()
        assert stats.promotions == 1
        assert stats.active_overrides == 1

    def test_events_log_is_bounded(self):
        registry = MetricsRegistry()
        inner = SelectionService(_StubPolicy(), registry=registry)
        service = AdaptiveSelectionService(
            inner,
            config=AdaptiveConfig(trial_fraction=1.0, admission_threshold=2),
            registry=registry,
            event_log=4,
        )
        admit(service, SHAPE)
        for _ in range(12):
            service.record(SHAPE, BASE, 1e-3)
            service.select(SHAPE)
        assert len(service.events()) <= 4


class TestBatchPath:
    def test_batch_counts_every_item_once(self):
        service = make_service(threshold=2)
        admit(service, SHAPE)
        got = service.select_batch([SHAPE, OTHER_SHAPE, SHAPE])
        assert got == (BASE, BASE, BASE)
        stats = service.adaptive_stats()
        # admit() cost 2 cold misses; the batch adds 2 warm hits for
        # SHAPE and 1 cold miss for OTHER_SHAPE — every item counted
        # exactly once.
        assert stats.admission_hits == 2
        assert stats.admission_misses == 3
        assert stats.requests == 5

    def test_batch_trial_serves_only_the_first_occurrence(self):
        service = make_service(trial_fraction=1.0)
        admit(service, SHAPE)
        service.record(SHAPE, BASE, 1e-3)  # arm
        got = service.select_batch([SHAPE, SHAPE, SHAPE])
        trials = [config for config in got if config != BASE]
        assert len(trials) == 1
        assert got[0] == trials[0]  # the first occurrence took it
        assert service.adaptive_stats().trials == 1

    def test_batch_mixes_overrides_and_cold_resolution(self):
        service = make_service(trial_fraction=0.0, threshold=1)
        admit(service, SHAPE, threshold=1)
        for _ in range(2):
            service.record(SHAPE, BASE, 1e-3)
        for _ in range(2):
            service.record(SHAPE, FAST, 1e-4)  # promote
        fresh = GemmShape(m=8, k=8, n=8)
        got = service.select_batch([SHAPE, fresh])
        assert got == (FAST, BASE)
        # threshold=1: the cold shape was admitted during the batch.
        assert fresh.as_tuple() in service.tracked()

    def test_empty_batch(self):
        assert make_service().select_batch([]) == ()


class TestDelegation:
    def test_selection_service_surface_passes_through(self):
        registry = MetricsRegistry()
        inner = SelectionService(
            _StubPolicy(),
            registry=registry,
            name="inner",
            fallback=BASE,
        )
        service = AdaptiveSelectionService(inner, registry=registry)
        assert service.service is inner
        assert service.policy is inner.policy
        assert service.name == "inner"
        assert service.fallback == BASE
        assert service.provenance is None
        assert service.breaker_open is False
        service.select(SHAPE)
        assert service.stats().lookups == inner.stats().lookups == 1
        service.clear()
        assert inner.stats().cache_size == 0
        service.reset_breaker()  # must not raise
        assert "AdaptiveSelectionService" in repr(service)

    def test_adaptive_stats_dataclass_helpers(self):
        stats = AdaptiveStats(
            admission_hits=8,
            admission_misses=2,
            tracked_shapes=3,
            active_overrides=1,
            trials=4,
            promotions=1,
            demotions=0,
            feedback=10,
        )
        assert stats.requests == 10
        assert stats.admission_hit_rate == pytest.approx(0.8)
        assert "80.0% admitted" in stats.render()
        zero = AdaptiveStats(0, 0, 0, 0, 0, 0, 0, 0)
        assert zero.admission_hit_rate == 0.0


class TestFleetIntegration:
    def test_adaptive_service_drops_into_a_router(self):
        registry = MetricsRegistry()
        router = FleetRouter(default_policy="round-robin", registry=registry)
        for i in range(2):
            inner = SelectionService(
                _StubPolicy(), registry=registry, name=f"dev{i}"
            )
            router.add_device(
                f"dev{i}",
                AdaptiveSelectionService(inner, registry=registry),
                library=CONFIGS[:4],
            )
        decisions = []
        for _ in range(6):
            decision = router.select(SHAPE)
            decisions.append(decision.device_id)
            router.complete(decision.device_id)
        assert set(decisions) == {"dev0", "dev1"}

    def test_override_flows_through_the_router(self):
        registry = MetricsRegistry()
        router = FleetRouter(default_policy="round-robin", registry=registry)
        inner = SelectionService(_StubPolicy(), registry=registry, name="dev0")
        service = AdaptiveSelectionService(
            inner,
            config=AdaptiveConfig(
                trial_fraction=0.0,
                admission_threshold=1,
                min_trials=2,
                promote_margin=1.0,
            ),
            registry=registry,
        )
        router.add_device("dev0", service, library=CONFIGS[:4])
        router.select(SHAPE)  # admits (threshold 1)
        for _ in range(2):
            service.record(SHAPE, BASE, 1e-3)
        for _ in range(2):
            service.record(SHAPE, FAST, 1e-4)
        assert router.select(SHAPE).config == FAST
