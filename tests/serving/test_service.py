"""SelectionService: caching, batching, observability, thread safety."""

import threading

import pytest

from repro.bench.runner import BenchmarkRunner
from repro.core.deploy import tune
from repro.core.pruning import TopNPruner
from repro.core.selection.classifiers import make_selector
from repro.core.selection.dynamic import DynamicTrialSelector
from repro.serving import SelectionService
from repro.sycl.device import Device
from repro.workloads.gemm import GemmShape


@pytest.fixture(scope="module")
def split(small_dataset):
    return small_dataset.split(test_size=0.3, random_state=0)


@pytest.fixture(scope="module")
def fitted_selector(split):
    train, _ = split
    pruned = TopNPruner().select(train, 4)
    return make_selector("DecisionTree", pruned, random_state=0).fit(train)


@pytest.fixture(scope="module")
def deployed(split):
    return tune(split[0], n_configs=4, random_state=0)


class TestSingleQuery:
    def test_matches_underlying_policy(self, fitted_selector):
        service = SelectionService(fitted_selector)
        shape = GemmShape(m=128, k=64, n=256)
        assert service.select(shape) == fitted_selector.select(shape)

    def test_cache_hits_never_change_answers(self, fitted_selector, split):
        service = SelectionService(fitted_selector)
        shapes = tuple(split[1].shapes)
        first = [service.select(s) for s in shapes]
        second = [service.select(s) for s in shapes]
        assert first == second
        stats = service.stats()
        assert stats.lookups == 2 * len(shapes)
        assert stats.cache_hits >= len(shapes)

    def test_stats_counts(self, fitted_selector):
        service = SelectionService(fitted_selector)
        shape = GemmShape(m=64, k=64, n=64)
        for _ in range(4):
            service.select(shape)
        stats = service.stats()
        assert stats.lookups == 4
        assert stats.cache_hits == 3
        assert stats.single_calls == 4
        assert stats.hit_rate == pytest.approx(0.75)
        assert stats.latency.count == 4
        assert stats.latency.mean > 0.0


class TestBatchQuery:
    def test_batch_agrees_with_policy_batch(self, fitted_selector, split):
        service = SelectionService(fitted_selector)
        shapes = tuple(split[1].shapes)
        assert service.select_batch(shapes) == fitted_selector.select_batch(
            shapes
        )

    def test_repeats_within_batch_hit_cache(self, fitted_selector):
        service = SelectionService(fitted_selector)
        shape = GemmShape(m=96, k=96, n=96)
        out = service.select_batch([shape] * 10)
        assert out == (service.select(shape),) * 10
        stats = service.stats()
        # 10 batched lookups: one miss, nine in-batch repeats, then one
        # single-query hit.
        assert stats.lookups == 11
        assert stats.cache_hits == 10

    def test_second_batch_fully_cached(self, fitted_selector, split):
        service = SelectionService(fitted_selector)
        shapes = tuple(split[1].shapes)
        first = service.select_batch(shapes)
        second = service.select_batch(shapes)
        assert first == second
        stats = service.stats()
        assert stats.batch_calls == 2
        assert stats.max_batch_size == len(shapes)
        assert stats.mean_batch_size == pytest.approx(len(shapes))

    def test_empty_batch(self, fitted_selector):
        service = SelectionService(fitted_selector)
        assert service.select_batch(()) == ()
        assert service.stats().batch_calls == 1

    def test_policy_without_select_batch(self, fitted_selector):
        class _SingleOnly:
            def __init__(self, inner):
                self._inner = inner
                self.calls = 0

            def select(self, shape):
                self.calls += 1
                return self._inner.select(shape)

        policy = _SingleOnly(fitted_selector)
        service = SelectionService(policy)
        shapes = [GemmShape(m=32 * i, k=64, n=64) for i in range(1, 5)]
        out = service.select_batch(shapes * 2)
        assert out[: len(shapes)] == out[len(shapes) :]
        assert policy.calls == len(shapes)  # repeats resolved from memo


class TestEvictionAndLifecycle:
    def test_lru_eviction_bounds_cache(self, fitted_selector):
        service = SelectionService(fitted_selector, capacity=3)
        shapes = [GemmShape(m=16 * i, k=32, n=32) for i in range(1, 7)]
        for shape in shapes:
            service.select(shape)
        stats = service.stats()
        assert stats.cache_size == 3
        assert stats.evictions == 3

    def test_evicted_entry_recomputes_same_answer(self, fitted_selector):
        service = SelectionService(fitted_selector, capacity=1)
        a = GemmShape(m=128, k=64, n=64)
        b = GemmShape(m=256, k=64, n=64)
        first = service.select(a)
        service.select(b)  # evicts a
        assert service.select(a) == first

    def test_clear_resets_counters(self, fitted_selector):
        service = SelectionService(fitted_selector)
        service.select(GemmShape(m=64, k=64, n=64))
        service.clear()
        stats = service.stats()
        assert stats.lookups == 0
        assert stats.cache_size == 0
        assert stats.latency.count == 0

    def test_invalid_arguments(self, fitted_selector):
        with pytest.raises(ValueError):
            SelectionService(fitted_selector, capacity=0)
        with pytest.raises(ValueError):
            SelectionService(fitted_selector, latency_window=0)
        with pytest.raises(TypeError):
            SelectionService(object())


class TestPolicies:
    def test_wraps_deployed_selector(self, deployed, split):
        service = SelectionService(deployed)
        shapes = tuple(split[1].shapes[:8])
        assert service.select_batch(shapes) == deployed.select_batch(shapes)

    def test_wraps_dynamic_selector_and_memoises_sweeps(self, split):
        train, _ = split
        pruned = TopNPruner().select(train, 3)
        runner = BenchmarkRunner(Device.r9_nano(), configs=train.configs)
        dynamic = DynamicTrialSelector(runner, pruned, trial_iterations=1)
        service = SelectionService(dynamic)
        shape = GemmShape(m=128, k=128, n=128)
        for _ in range(5):
            service.select(shape)
        # The service memo absorbs repeats: the dynamic policy sweeps once.
        assert dynamic.stats.trial_sweeps == 1
        assert dynamic.stats.lookups == 1


class TestThreadSafety:
    def test_concurrent_selects_are_consistent(self, fitted_selector, split):
        service = SelectionService(fitted_selector)
        shapes = tuple(split[1].shapes)
        expected = fitted_selector.select_batch(shapes)
        errors = []

        def worker():
            try:
                for shape, want in zip(shapes, expected):
                    assert service.select(shape) == want
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = service.stats()
        assert stats.lookups == 8 * len(shapes)
        # Each unique shape misses exactly once; every other lookup hits.
        assert stats.cache_hits == stats.lookups - len(shapes)


class TestStatsRendering:
    def test_render_mentions_key_counters(self, fitted_selector):
        service = SelectionService(fitted_selector)
        service.select_batch([GemmShape(m=64, k=64, n=64)] * 3)
        text = service.stats().render()
        assert "lookups" in text
        assert "hit rate" in text
        assert "latency" in text
