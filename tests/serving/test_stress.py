"""Concurrency stress: many threads hammering one SelectionService.

The service guards all state with one lock; these tests prove the
counters stay consistent and the policy is consulted at most once per
unique shape even under contention, including while the circuit breaker
is tripping and recovering.
"""

import threading

import pytest

from repro.kernels.params import config_space
from repro.serving import SelectionService
from repro.sycl.exceptions import DeviceError
from repro.workloads.gemm import GemmShape

CONFIGS = config_space(tile_sizes=(1, 2), work_groups=((8, 8),))
N_THREADS = 8
ROUNDS = 40
SHAPES = tuple(GemmShape(m=8 * (i + 1), k=16, n=16) for i in range(16))


class _CountingPolicy:
    """Thread-safe policy that records every consultation."""

    def __init__(self):
        self._lock = threading.Lock()
        self.calls = 0
        self.shapes_seen = set()

    def select(self, shape):
        with self._lock:
            self.calls += 1
            self.shapes_seen.add(shape)
        return CONFIGS[shape.m % len(CONFIGS)]

    def select_batch(self, shapes):
        return tuple(self.select(s) for s in shapes)


class _SometimesFailingPolicy(_CountingPolicy):
    """Every third consultation raises."""

    def select(self, shape):
        with self._lock:
            self.calls += 1
            self.shapes_seen.add(shape)
            fail = self.calls % 3 == 0
        if fail:
            raise DeviceError("intermittent backend error")
        return CONFIGS[shape.m % len(CONFIGS)]


def hammer(worker, n_threads=N_THREADS):
    """Run ``worker(thread_index)`` on N threads; re-raise any error."""
    errors = []
    barrier = threading.Barrier(n_threads)

    def body(tid):
        try:
            barrier.wait()
            worker(tid)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=body, args=(tid,)) for tid in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class TestConcurrentServing:
    def test_counters_consistent_under_mixed_load(self):
        policy = _CountingPolicy()
        service = SelectionService(policy)
        answers = [None] * N_THREADS

        def worker(tid):
            local = []
            for r in range(ROUNDS):
                s = SHAPES[(tid + r) % len(SHAPES)]
                local.append(service.select(s))
                if r % 5 == 0:
                    local.extend(service.select_batch(SHAPES[:4]))
                if r % 7 == 0:
                    service.stats()  # snapshots interleave with writes
            answers[tid] = local

        hammer(worker)
        stats = service.stats()
        expected_lookups = N_THREADS * (ROUNDS + 4 * len(range(0, ROUNDS, 5)))
        assert stats.lookups == expected_lookups
        assert stats.cache_hits + policy.calls == stats.lookups
        # Each unique shape consults the policy exactly once.
        assert policy.calls == len(SHAPES)
        assert policy.shapes_seen == set(SHAPES)
        assert stats.cache_size == len(SHAPES)
        assert stats.evictions == 0

    def test_every_thread_sees_identical_answers(self):
        policy = _CountingPolicy()
        service = SelectionService(policy)
        results = [None] * N_THREADS

        def worker(tid):
            results[tid] = tuple(service.select(s) for s in SHAPES)

        hammer(worker)
        assert len(set(results)) == 1
        want = tuple(CONFIGS[s.m % len(CONFIGS)] for s in SHAPES)
        assert results[0] == want

    def test_tiny_cache_evictions_stay_consistent(self):
        policy = _CountingPolicy()
        service = SelectionService(policy, capacity=2)

        def worker(tid):
            for r in range(ROUNDS):
                service.select(SHAPES[(tid * 3 + r) % len(SHAPES)])

        hammer(worker)
        stats = service.stats()
        assert stats.cache_size <= 2
        assert stats.lookups == N_THREADS * ROUNDS
        assert stats.cache_hits + policy.calls == stats.lookups
        assert stats.evictions == policy.calls - stats.cache_size

    def test_degradation_under_concurrent_failures(self):
        policy = _SometimesFailingPolicy()
        service = SelectionService(
            policy,
            fallback=CONFIGS[0],
            breaker_threshold=2,
            breaker_probe_interval=3,
        )

        def worker(tid):
            for r in range(ROUNDS):
                config = service.select(SHAPES[(tid + r) % len(SHAPES)])
                assert config in CONFIGS

        hammer(worker)
        stats = service.stats()
        assert stats.lookups == N_THREADS * ROUNDS
        # Every lookup was answered by exactly one of: cache, policy
        # success, or a degraded serve.
        policy_successes = policy.calls - stats.policy_errors
        assert (
            stats.cache_hits + policy_successes + stats.fallback_serves
            == stats.lookups
        )
        assert stats.policy_errors > 0

    def test_clear_during_traffic_never_corrupts(self):
        policy = _CountingPolicy()
        service = SelectionService(policy)

        def worker(tid):
            for r in range(ROUNDS):
                if tid == 0 and r % 10 == 0:
                    service.clear()
                else:
                    service.select(SHAPES[r % len(SHAPES)])

        hammer(worker)
        stats = service.stats()
        assert stats.cache_hits <= stats.lookups
        assert stats.cache_size <= len(SHAPES)
        # Service still serves correctly after the dust settles.
        assert service.select(SHAPES[0]) == CONFIGS[SHAPES[0].m % len(CONFIGS)]
