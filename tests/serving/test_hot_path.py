"""The lock-free hot path: snapshot hits, outside-lock policy calls.

These tests pin the serving-layer guarantees the load harness leans on:

* a *warm* hit never touches the service lock, so it completes even
  while another thread holds the lock or is stuck inside the policy;
* concurrent misses for one shape consult the policy exactly once;
* a policy whose ``select_batch`` returns the wrong number of configs
  raises a clear contract error instead of mis-zipping answers;
* batch lookup latency is weighted by query count (``observe_n``);
* the snapshot dict mirrors LRU membership through inserts/evictions.
"""

import threading
import time

import pytest

from repro.kernels.params import config_space
from repro.obs import MetricsRegistry
from repro.serving import SelectionService
from repro.workloads.gemm import GemmShape

CONFIGS = config_space(tile_sizes=(1, 2), work_groups=((8, 8),))
ANSWER = CONFIGS[0]


def shape(i):
    return GemmShape(m=8 * (i + 1), k=8, n=8)


class _CountingPolicy:
    def __init__(self, answer=ANSWER):
        self.answer = answer
        self.calls = 0
        self._lock = threading.Lock()

    def select(self, shape):
        with self._lock:
            self.calls += 1
        return self.answer


class _GatedPolicy(_CountingPolicy):
    """Blocks inside select() until the test releases the gate."""

    def __init__(self):
        super().__init__()
        self.gate = threading.Event()
        self.entered = threading.Event()

    def select(self, shape):
        self.entered.set()
        if not self.gate.wait(timeout=5.0):
            raise RuntimeError("test gate never opened")
        return super().select(shape)


class _ShortBatchPolicy(_CountingPolicy):
    """Violates the select_batch contract: always one config short."""

    def select_batch(self, shapes):
        return tuple(self.answer for _ in shapes)[:-1]


class TestLockFreeHits:
    def test_warm_hit_completes_while_lock_is_held(self):
        service = SelectionService(_CountingPolicy())
        warm = shape(0)
        expected = service.select(warm)

        got = []
        with service._lock:  # simulate a long critical section elsewhere
            worker = threading.Thread(
                target=lambda: got.append(service.select(warm)), daemon=True
            )
            worker.start()
            worker.join(timeout=2.0)
            assert not worker.is_alive(), "warm hit blocked on the service lock"
        assert got == [expected]

    def test_warm_hits_not_blocked_by_slow_miss(self):
        policy = _GatedPolicy()
        service = SelectionService(policy)
        warm = shape(0)
        policy.gate.set()
        service.select(warm)  # populate the snapshot
        policy.gate.clear()

        miss_thread = threading.Thread(
            target=lambda: service.select(shape(1)), daemon=True
        )
        miss_thread.start()
        assert policy.entered.wait(timeout=2.0)
        try:
            # The miss is parked inside the policy; warm traffic flows.
            start = time.perf_counter()
            for _ in range(100):
                assert service.select(warm) == ANSWER
            assert time.perf_counter() - start < 1.0
        finally:
            policy.gate.set()
            miss_thread.join(timeout=2.0)
        assert not miss_thread.is_alive()
        assert policy.calls == 2

    def test_concurrent_misses_consult_policy_once(self):
        policy = _GatedPolicy()
        service = SelectionService(policy)
        target = shape(3)
        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(service.select(target)),
                daemon=True,
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        assert policy.entered.wait(timeout=2.0)
        policy.gate.set()
        for t in threads:
            t.join(timeout=5.0)
        assert results == [ANSWER] * 8
        assert policy.calls == 1
        stats = service.stats()
        assert stats.lookups == 8
        assert stats.cache_hits == 7

    def test_inflight_table_drains(self):
        policy = _CountingPolicy()
        service = SelectionService(policy)
        service.select_batch([shape(i) for i in range(6)])
        service.select(shape(7))
        assert service._inflight == {}


class TestBatchContract:
    def test_short_batch_return_raises_naming_policy(self):
        service = SelectionService(_ShortBatchPolicy())
        shapes = [shape(i) for i in range(4)]
        with pytest.raises(ValueError, match="_ShortBatchPolicy"):
            service.select_batch(shapes)

    def test_short_batch_leaves_service_usable(self):
        policy = _ShortBatchPolicy()
        service = SelectionService(policy)
        with pytest.raises(ValueError):
            service.select_batch([shape(0), shape(1)])
        # No stuck in-flight registrations: the same shapes resolve via
        # the scalar path afterwards, from any thread.
        assert service._inflight == {}
        done = []
        worker = threading.Thread(
            target=lambda: done.append(service.select(shape(0))), daemon=True
        )
        worker.start()
        worker.join(timeout=2.0)
        assert done == [ANSWER]
        assert service.select(shape(1)) == ANSWER


class TestLatencyWeighting:
    def test_batch_lookup_histogram_weighted_by_query_count(self):
        registry = MetricsRegistry()
        service = SelectionService(_CountingPolicy(), registry=registry)
        shapes = [shape(i) for i in range(10)]
        service.select_batch(shapes)
        lookup = registry.histogram("serving.lookup_seconds")
        call = registry.histogram("serving.call_seconds")
        assert lookup.count == 10
        assert call.count == 1
        service.select_batch(shapes[:7])
        assert lookup.count == 17
        assert call.count == 2

    def test_single_select_one_observation_per_call(self):
        registry = MetricsRegistry()
        service = SelectionService(_CountingPolicy(), registry=registry)
        for i in range(5):
            service.select(shape(i % 2))
        assert registry.histogram("serving.lookup_seconds").count == 5
        assert registry.histogram("serving.call_seconds").count == 5


class TestSnapshotCoherence:
    def test_snapshot_mirrors_lru_membership_through_eviction(self):
        service = SelectionService(_CountingPolicy(), capacity=3)
        for i in range(8):
            service.select(shape(i))
            assert set(service._snapshot) == set(service._cache)
        assert len(service._cache) == 3
        assert service.stats().evictions == 5

    def test_clear_empties_snapshot(self):
        service = SelectionService(_CountingPolicy())
        for i in range(4):
            service.select(shape(i))
        service.clear()
        assert service._snapshot == {}
        assert service._cache == {}
        # Fresh traffic repopulates both.
        service.select(shape(0))
        assert set(service._snapshot) == set(service._cache)
