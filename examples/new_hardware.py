#!/usr/bin/env python
"""Retargeting the pipeline to new hardware with zero code changes.

The paper's pitch: "by combining auto-tuning and machine learning these
kernel selection processes can be deployed with little developer effort
to achieve high performance on new hardware."  This example runs the
identical pipeline against three simulated devices — the paper's R9
Nano, a desktop GPU and an embedded accelerator — and compares which
kernels each library ends up bundling and choosing.

Run:  python examples/new_hardware.py
"""

import numpy as np

import repro
from repro.bench.runner import BenchmarkRunner, RunnerConfig
from repro.core.dataset import PerformanceDataset
from repro.core.selection.evaluate import evaluate_selector
from repro.kernels.params import config_space
from repro.perfmodel import GemmPerfModel
from repro.workloads.extract import extract_dataset_shapes

PROBE_SHAPES = (
    repro.GemmShape(m=12544, k=576, n=128),   # big im2col convolution
    repro.GemmShape(m=1, k=25088, n=4096),    # batch-1 fully connected
    repro.GemmShape(m=196, k=256, n=512, batch=16),  # Winograd batch
)


def tune_for(device: repro.Device):
    shapes, _ = extract_dataset_shapes()
    model = GemmPerfModel(device)
    configs = [c for c in config_space() if model.supported(c)]
    runner = BenchmarkRunner(
        device, configs=configs, runner_config=RunnerConfig(timed_iterations=3)
    )
    dataset = PerformanceDataset.from_benchmark(runner.run(shapes))
    train, test = dataset.split(test_size=0.2, random_state=0)
    deployed = repro.tune(train, n_configs=8, random_state=0)
    evaluation = evaluate_selector(deployed.selector, test)
    return dataset, deployed, evaluation, len(configs)


def main() -> None:
    devices = [
        repro.Device.r9_nano(),
        repro.Device.desktop(),
        repro.Device.embedded(),
    ]
    deployments = {}
    for device in devices:
        print(f"Tuning for {device.name} ...")
        dataset, deployed, evaluation, n_supported = tune_for(device)
        deployments[device.name] = deployed
        print(
            f"  supported configs: {n_supported}/640 | "
            f"held-out score {evaluation.score * 100:.1f}% "
            f"(ceiling {evaluation.ceiling * 100:.1f}%)"
        )
        bundled = ", ".join(c.short_name() for c in deployed.library.configs)
        print(f"  bundled kernels: {bundled}")

    print("\nPer-shape selections across devices")
    print("-----------------------------------")
    header = f"{'shape':>22s}" + "".join(
        f"{name.split('(')[0].strip():>36s}" for name in deployments
    )
    print(header)
    for shape in PROBE_SHAPES:
        row = f"{str(shape):>22s}"
        for deployed in deployments.values():
            row += f"{deployed.select(shape).short_name():>36s}"
        print(row)

    print(
        "\nNote how the embedded accelerator (tiny register file, 1/30th "
        "of the bandwidth) bundles smaller tiles than the discrete GPUs — "
        "no device-specific code was written to get there."
    )


if __name__ == "__main__":
    main()
