#!/usr/bin/env python
"""Beyond brute force: smarter kernel parameter search.

The case study brute-forces its 640 configurations, noting that this "is
not feasible for more general kernels that have significantly more
parameters" and pointing at basin hopping and evolutionary algorithms.
This example races five search strategies on two very different GEMM
shapes under a 100-evaluation budget and shows the best-so-far curves.

Run:  python examples/search_strategies.py
"""

from repro.bench.runner import BenchmarkRunner
from repro.sycl.device import Device
from repro.tuning import (
    BasinHoppingTuner,
    ConfigSpace,
    EvolutionaryTuner,
    HillClimbingTuner,
    Objective,
    RandomSearchTuner,
    SimulatedAnnealingTuner,
)
from repro.workloads.gemm import GemmShape

SHAPES = (
    GemmShape(m=12544, k=576, n=128),  # large im2col convolution
    GemmShape(m=1, k=25088, n=4096),   # batch-1 fully connected
)
BUDGET = 100


def main() -> None:
    runner = BenchmarkRunner(Device.r9_nano())
    space = ConfigSpace()

    for shape in SHAPES:
        exhaustive = Objective(runner, shape)
        for config in space.all_configs():
            exhaustive(config)
        best_config, best_time = exhaustive.best()
        print(
            f"\nshape {shape}: exhaustive optimum {best_config} "
            f"at {best_time * 1e6:.1f} us (640 evaluations)"
        )
        print(f"{'strategy':>14s} {'best':>10s} {'gap':>7s} {'evals':>6s}  "
              f"evals to reach within 10%")
        target = best_time * 1.10
        for tuner in (
            RandomSearchTuner(random_state=0),
            HillClimbingTuner(random_state=0),
            SimulatedAnnealingTuner(random_state=0),
            BasinHoppingTuner(random_state=0),
            EvolutionaryTuner(random_state=0),
        ):
            result = tuner.tune(
                Objective(runner, shape, max_evaluations=BUDGET), space
            )
            gap = result.best_seconds / best_time - 1.0
            reach = result.evaluations_to_reach(target)
            reach_s = str(reach) if reach > 0 else "never"
            print(
                f"{result.tuner:>14s} {result.best_seconds * 1e6:8.1f}us "
                f"{gap * 100:+6.1f}% {result.evaluations:6d}  {reach_s}"
            )

    print(
        "\nAll strategies use a shared, cached objective, so the metric is "
        "quality per *distinct* kernel benchmarked — the cost that matters "
        "when every evaluation is a real timing run on the device."
    )


if __name__ == "__main__":
    main()
