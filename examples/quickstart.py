#!/usr/bin/env python
"""Quickstart: tune a kernel library and run a GEMM through it.

This walks the whole pipeline in ~30 lines of user code:

1. regenerate the performance dataset on the simulated R9 Nano
   (cached next to this script, so reruns are instant);
2. prune the 640 kernel configurations down to 8 with the paper's
   decision-tree method and train a decision-tree runtime selector;
3. execute a matrix multiply through a SYCL-style queue, letting the
   selector pick the kernel, and read the profiling event.

Run:  python examples/quickstart.py
"""

from pathlib import Path

import numpy as np

import repro

CACHE = Path(__file__).parent / ".cache" / "dataset.npz"


def main() -> None:
    print("1) Building the performance dataset (640 configs x ~160 shapes)...")
    dataset = repro.generate_dataset(cache_path=CACHE)
    print(f"   {dataset}")

    print("2) Tuning: prune to 8 configs, train a decision-tree selector...")
    train, test = dataset.split(test_size=0.2, random_state=0)
    deployed = repro.tune(train, n_configs=8, random_state=0)
    print(f"   {deployed.library}")
    for config in deployed.library.configs:
        print(f"     bundled: {config}")

    from repro.core.selection.evaluate import evaluate_selector

    evaluation = evaluate_selector(deployed.selector, test)
    print(
        f"   held-out performance: {evaluation.score * 100:.1f}% of optimal "
        f"(ceiling {evaluation.ceiling * 100:.1f}%)"
    )

    print("3) Running a GEMM through the tuned library...")
    rng = np.random.default_rng(0)
    a = rng.standard_normal((784, 1152)).astype(np.float32)  # im2col conv
    b = rng.standard_normal((1152, 128)).astype(np.float32)
    queue = repro.Queue(repro.Device.r9_nano())
    c, event, config = deployed.matmul(queue, a, b)

    expected = a @ b
    max_err = float(np.max(np.abs(c - expected)))
    shape = repro.GemmShape(m=784, k=1152, n=128)
    print(f"   shape {shape}: selector chose {config}")
    print(f"   simulated kernel time: {event.profiling_duration_ns / 1e3:.1f} us")
    print(
        f"   achieved (simulated): "
        f"{shape.flops / event.profiling_duration_s / 1e9:.0f} GFLOP/s"
    )
    print(f"   numerical check vs numpy: max abs error {max_err:.2e}")


if __name__ == "__main__":
    main()
