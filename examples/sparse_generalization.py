#!/usr/bin/env python
"""Answering the paper's open question: sparse data.

"It is unclear how well the techniques discussed here generalize to
sparse data."  This example crosses the network GEMM shapes with weight-
pruning densities, benchmarks them under the sparse kernel model, and
compares a dense-trained selection pipeline against one that sees
density as a feature.

Run:  python examples/sparse_generalization.py
"""

import numpy as np

from repro.experiments.sparse import run_sparse_generalization
from repro.kernels.params import config_space
from repro.perfmodel.sparse import SparseGemmPerfModel
from repro.sycl.device import Device
from repro.workloads.sparse import SparseGemmShape


def main() -> None:
    print("How the optimal kernel shifts with density")
    print("------------------------------------------")
    model = SparseGemmPerfModel(Device.r9_nano())
    configs = config_space()
    shape_dims = dict(m=3136, k=576, n=128)
    for density in (1.0, 0.5, 0.25, 0.1):
        shape = SparseGemmShape(density=density, **shape_dims)
        times = np.array([model.time_seconds(shape, c) for c in configs])
        best = configs[int(np.argmin(times))]
        print(
            f"  density {density:>4.0%}: best {best.short_name():>18s} "
            f"at {times.min() * 1e6:7.1f} us "
            f"({shape.flops / times.min() / 1e9:6.0f} useful GFLOP/s)"
        )

    print("\nGeneralisation experiment (this takes ~30 s)")
    print("--------------------------------------------")
    result = run_sparse_generalization()
    print(result.render())

    print(
        "\nReading: a library tuned purely on dense data still works on "
        "pruned models, but leaves several points of performance on the "
        "table; adding density to the selector's features recovers most "
        "of it. The techniques generalize — if the dataset does."
    )


if __name__ == "__main__":
    main()
