#!/usr/bin/env python
"""End-to-end network inference through the tuned library.

Lowers every GEMM-backed layer of VGG16 and MobileNetV2, executes each
one through the SYCL-style queue with three strategies, and compares the
accumulated simulated device time:

* **naive** — the untuned 1x1-tile reference kernel;
* **static** — the single best-on-average tuned kernel (what a library
  without runtime selection would ship);
* **selected** — the paper's pipeline: 8 bundled kernels plus a
  decision-tree selector choosing per layer.

Run:  python examples/network_inference.py
"""

from pathlib import Path

import numpy as np

import repro
from repro.kernels.naive import NAIVE_CONFIG
from repro.perfmodel import GemmPerfModel
from repro.workloads.extract import extract_network_shapes

CACHE = Path(__file__).parent / ".cache" / "dataset.npz"


def main() -> None:
    dataset = repro.generate_dataset(cache_path=CACHE)
    train, _ = dataset.split(test_size=0.2, random_state=0)
    deployed = repro.tune(train, n_configs=8, random_state=0)

    # Static baseline: best single config on the training data.
    train_geomean = np.exp(np.mean(np.log(train.normalized()), axis=0))
    static_config = train.configs[int(np.argmax(train_geomean))]

    model = GemmPerfModel(repro.Device.r9_nano())

    for network in ("vgg16", "mobilenet_v2"):
        shapes = extract_network_shapes(network, batches=(1,)).shapes
        times = {"naive": 0.0, "static": 0.0, "selected": 0.0}
        for shape in shapes:
            times["naive"] += model.time_seconds(shape, NAIVE_CONFIG)
            times["static"] += model.time_seconds(shape, static_config)
            times["selected"] += model.time_seconds(
                shape, deployed.select(shape)
            )
        print(f"\n{network}: {len(shapes)} GEMM shapes (batch 1 inference)")
        base = times["naive"]
        for name, t in times.items():
            print(
                f"  {name:>9s}: {t * 1e3:8.2f} ms "
                f"(speedup vs naive: {base / t:5.2f}x)"
            )
        assert times["selected"] <= times["static"] * 1.05

    print(
        "\nThe per-layer selection wins where one static kernel cannot: "
        "batch-1 FC layers want single-row tiles while the convolution "
        "GEMMs want large square tiles."
    )


if __name__ == "__main__":
    main()
