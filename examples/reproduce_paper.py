#!/usr/bin/env python
"""Full reproduction: regenerate every figure and table of the paper.

Produces ASCII renderings of Figures 1-4 and Table I from a freshly
generated (or cached) dataset, exactly as the benchmarks assert them.

Run:  python examples/reproduce_paper.py
"""

from pathlib import Path

from repro.experiments import run_all

CACHE = Path(__file__).parent / ".cache" / "dataset.npz"


def main() -> None:
    results = run_all(cache_path=CACHE)
    print(results.render())

    print("\n" + "=" * 72)
    print("\nHeadline comparison vs the paper:")
    fig2 = results.fig2
    print(
        f"  Fig 2: {fig2.n_distinct_winners} distinct winners "
        f"(paper: 58); top config wins {fig2.top_winner[1]} "
        f"(paper: 32), {fig2.dominance_ratio:.1f}x the runner-up (paper: >3x)"
    )
    fig3 = results.fig3
    counts = fig3.components_for_threshold
    print(
        f"  Fig 3: {counts[0.8]}/{counts[0.9]}/{counts[0.95]} components "
        "for 80/90/95% variance (paper: 4/8/15)"
    )
    tech, budget, score = results.fig4.best_score()
    print(
        f"  Fig 4: best cell {tech} @ {budget} configs = {score * 100:.1f}% "
        "(paper: decision tree, 96.6%)"
    )
    t1 = results.table1
    print(
        "  Table I ceilings: "
        + " / ".join(f"{t1.ceiling(b) * 100:.2f}%" for b in t1.budgets)
        + "  (paper: 92.99 / 94.98 / 95.37 / 96.61%)"
    )


if __name__ == "__main__":
    main()
