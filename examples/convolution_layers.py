#!/usr/bin/env python
"""Where the dataset's GEMMs come from: executing convolutions.

Runs one real VGG-style convolution both ways the paper describes —
im2col and Winograd F(2x2, 3x3) — through the SYCL runtime with a tuned
kernel, checks the numerics against direct convolution, and shows that
the GEMMs launched are exactly the shapes the workload-extraction pass
predicted (the link between `repro.workloads` and `repro.kernels`).

Run:  python examples/convolution_layers.py
"""

import numpy as np

import repro
from repro.kernels import conv2d_direct, conv2d_im2col, conv2d_winograd
from repro.kernels.conv import winograd_gemm_shape
from repro.workloads.layers import Conv2d, InputSpec
from repro.workloads.lowering import lower_conv_im2col, lower_conv_winograd


def main() -> None:
    rng = np.random.default_rng(0)
    # A mid-network VGG-ish layer: 28x28x64 -> 28x28x128, 3x3 pad 1.
    x = rng.standard_normal((28, 28, 64)).astype(np.float32)
    w = rng.standard_normal((3, 3, 64, 128)).astype(np.float32) * 0.05
    layer = Conv2d(out_channels=128, kernel=3, padding=1)
    spec = InputSpec(28, 28, 64)

    config = repro.KernelConfig(acc=4, rows=4, cols=4, wg_rows=16, wg_cols=16)
    queue = repro.Queue(repro.Device.r9_nano())
    reference = conv2d_direct(x, w, padding=1)

    print("im2col route")
    print("------------")
    predicted = lower_conv_im2col(layer, spec)
    out, event = conv2d_im2col(queue, x, w, config, padding=1)
    err = float(np.max(np.abs(out - reference)))
    print(f"  predicted GEMM: {predicted}")
    print(f"  simulated kernel time: {event.profiling_duration_ns / 1e3:.1f} us")
    print(f"  max abs error vs direct conv: {err:.2e}")

    print("\nWinograd F(2x2, 3x3) route")
    print("--------------------------")
    predicted_w = lower_conv_winograd(layer, spec, tile=2)
    actual_w = winograd_gemm_shape(x, w, padding=1)
    assert actual_w == predicted_w
    out_w, events = conv2d_winograd(queue, x, w, config, padding=1)
    err_w = float(np.max(np.abs(out_w - reference)))
    total_us = sum(e.profiling_duration_ns for e in events) / 1e3
    print(f"  predicted batched GEMM: {predicted_w} "
          f"({predicted_w.batch} transformed positions)")
    print(f"  launched {len(events)} GEMMs, total {total_us:.1f} us simulated")
    print(f"  max abs error vs direct conv: {err_w:.2e}")

    flops_im2col = predicted.flops
    flops_winograd = actual_w.flops
    print(
        f"\nmultiply count: im2col {flops_im2col / 1e6:.0f} MFLOP vs "
        f"Winograd {flops_winograd / 1e6:.0f} MFLOP "
        f"({flops_im2col / flops_winograd:.2f}x fewer multiplies)"
    )
    print(
        "Both routes produce the same activation map; which one is faster "
        "depends on the kernel configuration - which is exactly what the "
        "selection pipeline decides per shape."
    )


if __name__ == "__main__":
    main()
