#!/usr/bin/env python
"""Deploying the selector inside a compute library.

Section IV: "decision trees can be implemented as a series of nested if
statements and so are a good target for deployment".  This example tunes
a 6-config library, exports the selection process as both Python and C++
source, and shows the library-size saving that pruning buys — the
paper's original motivation ("supporting many different kernel
instantiations ... adds a cost in terms of library size and build
times").

Run:  python examples/deploy_cpp_selector.py
"""

from pathlib import Path

import repro
from repro.kernels.params import config_space
from repro.kernels.registry import KernelLibrary

CACHE = Path(__file__).parent / ".cache" / "dataset.npz"


def main() -> None:
    dataset = repro.generate_dataset(cache_path=CACHE)
    train, _ = dataset.split(test_size=0.2, random_state=0)
    deployed = repro.tune(train, n_configs=6, random_state=0)

    print("Library-size accounting")
    print("-----------------------")
    full = KernelLibrary(config_space())
    print(f"  all 640 configurations: {full.binary_bytes / 1024:8.0f} KiB "
          f"({full.num_compiled} compiled templates)")
    pruned = deployed.library
    print(f"  pruned library:         {pruned.binary_bytes / 1024:8.0f} KiB "
          f"({pruned.num_compiled} compiled templates)")
    print(f"  saving:                 "
          f"{(1 - pruned.binary_bytes / full.binary_bytes) * 100:.1f}%")

    print("\nGenerated Python dispatch")
    print("-------------------------")
    print(deployed.export_python())

    print("Generated C++ dispatch (drop into the library's API layer)")
    print("-----------------------------------------------------------")
    print(deployed.export_cpp())

    # Sanity: the generated Python function agrees with the live selector.
    namespace: dict = {}
    exec(deployed.export_python(), namespace)  # noqa: S102 - our own codegen
    select = namespace["select_kernel"]
    mismatches = sum(
        select(*shape.features()) != deployed.select(shape).short_name()
        for shape in dataset.shapes
    )
    print(f"codegen check: {mismatches} mismatches over "
          f"{dataset.n_shapes} shapes")


if __name__ == "__main__":
    main()
