# Convenience targets for the reproduction workflow.

.PHONY: install test bench report examples clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

report:
	python examples/reproduce_paper.py

examples:
	python examples/quickstart.py
	python examples/deploy_cpp_selector.py
	python examples/network_inference.py
	python examples/new_hardware.py
	python examples/search_strategies.py
	python examples/sparse_generalization.py
	python examples/convolution_layers.py

clean:
	rm -rf benchmarks/.cache examples/.cache .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
