# Convenience targets for the reproduction workflow.

.PHONY: install test deep lint bench bench-smoke report examples clean

install:
	pip install -e . --no-build-isolation

test:
	PYTHONPATH=src python -m pytest -x -q

# Mirrors the CI deep job: integration/fault/oracle/adaptive/onboard
# suites plus the transfer-aware perfmodel, transformer-workload and
# kernel-family suites, then the cross-process pipeline, fleet and
# onboarding cache round trips (budget change re-runs only the
# onboard-* branch).
deep:
	PYTHONPATH=src python -m pytest \
		tests/integration tests/testing tests/serving tests/pipeline \
		tests/fleet tests/obs tests/adaptive tests/shard tests/onboard \
		tests/perfmodel tests/workloads tests/kernels tests/experiments \
		-q -p no:randomly
	PYTHONPATH=src python -m repro.cli pipeline run \
		--store /tmp/repro-store --networks mobilenet_v2
	PYTHONPATH=src python -m repro.cli pipeline run \
		--store /tmp/repro-store --networks mobilenet_v2 --assert-all-cached
	PYTHONPATH=src python -m repro.cli fleet build \
		--store /tmp/repro-fleet-store --networks mobilenet_v2 \
		--device-ids r9-nano compute-heavy latency-bound
	PYTHONPATH=src python -m repro.cli fleet build \
		--store /tmp/repro-fleet-store --networks mobilenet_v2 \
		--device-ids r9-nano compute-heavy latency-bound --assert-all-cached
	PYTHONPATH=src python -m repro.cli onboard run \
		--store /tmp/repro-fleet-store --target compute-heavy \
		--device-ids r9-nano compute-heavy latency-bound \
		--networks mobilenet_v2 --trees 8 --rounds 3
	PYTHONPATH=src python -m repro.cli onboard run \
		--store /tmp/repro-fleet-store --target compute-heavy \
		--device-ids r9-nano compute-heavy latency-bound \
		--networks mobilenet_v2 --trees 8 --rounds 3 --assert-all-cached
	PYTHONPATH=src python -m repro.cli onboard run \
		--store /tmp/repro-fleet-store --target compute-heavy \
		--device-ids r9-nano compute-heavy latency-bound \
		--networks mobilenet_v2 --trees 8 --rounds 3 \
		--budget-fraction 0.12 --assert-sources-cached

# Mirrors the CI lint job (requires ruff + mypy on PATH).
lint:
	ruff check src/repro
	ruff format --check src/repro
	mypy src/repro

bench:
	PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only

# Mirrors the CI bench-smoke job: throughput, obs-overhead, compiled
# hot-path, adaptive-layer, shard-scaling and transfer-aware placement
# gates plus a 5 s loadgen smoke with a qps floor, a multiprocess
# scaling run with a core-count aware floor, a drifted run with a
# gap-closure floor, the onboarding quality/cost gate (95% quality at
# a 10% budget) and the full-stride placement-flip experiment gate.
bench-smoke:
	PYTHONPATH=src python -m pytest \
		benchmarks/test_bench_serving.py benchmarks/test_bench_obs.py \
		benchmarks/test_bench_codegen.py benchmarks/test_bench_adaptive.py \
		benchmarks/test_bench_shard.py benchmarks/test_bench_onboard.py \
		benchmarks/test_bench_placement.py \
		-q -p no:randomly --benchmark-json=bench-results.json
	PYTHONPATH=src python -m repro.cli loadgen run \
		--qps 40000 --duration 5 --workers 4 --compiled \
		--min-qps 10000 --report-json loadgen-report.json
	PYTHONPATH=src python -m repro.cli shard bench \
		--processes 4 --qps 40000 --duration 2 --workers 2 \
		--compiled --min-scaling 3.0 \
		--report-json shard-scaling-report.json
	PYTHONPATH=src python -m repro.cli loadgen run \
		--adaptive --no-pace --qps 4000 --duration 3 --workers 4 \
		--zipf 1.3 --drift-at 0.35 --min-gap-closure 0.5 \
		--report-json loadgen-drift-report.json
	PYTHONPATH=src python -m repro.cli placement run \
		--report-json placement-flip-report.json

report:
	python examples/reproduce_paper.py

examples:
	python examples/quickstart.py
	python examples/deploy_cpp_selector.py
	python examples/network_inference.py
	python examples/new_hardware.py
	python examples/search_strategies.py
	python examples/sparse_generalization.py
	python examples/convolution_layers.py

clean:
	rm -rf benchmarks/.cache examples/.cache .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
