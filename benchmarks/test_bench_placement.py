"""Transfer-aware selection gates.

Two regressions this pins:

* the transfer-aware model must stay effectively free for the classic
  device-resident protocol (every historical sweep runs through it);
* modelling placement must actually pay off — the placement-aware
  selector has to beat placement-blind selection on mixed traffic, and
  a meaningful share of shapes must flip their best config between
  placements (otherwise the placement feature is dead weight).
"""

import time

from repro.bench.runner import BenchmarkRunner, RunnerConfig
from repro.experiments.placement import run_placement_flip
from repro.sycl.device import Device
from repro.workloads.extract import extract_dataset_shapes
from repro.workloads.placement import place_shapes

#: Sweep-time overhead budget for device-resident shapes routed through
#: the placement-aware breakdown (gate a).
MAX_DEVICE_OVERHEAD = 0.10
#: CI acceptance bar: fraction of base shapes whose best config flips.
MIN_FLIP_FRACTION = 0.10
#: CI acceptance bar: geomean points the aware selector must win by.
MIN_MARGIN = 0.02


def _sweep_seconds(runner, shapes, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        runner.run(shapes)
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_device_resident_overhead(benchmark):
    """Gate (a): device-resident sweeps pay <10% for transfer awareness."""
    device = Device.r9_nano()
    runner = BenchmarkRunner(
        device, runner_config=RunnerConfig(timed_iterations=3)
    )
    shapes, _ = extract_dataset_shapes()
    plain = shapes[::8]
    placed = place_shapes(plain, ("device",))

    def measure():
        return (
            _sweep_seconds(runner, plain),
            _sweep_seconds(runner, placed),
        )

    plain_s, placed_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = placed_s / plain_s - 1.0
    print(
        f"\nplain sweep {plain_s:.3f}s, device-placed {placed_s:.3f}s "
        f"({overhead * 100:+.1f}%)"
    )
    assert overhead < MAX_DEVICE_OVERHEAD


def test_bench_placement_flip_gates(benchmark):
    """Gate (b): awareness wins on mixed traffic, and flips are common."""
    result = benchmark.pedantic(run_placement_flip, rounds=1, iterations=1)
    print("\n" + result.render())

    assert result.flip_fraction >= MIN_FLIP_FRACTION
    assert result.margin >= MIN_MARGIN
    # Both pipelines must remain usable — the gate guards the gap, not
    # a degenerate blind baseline.
    assert result.score_placement_blind > 0.5
    assert result.score_placement_aware > 0.6
