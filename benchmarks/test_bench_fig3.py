"""Figure 3 regeneration: PCA explained-variance curve."""

from repro.experiments import run_fig3


def test_bench_fig3(benchmark, full_dataset):
    result = benchmark(run_fig3, full_dataset)
    print("\n" + result.render())

    counts = result.components_for_threshold
    # Paper: 4 components for 80%, 8 for 90%, 15 for 95%.
    assert 2 <= counts[0.80] <= 7
    assert counts[0.80] <= counts[0.90] <= 12
    assert counts[0.90] <= counts[0.95] <= 20
    low, high = result.suggested_budgets
    assert low < high
