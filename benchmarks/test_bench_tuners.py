"""Tuner comparison: quality reached per benchmark evaluation.

The paper's Section II points to basin hopping and evolutionary search
for spaces where brute force "is not feasible".  This bench races every
strategy on a representative convolution GEMM under a fixed evaluation
budget (100 of 640 points) and reports how close each gets to the
exhaustive optimum.
"""

import pytest

from repro.bench.runner import BenchmarkRunner
from repro.sycl.device import Device
from repro.tuning import (
    BasinHoppingTuner,
    ConfigSpace,
    EvolutionaryTuner,
    HillClimbingTuner,
    Objective,
    RandomSearchTuner,
    SimulatedAnnealingTuner,
)
from repro.workloads.gemm import GemmShape

SHAPE = GemmShape(m=12544, k=576, n=128)
BUDGET = 100

TUNERS = [
    RandomSearchTuner(random_state=0),
    HillClimbingTuner(random_state=0),
    SimulatedAnnealingTuner(random_state=0),
    BasinHoppingTuner(random_state=0),
    EvolutionaryTuner(random_state=0),
]


@pytest.fixture(scope="module")
def runner():
    return BenchmarkRunner(Device.r9_nano())


@pytest.fixture(scope="module")
def optimum(runner):
    obj = Objective(runner, SHAPE)
    for config in ConfigSpace().all_configs():
        obj(config)
    return obj.best()[1]


@pytest.mark.parametrize("tuner", TUNERS, ids=lambda t: t.name)
def test_bench_tuner(benchmark, tuner, runner, optimum):
    def run():
        return tuner.tune(
            Objective(runner, SHAPE, max_evaluations=BUDGET), ConfigSpace()
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    gap = result.best_seconds / optimum - 1.0
    print(
        f"\n{tuner.name:>14s}: {result.best_seconds * 1e6:7.1f} us "
        f"({gap * 100:+5.1f}% vs exhaustive) in {result.evaluations} evals"
    )
    # Every strategy must land within 25% of the optimum on 100/640 evals.
    assert result.best_seconds <= optimum * 1.25


def test_bench_exhaustive_reference(benchmark, runner):
    """The cost smarter search avoids: all 640 evaluations."""

    def exhaustive():
        obj = Objective(runner, SHAPE)
        for config in ConfigSpace().all_configs():
            obj(config)
        return obj

    obj = benchmark.pedantic(exhaustive, rounds=1, iterations=1)
    assert obj.evaluations == 640
