"""Compiled hot path: sub-microsecond dispatch, >= 10x over warm serving.

The paper's deployment argument is that a fitted decision tree
"compiles to nested if statements" whose dispatch cost is negligible.
These benchmarks gate that claim in CI:

* a compiled selector lookup must be >= 10x faster than a *warm*
  :class:`SelectionService.select` (itself already a lock-free dict
  hit), measured over the same Zipf-ordered query replay;
* its p99 per-lookup latency, sampled with ``perf_counter_ns`` around
  individual calls, must stay under one microsecond;
* both codegen variants must agree with the deployed selector on every
  query (the differential suite pins this exhaustively; the bench
  re-checks the replay it times).
"""

import gc
import statistics
import time

import pytest

from repro.core.deploy import tune
from repro.serving import SelectionService

N_QUERIES = 10_000
#: Per-variant p99 ceilings.  The sub-microsecond claim is about the
#: default ``source`` hot path; ``flat`` trades ~2x dispatch cost for
#: unbounded depth and gets a looser bound.
P99_CEILING_NS = {"source": 1_000, "flat": 3_000}


@pytest.fixture(scope="module")
def deployed(split):
    train, _ = split
    return tune(train, n_configs=8, random_state=0)


@pytest.fixture(scope="module")
def query_shapes(split):
    _, test = split
    shapes = list(test.shapes)
    reps = -(-N_QUERIES // len(shapes))
    return tuple((shapes * reps)[:N_QUERIES])


def _time_per_query(fn, shapes):
    start = time.perf_counter()
    for shape in shapes:
        fn(shape)
    return (time.perf_counter() - start) / len(shapes)


def test_bench_compiled_speedup_over_warm_service(
    benchmark, deployed, query_shapes
):
    """Compiled descent >= 10x a warm SelectionService hit, same answers."""
    compiled = deployed.compiled()
    service = SelectionService(deployed, capacity=8192)
    service.select_batch(query_shapes)  # warm the memo + snapshot

    assert compiled.select_batch(query_shapes[:64]) == service.select_batch(
        query_shapes[:64]
    )

    # Interleaved rounds + medians: the two paths see the same machine
    # state, and a single transient fast/slow sweep cannot tip a gate
    # that sits right at the threshold.
    service_samples, compiled_samples = [], []
    for _ in range(5):
        service_samples.append(_time_per_query(service.select, query_shapes))
        compiled_samples.append(_time_per_query(compiled.select, query_shapes))
    service_s = statistics.median(service_samples)
    compiled_s = statistics.median(compiled_samples)

    def replay():
        select = compiled.select
        for shape in query_shapes:
            select(shape)

    benchmark.pedantic(replay, rounds=3, iterations=1)
    benchmark.extra_info["service_ns_per_query"] = service_s * 1e9
    benchmark.extra_info["compiled_ns_per_query"] = compiled_s * 1e9
    benchmark.extra_info["speedup"] = service_s / compiled_s
    assert service_s / compiled_s >= 10.0, (
        f"compiled hot path only {service_s / compiled_s:.1f}x faster than "
        f"warm service ({compiled_s * 1e9:.0f} ns vs {service_s * 1e9:.0f} ns)"
    )


@pytest.mark.parametrize("variant", ["source", "flat"])
def test_bench_compiled_p99_within_ceiling(
    benchmark, deployed, query_shapes, variant
):
    """p99 of compiled lookups under the per-variant ceiling (GC parked).

    Sampled in blocks of 16 calls per timer read — a perf_counter_ns
    pair costs ~100 ns, which would dominate a per-call sample at this
    scale — and each block keeps the best of 5 repeats, which filters
    scheduler preemption (tens of us at a time on shared CI boxes) out
    of a distribution whose real values are hundreds of ns.
    """
    compiled = deployed.compiled(variant=variant)
    select = compiled.select
    for shape in query_shapes[:1000]:  # warm caches and the code object
        select(shape)

    block = 16
    samples = []
    gc.disable()
    try:
        for i in range(0, len(query_shapes) - block + 1, block):
            shapes = query_shapes[i : i + block]
            best = None
            for _ in range(5):
                begin = time.perf_counter_ns()
                for shape in shapes:
                    select(shape)
                elapsed = time.perf_counter_ns() - begin
                if best is None or elapsed < best:
                    best = elapsed
            samples.append(best // block)
    finally:
        gc.enable()
    samples.sort()
    p50 = samples[len(samples) // 2]
    p99 = samples[int(len(samples) * 0.99)]

    def replay():
        for shape in query_shapes:
            select(shape)

    benchmark.pedantic(replay, rounds=3, iterations=1)
    benchmark.extra_info["p50_ns"] = p50
    benchmark.extra_info["p99_ns"] = p99
    ceiling = P99_CEILING_NS[variant]
    assert p99 < ceiling, (
        f"{variant} variant p99 {p99} ns >= {ceiling} ns (p50 {p50} ns)"
    )


def test_bench_variants_agree_on_the_replay(deployed, query_shapes):
    source = deployed.compiled(variant="source")
    flat = deployed.compiled(variant="flat")
    expected = deployed.select_batch(query_shapes)
    assert source.select_batch(query_shapes) == expected
    assert flat.select_batch(query_shapes) == expected
