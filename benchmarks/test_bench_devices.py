"""Device-portability benchmarks.

The paper's motivation: "these kernel selection processes can be deployed
with little developer effort to achieve high performance on new
hardware."  Re-run the tune pipeline against each simulated device preset
and verify it beats a static single-kernel choice everywhere, with no
device-specific code.
"""

import numpy as np
import pytest

from repro.bench.runner import BenchmarkRunner, RunnerConfig
from repro.core.dataset import PerformanceDataset
from repro.core.deploy import tune
from repro.core.selection.evaluate import evaluate_selector
from repro.kernels.params import config_space
from repro.sycl.device import Device
from repro.workloads.extract import extract_dataset_shapes


def _dataset_for(device: Device) -> PerformanceDataset:
    from repro.perfmodel import GemmPerfModel

    shapes, _ = extract_dataset_shapes()
    model = GemmPerfModel(device)
    # Only the configurations this device can actually run (smaller
    # register files reject the largest tiles).
    configs = [c for c in config_space() if model.supported(c)]
    runner = BenchmarkRunner(
        device,
        configs=configs,
        runner_config=RunnerConfig(timed_iterations=3),
    )
    return PerformanceDataset.from_benchmark(runner.run(shapes))


@pytest.mark.parametrize("preset", ["r9-nano", "desktop-gpu", "embedded-accelerator"])
def test_bench_retune_for_device(benchmark, preset, full_dataset):
    device = Device.from_preset(preset)
    dataset = full_dataset if preset == "r9-nano" else _dataset_for(device)
    train, test = dataset.split(test_size=0.2, random_state=0)

    deployed = benchmark.pedantic(
        tune, args=(train,), kwargs={"n_configs": 8}, rounds=1, iterations=1
    )
    evaluation = evaluate_selector(deployed.selector, test)
    # The honest static baseline: the single config a library would ship,
    # chosen on the *training* data, then scored on the test shapes.
    train_geomean = np.exp(np.mean(np.log(train.normalized()), axis=0))
    static_config = int(np.argmax(train_geomean))
    static_score = np.exp(
        np.mean(np.log(test.normalized()[:, static_config]))
    )
    print(
        f"\n{preset}: tuned {evaluation.score * 100:.1f}% vs static "
        f"{static_score * 100:.1f}% (ceiling {evaluation.ceiling * 100:.1f}%)"
    )
    assert evaluation.score > static_score - 0.02
    assert evaluation.score > 0.7
