"""Reproducibility bench: split-seed variance of the headline results."""

from repro.experiments.variance import run_variance


def test_bench_variance(benchmark, full_dataset):
    result = benchmark.pedantic(
        run_variance, args=(full_dataset,), rounds=1, iterations=1
    )
    print("\n" + result.render())

    # The robust conclusions must hold in the mean across 8 splits:
    # clustering's best method beats naive top-n at budget 4...
    naive_mean = result.pruning["top-n"][4][0]
    best_clustering = max(
        stats[4][0] for name, stats in result.pruning.items() if name != "top-n"
    )
    assert best_clustering > naive_mean
    # ...and the RadialSVM sits below the decision tree on average.
    assert (
        result.selection["RadialSVM"][0]
        < result.selection["DecisionTree"][0]
    )
    # Per-budget std should be a few points at most (34-shape test sets).
    for per_budget in result.pruning.values():
        for _, std in per_budget.values():
            assert std < 0.06
