"""Extension bench: sparse-data generalization (the paper's future work).

Full-scale run of the experiment behind EXPERIMENTS.md's sparse section.
"""

from repro.experiments.sparse import run_sparse_generalization


def test_bench_sparse_generalization(benchmark):
    result = benchmark.pedantic(
        run_sparse_generalization, rounds=1, iterations=1
    )
    print("\n" + result.render())

    # Density-aware training must not lose to density-blind training on
    # held-out sparse shapes, and dense-trained selection must still be
    # usable (the techniques *partially* generalize).
    assert result.generalization_gap >= -0.02
    assert result.score_dense_trained > 0.5
    # Selection quality degrades as density falls (harder regime).
    scores = result.per_density_scores
    assert scores[0.1] <= scores[0.5] + 0.05
