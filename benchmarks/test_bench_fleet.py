"""Fleet routing throughput: batched dispatch vs per-query dispatch.

A 10k-query mixed workload (half targeted at a specific device, half
device-agnostic) over a four-device fleet, served three ways:

* ``loops``  — the pre-router architecture: one independent
  :class:`SelectionService` per device, a hand-rolled dispatch loop
  calling ``select()`` per query.  No placement policy, no health
  tracking, no cross-device fallback — the cheapest possible reference;
* ``select`` — the router's per-query path: full policy placement and
  breaker checks on every call;
* ``batch``  — the router's ``select_batch`` partitions, which pay the
  policy work once per batch (targeted fast path) or under one lock
  acquisition (agnostic path), once per routing policy.

The batch path must beat per-query routing >= 1.5x with identical
targeted answers; the independent-loops number is printed as the floor
the routing features are priced against.
"""

import time

import pytest

from repro.bench.runner import RunnerConfig
from repro.fleet import FleetPipelineConfig, router_from_store, run_fleet_pipeline
from repro.kernels.params import config_space
from repro.pipeline import ArtifactStore
from repro.serving import ROUTING_POLICIES

N_QUERIES = 10_000
FLEET = ("r9-nano", "compute-heavy", "bandwidth-lean", "latency-bound")


@pytest.fixture(scope="module")
def fleet_config():
    return FleetPipelineConfig(
        device_ids=FLEET,
        networks=("mobilenet_v2",),
        runner=RunnerConfig(warmup_iterations=1, timed_iterations=3),
        configs=config_space(
            tile_sizes=(1, 2, 4),
            work_groups=((8, 8), (1, 64), (16, 16), (64, 1)),
        ),
    )


@pytest.fixture(scope="module")
def fleet_store(tmp_path_factory, fleet_config):
    store = ArtifactStore(tmp_path_factory.mktemp("fleet-bench") / "store")
    run_fleet_pipeline(store, fleet_config)
    return store


@pytest.fixture(scope="module")
def workload(fleet_config):
    """10k mixed queries: (device_id or None, shape), deterministic."""
    from repro.workloads.extract import extract_network_shapes

    shapes = list(extract_network_shapes("mobilenet_v2").shapes)
    queries = []
    for i in range(N_QUERIES):
        shape = shapes[i % len(shapes)]
        target = FLEET[i % len(FLEET)] if i % 2 else None
        queries.append((target, shape))
    return tuple(queries)


def _loop_baseline(router, workload):
    """Independent per-device service loops with hand-rolled dispatch."""
    services = {did: router.service(did) for did in FLEET}
    cursor = 0
    out = []
    for target, shape in workload:
        if target is None:
            target = FLEET[cursor % len(FLEET)]
            cursor += 1
        out.append((target, services[target].select(shape)))
    return out


def _route_per_query(router, workload, policy):
    return [
        router.select(shape, device_id=target, policy=policy)
        for target, shape in workload
    ]


def _route_batched(router, workload, policy):
    """One batched call for the agnostic half, one per targeted device."""
    agnostic = [shape for target, shape in workload if target is None]
    out = list(router.select_batch(agnostic, policy=policy))
    for did in FLEET:
        targeted = [shape for target, shape in workload if target == did]
        out.extend(router.select_batch(targeted, device_id=did))
    return out


def test_bench_batched_routing_vs_per_query(
    benchmark, fleet_store, fleet_config, workload
):
    router = router_from_store(fleet_store, fleet_config)
    # Warm every memo (service caches + perf estimates) so all three
    # paths serve from identical state.
    _route_batched(router, workload, "perf-aware")

    start = time.perf_counter()
    loop_result = _loop_baseline(router, workload)
    loop_seconds = time.perf_counter() - start

    per_query = {}
    batched = {}
    for policy in ROUTING_POLICIES:
        start = time.perf_counter()
        _route_per_query(router, workload, policy)
        per_query[policy] = time.perf_counter() - start
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            decisions = _route_batched(router, workload, policy)
            best = min(best, time.perf_counter() - start)
        batched[policy] = best
        assert len(decisions) == N_QUERIES

    benchmark.pedantic(
        _route_batched,
        args=(router, workload, "round-robin"),
        rounds=3,
        iterations=1,
    )

    # Targeted queries answer identically in every architecture.
    loop_targeted = {
        (target, shape.as_tuple()): config
        for (target, shape), (_, config) in zip(workload, loop_result)
        if target is not None
    }
    routed = _route_batched(router, workload, "round-robin")
    n_agnostic = sum(1 for target, _ in workload if target is None)
    i = n_agnostic
    for did in FLEET:
        for target, shape in workload:
            if target != did:
                continue
            decision = routed[i]
            assert decision.device_id == did
            assert decision.config == loop_targeted[(did, shape.as_tuple())]
            i += 1

    lines = [
        f"{N_QUERIES} mixed queries over {len(FLEET)} devices:",
        f"  independent service loops (no routing) {loop_seconds * 1e3:8.1f} ms",
    ]
    for policy in ROUTING_POLICIES:
        speedup = per_query[policy] / batched[policy]
        lines.append(
            f"  router[{policy:17s}]  per-query {per_query[policy] * 1e3:7.1f} ms"
            f"  batched {batched[policy] * 1e3:7.1f} ms  ({speedup:4.1f}x)"
        )
    print("\n" + "\n".join(lines))

    for policy in ROUTING_POLICIES:
        assert per_query[policy] / batched[policy] >= 1.5, policy


def test_bench_perf_aware_estimate_memo(fleet_store, fleet_config, workload):
    """Perf-aware placement amortises: estimates are memoised per shape."""
    router = router_from_store(fleet_store, fleet_config)
    shapes = [shape for _, shape in workload]

    start = time.perf_counter()
    router.select_batch(shapes[:1000], policy="perf-aware")
    cold = time.perf_counter() - start

    start = time.perf_counter()
    router.select_batch(shapes[:1000], policy="perf-aware")
    warm = time.perf_counter() - start

    print(
        f"\nperf-aware 1000 queries: cold {cold * 1e3:.1f} ms, "
        f"warm {warm * 1e3:.1f} ms"
    )
    assert warm <= cold * 1.5
