"""Figure 2 regeneration: optimal-configuration win counts."""

from repro.experiments import run_fig2


def test_bench_fig2(benchmark, full_dataset):
    result = benchmark(run_fig2, full_dataset)
    print("\n" + result.render())

    # Paper: one config best in 32/170 cases (>3x runner-up), 58 distinct
    # winners.  We assert the same structure with simulator-wide bands.
    assert result.n_distinct_winners >= 35
    assert result.top_winner[1] >= 10
    assert result.dominance_ratio >= 1.3
