"""Table I regeneration: runtime classifiers at budgets {5, 6, 8, 15}."""

import numpy as np

from repro.experiments import run_table1


def test_bench_table1(benchmark, full_dataset):
    result = benchmark.pedantic(
        run_table1, args=(full_dataset,), rounds=1, iterations=1
    )
    print("\n" + result.render())

    budgets = (5, 6, 8, 15)
    # Ceilings in the caption's band (paper: 92.99-96.61%).
    for budget in budgets:
        assert 0.90 <= result.ceiling(budget) <= 0.99
    # No classifier reaches its ceiling (paper: all < 89% vs 93-97%).
    for budget in budgets:
        for ev in result.evaluations[budget]:
            assert ev.score < result.ceiling(budget)
    # The decision tree is competitive with every other classifier.
    for budget in (5, 6, 8):
        best = max(ev.score for ev in result.evaluations[budget])
        assert result.score("DecisionTree", budget) >= best - 0.05
    # The radial SVM collapses to a flat, low row.
    radial = [result.score("RadialSVM", b) for b in budgets]
    tree = [result.score("DecisionTree", b) for b in budgets]
    assert np.mean(radial) < np.mean(tree) - 0.05
