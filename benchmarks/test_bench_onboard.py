"""Onboarding quality/cost gate: budgeted sweeps vs the full 640-cell sweep.

Held-out experiment on ``compute-heavy`` (the profile the transfer
model finds hardest): the other three builtin devices are the sources,
and each (sampler, fraction) point runs the real onboarding branch —
budgeted partial sweep, cross-device imputation, few-shot calibration,
prune + train — through the content-addressed pipeline, so the fleet
branches build once and every curve point re-runs only its own
``onboard-*`` stages.

Gates (the ISSUE's acceptance bar):

* the active sampler at a 10% budget reaches >= 95% of the full-sweep
  selector's held-out quality;
* at that same 10% budget the active sampler beats seeded random.

The full quality/cost curve is exported to
``onboard-quality-report.json`` for the CI artifact upload.
"""

import json
from pathlib import Path

import pytest

from repro.bench.runner import BenchmarkRunner, RunnerConfig
from repro.fleet import FleetPipelineConfig
from repro.fleet.pipeline import stage_name
from repro.kernels.params import config_space
from repro.onboard import (
    OnboardBudget,
    OnboardPipelineConfig,
    SourceBranch,
    calibrated_dataset,
    run_onboard_pipeline,
    run_partial_sweep,
)
from repro.pipeline import ArtifactStore
from repro.workloads.extract import extract_dataset_shapes

TARGET = "compute-heavy"
SOURCES = ("r9-nano", "bandwidth-lean", "latency-bound")

FRACTIONS = (0.05, 0.10)
SAMPLERS = ("random", "active")
GATE_FRACTION = 0.10
MIN_QUALITY = 0.95

REPORT_PATH = Path("onboard-quality-report.json")


@pytest.fixture(scope="module")
def onboard_config():
    return OnboardPipelineConfig(
        target=TARGET,
        budget=OnboardBudget(),
        fleet=FleetPipelineConfig(
            device_ids=SOURCES + (TARGET,),
            networks=("mobilenet_v2",),
            runner=RunnerConfig(warmup_iterations=1, timed_iterations=3),
            configs=config_space(
                tile_sizes=(1, 2, 4),
                work_groups=((8, 8), (1, 64), (16, 16), (64, 1)),
            ),
        ),
    )


@pytest.fixture(scope="module")
def runs(tmp_path_factory, onboard_config):
    """(sampler, fraction) -> OnboardRun, sharing one artifact store.

    The shared store is the point: the four fleet branches build once,
    every later curve point re-runs only its own ``onboard-*`` stages.
    """
    store = ArtifactStore(tmp_path_factory.mktemp("onboard-bench") / "store")
    out = {}
    for sampler in SAMPLERS:
        for fraction in FRACTIONS:
            out[(sampler, fraction)] = run_onboard_pipeline(
                store,
                onboard_config.with_budget(sampler=sampler, fraction=fraction),
            )
    return out


def test_bench_onboard_quality_gate(benchmark, runs, onboard_config):
    curve = {key: run.report() for key, run in runs.items()}
    active = curve[("active", GATE_FRACTION)]
    random = curve[("random", GATE_FRACTION)]

    # The benchmark number: onboarding one device at the gate budget
    # once the source fleet exists — budgeted sweep, imputation fit,
    # few-shot calibration.  (Selector training adds milliseconds.)
    artifacts = runs[("active", GATE_FRACTION)].run.artifacts
    profiles = {
        did: artifacts[stage_name("profile", did)].value
        for did in SOURCES + (TARGET,)
    }
    sources = tuple(
        SourceBranch(
            device_id=did,
            spec=profiles[did].spec,
            dataset=artifacts[stage_name("dataset", did)].value,
        )
        for did in SOURCES
    )
    shapes, _ = extract_dataset_shapes(networks=("mobilenet_v2",))
    budget = OnboardBudget(sampler="active", fraction=GATE_FRACTION)
    target_profile = profiles[TARGET]

    def onboard_once():
        runner = BenchmarkRunner(
            target_profile.device(),
            configs=onboard_config.fleet.configs,
            runner_config=onboard_config.fleet.runner,
            model_params=target_profile.model_params,
        )
        sweep = run_partial_sweep(runner, shapes, budget, sources=sources)
        return calibrated_dataset(
            sources, target_profile.spec, sweep, budget, seed=budget.seed
        )

    benchmark.pedantic(onboard_once, rounds=1, iterations=1)

    payload = {
        "schema": "repro.onboard-quality/v1",
        "target": TARGET,
        "sources": list(SOURCES),
        "gate": {
            "fraction": GATE_FRACTION,
            "min_quality": MIN_QUALITY,
            "active_quality": active.quality,
            "random_quality": random.quality,
        },
        "curve": [
            {
                "sampler": sampler,
                "fraction": fraction,
                **report.to_dict(),
            }
            for (sampler, fraction), report in sorted(curve.items())
        ],
    }
    REPORT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True))

    for (sampler, fraction), report in curve.items():
        assert report.cells_attempted <= report.total_cells * fraction + 1, (
            sampler,
            fraction,
        )
        assert report.quality > 0.0

    # Gate 1: >= 95% of full-sweep selector quality at a 10% budget.
    assert active.quality >= MIN_QUALITY, (
        f"active@{GATE_FRACTION:.0%} quality {active.quality:.4f} "
        f"below the {MIN_QUALITY} gate"
    )
    # Gate 2: uncertainty-driven sampling must beat seeded random at
    # the same budget.
    assert active.quality > random.quality, (
        f"active {active.quality:.4f} <= random {random.quality:.4f} "
        f"at fraction {GATE_FRACTION}"
    )


def test_bench_onboard_budget_scales_quality(runs):
    # More budget never hurts much: the 10% active point must not be
    # more than 2% worse than the 5% point (and is usually better).
    low = runs[("active", 0.05)].report().quality
    high = runs[("active", 0.10)].report().quality
    assert high >= low - 0.02
