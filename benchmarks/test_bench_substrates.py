"""Microbenchmarks of the substrates the pipeline is built on."""

import numpy as np
import pytest

from repro.kernels.matmul import matmul
from repro.kernels.params import KernelConfig, config_space
from repro.ml.hdbscan import HDBSCAN
from repro.ml.kmeans import KMeans
from repro.ml.pca import PCA
from repro.ml.tree.regressor import DecisionTreeRegressor
from repro.perfmodel import GemmPerfModel
from repro.sycl.device import Device
from repro.sycl.queue import Queue
from repro.workloads.gemm import GemmShape

CFG = KernelConfig(acc=4, rows=4, cols=4, wg_rows=16, wg_cols=16)


def test_bench_perfmodel_single_eval(benchmark):
    model = GemmPerfModel(Device.r9_nano())
    shape = GemmShape(m=3136, k=576, n=128)
    t = benchmark(model.time_seconds, shape, CFG)
    assert t > 0


def test_bench_perfmodel_row_eval(benchmark):
    """One dataset row: all 640 configs for one shape."""
    model = GemmPerfModel(Device.r9_nano())
    shape = GemmShape(m=3136, k=576, n=128)
    configs = config_space()

    def row():
        return [model.time_seconds(shape, c) for c in configs]

    times = benchmark(row)
    assert len(times) == 640


def test_bench_functional_matmul(benchmark):
    queue = Queue(Device.r9_nano())
    rng = np.random.default_rng(0)
    a = rng.standard_normal((256, 256)).astype(np.float32)
    b = rng.standard_normal((256, 256)).astype(np.float32)
    c, _ = benchmark(matmul, queue, a, b, CFG)
    np.testing.assert_allclose(c, a @ b, rtol=1e-3, atol=1e-4)


def test_bench_pca_fit(benchmark, full_dataset):
    data = full_dataset.normalized()
    pca = benchmark(lambda: PCA().fit(data))
    assert pca.explained_variance_ratio_[0] > 0


def test_bench_kmeans_fit(benchmark, full_dataset):
    data = full_dataset.normalized()
    km = benchmark(
        lambda: KMeans(n_clusters=8, n_init=3, random_state=0).fit(data)
    )
    assert km.cluster_centers_.shape[0] == 8


def test_bench_hdbscan_fit(benchmark, full_dataset):
    data = full_dataset.normalized()
    h = benchmark(lambda: HDBSCAN(min_cluster_size=8).fit(data))
    assert h.labels_.shape[0] == data.shape[0]


def test_bench_multioutput_tree_fit(benchmark, full_dataset):
    data = full_dataset.normalized()
    features = full_dataset.features()
    tree = benchmark(
        lambda: DecisionTreeRegressor(max_leaf_nodes=8).fit(features, data)
    )
    assert tree.n_leaves_ <= 8


def test_bench_dataset_generation_small(benchmark):
    """Benchmark sweep throughput: 20 shapes x 640 configs."""
    from repro.bench.runner import BenchmarkRunner
    from repro.workloads.extract import extract_dataset_shapes

    shapes, _ = extract_dataset_shapes()
    runner = BenchmarkRunner(Device.r9_nano())
    result = benchmark.pedantic(
        runner.run, args=(shapes[::9],), rounds=1, iterations=1
    )
    assert result.gflops.shape[1] == 640
