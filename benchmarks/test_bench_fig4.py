"""Figure 4 regeneration: pruning-technique sweep over budgets 4..15."""

import pytest

from repro.experiments import run_fig4


def test_bench_fig4(benchmark, full_dataset):
    result = benchmark.pedantic(
        run_fig4,
        args=(full_dataset,),
        kwargs={"split_seeds": (0, 1, 2)},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())

    # Clustering beats naive top-n at the smallest budget.
    assert result.naive_vs_clustering_gap(4) > 0.01
    # Best methods reach the mid-90s regime.
    _, _, best = result.best_score()
    assert best > 0.95
    # The decision tree stays competitive at every budget >= 6.
    for budget in (6, 8, 10, 12, 15):
        top = max(s[budget] for s in result.scores.values())
        assert result.scores["decision tree"][budget] >= top - 0.025
