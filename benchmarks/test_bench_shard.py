"""Process-parallel scaling gate: N shard workers vs one.

The sharded fleet exists to put selector dispatch on every core, so the
gate measures exactly that: the same flat-out chunked replay
(:func:`~repro.loadgen.run_sharded_load`) against a 1-process fleet and
an N-process fleet serving the same mapped artifact, comparing achieved
qps.  The floor is core-count aware — a 4-worker fleet cannot scale 4x
on a 2-CPU runner — and the whole gate skips when the machine cannot
run two workers genuinely in parallel (one CPU is reserved for the
front door and generator threads).

A second check asserts the merged fleet-wide registry stays exact under
the bench load: requests == decisions == per-worker lookups summed.
"""

import os

import pytest

from repro.core.deploy import tune
from repro.loadgen import LoadgenConfig, RateProfile, run_sharded_load
from repro.shard import ShardedFleet

PROCESSES = 4
#: Requested scaling floor at full parallelism; relaxed to 75% of the
#: achievable parallelism on smaller runners.
MIN_SCALING = 3.0

USABLE_CPUS = max(1, (os.cpu_count() or 1) - 1)


@pytest.fixture(scope="module")
def deployed(split):
    train, _ = split
    return tune(train, n_configs=8, random_state=0)


def _flat_out_config(seed=0):
    return LoadgenConfig(
        profile=RateProfile(base_qps=40_000.0),
        duration_s=1.0,
        workers=min(4, USABLE_CPUS + 1),
        seed=seed,
        pace=False,
    )


def _run(deployed, processes, seed=0):
    with ShardedFleet.from_deployed(
        deployed, processes=processes, compiled=True
    ) as fleet:
        report = run_sharded_load(
            fleet, _flat_out_config(seed), chunk_size=256
        )
        requests = fleet.registry.counter("shard.requests").value
        decisions = fleet.registry.counter("shard.decisions").value
        lookups = sum(
            metric.value
            for name, _, metric in fleet.registry.collect()
            if name == "serving.lookups"
        )
    return report, requests, decisions, lookups


@pytest.mark.skipif(
    USABLE_CPUS < 2,
    reason=f"need >= 2 usable CPUs for process scaling, have {USABLE_CPUS}",
)
def test_bench_sharded_fleet_scales_over_one_process(deployed):
    """N workers must beat 1 by >= 75% of the achievable parallelism."""
    single, *_ = _run(deployed, processes=1)
    sharded, requests, decisions, _ = _run(deployed, processes=PROCESSES)
    assert sharded.completed == sharded.offered
    assert requests == decisions == sharded.offered

    parallelism = min(PROCESSES, USABLE_CPUS)
    floor = min(MIN_SCALING, 0.75 * parallelism)
    scaling = sharded.achieved_qps / single.achieved_qps
    print(
        f"\n{PROCESSES} workers ({USABLE_CPUS} usable CPUs): "
        f"single {single.achieved_qps:,.0f} qps, sharded "
        f"{sharded.achieved_qps:,.0f} qps -> {scaling:.2f}x "
        f"(floor {floor:.2f}x); fleet-wide p99 "
        f"{sharded.lookup_latency.p99_s * 1e6:.1f} us"
    )
    assert scaling >= floor
    # The fleet-wide tail comes from the *merged* registry: every
    # worker process contributed its lookup histogram.
    assert sharded.lookup_latency is not None
    assert sharded.lookup_latency.count == sharded.offered


def test_bench_merged_obs_stays_exact_under_load(deployed):
    """Cross-worker counter merge loses nothing at bench throughput."""
    processes = min(2, max(1, USABLE_CPUS))
    report, requests, decisions, lookups = _run(
        deployed, processes=processes, seed=3
    )
    assert report.completed == report.offered > 0
    assert requests == decisions == report.offered
    # Graceful shutdown shipped every worker's final delta, so the
    # merged per-worker lookups cover the whole run exactly.
    assert lookups == report.offered
