"""Dynamic trial-run selection vs the trained model selector.

The introduction's argument, quantified: on a *research* workload whose
shapes keep changing, benchmark-on-first-use pays a trial sweep per new
shape, while the trained decision tree answers instantly; on a *stable
deployment* workload the dynamic policy amortises and wins on choice
quality.  The bench measures accumulated simulated device time (kernel
executions + trial sweeps) for both policies on both workload styles.
"""

import numpy as np
import pytest

from repro.bench.runner import BenchmarkRunner
from repro.core.deploy import tune
from repro.core.selection.dynamic import DynamicTrialSelector
from repro.perfmodel import GemmPerfModel
from repro.sycl.device import Device
from repro.workloads.gemm import GemmShape


@pytest.fixture(scope="module")
def setup(split):
    train, test = split
    deployed = tune(train, n_configs=8, random_state=0)
    runner = BenchmarkRunner(Device.r9_nano())
    model = GemmPerfModel(Device.r9_nano())
    return deployed, runner, model, test


def _workload_research(test, repeats=1):
    """Ever-changing topologies: every shape distinct."""
    return list(test.shapes) * repeats


def _workload_deployment(test, repeats=500):
    """A fixed model served repeatedly: few shapes, many executions."""
    return list(test.shapes[:: max(1, len(test.shapes) // 6)][:6]) * repeats


def _accumulate(selector_fn, shapes, model, trial_cost_fn=None):
    total = 0.0
    for shape in shapes:
        config = selector_fn(shape)
        total += model.time_seconds(shape, config)
    if trial_cost_fn is not None:
        total += trial_cost_fn()
    return total


@pytest.mark.parametrize("scenario", ["research", "deployment"])
def test_bench_dynamic_vs_model_selector(benchmark, setup, scenario):
    deployed, runner, model, test = setup
    shapes = (
        _workload_research(test)
        if scenario == "research"
        else _workload_deployment(test)
    )

    dynamic = DynamicTrialSelector(runner, deployed.selector.pruned)

    def run():
        dynamic.reset()
        model_total = _accumulate(deployed.select, shapes, model)
        dynamic_total = _accumulate(
            dynamic.select,
            shapes,
            model,
            trial_cost_fn=lambda: dynamic.stats.trial_seconds,
        )
        return model_total, dynamic_total

    model_total, dynamic_total = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n{scenario}: model-selector {model_total * 1e3:8.2f} ms device time, "
        f"dynamic {dynamic_total * 1e3:8.2f} ms "
        f"(trial overhead {dynamic.stats.trial_seconds * 1e3:.2f} ms, "
        f"hit rate {dynamic.stats.hit_rate * 100:.0f}%)"
    )
    if scenario == "research":
        # Changing shapes: trial overhead makes the dynamic policy lose.
        assert model_total < dynamic_total
    else:
        # Stable serving: trials amortise; dynamic must be competitive
        # (and is allowed to win thanks to perfect per-shape choices).
        assert dynamic_total < model_total * 1.2
