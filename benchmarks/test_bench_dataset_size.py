"""Extension bench: the 'larger datasets' conjecture, tested.

The paper conjectures its classifiers "fail to generalize which would be
mitigated with larger datasets".  The sweep augments the real training
shapes with synthetic ones from the same envelope and retrains the
pipeline at each size against a fixed real test split.
"""

from repro.experiments.dataset_size import run_dataset_size


def test_bench_dataset_size(benchmark):
    result = benchmark.pedantic(run_dataset_size, rounds=1, iterations=1)
    print("\n" + result.render())

    sizes = sorted(result.scores)
    # More data must not make the selector *worse* (beyond noise)...
    assert result.scores[sizes[-1]][0] >= result.scores[sizes[0]][0] - 0.02
    # ...but on this dataset the gap to the ceiling persists: part of
    # the residual is alignment-level structure invisible to the size
    # features, so data volume alone cannot close it.  (A nuance to the
    # paper's conjecture — see EXPERIMENTS.md.)
    final_score, final_ceiling = result.scores[sizes[-1]]
    assert final_ceiling - final_score > 0.01
