"""Serving-path throughput: per-shape loop vs batch vs memo cache.

The paper's deployment constraint is that runtime selection must be
"negligible overhead" next to the kernel it gates.  These benchmarks
quantify the three serving tiers over a >= 10k-query workload:

* ``loop``   — one ``select()`` per query (the pre-batch hot path);
* ``batch``  — one ``select_batch()`` over the whole workload, one
  vectorized classifier pass;
* ``cached`` — a warm :class:`SelectionService`, where every query is an
  LRU memo hit.

The batch path must beat the loop by >= 10x with identical outputs.
"""

import time

import pytest

from repro.core.deploy import tune
from repro.serving import SelectionService

N_QUERIES = 10_000


@pytest.fixture(scope="module")
def deployed(split):
    train, _ = split
    return tune(train, n_configs=8, random_state=0)


@pytest.fixture(scope="module")
def query_shapes(split):
    """>= 10k queries cycling over the test shapes (a serving replay)."""
    _, test = split
    shapes = list(test.shapes)
    reps = -(-N_QUERIES // len(shapes))
    return tuple((shapes * reps)[:N_QUERIES])


def test_bench_batch_speedup_over_loop(benchmark, deployed, query_shapes):
    """select_batch >= 10x faster than the select() loop, same answers."""
    selector = deployed.selector
    # Warm both paths (first-call set-up out of the measurement).
    selector.select(query_shapes[0])
    selector.select_batch(query_shapes[:16])

    start = time.perf_counter()
    loop_result = tuple(selector.select(s) for s in query_shapes)
    loop_seconds = time.perf_counter() - start

    batch_seconds = float("inf")
    batch_result = None
    for _ in range(3):
        start = time.perf_counter()
        batch_result = selector.select_batch(query_shapes)
        batch_seconds = min(batch_seconds, time.perf_counter() - start)

    benchmark.pedantic(
        selector.select_batch, args=(query_shapes,), rounds=3, iterations=1
    )

    assert batch_result == loop_result
    speedup = loop_seconds / batch_seconds
    print(
        f"\n{N_QUERIES} queries: loop {loop_seconds * 1e3:8.1f} ms, "
        f"batch {batch_seconds * 1e3:8.1f} ms -> {speedup:.1f}x"
    )
    assert speedup >= 10.0


def test_bench_cached_service_throughput(benchmark, deployed, query_shapes):
    """A warm memo cache answers the whole replay without the model."""
    service = SelectionService(deployed, capacity=16384)
    expected = deployed.select_batch(query_shapes)
    warm = service.select_batch(query_shapes)  # populate the memo
    assert warm == expected

    def run_cached():
        return service.select_batch(query_shapes)

    cached_result = benchmark.pedantic(run_cached, rounds=3, iterations=1)
    assert cached_result == expected

    stats = service.stats()
    assert stats.lookups >= 4 * N_QUERIES
    # After warm-up every lookup hits: only the first pass' unique shapes
    # ever missed.
    assert stats.cache_misses == len(set(s.as_tuple() for s in query_shapes))
    print(
        f"\ncached replay: hit rate {stats.hit_rate * 100:.1f}%, "
        f"p95 call latency {stats.latency.p95 * 1e3:.2f} ms"
    )


def test_bench_single_query_service_latency(benchmark, deployed, query_shapes):
    """Steady-state single-query path: memo hit + counters."""
    service = SelectionService(deployed)
    shape = query_shapes[0]
    service.select(shape)  # warm
    config = benchmark(service.select, shape)
    assert config == deployed.select(shape)
    stats = service.stats()
    assert stats.hit_rate > 0.99
    assert stats.latency.count > 0
