"""Selection-latency benchmarks (Section IV's deployment constraint).

"There is little to be gained by choosing a complex process to achieve
slightly better performance if this leads to significantly more time
being spent in that selection process."  These benchmarks time one
selection decision for each Table I classifier, and check the decision
cost against the modelled kernel runtime it gates.
"""

import pytest

from repro.core.pruning import DecisionTreePruner
from repro.core.selection import default_selectors
from repro.perfmodel import GemmPerfModel
from repro.sycl.device import Device
from repro.workloads.gemm import GemmShape

QUERY = GemmShape(m=12544, k=576, n=128)


@pytest.fixture(scope="module")
def selectors(split):
    train, _ = split
    pruned = DecisionTreePruner().select(train, 8)
    fitted = []
    for selector in default_selectors(pruned, random_state=0):
        selector.fit(train)
        fitted.append(selector)
    return fitted


@pytest.mark.parametrize(
    "index,name",
    list(
        enumerate(
            (
                "DecisionTree",
                "RandomForest",
                "1NearestNeighbor",
                "3NearestNeighbors",
                "LinearSVM",
                "RadialSVM",
            )
        )
    ),
    ids=lambda v: v if isinstance(v, str) else "",
)
def test_bench_selection_latency(benchmark, selectors, index, name):
    selector = selectors[index]
    assert selector.name == name
    config = benchmark(selector.select, QUERY)
    assert config in selector.pruned.configs


def test_bench_exported_python_selector(benchmark, split):
    """The deployed nested-if form must be far cheaper than any estimator."""
    from repro.core.deploy import tune

    train, _ = split
    deployed = tune(train, n_configs=8, random_state=0)
    namespace = {}
    exec(deployed.export_python(), namespace)  # noqa: S102
    select = namespace["select_kernel"]
    features = tuple(QUERY.features())
    result = benchmark(lambda: select(*features))
    assert isinstance(result, str)


def test_bench_selection_cost_vs_kernel_time(benchmark, split):
    """The decision must cost a small fraction of the kernel it gates."""
    from repro.core.deploy import tune

    train, _ = split
    deployed = tune(train, n_configs=8, random_state=0)
    benchmark(deployed.select, QUERY)

    model = GemmPerfModel(Device.r9_nano())
    kernel_time = model.time_seconds(QUERY, deployed.select(QUERY))
    # Python-object overhead included, the decision is still well under
    # one kernel invocation for a realistic convolution GEMM.
    assert benchmark.stats.stats.median < kernel_time
