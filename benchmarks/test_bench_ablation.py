"""Ablations over the design choices DESIGN.md calls out.

Each ablation sweeps one knob of the pipeline and prints the resulting
achievable/selection performance, demonstrating *why* the defaults are
what they are:

* PCA variance threshold feeding the PCA+k-means pruner;
* the decision-tree pruner's ``min_samples_leaf``;
* the number of benchmark iterations (noise averaging);
* the measurement-noise level itself (dataset difficulty).
"""

import numpy as np
import pytest

from repro.bench.runner import BenchmarkRunner, RunnerConfig
from repro.core.dataset import PerformanceDataset, generate_dataset
from repro.core.pruning import (
    DecisionTreePruner,
    PCAKMeansPruner,
    achievable_performance,
)
from repro.perfmodel import PerfModelParams
from repro.sycl.device import Device


def test_bench_ablation_pca_variance_threshold(benchmark, split):
    train, test = split

    def sweep():
        return {
            threshold: achievable_performance(
                PCAKMeansPruner(
                    variance_threshold=threshold, random_state=0
                ).select(train, 8),
                test,
            )
            for threshold in (0.80, 0.90, 0.95, 0.99)
        }

    scores = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nPCA+k-means achievable @8 by variance threshold:")
    for threshold, score in scores.items():
        print(f"  {threshold:.2f} -> {score * 100:.1f}%")
    assert all(0.8 < v <= 1.0 for v in scores.values())


def test_bench_ablation_tree_min_samples_leaf(benchmark, split):
    train, test = split

    def sweep():
        return {
            msl: achievable_performance(
                DecisionTreePruner(min_samples_leaf=msl).select(train, 8), test
            )
            for msl in (1, 2, 4, 8)
        }

    scores = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\ndecision-tree achievable @8 by min_samples_leaf:")
    for msl, score in scores.items():
        print(f"  {msl} -> {score * 100:.1f}%")
    # Over-regularised leaves must not beat the default dramatically.
    assert max(scores.values()) - min(scores.values()) < 0.08


@pytest.mark.parametrize("iterations", [1, 5])
def test_bench_ablation_timing_iterations(benchmark, iterations):
    """More timed iterations average the noise out of the dataset."""
    from repro.workloads.extract import extract_dataset_shapes

    shapes, _ = extract_dataset_shapes()
    runner = BenchmarkRunner(
        Device.r9_nano(),
        runner_config=RunnerConfig(timed_iterations=iterations),
    )
    result = benchmark.pedantic(
        runner.run, args=(shapes[::8],), rounds=1, iterations=1
    )
    dataset = PerformanceDataset.from_benchmark(result)
    # Winner tally is noisier with a single iteration: strictly more
    # distinct winners than the smoothed sweep is typical but not
    # guaranteed, so only sanity-check the structure.
    assert dataset.win_counts().sum() == dataset.n_shapes


def test_bench_ablation_noise_level(benchmark):
    """Dataset difficulty vs measurement noise (sigma ablation)."""

    def sweep():
        out = {}
        for sigma in (0.0, 0.035, 0.10):
            ds = generate_dataset(
                model_params=PerfModelParams(noise_sigma=sigma),
            )
            out[sigma] = int(np.count_nonzero(ds.win_counts()))
        return out

    winners = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\ndistinct winners by noise sigma:")
    for sigma, count in winners.items():
        print(f"  sigma={sigma} -> {count}")
    # More measurement noise -> a longer tail of accidental winners.
    assert winners[0.10] >= winners[0.0]
