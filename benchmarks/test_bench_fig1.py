"""Figure 1 regeneration: per-configuration performance distribution.

Run with ``pytest benchmarks/test_bench_fig1.py --benchmark-only -s`` to
see the rendered figure alongside the timing.
"""

import numpy as np

from repro.experiments import run_fig1


def test_bench_fig1(benchmark, full_dataset):
    result = benchmark(run_fig1, full_dataset)
    print("\n" + result.render())

    # Shape assertions mirroring the paper's description of Figure 1.
    assert np.all(np.diff(result.mean_sorted) >= -1e-12)
    # "Those at the far left never achieving above 30% of the optimal":
    # a nontrivial left tail of bad-everywhere configurations exists.
    assert result.n_never_above_30pct + int(
        np.sum(result.max_sorted < 0.5)
    ) >= 20
    # "Some configurations in the middle ... achieve close to optimal
    # performance on certain sizes."
    assert result.n_niche_specialists >= 3
