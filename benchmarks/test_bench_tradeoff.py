"""Ablation bench: library size vs achievable performance."""

from repro.experiments.tradeoff import run_tradeoff


def test_bench_tradeoff(benchmark, full_dataset):
    result = benchmark.pedantic(
        run_tradeoff, args=(full_dataset,), rounds=1, iterations=1
    )
    print("\n" + result.render())

    # The pruned libraries must be far smaller than the full bundle...
    largest = result.points[-1]
    assert largest.binary_bytes < result.full_library_bytes / 3
    # ...with diminishing performance returns setting in within the
    # paper's investigated budget range.
    assert result.knee_budget() <= 32
    # Performance at the largest budget beats the smallest meaningfully.
    assert result.points[-1].achievable > result.points[0].achievable
