"""Instrumentation overhead: obs-metered serving vs the null registry.

The whole point of :mod:`repro.obs` is that metering the serving hot
path is effectively free — otherwise "negligible overhead" selection
would be negated by its own observability.  This benchmark serves the
same warm 10k-query replay through two identically configured services,
one writing into a real :class:`MetricsRegistry` and one into
:data:`NULL_REGISTRY` (whose metrics are all no-ops), interleaving
best-of-N timings so machine noise hits both sides equally, and asserts
the instrumented batch path costs < 5% extra.
"""

import time

import pytest

from repro.core.deploy import tune
from repro.obs import MetricsRegistry, NULL_REGISTRY
from repro.serving import SelectionService

N_QUERIES = 10_000
ROUNDS = 22
MAX_OVERHEAD = 0.05


@pytest.fixture(scope="module")
def deployed(split):
    train, _ = split
    return tune(train, n_configs=8, random_state=0)


@pytest.fixture(scope="module")
def query_shapes(split):
    _, test = split
    shapes = list(test.shapes)
    reps = -(-N_QUERIES // len(shapes))
    return tuple((shapes * reps)[:N_QUERIES])


def _best_of_interleaved(fn_a, fn_b, rounds):
    """Best-of-``rounds`` wall time for each callable, interleaved.

    The pair order alternates every round so neither side consistently
    enjoys (or pays for) whatever the other left in the caches.
    """
    best_a = best_b = float("inf")
    for round_index in range(rounds):
        pair = ((fn_a, "a"), (fn_b, "b"))
        if round_index % 2:
            pair = tuple(reversed(pair))
        for fn, side in pair:
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            if side == "a":
                best_a = min(best_a, elapsed)
            else:
                best_b = min(best_b, elapsed)
    return best_a, best_b


def test_bench_obs_overhead_on_select_batch(benchmark, deployed, query_shapes):
    """Instrumented warm select_batch within 5% of the null-registry one."""
    instrumented = SelectionService(
        deployed, capacity=16384, registry=MetricsRegistry(), name="bench"
    )
    baseline = SelectionService(
        deployed, capacity=16384, registry=NULL_REGISTRY, name="bench"
    )
    # Warm both memo caches: the measured path is pure hits, which is
    # where per-query instrumentation cost would show up undiluted.
    expected = instrumented.select_batch(query_shapes)
    assert baseline.select_batch(query_shapes) == expected

    instrumented_s, baseline_s = _best_of_interleaved(
        lambda: instrumented.select_batch(query_shapes),
        lambda: baseline.select_batch(query_shapes),
        ROUNDS,
    )

    benchmark.pedantic(
        instrumented.select_batch, args=(query_shapes,), rounds=3, iterations=1
    )

    overhead = instrumented_s / baseline_s - 1.0
    print(
        f"\n{N_QUERIES} warm queries: instrumented "
        f"{instrumented_s * 1e3:7.2f} ms, null-registry "
        f"{baseline_s * 1e3:7.2f} ms -> {overhead * 100:+.2f}% overhead"
    )
    assert overhead < MAX_OVERHEAD

    # The instrumented service actually metered the workload: one warm
    # pass, ROUNDS interleaved passes, 3 benchmark rounds.
    stats = instrumented.stats()
    assert stats.lookups == (1 + ROUNDS + 3) * N_QUERIES
    assert stats.latency.count == stats.batch_calls
    # ...while the null registry recorded nothing at all.
    null_stats = baseline.stats()
    assert null_stats.lookups == 0
    assert null_stats.latency.count == 0


def test_bench_obs_overhead_on_single_select(benchmark, deployed, query_shapes):
    """Per-call select() metering stays in the same latency bucket."""
    instrumented = SelectionService(deployed, registry=MetricsRegistry())
    baseline = SelectionService(deployed, registry=NULL_REGISTRY)
    shape = query_shapes[0]
    instrumented.select(shape)
    baseline.select(shape)

    def hot_loop(service):
        def run():
            for _ in range(1000):
                service.select(shape)

        return run

    instrumented_s, baseline_s = _best_of_interleaved(
        hot_loop(instrumented), hot_loop(baseline), ROUNDS
    )
    benchmark.pedantic(hot_loop(instrumented), rounds=3, iterations=1)

    added_us = (instrumented_s - baseline_s) / 1000 * 1e6
    print(
        f"\n1000 single hits: instrumented {instrumented_s * 1e3:7.2f} ms, "
        f"null-registry {baseline_s * 1e3:7.2f} ms "
        f"-> +{added_us:.2f} us per call"
    )
    # Single-call metering observes two histograms and three counters
    # per hit, so relative overhead on a sub-microsecond memo lookup is
    # the wrong yardstick; the claim that matters is that the *absolute*
    # added latency stays far below a kernel launch (~5 us and up).
    assert added_us < 10.0
