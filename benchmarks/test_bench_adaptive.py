"""Adaptive-layer gates: warm-path overhead and drift gap closure.

Two claims back the adaptive layer's deployment story:

* the warm admitted path (no trial pending, no override) costs < 5%
  on the serving request path — measured end to end through the fleet
  router, the path live traffic actually takes — with absolute
  added-latency guards on the raw service ``select``/``select_batch``
  wrappers (all interleaved best-of-N so machine noise hits both
  sides equally, the ``test_bench_obs.py`` idiom);
* on the drifted synthetic workload the adaptive loop closes >= 50% of
  the static-to-oracle geomean gap (the figure the CLI smoke gate also
  enforces via ``repro loadgen run --adaptive --min-gap-closure``).
"""

import statistics
import time

import pytest

from repro.adaptive import AdaptiveConfig
from repro.core.deploy import tune
from repro.loadgen import replay_drift, synthetic_fleet
from repro.loadgen.workload import network_shape_pool
from repro.obs import MetricsRegistry
from repro.serving import AdaptiveSelectionService, SelectionService

N_QUERIES = 10_000
ROUNDS = 22
MAX_WARM_PATH_OVERHEAD = 0.05
MAX_SINGLE_ADDED_US = 2.0
MAX_BATCH_ADDED_US_PER_ITEM = 1.5
MIN_GAP_CLOSURE = 0.5

#: The adaptive knobs that pin every request to the warm admitted,
#: non-trial path: threshold 1 admits on first sight, trial_fraction 0
#: never arms a challenger, and with no feedback nothing ever promotes.
WARM_ONLY = AdaptiveConfig(trial_fraction=0.0, admission_threshold=1)


@pytest.fixture(scope="module")
def deployed(split):
    train, _ = split
    return tune(train, n_configs=8, random_state=0)


@pytest.fixture(scope="module")
def query_shapes(split):
    _, test = split
    shapes = list(test.shapes)
    reps = -(-N_QUERIES // len(shapes))
    return tuple((shapes * reps)[:N_QUERIES])


def _best_of_interleaved(fn_a, fn_b, rounds):
    """Best-of-``rounds`` wall time for each callable, interleaved."""
    best_a = best_b = float("inf")
    for round_index in range(rounds):
        pair = ((fn_a, "a"), (fn_b, "b"))
        if round_index % 2:
            pair = tuple(reversed(pair))
        for fn, side in pair:
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            if side == "a":
                best_a = min(best_a, elapsed)
            else:
                best_b = min(best_b, elapsed)
    return best_a, best_b


def _paired_overhead(fn_test, fn_base, rounds):
    """Median of per-round paired time ratios, alternating order.

    Each round times the two callables back to back, so slow machine
    drift (thermal throttling, background load) hits both sides of a
    pair equally; the median over rounds keeps any single noisy round
    from moving the estimate.  Returns ``median(test / base) - 1``
    plus the two median wall times for reporting.
    """
    ratios = []
    test_times = []
    base_times = []
    for round_index in range(rounds):
        pair = [("test", fn_test), ("base", fn_base)]
        if round_index % 2:
            pair.reverse()
        times = {}
        for side, fn in pair:
            start = time.perf_counter()
            fn()
            times[side] = time.perf_counter() - start
        ratios.append(times["test"] / times["base"])
        test_times.append(times["test"])
        base_times.append(times["base"])
    return (
        statistics.median(ratios) - 1.0,
        statistics.median(test_times),
        statistics.median(base_times),
    )


def _warm_adaptive(deployed, registry):
    """An adaptive service pinned to the admitted, non-trial path."""
    inner = SelectionService(
        deployed, capacity=16384, registry=registry, name="bench"
    )
    return AdaptiveSelectionService(inner, config=WARM_ONLY, registry=registry)


def test_bench_adaptive_warm_serving_path_overhead(benchmark):
    """The ISSUE gate: < 5% on the end-to-end warm serving path.

    Two identical synthetic fleets — one static, one wrapped in the
    adaptive layer with every shape admitted and exploration off — serve
    the same warm shape pool through their routers.  The adaptive fleet
    must stay within 5% of the static fleet per request.
    """
    pool = network_shape_pool()[:12]
    static = synthetic_fleet(replicas=2, budget=4, seed=0)
    adaptive = synthetic_fleet(
        replicas=2, budget=4, seed=0, adaptive=WARM_ONLY
    )

    def warm(fleet):
        for shape in pool:
            for _ in range(3):  # admit on every replica and fill memos
                decision = fleet.router.select(shape)
                fleet.router.complete(decision.device_id)

    warm(static)
    warm(adaptive)

    def serve_loop(fleet):
        router = fleet.router

        def run():
            for _ in range(200):
                for shape in pool:
                    decision = router.select(shape)
                    router.complete(decision.device_id)

        return run

    overhead, adaptive_s, static_s = _paired_overhead(
        serve_loop(adaptive), serve_loop(static), 30
    )
    benchmark.pedantic(serve_loop(adaptive), rounds=3, iterations=1)

    per_request = 200 * len(pool)
    print(
        f"\nwarm serving path: adaptive "
        f"{adaptive_s / per_request * 1e6:.2f} us/req, static "
        f"{static_s / per_request * 1e6:.2f} us/req -> "
        f"{overhead * 100:+.2f}% overhead"
    )
    assert overhead < MAX_WARM_PATH_OVERHEAD

    # The whole run stayed on the admitted non-trial path.
    for service in adaptive.services.values():
        stats = service.adaptive_stats()
        assert stats.trials == 0
        assert stats.active_overrides == 0


def test_bench_adaptive_single_select_added_latency(
    benchmark, deployed, query_shapes
):
    """Per-call added latency of the bare warm select wrapper."""
    adaptive = _warm_adaptive(deployed, MetricsRegistry())
    bare = SelectionService(deployed, registry=MetricsRegistry())
    shape = query_shapes[0]
    adaptive.select(shape)
    bare.select(shape)

    def hot_loop(service):
        def run():
            for _ in range(1000):
                service.select(shape)

        return run

    adaptive_s, bare_s = _best_of_interleaved(
        hot_loop(adaptive), hot_loop(bare), ROUNDS
    )
    benchmark.pedantic(hot_loop(adaptive), rounds=3, iterations=1)

    added_us = (adaptive_s - bare_s) / 1000 * 1e6
    print(
        f"\n1000 single warm selects: adaptive {adaptive_s * 1e3:7.2f} ms, "
        f"bare {bare_s * 1e3:7.2f} ms -> +{added_us:.3f} us per call"
    )
    # Relative overhead on a sub-microsecond memo hit is the wrong
    # yardstick for the raw wrapper (the 5% gate is the serving-path
    # test above); what matters here is the absolute added work staying
    # far below a kernel launch (~5 us and up).
    assert added_us < MAX_SINGLE_ADDED_US


def test_bench_adaptive_warm_batch_added_latency(
    benchmark, deployed, query_shapes
):
    """Per-item added latency of the warm select_batch wrapper."""
    adaptive = _warm_adaptive(deployed, MetricsRegistry())
    bare = SelectionService(
        deployed, capacity=16384, registry=MetricsRegistry(), name="bench"
    )
    # Warm both memo caches AND admit every shape (threshold 1).
    expected = adaptive.select_batch(query_shapes)
    assert bare.select_batch(query_shapes) == expected
    stats = adaptive.adaptive_stats()
    assert stats.tracked_shapes == len(set(query_shapes))

    adaptive_s, bare_s = _best_of_interleaved(
        lambda: adaptive.select_batch(query_shapes),
        lambda: bare.select_batch(query_shapes),
        ROUNDS,
    )
    benchmark.pedantic(
        adaptive.select_batch, args=(query_shapes,), rounds=3, iterations=1
    )

    added_us = (adaptive_s - bare_s) / N_QUERIES * 1e6
    print(
        f"\n{N_QUERIES} warm batch queries: adaptive "
        f"{adaptive_s * 1e3:7.2f} ms, bare {bare_s * 1e3:7.2f} ms -> "
        f"+{added_us:.3f} us per item"
    )
    assert added_us < MAX_BATCH_ADDED_US_PER_ITEM

    # The whole run stayed on the non-trial path.
    stats = adaptive.adaptive_stats()
    assert stats.trials == 0
    assert stats.active_overrides == 0


def test_bench_adaptive_drift_gap_closure(benchmark):
    """The adaptive loop closes >= 50% of the static-to-oracle gap."""
    report = benchmark.pedantic(
        lambda: replay_drift(steps=3000, seed=0),
        rounds=1,
        iterations=1,
    )
    summary = report.summary
    print(
        f"\ndrift replay: closure {summary.gap_closure:.1%} "
        f"(adaptive {summary.adaptive_geomean_s * 1e3:.3f} ms, "
        f"static {summary.static_geomean_s * 1e3:.3f} ms, "
        f"oracle {summary.oracle_geomean_s * 1e3:.3f} ms), "
        f"{summary.promotions} promotions, {summary.demotions} demotions"
    )
    assert summary.gap_closure >= MIN_GAP_CLOSURE
    assert summary.promotions > 0
    # Bit-identical determinism: the same seed reproduces the digest.
    assert (
        replay_drift(steps=3000, seed=0).result.digest()
        == report.result.digest()
    )
