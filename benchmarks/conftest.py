"""Benchmark fixtures.

The full dataset is generated once and cached on disk under
``benchmarks/.cache`` so repeated benchmark runs skip the ~15 s sweep.
Delete the cache to force regeneration.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.dataset import PerformanceDataset, generate_dataset

CACHE = Path(__file__).parent / ".cache" / "dataset.npz"


@pytest.fixture(scope="session")
def full_dataset() -> PerformanceDataset:
    return generate_dataset(cache_path=CACHE)


@pytest.fixture(scope="session")
def split(full_dataset):
    return full_dataset.split(test_size=0.2, random_state=0)
