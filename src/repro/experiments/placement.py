"""Extension experiment: does data placement change kernel choice?

SYCL-BLAS's SUMMA work showed device-to-host readback is several times
slower than host-to-device upload, and that transfer time can rival
compute for small problems.  This experiment quantifies what that means
for *selection*:

* the dense GEMM shapes are crossed with data placements (operands
  device-resident vs host-resident) and benchmarked under the
  transfer-aware performance model — host-placed small problems pay
  visible H2D/D2H phases that depend on the chosen macro tile (padding
  inflates the transferred footprint), so the optimal configuration can
  flip between placements;
* base shapes are split 80/20; the test set is the *mixed* (both
  placements) rows of held-out base shapes;
* two pipelines are compared at the same budget:

  - **placement-blind** — pruned and fitted on device-resident rows
    only (a library tuned the classic way, then deployed on traffic
    where operands sometimes live in host memory);
  - **placement-aware** — pruned and fitted on all rows, with the
    placement flag as a fifth feature.

The headline numbers: the fraction of base shapes whose best
configuration flips between placements, and the geomean selection gap
between the two pipelines on mixed traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.bench.runner import BenchmarkRunner, RunnerConfig
from repro.core.dataset import PerformanceDataset
from repro.core.pruning.decision_tree import DecisionTreePruner
from repro.core.selection.classifiers import make_selector
from repro.core.selection.evaluate import evaluate_selector
from repro.experiments.report import ascii_table
from repro.sycl.device import Device
from repro.utils.rng import rng_from
from repro.workloads.extract import extract_dataset_shapes
from repro.workloads.placement import DataPlacement, place_shapes

__all__ = ["PlacementFlipResult", "run_placement_flip"]

DEFAULT_PLACEMENTS: Tuple[str, ...] = (
    DataPlacement.DEVICE.value,
    DataPlacement.HOST.value,
)


@dataclass(frozen=True)
class PlacementFlipResult:
    """Flip statistics and the two pipelines' scores on mixed traffic."""

    placements: Tuple[str, ...]
    budget: int
    #: Fraction of base shapes whose best-of-640 config differs between
    #: device- and host-resident rows.
    flip_fraction: float
    n_base_shapes: int
    #: Achievable ceiling of each pipeline's pruned set on the test rows.
    ceiling_placement_blind: float
    ceiling_placement_aware: float
    #: Selector geomean scores vs the absolute optimum on the test rows.
    score_placement_blind: float
    score_placement_aware: float
    #: Per-placement selector scores of the placement-aware pipeline.
    per_placement_scores: Dict[str, float]
    n_test_rows: int

    @property
    def margin(self) -> float:
        """Geomean points the aware pipeline wins on mixed traffic."""
        return self.score_placement_aware - self.score_placement_blind

    def render(self) -> str:
        rows = [
            [
                "placement-blind",
                f"{self.ceiling_placement_blind * 100:.1f}",
                f"{self.score_placement_blind * 100:.1f}",
            ],
            [
                "placement-aware",
                f"{self.ceiling_placement_aware * 100:.1f}",
                f"{self.score_placement_aware * 100:.1f}",
            ],
        ]
        table = ascii_table(
            ["pipeline", "ceiling %", "selector %"],
            rows,
            title=(
                f"Placement flip (budget {self.budget}, "
                f"{self.n_test_rows} held-out mixed rows)"
            ),
        )
        placement_lines = "\n".join(
            f"  {name:>6}: {score * 100:5.1f}%"
            for name, score in sorted(self.per_placement_scores.items())
        )
        return (
            f"{table}\n\n"
            f"best-config flip fraction: {self.flip_fraction * 100:.0f}% "
            f"of {self.n_base_shapes} base shapes\n"
            f"placement-aware score by placement:\n{placement_lines}\n"
            f"mixed-traffic margin: {self.margin * 100:+.1f} points"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable report (the CI artifact payload)."""
        return {
            "placements": list(self.placements),
            "budget": self.budget,
            "flip_fraction": self.flip_fraction,
            "n_base_shapes": self.n_base_shapes,
            "ceiling_placement_blind": self.ceiling_placement_blind,
            "ceiling_placement_aware": self.ceiling_placement_aware,
            "score_placement_blind": self.score_placement_blind,
            "score_placement_aware": self.score_placement_aware,
            "per_placement_scores": dict(self.per_placement_scores),
            "margin": self.margin,
            "n_test_rows": self.n_test_rows,
        }


def _build_placed_dataset(
    placements: Sequence[str],
    *,
    shape_stride: int,
    device: Device,
    seed: int,
) -> PerformanceDataset:
    dense_shapes, _ = extract_dataset_shapes()
    base = dense_shapes[::shape_stride]
    placed = place_shapes(base, placements)
    runner = BenchmarkRunner(
        device,
        runner_config=RunnerConfig(timed_iterations=3, seed=seed),
    )
    return PerformanceDataset.from_benchmark(runner.run(placed))


def _flip_fraction(dataset: PerformanceDataset) -> Tuple[float, int]:
    """Fraction of base shapes whose best config differs by placement."""
    best_by_base: Dict[Tuple[int, ...], set] = {}
    table = np.nan_to_num(dataset.gflops, nan=-np.inf)
    for i, shape in enumerate(dataset.shapes):
        key = shape.unplaced().as_tuple()
        best_by_base.setdefault(key, set()).add(int(np.argmax(table[i])))
    n_bases = len(best_by_base)
    flips = sum(1 for winners in best_by_base.values() if len(winners) > 1)
    return flips / n_bases, n_bases


def run_placement_flip(
    *,
    placements: Sequence[str] = DEFAULT_PLACEMENTS,
    budget: int = 8,
    shape_stride: int = 3,
    split_seed: int = 0,
    random_state: int = 0,
    device: Optional[Device] = None,
    dataset: Optional[PerformanceDataset] = None,
) -> PlacementFlipResult:
    """Run the experiment (see module docstring)."""
    placements = tuple(DataPlacement.parse(p).value for p in placements)
    if DataPlacement.DEVICE.value not in placements:
        raise ValueError('placements must include "device" (the blind rows)')
    if len(set(placements)) < 2:
        raise ValueError("need at least two distinct placements to flip")
    device = device or Device.r9_nano()
    if dataset is None:
        dataset = _build_placed_dataset(
            placements, shape_stride=shape_stride, device=device, seed=2020
        )

    flip_fraction, n_bases = _flip_fraction(dataset)

    # Split by *base shape* so test rows are unseen at every placement.
    bases = sorted({s.unplaced().as_tuple() for s in dataset.shapes})
    order = np.arange(len(bases))
    rng_from(split_seed).shuffle(order)
    n_test = max(1, len(bases) // 5)
    test_bases = {bases[i] for i in order[:n_test]}

    def rows(predicate):
        return [i for i, s in enumerate(dataset.shapes) if predicate(s)]

    def is_test_base(s):
        return s.unplaced().as_tuple() in test_bases

    train_all = dataset.subset(rows(lambda s: not is_test_base(s)))
    train_device = dataset.subset(
        rows(lambda s: not is_test_base(s) and not s.host_resident)
    )
    test_mixed = dataset.subset(rows(is_test_base))

    pruner = DecisionTreePruner()
    results = {}
    for name, train in (("blind", train_device), ("aware", train_all)):
        pruned = pruner.select(train, budget)
        selector = make_selector(
            "DecisionTree", pruned, random_state=random_state
        ).fit(train)
        evaluation = evaluate_selector(selector, test_mixed)
        results[name] = (pruned, selector, evaluation)

    aware_selector = results["aware"][1]
    per_placement: Dict[str, float] = {}
    for placement in placements:
        sub_rows = [
            i
            for i, s in enumerate(test_mixed.shapes)
            if s.placement == placement
        ]
        sub = test_mixed.subset(sub_rows)
        per_placement[placement] = evaluate_selector(aware_selector, sub).score

    return PlacementFlipResult(
        placements=placements,
        budget=budget,
        flip_fraction=flip_fraction,
        n_base_shapes=n_bases,
        ceiling_placement_blind=results["blind"][2].ceiling,
        ceiling_placement_aware=results["aware"][2].ceiling,
        score_placement_blind=results["blind"][2].score,
        score_placement_aware=results["aware"][2].score,
        per_placement_scores=per_placement,
        n_test_rows=test_mixed.n_shapes,
    )
