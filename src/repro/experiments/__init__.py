"""Experiment drivers: one module per figure/table of the paper.

Every driver exposes ``run(...)`` returning a result object with the raw
data plus ``render()`` producing the ASCII figure/table, so the same code
backs the CLI, the examples and the regression benchmarks.

* :mod:`repro.experiments.fig1` — per-config performance distribution.
* :mod:`repro.experiments.fig2` — optimal-configuration win counts.
* :mod:`repro.experiments.fig3` — PCA explained-variance curve.
* :mod:`repro.experiments.fig4` — pruning-technique sweep.
* :mod:`repro.experiments.table1` — runtime-classifier comparison.
* :mod:`repro.experiments.run_all` — everything, with a summary report.
"""

from repro.experiments.fig1 import Fig1Result, run_fig1
from repro.experiments.fig2 import Fig2Result, run_fig2
from repro.experiments.fig3 import Fig3Result, run_fig3
from repro.experiments.fig4 import Fig4Result, run_fig4
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.placement import PlacementFlipResult, run_placement_flip
from repro.experiments.sparse import SparseGeneralization, run_sparse_generalization
from repro.experiments.dataset_size import DatasetSizeResult, run_dataset_size
from repro.experiments.variance import VarianceResult, run_variance
from repro.experiments.tradeoff import TradeoffResult, run_tradeoff
from repro.experiments.run_all import run_all

__all__ = [
    "Fig1Result",
    "Fig2Result",
    "Fig3Result",
    "DatasetSizeResult",
    "Fig4Result",
    "PlacementFlipResult",
    "SparseGeneralization",
    "Table1Result",
    "TradeoffResult",
    "VarianceResult",
    "run_all",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_dataset_size",
    "run_fig4",
    "run_placement_flip",
    "run_sparse_generalization",
    "run_table1",
    "run_tradeoff",
    "run_variance",
]
