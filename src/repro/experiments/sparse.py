"""Extension experiment: does kernel selection generalize to sparse data?

The paper's closing question.  Setup:

* the dense GEMM shapes are crossed with pruning densities
  (1.0 / 0.5 / 0.25 / 0.1) and benchmarked under the sparse performance
  model — optimal configurations shift toward smaller accumulator steps
  and tiles as density falls;
* base shapes are split 80/20; the test set is the *sparse* (density<1)
  rows of held-out base shapes;
* two pipelines are compared at the same budget:

  - **dense-trained** — pruned and fitted on dense rows only (what a
    library tuned per the paper would ship today);
  - **sparsity-aware** — pruned and fitted on all densities, with
    density as a fifth feature.

The gap between them is the paper's open question, answered on the
simulated substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.bench.runner import BenchmarkRunner, RunnerConfig
from repro.core.dataset import PerformanceDataset
from repro.core.pruning.decision_tree import DecisionTreePruner
from repro.core.selection.classifiers import make_selector
from repro.core.selection.evaluate import evaluate_selector
from repro.experiments.report import ascii_table
from repro.perfmodel.sparse import SparseGemmPerfModel
from repro.sycl.device import Device
from repro.utils.rng import rng_from
from repro.workloads.extract import extract_dataset_shapes
from repro.workloads.sparse import sparsify

__all__ = ["SparseGeneralization", "run_sparse_generalization"]

DEFAULT_DENSITIES: Tuple[float, ...] = (1.0, 0.5, 0.25, 0.1)


@dataclass(frozen=True)
class SparseGeneralization:
    """Scores of the two pipelines on held-out sparse shapes."""

    densities: Tuple[float, ...]
    budget: int
    #: Achievable ceiling of each pipeline's pruned set on the test rows.
    ceiling_dense_trained: float
    ceiling_sparsity_aware: float
    #: Selector scores vs the absolute optimum on the test rows.
    score_dense_trained: float
    score_sparsity_aware: float
    #: Per-density selector scores of the sparsity-aware pipeline.
    per_density_scores: Dict[float, float]
    n_test_rows: int

    @property
    def generalization_gap(self) -> float:
        """How much shipping a dense-tuned library loses on sparse work."""
        return self.score_sparsity_aware - self.score_dense_trained

    def render(self) -> str:
        rows = [
            [
                "dense-trained",
                f"{self.ceiling_dense_trained * 100:.1f}",
                f"{self.score_dense_trained * 100:.1f}",
            ],
            [
                "sparsity-aware",
                f"{self.ceiling_sparsity_aware * 100:.1f}",
                f"{self.score_sparsity_aware * 100:.1f}",
            ],
        ]
        table = ascii_table(
            ["pipeline", "ceiling %", "selector %"],
            rows,
            title=(
                f"Sparse generalization (budget {self.budget}, "
                f"{self.n_test_rows} held-out sparse rows)"
            ),
        )
        density_lines = "\n".join(
            f"  density {d:>4.0%}: {s * 100:5.1f}%"
            for d, s in sorted(self.per_density_scores.items(), reverse=True)
        )
        return (
            f"{table}\n\nsparsity-aware score by density:\n{density_lines}\n"
            f"generalization gap: {self.generalization_gap * 100:+.1f} points"
        )


def _build_sparse_dataset(
    densities: Sequence[float],
    *,
    shape_stride: int,
    device: Device,
    seed: int,
) -> PerformanceDataset:
    dense_shapes, _ = extract_dataset_shapes()
    base = dense_shapes[::shape_stride]
    sparse_shapes = sparsify(base, densities)
    model = SparseGemmPerfModel(device, seed=seed)
    runner = BenchmarkRunner(
        device,
        runner_config=RunnerConfig(timed_iterations=3, seed=seed),
        model=model,
    )
    return PerformanceDataset.from_benchmark(runner.run(sparse_shapes))


def run_sparse_generalization(
    *,
    densities: Sequence[float] = DEFAULT_DENSITIES,
    budget: int = 8,
    shape_stride: int = 3,
    split_seed: int = 0,
    random_state: int = 0,
    device: Optional[Device] = None,
    dataset: Optional[PerformanceDataset] = None,
) -> SparseGeneralization:
    """Run the experiment (see module docstring)."""
    if 1.0 not in densities:
        raise ValueError("densities must include 1.0 (the dense rows)")
    device = device or Device.r9_nano()
    if dataset is None:
        dataset = _build_sparse_dataset(
            densities, shape_stride=shape_stride, device=device, seed=2020
        )

    # Split by *base shape* so test rows are unseen at every density.
    bases = sorted({s.dense_equivalent().as_tuple() for s in dataset.shapes})
    order = np.arange(len(bases))
    rng_from(split_seed).shuffle(order)
    n_test = max(1, len(bases) // 5)
    test_bases = {bases[i] for i in order[:n_test]}

    def rows(predicate):
        return [
            i for i, s in enumerate(dataset.shapes) if predicate(s)
        ]

    is_test_base = lambda s: s.dense_equivalent().as_tuple() in test_bases
    train_all = dataset.subset(rows(lambda s: not is_test_base(s)))
    train_dense = dataset.subset(
        rows(lambda s: not is_test_base(s) and s.density >= 1.0)
    )
    test_sparse = dataset.subset(
        rows(lambda s: is_test_base(s) and s.density < 1.0)
    )

    pruner = DecisionTreePruner()
    results = {}
    for name, train in (("dense", train_dense), ("aware", train_all)):
        pruned = pruner.select(train, budget)
        selector = make_selector(
            "DecisionTree", pruned, random_state=random_state
        ).fit(train)
        evaluation = evaluate_selector(selector, test_sparse)
        results[name] = (pruned, selector, evaluation)

    aware_selector = results["aware"][1]
    per_density: Dict[float, float] = {}
    for density in densities:
        if density >= 1.0:
            continue
        sub_rows = [
            i
            for i, s in enumerate(test_sparse.shapes)
            if s.density == density
        ]
        sub = test_sparse.subset(sub_rows)
        per_density[float(density)] = evaluate_selector(
            aware_selector, sub
        ).score

    return SparseGeneralization(
        densities=tuple(float(d) for d in densities),
        budget=budget,
        ceiling_dense_trained=results["dense"][2].ceiling,
        ceiling_sparsity_aware=results["aware"][2].ceiling,
        score_dense_trained=results["dense"][2].score,
        score_sparsity_aware=results["aware"][2].score,
        per_density_scores=per_density,
        n_test_rows=test_sparse.n_shapes,
    )
