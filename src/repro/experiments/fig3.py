"""Figure 3: PCA explained-variance curve and the target kernel budget.

Paper: "The first 4 components account for over 80% of the variance, 8
components account for 90% and 15 account for 95%, and so we investigate
limiting the number of kernels between 4 and 15."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.dataset import PerformanceDataset, generate_dataset
from repro.core.pca_analysis import analyze_dataset
from repro.experiments.report import ascii_bars

__all__ = ["Fig3Result", "fig3_stage", "run_fig3"]


def fig3_stage(inputs, params, options) -> "Fig3Result":
    """Pipeline stage: Figure 3 from the shared dataset artifact."""
    return run_fig3(inputs["dataset"])


@dataclass(frozen=True)
class Fig3Result:
    """Explained-variance structure."""

    explained_variance_ratio: np.ndarray
    components_for_threshold: Dict[float, int]

    @property
    def suggested_budgets(self) -> Tuple[int, int]:
        values = sorted(self.components_for_threshold.values())
        return values[0], values[-1]

    def render(self, *, top: int = 16) -> str:
        ratios = self.explained_variance_ratio[:top]
        bars = ascii_bars(
            [f"PC{i + 1}" for i in range(len(ratios))],
            ratios * 100,
            title="Fig 3 - % variance per PCA component",
            fmt="{:.1f}%",
        )
        thresholds = "\n".join(
            f"components for {int(t * 100)}% variance: {k}"
            for t, k in sorted(self.components_for_threshold.items())
        )
        low, high = self.suggested_budgets
        return (
            f"{bars}\n\n{thresholds}\n"
            f"suggested configuration budget range: {low}..{high}"
        )


def run_fig3(
    dataset: Optional[PerformanceDataset] = None,
    *,
    thresholds: Tuple[float, ...] = (0.80, 0.90, 0.95),
) -> Fig3Result:
    """PCA over the normalized performance table."""
    dataset = dataset if dataset is not None else generate_dataset()
    analysis = analyze_dataset(dataset, thresholds=thresholds)
    return Fig3Result(
        explained_variance_ratio=analysis.explained_variance_ratio,
        components_for_threshold=analysis.components_for_threshold,
    )
