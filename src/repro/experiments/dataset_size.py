"""Extension experiment: does a larger dataset fix the generalisation gap?

The paper attributes Table I's classifier shortfall to dataset size:
"the models ... fail to generalize which would be mitigated with larger
datasets".  This experiment tests that claim:

* the real network shapes are split 80/20 as usual; the test split never
  grows;
* training sets of increasing size are built from the real training
  shapes plus synthetic shapes sampled from the same envelope
  (:mod:`repro.workloads.synthetic`);
* at each size, the standard pipeline (decision-tree pruning at budget 8,
  decision-tree selector) is retrained and scored on the fixed real test
  shapes.

If the paper's diagnosis is right, the score climbs toward the ceiling
as training data grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.bench.runner import BenchmarkRunner, RunnerConfig
from repro.core.dataset import PerformanceDataset
from repro.core.pruning.decision_tree import DecisionTreePruner
from repro.core.selection.classifiers import make_selector
from repro.core.selection.evaluate import evaluate_selector
from repro.experiments.report import ascii_table
from repro.sycl.device import Device
from repro.workloads.extract import extract_dataset_shapes
from repro.workloads.synthetic import random_gemm_shapes, shape_envelope

__all__ = ["DatasetSizeResult", "run_dataset_size"]

DEFAULT_SIZES: Tuple[int, ...] = (40, 80, 130, 260, 520)


@dataclass(frozen=True)
class DatasetSizeResult:
    """Selector quality as a function of training-set size."""

    budget: int
    #: {training shapes: (selector score, ceiling)} on the fixed test set.
    scores: Dict[int, Tuple[float, float]]
    n_test_shapes: int

    @property
    def smallest(self) -> Tuple[float, float]:
        return self.scores[min(self.scores)]

    @property
    def largest(self) -> Tuple[float, float]:
        return self.scores[max(self.scores)]

    @property
    def improvement(self) -> float:
        """Score gain from the smallest to the largest training set."""
        return self.largest[0] - self.smallest[0]

    def render(self) -> str:
        rows = [
            [size, f"{score * 100:.1f}", f"{ceiling * 100:.1f}",
             f"{(ceiling - score) * 100:.1f}"]
            for size, (score, ceiling) in sorted(self.scores.items())
        ]
        table = ascii_table(
            ["train shapes", "selector %", "ceiling %", "gap"],
            rows,
            title=(
                f"Dataset-size experiment (budget {self.budget}, "
                f"{self.n_test_shapes} fixed real test shapes)"
            ),
        )
        return (
            f"{table}\n"
            f"improvement small -> large: {self.improvement * 100:+.1f} points"
        )


def run_dataset_size(
    *,
    sizes: Sequence[int] = DEFAULT_SIZES,
    budget: int = 8,
    split_seed: int = 0,
    random_state: int = 0,
    device: Optional[Device] = None,
) -> DatasetSizeResult:
    """Run the sweep (see module docstring)."""
    if not sizes or any(s < budget for s in sizes):
        raise ValueError(f"sizes must all be >= budget, got {sizes!r}")
    device = device or Device.r9_nano()

    real_shapes, _ = extract_dataset_shapes()
    runner = BenchmarkRunner(
        device, runner_config=RunnerConfig(timed_iterations=3)
    )
    real = PerformanceDataset.from_benchmark(runner.run(real_shapes))
    train_real, test = real.split(test_size=0.2, random_state=split_seed)

    max_size = max(sizes)
    n_synth = max(0, max_size - train_real.n_shapes)
    if n_synth > 0:
        synth_shapes = random_gemm_shapes(
            n_synth,
            random_state=random_state,
            envelope=shape_envelope(real_shapes),
        )
        # Never collide with real shapes (test leakage).
        real_keys = {s.as_tuple() for s in real_shapes}
        synth_shapes = [s for s in synth_shapes if s.as_tuple() not in real_keys]
        synth = PerformanceDataset.from_benchmark(runner.run(synth_shapes))
        pool = PerformanceDataset(
            shapes=train_real.shapes + synth.shapes,
            configs=train_real.configs,
            gflops=np.vstack([train_real.gflops, synth.gflops]),
            device_name=train_real.device_name,
        )
    else:
        pool = train_real

    pruner = DecisionTreePruner()
    scores: Dict[int, Tuple[float, float]] = {}
    for size in sizes:
        size = int(min(size, pool.n_shapes))
        train = pool.subset(np.arange(size))
        pruned = pruner.select(train, budget)
        selector = make_selector(
            "DecisionTree", pruned, random_state=random_state
        ).fit(train)
        evaluation = evaluate_selector(selector, test)
        scores[size] = (evaluation.score, evaluation.ceiling)

    return DatasetSizeResult(
        budget=budget, scores=scores, n_test_shapes=test.n_shapes
    )
