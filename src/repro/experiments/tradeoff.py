"""Library size vs performance: the trade-off motivating the paper.

"Supporting many different kernel instantiations in these libraries adds
complexity and a cost in terms of library size and build times" — the
whole reason to prune.  This experiment sweeps the configuration budget
and reports, side by side, the achievable performance *and* the modelled
binary size of the resulting kernel library, exposing the knee where
extra kernels stop paying for their bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.dataset import PerformanceDataset, generate_dataset
from repro.core.pruning.base import Pruner
from repro.core.pruning.decision_tree import DecisionTreePruner
from repro.core.pruning.evaluate import achievable_performance
from repro.experiments.report import ascii_table
from repro.kernels.params import config_space
from repro.kernels.registry import KernelLibrary

__all__ = ["TradeoffResult", "run_tradeoff"]


@dataclass(frozen=True)
class TradeoffPoint:
    budget: int
    achievable: float
    binary_bytes: int
    compiled_templates: int


@dataclass(frozen=True)
class TradeoffResult:
    """Per-budget (performance, size) points plus the full-space anchor."""

    points: Tuple[TradeoffPoint, ...]
    full_library_bytes: int

    def knee_budget(self, *, min_gain_per_point: float = 0.002) -> int:
        """First budget where the next point's gain drops below the
        threshold (performance points per extra configuration)."""
        for a, b in zip(self.points, self.points[1:]):
            per_config = (b.achievable - a.achievable) / max(
                1, b.budget - a.budget
            )
            if per_config < min_gain_per_point:
                return a.budget
        return self.points[-1].budget

    def render(self) -> str:
        rows = [
            [
                p.budget,
                f"{p.achievable * 100:.1f}",
                f"{p.binary_bytes / 1024:.0f}",
                p.compiled_templates,
                f"{p.binary_bytes / self.full_library_bytes * 100:.1f}",
            ]
            for p in self.points
        ]
        table = ascii_table(
            ["budget", "achievable %", "KiB", "templates", "% of full lib"],
            rows,
            title=(
                "Library size vs performance "
                f"(full 640-config library: {self.full_library_bytes / 1024:.0f} KiB)"
            ),
        )
        return f"{table}\nknee (diminishing returns): budget {self.knee_budget()}"


def run_tradeoff(
    dataset: Optional[PerformanceDataset] = None,
    *,
    budgets: Sequence[int] = (2, 4, 6, 8, 12, 16, 24, 32),
    pruner: Optional[Pruner] = None,
    test_size: float = 0.2,
    split_seed: int = 0,
) -> TradeoffResult:
    """Sweep budgets, score on held-out shapes, account library bytes."""
    if not budgets:
        raise ValueError("at least one budget is required")
    dataset = dataset if dataset is not None else generate_dataset()
    pruner = pruner or DecisionTreePruner()
    train, test = dataset.split(test_size=test_size, random_state=split_seed)

    points = []
    for budget in sorted(int(b) for b in budgets):
        pruned = pruner.select(train, budget)
        library = KernelLibrary(pruned.configs)
        points.append(
            TradeoffPoint(
                budget=budget,
                achievable=achievable_performance(pruned, test),
                binary_bytes=library.binary_bytes,
                compiled_templates=library.num_compiled,
            )
        )
    full = KernelLibrary(config_space())
    return TradeoffResult(
        points=tuple(points), full_library_bytes=full.binary_bytes
    )
