"""Plain-text rendering helpers for figures and tables."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = ["ascii_bars", "ascii_series", "ascii_table"]


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """A monospace table with per-column width fitting."""
    rendered = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in rendered)) if rendered else len(str(h))
        for i, h in enumerate(headers)
    ]

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt([str(h) for h in headers]))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt(r) for r in rendered)
    return "\n".join(lines)


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 50,
    title: str = "",
    fmt: str = "{:.2f}",
) -> str:
    """A horizontal bar chart."""
    values = np.asarray(values, dtype=np.float64)
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    vmax = values.max() if len(values) else 1.0
    vmax = vmax if vmax > 0 else 1.0
    label_w = max((len(l) for l in labels), default=0)
    lines: List[str] = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(width * value / vmax)))
        lines.append(f"{label.rjust(label_w)} | {bar} {fmt.format(value)}")
    return "\n".join(lines)


def ascii_series(
    x: Sequence[float],
    series: dict,
    *,
    height: int = 16,
    width: Optional[int] = None,
    title: str = "",
    y_fmt: str = "{:5.1f}",
) -> str:
    """Several y-series over shared x values as a character plot.

    Each series gets a distinct marker; later series overwrite earlier
    ones on collisions (a legend maps markers to names).
    """
    markers = "*o+x#@%&"
    x = list(x)
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(
                f"series {name!r} has {len(ys)} points but x has {len(x)}"
            )
    if width is None:
        width = max(2 * len(x), 40)
    all_y = np.concatenate([np.asarray(v, dtype=np.float64) for v in series.values()])
    y_min, y_max = float(all_y.min()), float(all_y.max())
    if y_max == y_min:
        y_max = y_min + 1.0
    grid = [[" "] * width for _ in range(height)]

    def col(i: int) -> int:
        return int(round(i * (width - 1) / max(1, len(x) - 1)))

    def row(y: float) -> int:
        frac = (y - y_min) / (y_max - y_min)
        return height - 1 - int(round(frac * (height - 1)))

    legend = []
    for (name, ys), marker in zip(series.items(), markers):
        legend.append(f"{marker} = {name}")
        for i, y in enumerate(ys):
            grid[row(float(y))][col(i)] = marker

    lines: List[str] = [title] if title else []
    for r in range(height):
        y_val = y_max - r * (y_max - y_min) / (height - 1)
        axis = y_fmt.format(y_val)
        lines.append(f"{axis} |{''.join(grid[r])}")
    x_labels = "  ".join(str(v) for v in x)
    lines.append(" " * (len(y_fmt.format(0.0)) + 2) + x_labels)
    lines.append("legend: " + ", ".join(legend))
    return "\n".join(lines)
