"""Run every experiment and assemble the full reproduction report."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.core.dataset import PerformanceDataset, generate_dataset
from repro.experiments.fig1 import Fig1Result, run_fig1
from repro.experiments.fig2 import Fig2Result, run_fig2
from repro.experiments.fig3 import Fig3Result, run_fig3
from repro.experiments.fig4 import Fig4Result, run_fig4
from repro.experiments.table1 import Table1Result, run_table1

__all__ = ["AllResults", "run_all", "run_all_pipeline"]


@dataclass(frozen=True)
class AllResults:
    """Every experiment's result plus the dataset they share."""

    dataset: PerformanceDataset
    fig1: Fig1Result
    fig2: Fig2Result
    fig3: Fig3Result
    fig4: Fig4Result
    table1: Table1Result

    def render(self) -> str:
        sections = [
            f"Reproduction report - dataset: {self.dataset!r}",
            self.fig1.render(),
            self.fig2.render(),
            self.fig3.render(),
            self.fig4.render(),
            self.table1.render(),
        ]
        rule = "\n\n" + "=" * 72 + "\n\n"
        return rule.join(sections)


def run_all(
    dataset: Optional[PerformanceDataset] = None,
    *,
    cache_path: Optional[Union[str, Path]] = None,
    split_seed: int = 0,
) -> AllResults:
    """Regenerate every figure and table from one shared dataset."""
    if dataset is None:
        dataset = generate_dataset(cache_path=cache_path)
    return AllResults(
        dataset=dataset,
        fig1=run_fig1(dataset),
        fig2=run_fig2(dataset),
        fig3=run_fig3(dataset),
        fig4=run_fig4(dataset, split_seed=split_seed),
        table1=run_table1(dataset, split_seed=split_seed),
    )


def run_all_pipeline(store, config=None, *, max_workers: int = 1):
    """Every experiment via the staged pipeline, reusing cached artifacts.

    ``store`` is a :class:`~repro.pipeline.store.ArtifactStore`;
    ``config`` a :class:`~repro.pipeline.paper.PaperPipelineConfig`.
    Returns ``(AllResults, PipelineRun)`` — the same report as
    :func:`run_all` plus the per-stage cache/runtime account.  Results
    are bit-identical to the direct path for the same parameters.
    """
    from repro.pipeline.paper import run_paper_pipeline

    run = run_paper_pipeline(store, config, max_workers=max_workers)
    results = AllResults(
        dataset=run.value("dataset"),
        fig1=run.value("fig1"),
        fig2=run.value("fig2"),
        fig3=run.value("fig3"),
        fig4=run.value("fig4"),
        table1=run.value("table1"),
    )
    return results, run
