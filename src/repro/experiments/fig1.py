"""Figure 1: normalized performance of every configuration on every shape.

The paper plots all 640 configurations (sorted by mean performance)
against all shapes, highlighting three regimes: configurations bad
everywhere (left), good on average but not universally (right), and niche
specialists in the middle.  The result object captures the sorted
distribution statistics that make those regimes quantifiable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.dataset import PerformanceDataset, generate_dataset
from repro.experiments.report import ascii_series, ascii_table

__all__ = ["Fig1Result", "fig1_stage", "run_fig1"]


def fig1_stage(inputs, params, options) -> "Fig1Result":
    """Pipeline stage: Figure 1 from the shared dataset artifact."""
    return run_fig1(inputs["dataset"])


@dataclass(frozen=True)
class Fig1Result:
    """Sorted per-configuration performance distribution."""

    #: Config order by increasing mean normalized performance.
    order: np.ndarray
    #: (n_configs,) mean normalized performance, sorted ascending.
    mean_sorted: np.ndarray
    #: (n_configs,) max over shapes, in the same order.
    max_sorted: np.ndarray
    #: (n_configs,) min over shapes, in the same order.
    min_sorted: np.ndarray
    #: Configs whose best-anywhere performance stays below 30%.
    n_never_above_30pct: int
    #: Configs with below-median mean that are optimal somewhere (the
    #: paper's "perform poorly on the majority ... well on a small number
    #: of specific matrix sizes").
    n_niche_specialists: int

    def render(self) -> str:
        idx = np.linspace(0, len(self.mean_sorted) - 1, 9).astype(int)
        table = ascii_table(
            ["config rank", "mean", "min", "max"],
            [
                [int(i), f"{self.mean_sorted[i]:.3f}", f"{self.min_sorted[i]:.3f}",
                 f"{self.max_sorted[i]:.3f}"]
                for i in idx
            ],
            title="Fig 1 - normalized performance by config (sorted by mean)",
        )
        downsample = np.linspace(0, len(self.mean_sorted) - 1, 16).astype(int)
        plot = ascii_series(
            [int(i) for i in downsample],
            {
                "mean": self.mean_sorted[downsample],
                "max": self.max_sorted[downsample],
                "min": self.min_sorted[downsample],
            },
            title="distribution across shapes (x: config rank)",
            height=12,
        )
        stats = (
            f"configs never above 30% anywhere: {self.n_never_above_30pct}\n"
            f"below-median configs optimal somewhere: {self.n_niche_specialists}"
        )
        return "\n\n".join([table, plot, stats])


def run_fig1(dataset: Optional[PerformanceDataset] = None) -> Fig1Result:
    """Compute Figure 1's distribution from a dataset (generated if absent)."""
    dataset = dataset if dataset is not None else generate_dataset()
    normalized = dataset.normalized()
    mean = normalized.mean(axis=0)
    order = np.argsort(mean, kind="stable")
    cmax = normalized.max(axis=0)[order]
    cmin = normalized.min(axis=0)[order]
    best_idx = set(dataset.best_config_indices().tolist())
    median_mean = float(np.median(mean))
    niche = sum(
        1 for c in best_idx if mean[c] < median_mean
    )
    return Fig1Result(
        order=order,
        mean_sorted=mean[order],
        max_sorted=cmax,
        min_sorted=cmin,
        n_never_above_30pct=int(np.sum(cmax < 0.30)),
        n_niche_specialists=int(niche),
    )
