"""Figure 2: how often each configuration achieves optimal performance.

The paper's headline numbers: one configuration is best in 32 of 170
cases (more than 3x the runner-up), yet 58 distinct configurations are
optimal at least once — the long tail that motivates learned pruning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.dataset import PerformanceDataset, generate_dataset
from repro.experiments.report import ascii_bars
from repro.kernels.params import KernelConfig

__all__ = ["Fig2Result", "fig2_stage", "run_fig2"]


def fig2_stage(inputs, params, options) -> "Fig2Result":
    """Pipeline stage: Figure 2 from the shared dataset artifact."""
    return run_fig2(inputs["dataset"])


@dataclass(frozen=True)
class Fig2Result:
    """Win-count distribution over configurations."""

    #: (config, wins) for every configuration that wins at least once,
    #: sorted by decreasing wins.
    winners: Tuple[Tuple[KernelConfig, int], ...]
    n_shapes: int

    @property
    def n_distinct_winners(self) -> int:
        return len(self.winners)

    @property
    def top_winner(self) -> Tuple[KernelConfig, int]:
        return self.winners[0]

    @property
    def dominance_ratio(self) -> float:
        """Top winner's count over the runner-up's."""
        if len(self.winners) < 2:
            return float("inf")
        return self.winners[0][1] / self.winners[1][1]

    def render(self, *, top: int = 15) -> str:
        head = self.winners[:top]
        bars = ascii_bars(
            [c.short_name() for c, _ in head],
            [w for _, w in head],
            title=(
                f"Fig 2 - optimal-configuration win counts "
                f"(top {len(head)} of {self.n_distinct_winners} winners, "
                f"{self.n_shapes} shapes)"
            ),
            fmt="{:.0f}",
        )
        tail = (
            f"distinct winning configurations: {self.n_distinct_winners}\n"
            f"dominance ratio (best vs runner-up): {self.dominance_ratio:.2f}x"
        )
        return bars + "\n\n" + tail


def run_fig2(dataset: Optional[PerformanceDataset] = None) -> Fig2Result:
    """Count optimal configurations per shape."""
    dataset = dataset if dataset is not None else generate_dataset()
    wins = dataset.win_counts()
    nonzero = np.nonzero(wins)[0]
    order = nonzero[np.argsort(wins[nonzero], kind="stable")[::-1]]
    winners = tuple((dataset.configs[i], int(wins[i])) for i in order)
    return Fig2Result(winners=winners, n_shapes=dataset.n_shapes)
