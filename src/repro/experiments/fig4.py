"""Figure 4: achievable performance of each pruning technique vs budget.

Reproduces Section III.A's experiment: split the dataset 80/20, prune on
the training shapes at budgets 4..15, and score each technique by the
geometric-mean best-in-set performance on the held-out shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple


from repro.core.dataset import PerformanceDataset, generate_dataset
from repro.core.pruning import default_pruners, sweep_pruners
from repro.experiments.report import ascii_series, ascii_table

__all__ = ["Fig4Result", "fig4_stage", "run_fig4"]

DEFAULT_BUDGETS: Tuple[int, ...] = tuple(range(4, 16))


def fig4_stage(inputs, params, options) -> "Fig4Result":
    """Pipeline stage: the pruning sweep on the shared dataset.

    Parameters: ``budgets``, ``test_size``, ``split_seed`` and
    ``random_state`` — matching :func:`run_fig4`'s signature so pipeline
    output is bit-identical to the direct path.
    """
    return run_fig4(
        inputs["dataset"],
        budgets=tuple(params.get("budgets", DEFAULT_BUDGETS)),
        test_size=params.get("test_size", 0.2),
        split_seed=params.get("split_seed", 0),
        random_state=params.get("random_state", 0),
    )


@dataclass(frozen=True)
class Fig4Result:
    """Scores per technique per budget, plus the headline comparisons."""

    budgets: Tuple[int, ...]
    #: {technique: {budget: score in (0, 1]}}
    scores: Dict[str, Dict[int, float]]
    train_shapes: int
    test_shapes: int

    def best_technique(self, budget: int) -> str:
        return max(self.scores, key=lambda m: self.scores[m][budget])

    def best_score(self) -> Tuple[str, int, float]:
        """(technique, budget, score) of the overall best cell."""
        best = max(
            (
                (score, name, budget)
                for name, per_budget in self.scores.items()
                for budget, score in per_budget.items()
            )
        )
        return best[1], best[2], best[0]

    def naive_vs_clustering_gap(self, budget: int) -> float:
        """Best clustering score minus the naive top-n score at a budget."""
        clustering = max(
            score
            for name, per_budget in self.scores.items()
            if name != "top-n"
            for b, score in per_budget.items()
            if b == budget
        )
        return clustering - self.scores["top-n"][budget]

    def render(self) -> str:
        headers = ["technique"] + [str(b) for b in self.budgets]
        rows = [
            [name] + [f"{per_budget[b] * 100:.1f}" for b in self.budgets]
            for name, per_budget in self.scores.items()
        ]
        table = ascii_table(
            headers,
            rows,
            title=(
                "Fig 4 - achievable % of optimal performance on the test set "
                f"({self.train_shapes} train / {self.test_shapes} test shapes)"
            ),
        )
        plot = ascii_series(
            list(self.budgets),
            {
                name: [per_budget[b] * 100 for b in self.budgets]
                for name, per_budget in self.scores.items()
            },
            title="test-set achievable performance (%) vs configuration budget",
        )
        tech, budget, score = self.best_score()
        return (
            f"{table}\n\n{plot}\n\n"
            f"best cell: {tech} at {budget} configs -> {score * 100:.1f}%"
        )


def run_fig4(
    dataset: Optional[PerformanceDataset] = None,
    *,
    budgets: Sequence[int] = DEFAULT_BUDGETS,
    test_size: float = 0.2,
    split_seed: int = 0,
    split_seeds: Optional[Sequence[int]] = None,
    random_state: int = 0,
) -> Fig4Result:
    """Run the pruning sweep.

    The paper evaluates on a single random split (``split_seed``); with 34
    test shapes the method *ranking* is noisy, so ``split_seeds`` can
    average the sweep over several splits (used by the integration tests
    and EXPERIMENTS.md's multi-seed table).
    """
    dataset = dataset if dataset is not None else generate_dataset()
    seeds = tuple(split_seeds) if split_seeds is not None else (split_seed,)
    if not seeds:
        raise ValueError("at least one split seed is required")

    accumulated: Dict[str, Dict[int, float]] = {}
    train_shapes = test_shapes = 0
    for seed in seeds:
        train, test = dataset.split(test_size=test_size, random_state=seed)
        train_shapes, test_shapes = train.n_shapes, test.n_shapes
        scores = sweep_pruners(
            train,
            test,
            budgets=budgets,
            pruners=default_pruners(random_state=random_state),
        )
        for name, per_budget in scores.items():
            acc = accumulated.setdefault(name, {b: 0.0 for b in per_budget})
            for budget, value in per_budget.items():
                acc[budget] += value / len(seeds)
    return Fig4Result(
        budgets=tuple(int(b) for b in budgets),
        scores=accumulated,
        train_shapes=train_shapes,
        test_shapes=test_shapes,
    )
