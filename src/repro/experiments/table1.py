"""Table I: runtime-classifier performance at budgets {5, 6, 8, 15}.

The pruned sets come from the decision-tree pruner (the paper's best
technique); each classifier is trained on the training split's
best-in-set labels and scored against the absolute optimum on the test
split.  The table caption's "maximum achievable performance" row is the
pruned sets' ceilings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.dataset import PerformanceDataset, generate_dataset
from repro.core.pruning.decision_tree import DecisionTreePruner
from repro.core.selection.classifiers import TABLE1_CLASSIFIERS
from repro.core.selection.evaluate import SelectorEvaluation, sweep_selectors
from repro.experiments.report import ascii_table

__all__ = ["Table1Result", "run_table1", "table1_stage"]

DEFAULT_BUDGETS: Tuple[int, ...] = (5, 6, 8, 15)


def table1_stage(inputs, params, options) -> "Table1Result":
    """Pipeline stage: the classifier sweep on the shared dataset."""
    return run_table1(
        inputs["dataset"],
        budgets=tuple(params.get("budgets", DEFAULT_BUDGETS)),
        test_size=params.get("test_size", 0.2),
        split_seed=params.get("split_seed", 0),
        random_state=params.get("random_state", 0),
    )


@dataclass(frozen=True)
class Table1Result:
    """All evaluations, keyed by budget then classifier order."""

    budgets: Tuple[int, ...]
    evaluations: Dict[int, List[SelectorEvaluation]]

    def score(self, classifier: str, budget: int) -> float:
        for ev in self.evaluations[budget]:
            if ev.classifier == classifier:
                return ev.score
        raise KeyError(f"no evaluation for {classifier!r} at {budget}")

    def ceiling(self, budget: int) -> float:
        return self.evaluations[budget][0].ceiling

    def best_classifier(self, budget: int) -> str:
        return max(
            self.evaluations[budget], key=lambda ev: ev.score
        ).classifier

    def render(self) -> str:
        headers = ["Classifier"] + [str(b) for b in self.budgets]
        rows = [
            ["(ceiling)"]
            + [f"{self.ceiling(b) * 100:.2f}" for b in self.budgets]
        ]
        for name in TABLE1_CLASSIFIERS:
            rows.append(
                [name]
                + [f"{self.score(name, b) * 100:.2f}" for b in self.budgets]
            )
        return ascii_table(
            headers,
            rows,
            title=(
                "Table I - classifier performance (% of absolute optimal) "
                "for decision-tree-pruned configuration sets"
            ),
        )


def run_table1(
    dataset: Optional[PerformanceDataset] = None,
    *,
    budgets: Sequence[int] = DEFAULT_BUDGETS,
    test_size: float = 0.2,
    split_seed: int = 0,
    random_state: int = 0,
) -> Table1Result:
    """Run the classifier sweep on a fresh train/test split."""
    dataset = dataset if dataset is not None else generate_dataset()
    train, test = dataset.split(test_size=test_size, random_state=split_seed)
    evaluations = sweep_selectors(
        train,
        test,
        DecisionTreePruner(),
        budgets=budgets,
        random_state=random_state,
    )
    return Table1Result(
        budgets=tuple(int(b) for b in budgets), evaluations=evaluations
    )
