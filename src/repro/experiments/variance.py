"""Split-seed sensitivity: how stable are the paper's conclusions?

The paper evaluates on a single random 136/34 split.  With 34 test
shapes, individual percentages carry meaningful variance; this experiment
repeats Figure 4 and the Table I headline cells across many splits and
reports mean +/- standard deviation, separating conclusions that are
robust (clustering beats naive at small budgets; classifiers sit below
the ceiling) from those that are split luck (exact per-budget rankings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import PerformanceDataset, generate_dataset
from repro.core.pruning import default_pruners, sweep_pruners
from repro.core.pruning.decision_tree import DecisionTreePruner
from repro.core.selection.classifiers import make_selector
from repro.core.selection.evaluate import evaluate_selector
from repro.experiments.report import ascii_table

__all__ = ["VarianceResult", "run_variance"]


@dataclass(frozen=True)
class VarianceResult:
    """Mean and standard deviation per method/budget over split seeds."""

    seeds: Tuple[int, ...]
    budgets: Tuple[int, ...]
    #: {method: {budget: (mean, std)}} for the Fig 4 pruning sweep.
    pruning: Dict[str, Dict[int, Tuple[float, float]]]
    #: {classifier: (mean, std)} for the Table I selectors at one budget.
    selection: Dict[str, Tuple[float, float]]
    selection_budget: int

    def robust_winner(self, budget: int) -> Optional[str]:
        """The method whose mean beats every other by > 1 pooled std, or
        ``None`` when the ranking is within noise."""
        means = {m: v[budget][0] for m, v in self.pruning.items()}
        stds = {m: v[budget][1] for m, v in self.pruning.items()}
        best = max(means, key=means.get)
        for method, mean in means.items():
            if method == best:
                continue
            pooled = float(np.hypot(stds[best], stds[method]))
            if means[best] - mean <= pooled:
                return None
        return best

    def render(self) -> str:
        rows = []
        for method, per_budget in self.pruning.items():
            cells = [method]
            for budget in self.budgets:
                mean, std = per_budget[budget]
                cells.append(f"{mean * 100:.1f}+/-{std * 100:.1f}")
            rows.append(cells)
        pruning_table = ascii_table(
            ["technique"] + [str(b) for b in self.budgets],
            rows,
            title=(
                f"Fig 4 across {len(self.seeds)} splits "
                "(achievable %, mean +/- std)"
            ),
        )
        sel_rows = [
            [name, f"{mean * 100:.1f}+/-{std * 100:.1f}"]
            for name, (mean, std) in self.selection.items()
        ]
        selection_table = ascii_table(
            ["classifier", f"score % @ {self.selection_budget}"],
            sel_rows,
            title=f"Table I selectors across {len(self.seeds)} splits",
        )
        return pruning_table + "\n\n" + selection_table


def run_variance(
    dataset: Optional[PerformanceDataset] = None,
    *,
    seeds: Sequence[int] = tuple(range(8)),
    budgets: Sequence[int] = (4, 6, 8, 15),
    selection_budget: int = 8,
    classifiers: Sequence[str] = ("DecisionTree", "RandomForest", "RadialSVM"),
    random_state: int = 0,
) -> VarianceResult:
    """Repeat the headline experiments over ``seeds`` splits."""
    if not seeds:
        raise ValueError("at least one seed is required")
    dataset = dataset if dataset is not None else generate_dataset()

    pruning_samples: Dict[str, Dict[int, list]] = {}
    selection_samples: Dict[str, list] = {name: [] for name in classifiers}
    for seed in seeds:
        train, test = dataset.split(test_size=0.2, random_state=seed)
        sweep = sweep_pruners(
            train,
            test,
            budgets=budgets,
            pruners=default_pruners(random_state=random_state),
        )
        for method, per_budget in sweep.items():
            dest = pruning_samples.setdefault(method, {b: [] for b in per_budget})
            for budget, value in per_budget.items():
                dest[budget].append(value)

        pruned = DecisionTreePruner().select(train, selection_budget)
        for name in classifiers:
            selector = make_selector(name, pruned, random_state=random_state)
            selector.fit(train)
            selection_samples[name].append(
                evaluate_selector(selector, test).score
            )

    pruning = {
        method: {
            budget: (float(np.mean(vals)), float(np.std(vals)))
            for budget, vals in per_budget.items()
        }
        for method, per_budget in pruning_samples.items()
    }
    selection = {
        name: (float(np.mean(vals)), float(np.std(vals)))
        for name, vals in selection_samples.items()
    }
    return VarianceResult(
        seeds=tuple(int(s) for s in seeds),
        budgets=tuple(int(b) for b in budgets),
        pruning=pruning,
        selection=selection,
        selection_budget=selection_budget,
    )
