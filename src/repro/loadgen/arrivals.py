"""Arrival processes for the load harness.

Traffic against a production selection service is bursty on two
timescales: request-level randomness (Poisson interarrivals) and slow
capacity swings (diurnal ramps).  :class:`RateProfile` models the slow
component as a sinusoid around a base rate; :func:`poisson_arrivals`
draws a non-homogeneous Poisson process against it by thinning, so the
generated schedule carries both.

Everything here is deterministic given the seed — the harness, the CI
smoke run and the tests all replay identical schedules.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List

__all__ = ["RateProfile", "poisson_arrivals"]


@dataclass(frozen=True)
class RateProfile:
    """A sinusoidal diurnal rate: QPS as a function of elapsed seconds.

    ``base_qps`` is the mean rate; ``amplitude`` (0..1) the relative
    swing; ``period_s`` one full day-night cycle.  The phase puts the
    trough at ``t = 0`` and the peak at ``t = period_s / 2``, so a run
    shorter than one period sees a ramp-up — the harder regime for a
    cache-fronted service (cold cache meets rising load).
    """

    base_qps: float
    amplitude: float = 0.0
    period_s: float = 60.0

    def __post_init__(self) -> None:
        if self.base_qps <= 0:
            raise ValueError(f"base_qps must be > 0, got {self.base_qps}")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(
                f"amplitude must be in [0, 1), got {self.amplitude}"
            )
        if self.period_s <= 0:
            raise ValueError(f"period_s must be > 0, got {self.period_s}")

    def qps(self, t: float) -> float:
        """Instantaneous rate at ``t`` seconds into the run."""
        phase = 2.0 * math.pi * t / self.period_s - 0.5 * math.pi
        return self.base_qps * (1.0 + self.amplitude * math.sin(phase))

    @property
    def peak_qps(self) -> float:
        """The profile's maximum instantaneous rate."""
        return self.base_qps * (1.0 + self.amplitude)


def poisson_arrivals(
    profile: RateProfile, duration_s: float, *, seed: int = 0
) -> List[float]:
    """Arrival offsets (seconds) of a thinned non-homogeneous Poisson draw.

    Candidate arrivals are drawn at the profile's peak rate with
    exponential gaps, then each kept with probability
    ``qps(t) / peak_qps`` — the standard thinning construction, exact
    for any bounded rate function.  Offsets are strictly within
    ``[0, duration_s)`` and ascending.
    """
    if duration_s <= 0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    rng = random.Random(seed)
    peak = profile.peak_qps
    arrivals: List[float] = []
    t = rng.expovariate(peak)
    while t < duration_s:
        if rng.random() * peak <= profile.qps(t):
            arrivals.append(t)
        t += rng.expovariate(peak)
    return arrivals
