"""Query-shape streams for the load harness.

Selection traffic is not uniform over a network's GEMM shapes: a
handful of layer shapes dominate (every image batch replays them) while
augmentation/head shapes form a long tail.  :class:`ShapeStream` models
this with a Zipf-skewed draw over a replayed shape pool built from the
same VGG/ResNet/MobileNet lowerings the dataset is generated from
(:func:`repro.workloads.extract.extract_network_shapes`), so the
harness queries exactly the shape population the paper's selectors are
trained to serve.

Deterministic given the seed, like everything else in the harness.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import List, Optional, Sequence, Tuple

from repro.workloads.extract import extract_network_shapes
from repro.workloads.gemm import GemmShape
from repro.workloads.placement import place_shapes

__all__ = ["DEFAULT_NETWORKS", "ShapeStream", "network_shape_pool"]

#: The paper's three networks, replayed in publication order.
DEFAULT_NETWORKS: Tuple[str, ...] = ("vgg16", "resnet50", "mobilenet_v2")


def network_shape_pool(
    networks: Sequence[str] = DEFAULT_NETWORKS,
    *,
    placements: Optional[Sequence[str]] = None,
) -> Tuple[GemmShape, ...]:
    """The concatenated unique GEMM shapes of the given networks.

    Per-network order is the deterministic extraction order; a shape
    lowered by several networks appears once (first network wins), so
    Zipf ranks are stable across runs.  With ``placements`` set (e.g.
    ``("device", "host")``), the pool is crossed with the given data
    residencies so the stream exercises transfer-aware selection.
    """
    pool: List[GemmShape] = []
    seen = set()
    for name in networks:
        for shape in extract_network_shapes(name).shapes:
            key = shape.as_tuple()
            if key not in seen:
                seen.add(key)
                pool.append(shape)
    if not pool:
        raise ValueError(f"no shapes extracted from networks {list(networks)!r}")
    if placements:
        return tuple(place_shapes(pool, placements))
    return tuple(pool)


class ShapeStream:
    """A deterministic Zipf-skewed stream of query shapes.

    Rank ``r`` (0-based position in the pool) is drawn with probability
    proportional to ``1 / (r + 1) ** skew``: ``skew=0`` is uniform,
    ``skew≈1`` the classic hot-key regime where a few shapes take most
    of the traffic.  Draws use inverse-CDF sampling over the
    precomputed cumulative weights — O(log n) per draw, no NumPy on the
    load path.
    """

    def __init__(
        self,
        pool: Sequence[GemmShape],
        *,
        skew: float = 1.1,
        seed: int = 0,
    ):
        if not pool:
            raise ValueError("shape pool must be non-empty")
        if skew < 0:
            raise ValueError(f"skew must be >= 0, got {skew}")
        self._pool: Tuple[GemmShape, ...] = tuple(pool)
        self._skew = skew
        self._rng = random.Random(seed)
        cumulative: List[float] = []
        total = 0.0
        for rank in range(len(self._pool)):
            total += 1.0 / float(rank + 1) ** skew
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total

    @property
    def pool(self) -> Tuple[GemmShape, ...]:
        return self._pool

    @property
    def skew(self) -> float:
        return self._skew

    def draw(self) -> GemmShape:
        """One shape, Zipf-weighted over the pool ranks."""
        target = self._rng.random() * self._total
        return self._pool[bisect_left(self._cumulative, target)]

    def take(self, n: int) -> List[GemmShape]:
        """The next ``n`` shapes of the stream."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        return [self.draw() for _ in range(n)]

    def __repr__(self) -> str:
        return (
            f"ShapeStream({len(self._pool)} shapes, skew={self._skew}, "
            f"hottest={self._pool[0]})"
        )
