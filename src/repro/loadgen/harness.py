"""The closed-loop load harness: scheduled arrivals driving a fleet.

:func:`run_load` replays a precomputed Poisson/diurnal arrival schedule
(:mod:`repro.loadgen.arrivals`) with a Zipf-skewed network shape stream
(:mod:`repro.loadgen.workload`) against a
:class:`~repro.serving.router.FleetRouter` from a pool of worker
threads.  Each worker owns a strided slice of the schedule, sleeps
until each arrival is due (recording lateness when the generator cannot
keep up), issues ``router.select`` and retires the request with
``router.complete`` — so the ``least-outstanding`` policy sees real
in-flight load.  Latency goes straight into ``loadgen.request_seconds``
in the shared obs registry; the report reads p50/p99/p999 back out of
the histograms rather than keeping per-request samples.

Two hooks support the drift/adaptive scenarios
(:mod:`repro.loadgen.drift`): ``on_request`` observes every completed
request with its global schedule index and due time, and
``LoadgenConfig.pace=False`` replays the schedule as fast as possible
(due times become virtual time — deterministic drift phases without
wall-clock sleeps).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.loadgen.arrivals import RateProfile, poisson_arrivals
from repro.loadgen.report import (
    LoadReport,
    QuantileSummary,
    WorkerLoad,
    merged_quantiles,
)
from repro.loadgen.workload import DEFAULT_NETWORKS, ShapeStream, network_shape_pool
from repro.obs.registry import MetricsRegistry
from repro.serving.router import FleetRouter, RoutedDecision
from repro.workloads.gemm import GemmShape

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.adaptive.bandit import AdaptiveConfig
    from repro.core.deploy import DeployedSelector

__all__ = [
    "LoadgenConfig",
    "SyntheticFleet",
    "run_load",
    "synthetic_deployed",
    "synthetic_fleet",
    "synthetic_router",
]

#: A worker this far behind schedule counts the arrival as late.
_LATE_TOLERANCE_S = 1e-3

#: Observes (schedule index, due seconds, shape, routed decision) after
#: each completed request — the feedback tap for adaptive scenarios.
RequestHook = Callable[[int, float, GemmShape, RoutedDecision], None]


@dataclass(frozen=True)
class LoadgenConfig:
    """One load run: how much traffic, shaped how, served by whom."""

    profile: RateProfile = field(
        default_factory=lambda: RateProfile(base_qps=1000.0)
    )
    duration_s: float = 5.0
    workers: int = 4
    networks: Tuple[str, ...] = DEFAULT_NETWORKS
    zipf_skew: float = 1.1
    seed: int = 0
    #: Routing policy per request; None uses the router's default.
    routing_policy: Optional[str] = None
    #: False replays the schedule flat-out: no sleeping, no lateness —
    #: due times act as virtual time (deterministic drift phases).
    pace: bool = True

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be > 0, got {self.duration_s}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")


class _Worker(threading.Thread):
    """One generator thread: a strided slice of the arrival schedule."""

    def __init__(
        self,
        router: FleetRouter,
        work: List[Tuple[int, float, GemmShape]],
        policy: Optional[str],
        barrier: threading.Barrier,
        h_request,
        pace: bool,
        on_request: Optional[RequestHook],
    ):
        super().__init__(daemon=True)
        self._router = router
        self._work = work
        self._policy = policy
        self._barrier = barrier
        self._h_request = h_request
        self._pace = pace
        self._on_request = on_request
        self.completed = 0
        self.late = 0
        self.rerouted = 0
        self.dispatched: Dict[str, int] = {}
        self.start_s = 0.0
        self.end_s = 0.0
        self.error: Optional[BaseException] = None

    def run(self) -> None:  # pragma: no cover - exercised via run_load
        try:
            self._run()
        except BaseException as exc:
            self.error = exc

    def _run(self) -> None:
        router = self._router
        observe = self._h_request.observe
        policy = self._policy
        pace = self._pace
        on_request = self._on_request
        self._barrier.wait()
        t0 = time.perf_counter()
        self.start_s = t0
        for index, due, shape in self._work:
            if pace:
                now = time.perf_counter() - t0
                wait = due - now
                if wait > 0:
                    time.sleep(wait)
                elif -wait > _LATE_TOLERANCE_S:
                    self.late += 1
            begin = time.perf_counter()
            decision = router.select(shape, policy=policy)
            observe(time.perf_counter() - begin)
            device = decision.device_id
            self.dispatched[device] = self.dispatched.get(device, 0) + 1
            if decision.rerouted:
                self.rerouted += 1
            router.complete(device)
            if on_request is not None:
                on_request(index, due, shape, decision)
            self.completed += 1
        self.end_s = time.perf_counter()


def run_load(
    router: FleetRouter,
    config: LoadgenConfig,
    *,
    registry: Optional[MetricsRegistry] = None,
    on_request: Optional[RequestHook] = None,
) -> LoadReport:
    """Run one load scenario against a routed fleet; returns the report.

    ``registry`` is where the generator's own metrics go and where the
    service-side ``serving.lookup_seconds`` histograms are read back
    from — pass the registry the fleet's services share (defaults to
    the router's).  ``on_request`` is called after every completed
    request with ``(schedule index, due seconds, shape, decision)``;
    exceptions it raises abort the run.
    """
    registry = registry if registry is not None else router.registry
    h_request = registry.histogram("loadgen.request_seconds")
    c_requests = registry.counter("loadgen.requests")
    c_late = registry.counter("loadgen.late_arrivals")

    arrivals = poisson_arrivals(
        config.profile, config.duration_s, seed=config.seed
    )
    stream = ShapeStream(
        network_shape_pool(config.networks),
        skew=config.zipf_skew,
        seed=config.seed + 1,
    )
    shapes = stream.take(len(arrivals))
    schedule = [
        (index, due, shape)
        for index, (due, shape) in enumerate(zip(arrivals, shapes))
    ]

    n_workers = min(config.workers, max(1, len(schedule)))
    barrier = threading.Barrier(n_workers)
    workers = [
        _Worker(router, schedule[i::n_workers], config.routing_policy,
                barrier, h_request, config.pace, on_request)
        for i in range(n_workers)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    for worker in workers:
        if worker.error is not None:
            raise worker.error

    completed = sum(w.completed for w in workers)
    late = sum(w.late for w in workers)
    rerouted = sum(w.rerouted for w in workers)
    dispatched: Dict[str, int] = {}
    for worker in workers:
        for device, count in worker.dispatched.items():
            dispatched[device] = dispatched.get(device, 0) + count
    c_requests.inc(completed)
    c_late.inc(late)

    if schedule:
        wall = max(w.end_s for w in workers) - min(w.start_s for w in workers)
    else:
        wall = 0.0
    per_worker = tuple(
        WorkerLoad(
            worker=i,
            offered=len(w._work),
            completed=w.completed,
            late=w.late,
            offered_qps=len(w._work) / config.duration_s,
            achieved_qps=(
                w.completed / (w.end_s - w.start_s)
                if w.end_s > w.start_s
                else 0.0
            ),
        )
        for i, w in enumerate(workers)
    )
    return LoadReport(
        duration_s=config.duration_s,
        wall_s=wall,
        offered=len(schedule),
        completed=completed,
        late=late,
        achieved_qps=completed / wall if wall > 0 else 0.0,
        request_latency=QuantileSummary.from_histogram(h_request),
        lookup_latency=merged_quantiles(registry, "serving.lookup_seconds"),
        dispatched=dispatched,
        rerouted=rerouted,
        paced=config.pace,
        workers=per_worker,
    )


@dataclass(frozen=True)
class SyntheticFleet:
    """A synthetic replica fleet plus the pieces drift scenarios need.

    ``services`` maps device ids to the objects registered with the
    router — plain :class:`~repro.serving.SelectionService` instances,
    or :class:`~repro.serving.adaptive.AdaptiveSelectionService`
    wrappers when built with ``adaptive=``.
    """

    router: FleetRouter
    deployed: "DeployedSelector"
    services: Dict[str, object]
    registry: MetricsRegistry


def synthetic_deployed(
    *, budget: int = 4, seed: int = 0
) -> "DeployedSelector":
    """A tuned selector over synthetic measurements — sub-second setup.

    Generates a reduced performance dataset (small configuration space
    over every 7th network shape) and tunes a decision-tree
    :class:`~repro.core.deploy.DeployedSelector` on it.  The common
    fixture behind :func:`synthetic_fleet` and the process-parallel
    shard demos (:class:`~repro.shard.ShardedFleet.from_deployed`).
    """
    from repro.bench.runner import BenchmarkRunner, RunnerConfig
    from repro.core.dataset import PerformanceDataset
    from repro.core.deploy import tune
    from repro.kernels.params import config_space
    from repro.sycl.device import Device
    from repro.workloads.extract import extract_dataset_shapes

    configs = config_space(
        tile_sizes=(1, 2, 4),
        work_groups=((8, 8), (1, 64), (16, 16), (64, 1)),
    )
    all_shapes, _ = extract_dataset_shapes()
    runner = BenchmarkRunner(
        Device.r9_nano(),
        configs=configs,
        runner_config=RunnerConfig(
            warmup_iterations=1, timed_iterations=3, seed=seed
        ),
    )
    dataset = PerformanceDataset.from_benchmark(runner.run(all_shapes[::7]))
    return tune(dataset, n_configs=budget, random_state=seed)


def synthetic_fleet(
    *,
    replicas: int = 2,
    registry: Optional[MetricsRegistry] = None,
    routing_policy: str = "round-robin",
    cache_capacity: int = 4096,
    budget: int = 4,
    seed: int = 0,
    compiled: bool = False,
    adaptive: Optional["AdaptiveConfig"] = None,
) -> SyntheticFleet:
    """A self-contained fleet for load runs: N replicas of one selector.

    Builds a :func:`synthetic_deployed` selector and fronts it with
    ``replicas`` identical :class:`~repro.serving.SelectionService`
    instances named ``dev0..devN-1`` behind one router.  With
    ``compiled=True`` each service fronts the selector's
    :meth:`~repro.core.deploy.DeployedSelector.compiled` hot path
    instead of the NumPy tree walk.  With ``adaptive=`` each service is
    wrapped in an
    :class:`~repro.serving.adaptive.AdaptiveSelectionService` carrying
    that config (each replica adapts independently).
    """
    from repro.serving.service import SelectionService

    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    registry = registry if registry is not None else MetricsRegistry()
    deployed = synthetic_deployed(budget=budget, seed=seed)
    policy = deployed.compiled() if compiled else deployed
    fallback = deployed.library.configs[0]
    router = FleetRouter(default_policy=routing_policy, registry=registry)
    services: Dict[str, object] = {}
    candidates = tuple(deployed.library.configs)
    for i in range(replicas):
        name = f"dev{i}"
        service: object = SelectionService(
            policy,
            capacity=cache_capacity,
            fallback=fallback,
            registry=registry,
            name=name,
        )
        if adaptive is not None:
            from repro.serving.adaptive import AdaptiveSelectionService

            service = AdaptiveSelectionService(
                service,  # type: ignore[arg-type]
                config=adaptive,
                candidates=candidates,
                registry=registry,
                name=name,
            )
        services[name] = service
        router.add_device(name, service, library=candidates)
    return SyntheticFleet(
        router=router,
        deployed=deployed,
        services=services,
        registry=registry,
    )


def synthetic_router(
    *,
    replicas: int = 2,
    registry: Optional[MetricsRegistry] = None,
    routing_policy: str = "round-robin",
    cache_capacity: int = 4096,
    budget: int = 4,
    seed: int = 0,
    compiled: bool = False,
) -> FleetRouter:
    """The router of a :func:`synthetic_fleet` (backwards-compat shim)."""
    return synthetic_fleet(
        replicas=replicas,
        registry=registry,
        routing_policy=routing_policy,
        cache_capacity=cache_capacity,
        budget=budget,
        seed=seed,
        compiled=compiled,
    ).router
