"""Process-parallel load: the harness driving a :class:`ShardedFleet`.

:func:`run_sharded_load` replays the same Poisson/diurnal schedule and
Zipf-skewed shape stream as :func:`~repro.loadgen.harness.run_load`,
but issues requests in chunks through
:meth:`~repro.shard.ShardedFleet.select_batch` — the natural unit for
a front door that shards by shape hash and micro-batches per worker.
Each generator thread owns a strided slice of the schedule and walks it
chunk by chunk; under pacing it sleeps until a chunk's first arrival is
due and counts every arrival the generator could not issue on schedule
as late.

After the run the front door pulls each worker's metrics delta
(:meth:`~repro.shard.ShardedFleet.pull_metrics`), so the report's
``lookup_latency`` is the *fleet-wide* merged view across every worker
process — the same exactness-checked registry the chaos tests assert
on.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.loadgen.arrivals import poisson_arrivals
from repro.loadgen.harness import _LATE_TOLERANCE_S, LoadgenConfig
from repro.loadgen.report import (
    LoadReport,
    QuantileSummary,
    WorkerLoad,
    merged_quantiles,
)
from repro.loadgen.workload import ShapeStream, network_shape_pool
from repro.workloads.gemm import GemmShape

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.shard.fleet import ShardedFleet

__all__ = ["run_sharded_load"]


class _ShardWorker(threading.Thread):
    """One generator thread: chunked replay of a schedule slice."""

    def __init__(
        self,
        fleet: "ShardedFleet",
        work: List[Tuple[float, GemmShape]],
        chunk_size: int,
        barrier: threading.Barrier,
        h_request,
        pace: bool,
    ):
        super().__init__(daemon=True)
        self._fleet = fleet
        self._work = work
        self._chunk_size = chunk_size
        self._barrier = barrier
        self._h_request = h_request
        self._pace = pace
        self.completed = 0
        self.late = 0
        self.rerouted = 0
        self.dispatched: Dict[str, int] = {}
        self.start_s = 0.0
        self.end_s = 0.0
        self.error: Optional[BaseException] = None

    def run(self) -> None:  # pragma: no cover - exercised via run_sharded_load
        try:
            self._run()
        except BaseException as exc:
            self.error = exc

    def _run(self) -> None:
        fleet = self._fleet
        observe_n = self._h_request.observe_n
        pace = self._pace
        chunk_size = self._chunk_size
        self._barrier.wait()
        t0 = time.perf_counter()
        self.start_s = t0
        for at in range(0, len(self._work), chunk_size):
            chunk = self._work[at : at + chunk_size]
            if pace:
                now = time.perf_counter() - t0
                wait = chunk[0][0] - now
                if wait > 0:
                    time.sleep(wait)
                issue_at = time.perf_counter() - t0
                for due, _ in chunk:
                    if issue_at - due > _LATE_TOLERANCE_S:
                        self.late += 1
            begin = time.perf_counter()
            decisions = fleet.select_batch([shape for _, shape in chunk])
            observe_n((time.perf_counter() - begin) / len(chunk), len(chunk))
            for decision in decisions:
                device = decision.device_id
                self.dispatched[device] = self.dispatched.get(device, 0) + 1
                if decision.rerouted:
                    self.rerouted += 1
            self.completed += len(decisions)
        self.end_s = time.perf_counter()


def run_sharded_load(
    fleet: "ShardedFleet",
    config: LoadgenConfig,
    *,
    chunk_size: int = 256,
) -> LoadReport:
    """Run one load scenario against a sharded fleet; returns the report.

    ``config.workers`` generator threads each drive a strided slice of
    the schedule in ``chunk_size`` batches.  ``config.routing_policy``
    is ignored — routing is the shard hash.  The report's
    ``lookup_latency`` comes from the fleet's merged registry after a
    final ``pull_metrics()``; ``dispatched`` counts decisions per shard
    worker as seen by the generator (exact, front-door side).
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    registry = fleet.registry
    h_request = registry.histogram("loadgen.request_seconds")
    c_requests = registry.counter("loadgen.requests")
    c_late = registry.counter("loadgen.late_arrivals")

    arrivals = poisson_arrivals(
        config.profile, config.duration_s, seed=config.seed
    )
    stream = ShapeStream(
        network_shape_pool(config.networks),
        skew=config.zipf_skew,
        seed=config.seed + 1,
    )
    shapes = stream.take(len(arrivals))
    schedule = list(zip(arrivals, shapes))

    n_workers = min(config.workers, max(1, len(schedule)))
    barrier = threading.Barrier(n_workers)
    workers = [
        _ShardWorker(
            fleet,
            schedule[i::n_workers],
            chunk_size,
            barrier,
            h_request,
            config.pace,
        )
        for i in range(n_workers)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    for worker in workers:
        if worker.error is not None:
            raise worker.error

    completed = sum(w.completed for w in workers)
    late = sum(w.late for w in workers)
    rerouted = sum(w.rerouted for w in workers)
    dispatched: Dict[str, int] = {}
    for worker in workers:
        for device, count in worker.dispatched.items():
            dispatched[device] = dispatched.get(device, 0) + count
    c_requests.inc(completed)
    c_late.inc(late)

    # Merge every worker process's obs delta before reading quantiles:
    # lookup_latency below is the fleet-wide view, not the front door's.
    fleet.pull_metrics()

    if schedule:
        wall = max(w.end_s for w in workers) - min(w.start_s for w in workers)
    else:
        wall = 0.0
    per_worker = tuple(
        WorkerLoad(
            worker=i,
            offered=len(w._work),
            completed=w.completed,
            late=w.late,
            offered_qps=len(w._work) / config.duration_s,
            achieved_qps=(
                w.completed / (w.end_s - w.start_s)
                if w.end_s > w.start_s
                else 0.0
            ),
        )
        for i, w in enumerate(workers)
    )
    return LoadReport(
        duration_s=config.duration_s,
        wall_s=wall,
        offered=len(schedule),
        completed=completed,
        late=late,
        achieved_qps=completed / wall if wall > 0 else 0.0,
        request_latency=QuantileSummary.from_histogram(h_request),
        lookup_latency=merged_quantiles(registry, "serving.lookup_seconds"),
        dispatched=dispatched,
        rerouted=rerouted,
        paced=config.pace,
        workers=per_worker,
    )
