"""Load-run reporting: tail quantiles straight from the obs histograms.

The harness never keeps per-request samples — at millions of queries
that would be the dominant allocation.  Latency lives in the same
log-bucketed :class:`~repro.obs.metrics.Histogram` primitives the
serving layer already exports, and the report reads p50/p99/p999 back
out with :func:`~repro.obs.metrics.histogram_quantile`, merging bucket
counts across labelled instances (e.g. one ``serving.lookup_seconds``
per fleet device) where needed.
"""

from __future__ import annotations

import subprocess
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.obs.metrics import Histogram, histogram_quantile
from repro.obs.registry import MetricsRegistry

__all__ = [
    "DriftSummary",
    "LoadReport",
    "QuantileSummary",
    "REPORT_SCHEMA",
    "WorkerLoad",
    "git_revision",
    "merged_quantiles",
    "report_document",
]

#: Schema tag embedded in exported report documents.
REPORT_SCHEMA = "repro.loadgen-report/v1"

#: achieved/offered below this ratio (paced runs) flags saturation.
_SATURATION_RATIO = 0.9

#: late arrivals above this fraction of offered flags saturation.
_SATURATION_LATE_FRACTION = 0.05


def _fmt_seconds(seconds: float) -> str:
    if seconds < 1e-6:
        return f"{seconds * 1e9:.0f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


@dataclass(frozen=True)
class QuantileSummary:
    """p50/p99/p999 of one latency distribution, histogram-estimated."""

    count: int
    mean_s: float
    p50_s: float
    p99_s: float
    p999_s: float

    @classmethod
    def from_histogram(cls, histogram: Histogram) -> "QuantileSummary":
        snap = histogram.snapshot()
        return cls.from_buckets(
            tuple(snap["bounds"]),
            tuple(snap["counts"]),
            count=snap["count"],
            total=snap["sum"],
            minimum=snap["min"],
            maximum=snap["max"],
        )

    @classmethod
    def from_buckets(
        cls,
        bounds: Tuple[float, ...],
        counts: Tuple[int, ...],
        *,
        count: int,
        total: float,
        minimum: float,
        maximum: float,
    ) -> "QuantileSummary":
        def q(quantile: float) -> float:
            return histogram_quantile(
                bounds, counts, quantile, minimum=minimum, maximum=maximum
            )

        return cls(
            count=count,
            mean_s=total / count if count else 0.0,
            p50_s=q(0.50),
            p99_s=q(0.99),
            p999_s=q(0.999),
        )

    def render(self) -> str:
        return (
            f"p50 {_fmt_seconds(self.p50_s)}  p99 {_fmt_seconds(self.p99_s)}  "
            f"p999 {_fmt_seconds(self.p999_s)}  "
            f"(mean {_fmt_seconds(self.mean_s)}, n={self.count})"
        )


def merged_quantiles(
    registry: MetricsRegistry, name: str
) -> Optional[QuantileSummary]:
    """One :class:`QuantileSummary` over every histogram named ``name``.

    Bucket counts are summed across label sets (identical log-spaced
    bounds required), which is exactly how multi-instance histograms
    aggregate; returns None when the registry has no observations under
    that name.
    """
    bounds: Optional[Tuple[float, ...]] = None
    counts: Optional[list] = None
    count = 0
    total = 0.0
    minimum = float("inf")
    maximum = 0.0
    for metric_name, _, metric in registry.collect():
        if metric_name != name or not isinstance(metric, Histogram):
            continue
        snap = metric.snapshot()
        if not snap["count"]:
            continue
        if bounds is None:
            bounds = tuple(snap["bounds"])
            counts = list(snap["counts"])
        elif tuple(snap["bounds"]) != bounds:
            raise ValueError(
                f"histograms named {name!r} have mismatched bucket bounds"
            )
        else:
            for i, c in enumerate(snap["counts"]):
                counts[i] += c
        count += snap["count"]
        total += snap["sum"]
        minimum = min(minimum, snap["min"])
        maximum = max(maximum, snap["max"])
    if bounds is None or counts is None or count == 0:
        return None
    return QuantileSummary.from_buckets(
        bounds,
        tuple(counts),
        count=count,
        total=total,
        minimum=minimum,
        maximum=maximum,
    )


@dataclass(frozen=True)
class DriftSummary:
    """Adaptive-vs-static columns for a drifted load run.

    Geomeans are over the *post-drift* window: ``static_geomean_s`` is
    what the frozen tree would have cost, ``adaptive_geomean_s`` what
    the adaptive layer actually served, ``oracle_geomean_s`` the best
    candidate per request.  ``gap_closure`` is the fraction of the
    static-to-oracle log-gap the adaptive layer closed (1.0 = serving
    the oracle, 0.0 = no better than the frozen tree).
    """

    requests: int
    post_drift: int
    drift_at: float
    factor: float
    adaptive_geomean_s: float
    static_geomean_s: float
    oracle_geomean_s: float
    gap_closure: float
    trials: int
    promotions: int
    demotions: int

    def render(self) -> str:
        return (
            f"drift: x{self.factor:g} at {self.drift_at:.0%} of the run, "
            f"{self.post_drift}/{self.requests} post-drift requests\n"
            f"post-drift geomean: adaptive "
            f"{_fmt_seconds(self.adaptive_geomean_s)}  static "
            f"{_fmt_seconds(self.static_geomean_s)}  oracle "
            f"{_fmt_seconds(self.oracle_geomean_s)}  -> gap closure "
            f"{self.gap_closure:.1%}\n"
            f"adaptation: {self.trials} trials, {self.promotions} "
            f"promotions, {self.demotions} demotions"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "post_drift": self.post_drift,
            "drift_at": self.drift_at,
            "factor": self.factor,
            "adaptive_geomean_s": self.adaptive_geomean_s,
            "static_geomean_s": self.static_geomean_s,
            "oracle_geomean_s": self.oracle_geomean_s,
            "gap_closure": self.gap_closure,
            "trials": self.trials,
            "promotions": self.promotions,
            "demotions": self.demotions,
        }


@dataclass(frozen=True)
class WorkerLoad:
    """Offered-vs-achieved throughput for one generator worker."""

    worker: int
    offered: int
    completed: int
    late: int
    offered_qps: float
    achieved_qps: float

    def render(self) -> str:
        return (
            f"  worker {self.worker}: offered {self.offered_qps:,.0f} qps "
            f"({self.offered} reqs), achieved {self.achieved_qps:,.0f} qps, "
            f"{self.late} late"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "worker": self.worker,
            "offered": self.offered,
            "completed": self.completed,
            "late": self.late,
            "offered_qps": self.offered_qps,
            "achieved_qps": self.achieved_qps,
        }


@dataclass(frozen=True)
class LoadReport:
    """The outcome of one load run, ready to render or export.

    ``offered`` is the scheduled arrival count, ``completed`` the
    requests actually answered; ``late`` counts arrivals the workers
    could not issue on schedule (the generator saturating, not the
    service).  ``request_latency`` is wall latency seen by the
    generator per request; ``lookup_latency`` the service-side
    per-lookup view merged across every device's
    ``serving.lookup_seconds`` histogram.
    """

    duration_s: float
    wall_s: float
    offered: int
    completed: int
    late: int
    achieved_qps: float
    request_latency: QuantileSummary
    lookup_latency: Optional[QuantileSummary]
    dispatched: Dict[str, int]
    rerouted: int
    #: Adaptive-vs-static columns; only set by drifted scenarios.
    drift: Optional[DriftSummary] = None
    #: False when the schedule replayed flat-out (virtual time) — the
    #: saturation check only applies to paced runs.
    paced: bool = True
    #: Per-generator-worker offered-vs-achieved breakdown.
    workers: Tuple[WorkerLoad, ...] = ()

    @property
    def saturated(self) -> bool:
        """True when the harness could not sustain the offered rate.

        Only meaningful for paced runs: flat-out replays have no
        schedule to fall behind.  Flags when more than
        ``_SATURATION_LATE_FRACTION`` of arrivals fired late, or
        achieved throughput fell below ``_SATURATION_RATIO`` of the
        offered rate.
        """
        if not self.paced or self.offered == 0:
            return False
        if self.late > _SATURATION_LATE_FRACTION * self.offered:
            return True
        offered_qps = self.offered / self.duration_s
        return self.achieved_qps < _SATURATION_RATIO * offered_qps

    def render(self) -> str:
        lines = [
            (
                f"load: {self.completed}/{self.offered} requests in "
                f"{self.wall_s:.2f} s wall ({self.duration_s:.2f} s "
                f"scheduled) -> {self.achieved_qps:,.0f} qps, "
                f"{self.late} late arrivals"
            ),
            f"request latency: {self.request_latency.render()}",
        ]
        if self.saturated:
            offered_qps = self.offered / self.duration_s
            lines.append(
                f"WARNING: generator saturated — offered "
                f"{offered_qps:,.0f} qps but achieved "
                f"{self.achieved_qps:,.0f} qps with {self.late} late "
                f"arrivals; latency figures reflect a slower effective "
                f"rate"
            )
            lines.extend(w.render() for w in self.workers)
        if self.lookup_latency is not None:
            lines.append(f"service lookup:  {self.lookup_latency.render()}")
        if self.dispatched:
            per_device = "  ".join(
                f"{device}={count}"
                for device, count in sorted(self.dispatched.items())
            )
            lines.append(
                f"dispatch: {per_device}  (rerouted {self.rerouted})"
            )
        if self.drift is not None:
            lines.append(self.drift.render())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (CI artifacts, further analysis)."""

        def summary(s: Optional[QuantileSummary]) -> Optional[Dict[str, Any]]:
            if s is None:
                return None
            return {
                "count": s.count,
                "mean_s": s.mean_s,
                "p50_s": s.p50_s,
                "p99_s": s.p99_s,
                "p999_s": s.p999_s,
            }

        return {
            "duration_s": self.duration_s,
            "wall_s": self.wall_s,
            "offered": self.offered,
            "completed": self.completed,
            "late": self.late,
            "achieved_qps": self.achieved_qps,
            "request_latency": summary(self.request_latency),
            "lookup_latency": summary(self.lookup_latency),
            "dispatched": dict(self.dispatched),
            "rerouted": self.rerouted,
            "drift": None if self.drift is None else self.drift.to_dict(),
            "paced": self.paced,
            "saturated": self.saturated,
            "workers": [w.to_dict() for w in self.workers],
        }


def git_revision() -> Optional[str]:
    """The current git commit SHA, or None outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def report_document(
    report: LoadReport,
    *,
    config: Optional[Dict[str, Any]] = None,
    command: Optional[str] = None,
) -> Dict[str, Any]:
    """``report.to_dict()`` plus a ``meta`` block for CI artifacts.

    The report's own keys stay at the top level (existing consumers
    read them there); ``meta`` is an extra key carrying the schema tag,
    the git SHA of the producing checkout, and the full run
    configuration — enough to reproduce the run from the JSON alone.
    """
    doc = report.to_dict()
    doc["meta"] = {
        "schema": REPORT_SCHEMA,
        "git_sha": git_revision(),
        "config": dict(config) if config is not None else None,
        "command": command,
    }
    return doc
