"""Drifted-workload scenarios: measure adaptation end-to-end.

The adaptive layer's whole claim is "when observed latencies drift away
from the model the tree was trained on, the served configs follow".
This module makes that measurable:

* :class:`DriftSpec` + :class:`DriftedLatencyModel` — a deterministic
  synthetic latency surface: the device perf model with mild lognormal
  noise, where at the drift point the config the *static* tree serves
  for each shape slows down by ``factor`` — so the frozen tree becomes
  wrong per construction and the true best moves to another candidate.
* :func:`run_drift_load` — the threaded loadgen scenario: a synthetic
  adaptive fleet under Poisson/Zipf traffic whose observed latencies
  come from the drifted model and feed straight back into each
  device's adaptive service; the returned
  :class:`~repro.loadgen.report.LoadReport` carries a
  :class:`~repro.loadgen.report.DriftSummary` with adaptive-vs-static
  geomean columns and the gap-closure figure CI gates on.
* :func:`replay_drift` — the same scenario through the synchronous
  :func:`~repro.adaptive.replay.run_replay` driver: single service, no
  threads, bit-identical across runs (the demo and test entry point).

Drift *phase* is a function of scheduled due-time (or step index in
replays), never wall clock, so drifted runs are deterministic even
with ``pace=False``.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.adaptive.bandit import AdaptiveConfig
from repro.adaptive.replay import ReplayResult, run_replay
from repro.kernels.params import KernelConfig
from repro.loadgen.harness import (
    LoadgenConfig,
    SyntheticFleet,
    run_load,
    synthetic_fleet,
)
from repro.loadgen.report import DriftSummary, LoadReport
from repro.loadgen.workload import network_shape_pool
from repro.obs.registry import MetricsRegistry
from repro.perfmodel.model import GemmPerfModel
from repro.serving.adaptive import AdaptiveSelectionService
from repro.sycl.device import Device
from repro.utils.rng import derive_seed
from repro.workloads.gemm import GemmShape

__all__ = [
    "DriftReplayReport",
    "DriftSpec",
    "DriftedLatencyModel",
    "drift_adaptive_config",
    "replay_drift",
    "run_drift_load",
]

_Key = Tuple[int, ...]

_TWO_PI = 2.0 * math.pi


@dataclass(frozen=True)
class DriftSpec:
    """When the drift hits, how hard, and how noisy observations are."""

    #: Fraction of the scheduled duration (or replay trace) at which
    #: the drift lands.
    at: float = 0.5
    #: Multiplier applied to the static choice's latency post-drift.
    factor: float = 4.0
    #: Lognormal sigma of per-observation measurement noise.
    noise_sigma: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.at <= 1.0:
            raise ValueError(f"at must be in [0, 1], got {self.at}")
        if self.factor <= 1.0:
            raise ValueError(f"factor must be > 1, got {self.factor}")
        if self.noise_sigma < 0.0:
            raise ValueError(
                f"noise_sigma must be >= 0, got {self.noise_sigma}"
            )


def drift_adaptive_config(
    seed: int = 0, *, trial_fraction: float = 0.125
) -> AdaptiveConfig:
    """Adaptive knobs tuned for drift scenarios: forget fast, act fast.

    A short half-life lets the incumbent's estimator track the drifted
    reality within ~tens of feedbacks, and a low trial count / margin
    promotes as soon as the challenger's advantage is clear — the right
    trade when the synthetic noise floor (5%) is far below the drift
    magnitude (4x).
    """
    return AdaptiveConfig(
        trial_fraction=trial_fraction,
        explorer="ucb",
        seed=seed,
        half_life=24.0,
        min_trials=2,
        promote_margin=1.0,
        probation=200,
        regression_margin=1.5,
        admission_threshold=2,
    )


class DriftedLatencyModel:
    """Deterministic observed latency with a mid-run drift.

    ``time()`` prices one observation: the perf model's noise-free
    ``time_seconds`` (memoised per shape/config), times ``factor`` when
    drifted and the config is the static policy's choice for the shape,
    times lognormal noise derived from ``(shape, config, step)`` — so
    identical calls give identical latencies across runs and threads.
    ``oracle_time()`` is the noise-free best over the candidate set.
    """

    def __init__(
        self,
        model: GemmPerfModel,
        static_policy: object,
        candidates: Tuple[KernelConfig, ...],
        *,
        spec: DriftSpec,
    ) -> None:
        if not candidates:
            raise ValueError("candidates must be non-empty")
        self._model = model
        self._static_policy = static_policy
        self._candidates = candidates
        self._spec = spec
        self._noise_root = derive_seed(spec.seed, "drift", "noise")
        self._base: Dict[Tuple[_Key, KernelConfig], float] = {}
        self._static: Dict[_Key, KernelConfig] = {}
        self._oracle: Dict[Tuple[_Key, bool], float] = {}
        self._lock = threading.Lock()

    @property
    def spec(self) -> DriftSpec:
        return self._spec

    def static_config(self, shape: GemmShape) -> KernelConfig:
        """The frozen policy's choice for ``shape`` (memoised)."""
        key = shape.as_tuple()
        config = self._static.get(key)
        if config is None:
            with self._lock:
                config = self._static.get(key)
                if config is None:
                    policy = self._static_policy
                    config = policy.select(shape)  # type: ignore[attr-defined]
                    self._static[key] = config
        return config

    def _base_time(self, shape: GemmShape, config: KernelConfig) -> float:
        key = (shape.as_tuple(), config)
        base = self._base.get(key)
        if base is None:
            with self._lock:
                base = self._base.get(key)
                if base is None:
                    base = self._model.time_seconds(shape, config)
                    self._base[key] = base
        return base

    def _noise(self, key: _Key, config: KernelConfig, step: int) -> float:
        sigma = self._spec.noise_sigma
        if sigma <= 0.0:
            return 1.0
        raw = derive_seed(self._noise_root, *key, config.short_name(), step)
        # Box-Muller over the two 32-bit halves of the derived seed.
        u1 = ((raw & 0xFFFFFFFF) + 1.0) / 4294967297.0
        u2 = ((raw >> 32) + 0.5) / 4294967296.0
        z = math.sqrt(-2.0 * math.log(u1)) * math.cos(_TWO_PI * u2)
        return math.exp(sigma * z)

    def time(
        self,
        shape: GemmShape,
        config: KernelConfig,
        step: int,
        *,
        drifted: bool,
    ) -> float:
        """One noisy observed latency for serving ``config`` at ``step``."""
        key = shape.as_tuple()
        base = self._base_time(shape, config)
        if drifted and config == self.static_config(shape):
            base *= self._spec.factor
        return base * self._noise(key, config, step)

    def oracle_time(self, shape: GemmShape, *, drifted: bool) -> float:
        """Noise-free best-candidate latency under the current phase."""
        key = (shape.as_tuple(), drifted)
        best = self._oracle.get(key)
        if best is None:
            static = self.static_config(shape) if drifted else None
            best = min(
                self._base_time(shape, config)
                * (self._spec.factor if config == static else 1.0)
                for config in self._candidates
            )
            with self._lock:
                self._oracle[key] = best
        return best

    def static_time(
        self, shape: GemmShape, step: int, *, drifted: bool
    ) -> float:
        """What the frozen tree's choice costs at ``step``."""
        return self.time(shape, self.static_config(shape), step, drifted=drifted)


class _GapAccumulator:
    """Thread-safe post-drift log-geomean accumulation."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.requests = 0
        self.post_drift = 0
        self.log_adaptive = 0.0
        self.log_static = 0.0
        self.log_oracle = 0.0

    def add(
        self,
        adaptive_s: float,
        static_s: float,
        oracle_s: float,
        *,
        drifted: bool,
    ) -> None:
        with self.lock:
            self.requests += 1
            if drifted:
                self.post_drift += 1
                self.log_adaptive += math.log(adaptive_s)
                self.log_static += math.log(static_s)
                self.log_oracle += math.log(oracle_s)

    def summary(
        self,
        spec: DriftSpec,
        *,
        trials: int,
        promotions: int,
        demotions: int,
    ) -> DriftSummary:
        n = self.post_drift
        gm_adaptive = math.exp(self.log_adaptive / n) if n else 0.0
        gm_static = math.exp(self.log_static / n) if n else 0.0
        gm_oracle = math.exp(self.log_oracle / n) if n else 0.0
        gap = (self.log_static - self.log_oracle) / n if n else 0.0
        if gap > 1e-12:
            closure = (self.log_static - self.log_adaptive) / n / gap
        else:
            closure = 1.0
        return DriftSummary(
            requests=self.requests,
            post_drift=n,
            drift_at=spec.at,
            factor=spec.factor,
            adaptive_geomean_s=gm_adaptive,
            static_geomean_s=gm_static,
            oracle_geomean_s=gm_oracle,
            gap_closure=closure,
            trials=trials,
            promotions=promotions,
            demotions=demotions,
        )


def _drift_model(fleet: SyntheticFleet, spec: DriftSpec) -> DriftedLatencyModel:
    return DriftedLatencyModel(
        GemmPerfModel(Device.r9_nano()),
        fleet.deployed,
        tuple(fleet.deployed.library.configs),
        spec=spec,
    )


def run_drift_load(
    config: LoadgenConfig,
    *,
    spec: Optional[DriftSpec] = None,
    adaptive: Optional[AdaptiveConfig] = None,
    replicas: int = 2,
    budget: int = 4,
    registry: Optional[MetricsRegistry] = None,
) -> LoadReport:
    """The drifted loadgen scenario: adaptive fleet, closed feedback loop.

    Builds a :func:`~repro.loadgen.harness.synthetic_fleet` whose
    services are adaptive, runs ``config``'s schedule through it, and
    prices every completed request with a :class:`DriftedLatencyModel`
    whose drift lands at ``spec.at`` of the *scheduled* duration.  The
    observed latency feeds back into the serving device's adaptive
    layer, and the report's :class:`~repro.loadgen.report.DriftSummary`
    compares what was served against the frozen tree and the oracle.
    """
    spec = spec if spec is not None else DriftSpec(seed=config.seed)
    adaptive = (
        adaptive if adaptive is not None else drift_adaptive_config(config.seed)
    )
    registry = registry if registry is not None else MetricsRegistry()
    fleet = synthetic_fleet(
        replicas=replicas,
        registry=registry,
        budget=budget,
        seed=config.seed,
        adaptive=adaptive,
    )
    model = _drift_model(fleet, spec)
    drift_due_s = spec.at * config.duration_s
    acc = _GapAccumulator()
    services = fleet.services

    def on_request(index, due, shape, decision):
        drifted = due >= drift_due_s
        served_s = model.time(shape, decision.config, index, drifted=drifted)
        service = services[decision.device_id]
        assert isinstance(service, AdaptiveSelectionService)
        service.record(shape, decision.config, served_s)
        static_cfg = model.static_config(shape)
        if decision.config == static_cfg:
            static_s = served_s
        else:
            static_s = model.time(shape, static_cfg, index, drifted=drifted)
        oracle_s = model.oracle_time(shape, drifted=drifted)
        acc.add(served_s, static_s, oracle_s, drifted=drifted)

    report = run_load(
        fleet.router, config, registry=registry, on_request=on_request
    )
    trials = promotions = demotions = 0
    for service in services.values():
        assert isinstance(service, AdaptiveSelectionService)
        stats = service.adaptive_stats()
        trials += stats.trials
        promotions += stats.promotions
        demotions += stats.demotions
    summary = acc.summary(
        spec, trials=trials, promotions=promotions, demotions=demotions
    )
    return replace(report, drift=summary)


@dataclass(frozen=True)
class DriftReplayReport:
    """A deterministic drift replay: the trace, the scores, the service."""

    result: ReplayResult
    summary: DriftSummary
    service: AdaptiveSelectionService

    def render(self) -> str:
        return self.summary.render()


def replay_drift(
    *,
    steps: int = 4000,
    spec: Optional[DriftSpec] = None,
    adaptive: Optional[AdaptiveConfig] = None,
    budget: int = 4,
    seed: int = 0,
    pool_size: int = 12,
    zipf_skew: float = 1.1,
    registry: Optional[MetricsRegistry] = None,
) -> DriftReplayReport:
    """One synchronous drifted run: single adaptive service, no threads.

    The request stream is a Zipf-skewed draw over the first
    ``pool_size`` network shapes, the drift lands at step
    ``round(spec.at * steps)``, and every moving part is seeded — two
    calls with identical arguments produce byte-identical
    :meth:`~repro.adaptive.replay.ReplayResult.digest` values.
    """
    from repro.loadgen.workload import ShapeStream

    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    spec = spec if spec is not None else DriftSpec(seed=seed)
    adaptive = adaptive if adaptive is not None else drift_adaptive_config(seed)
    registry = registry if registry is not None else MetricsRegistry()
    fleet = synthetic_fleet(
        replicas=1,
        registry=registry,
        budget=budget,
        seed=seed,
        adaptive=adaptive,
    )
    service = fleet.services["dev0"]
    assert isinstance(service, AdaptiveSelectionService)
    model = _drift_model(fleet, spec)
    pool = network_shape_pool()[:pool_size]
    stream = ShapeStream(pool, skew=zipf_skew, seed=seed + 1)
    requests = stream.take(steps)
    drift_step = round(spec.at * steps)

    def latency(shape: GemmShape, config: KernelConfig, index: int) -> float:
        return model.time(shape, config, index, drifted=index >= drift_step)

    result = run_replay(service, requests, latency)
    acc = _GapAccumulator()
    for step in result.steps:
        drifted = step.index >= drift_step
        static_cfg = model.static_config(step.shape)
        if step.config == static_cfg:
            static_s = step.latency_s
        else:
            static_s = model.time(
                step.shape, static_cfg, step.index, drifted=drifted
            )
        oracle_s = model.oracle_time(step.shape, drifted=drifted)
        acc.add(step.latency_s, static_s, oracle_s, drifted=drifted)
    stats = service.adaptive_stats()
    summary = acc.summary(
        spec,
        trials=stats.trials,
        promotions=stats.promotions,
        demotions=stats.demotions,
    )
    return DriftReplayReport(result=result, summary=summary, service=service)
