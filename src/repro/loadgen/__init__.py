"""Closed-loop load generation for the selection serving stack.

The paper's deployment argument — selector dispatch must be negligible
at traffic scale — is only testable under traffic.  This package
simulates it: Poisson arrivals shaped by a diurnal ramp
(:mod:`~repro.loadgen.arrivals`), a Zipf-skewed stream of real
VGG/ResNet/MobileNet GEMM shapes (:mod:`~repro.loadgen.workload`),
worker threads driving a :class:`~repro.serving.router.FleetRouter`
(:mod:`~repro.loadgen.harness`), and tail-latency reporting straight
from the :mod:`repro.obs` histograms (:mod:`~repro.loadgen.report`).

``repro loadgen run`` is the CLI front-end; CI's bench-smoke job runs a
pinned-throughput smoke scenario through it.
"""

from repro.loadgen.arrivals import RateProfile, poisson_arrivals
from repro.loadgen.drift import (
    DriftReplayReport,
    DriftSpec,
    DriftedLatencyModel,
    drift_adaptive_config,
    replay_drift,
    run_drift_load,
)
from repro.loadgen.harness import (
    LoadgenConfig,
    SyntheticFleet,
    run_load,
    synthetic_deployed,
    synthetic_fleet,
    synthetic_router,
)
from repro.loadgen.report import (
    DriftSummary,
    LoadReport,
    QuantileSummary,
    WorkerLoad,
    git_revision,
    merged_quantiles,
    report_document,
)
from repro.loadgen.workload import (
    DEFAULT_NETWORKS,
    ShapeStream,
    network_shape_pool,
)
from repro.loadgen.sharded import run_sharded_load

__all__ = [
    "DEFAULT_NETWORKS",
    "DriftReplayReport",
    "DriftSpec",
    "DriftSummary",
    "DriftedLatencyModel",
    "LoadReport",
    "LoadgenConfig",
    "QuantileSummary",
    "RateProfile",
    "ShapeStream",
    "SyntheticFleet",
    "WorkerLoad",
    "drift_adaptive_config",
    "git_revision",
    "merged_quantiles",
    "network_shape_pool",
    "poisson_arrivals",
    "replay_drift",
    "report_document",
    "run_drift_load",
    "run_load",
    "run_sharded_load",
    "synthetic_deployed",
    "synthetic_fleet",
    "synthetic_router",
]
