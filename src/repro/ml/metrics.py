"""Metrics and pairwise distances."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_array

__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "euclidean_distances",
    "mean_squared_error",
    "pairwise_sq_distances",
    "r2_score",
]


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exact label matches."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("accuracy of empty arrays is undefined")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, *, labels=None) -> np.ndarray:
    """Counts[i, j] = samples with true label i predicted as j."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = np.asarray(labels)
    index = {label: i for i, label in enumerate(labels.tolist())}
    out = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for t, p in zip(y_true.tolist(), y_pred.tolist()):
        out[index[t], index[p]] += 1
    return out


def mean_squared_error(y_true, y_pred) -> float:
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    return float(np.mean((y_true - y_pred) ** 2))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination (uniform average over outputs)."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.ndim == 1:
        y_true = y_true[:, None]
        y_pred = y_pred[:, None]
    ss_res = np.sum((y_true - y_pred) ** 2, axis=0)
    ss_tot = np.sum((y_true - y_true.mean(axis=0)) ** 2, axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        r2 = 1.0 - ss_res / ss_tot
    # Constant targets: perfect prediction scores 1, anything else 0.
    r2 = np.where(ss_tot == 0.0, np.where(ss_res == 0.0, 1.0, 0.0), r2)
    return float(np.mean(r2))


def pairwise_sq_distances(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, (len(X), len(Y)), clipped at zero.

    Uses the expanded form ``|x|^2 - 2 x.y + |y|^2`` which is O(n*m*d)
    through one GEMM — the cache-friendly formulation the HPC guide's
    vectorisation idiom calls for.
    """
    X = check_array(X, name="X")
    Y = check_array(Y, name="Y")
    if X.shape[1] != Y.shape[1]:
        raise ValueError(
            f"dimension mismatch: X has {X.shape[1]} features, Y has {Y.shape[1]}"
        )
    sq = (
        np.sum(X * X, axis=1)[:, None]
        - 2.0 * (X @ Y.T)
        + np.sum(Y * Y, axis=1)[None, :]
    )
    return np.maximum(sq, 0.0)


def euclidean_distances(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Euclidean distances, (len(X), len(Y))."""
    return np.sqrt(pairwise_sq_distances(X, Y))
