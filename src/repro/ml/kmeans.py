"""k-means clustering: Lloyd's algorithm with k-means++ seeding.

Fully vectorised: distance evaluation is one GEMM per iteration
(:func:`repro.ml.metrics.pairwise_sq_distances`), and empty clusters are
re-seeded from the points furthest from their centroids, so the requested
cluster count is always delivered — the pruning stage depends on getting
exactly ``n_clusters`` representatives.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_is_fitted
from repro.ml.metrics import pairwise_sq_distances
from repro.utils.rng import rng_from
from repro.utils.validation import check_array, check_positive_int

__all__ = ["KMeans", "kmeans_plusplus"]


def kmeans_plusplus(
    X: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding (Arthur & Vassilvitskii 2007).

    Each subsequent centre is drawn with probability proportional to the
    squared distance to the nearest already-chosen centre.
    """
    n = X.shape[0]
    centers = np.empty((n_clusters, X.shape[1]), dtype=X.dtype)
    first = int(rng.integers(n))
    centers[0] = X[first]
    closest_sq = pairwise_sq_distances(X, centers[:1]).ravel()
    for i in range(1, n_clusters):
        total = closest_sq.sum()
        if total <= 0.0:
            # All remaining points coincide with chosen centres; fall back
            # to uniform sampling of distinct indices.
            centers[i] = X[int(rng.integers(n))]
        else:
            probs = closest_sq / total
            idx = int(rng.choice(n, p=probs))
            centers[i] = X[idx]
        new_sq = pairwise_sq_distances(X, centers[i : i + 1]).ravel()
        np.minimum(closest_sq, new_sq, out=closest_sq)
    return centers


class KMeans(BaseEstimator):
    """Standard k-means with restarts.

    Attributes
    ----------
    cluster_centers_ : (n_clusters, n_features)
    labels_ : (n_samples,)
    inertia_ : float
        Within-cluster sum of squared distances of the best restart.
    n_iter_ : int
        Iterations used by the best restart.
    """

    def __init__(
        self,
        n_clusters: int = 8,
        *,
        n_init: int = 10,
        max_iter: int = 300,
        tol: float = 1e-6,
        random_state=None,
    ):
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.random_state = random_state

    def fit(self, X) -> "KMeans":
        X = check_array(X, name="X")
        k = check_positive_int(self.n_clusters, "n_clusters")
        if k > X.shape[0]:
            raise ValueError(
                f"n_clusters={k} exceeds the number of samples {X.shape[0]}"
            )
        check_positive_int(self.n_init, "n_init")
        check_positive_int(self.max_iter, "max_iter")
        rng = rng_from(self.random_state)

        best = None
        for _ in range(self.n_init):
            centers, labels, inertia, iters = self._lloyd(X, k, rng)
            if best is None or inertia < best[2]:
                best = (centers, labels, inertia, iters)
        self.cluster_centers_, self.labels_, self.inertia_, self.n_iter_ = best
        self.n_features_in_ = X.shape[1]
        return self

    def _lloyd(self, X: np.ndarray, k: int, rng: np.random.Generator):
        centers = kmeans_plusplus(X, k, rng)
        labels = np.zeros(X.shape[0], dtype=np.int64)
        inertia = np.inf
        for iteration in range(1, self.max_iter + 1):
            sq = pairwise_sq_distances(X, centers)
            labels = np.argmin(sq, axis=1)
            new_inertia = float(sq[np.arange(len(X)), labels].sum())

            new_centers = np.empty_like(centers)
            counts = np.bincount(labels, minlength=k)
            for j in range(k):
                if counts[j] > 0:
                    new_centers[j] = X[labels == j].mean(axis=0)
            empty = np.nonzero(counts == 0)[0]
            if len(empty) > 0:
                # Re-seed empty clusters at the currently worst-fit points.
                worst = np.argsort(sq[np.arange(len(X)), labels])[::-1]
                for slot, j in enumerate(empty):
                    new_centers[j] = X[worst[slot]]

            shift = float(np.sum((new_centers - centers) ** 2))
            centers = new_centers
            if abs(inertia - new_inertia) <= self.tol * max(1.0, abs(inertia)) or (
                shift <= self.tol
            ):
                inertia = new_inertia
                break
            inertia = new_inertia
        # Final assignment against the final centers.
        sq = pairwise_sq_distances(X, centers)
        labels = np.argmin(sq, axis=1)
        inertia = float(sq[np.arange(len(X)), labels].sum())
        return centers, labels, inertia, iteration

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "cluster_centers_")
        X = check_array(X, name="X")
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; fit used {self.n_features_in_}"
            )
        return np.argmin(pairwise_sq_distances(X, self.cluster_centers_), axis=1)

    def fit_predict(self, X) -> np.ndarray:
        return self.fit(X).labels_
