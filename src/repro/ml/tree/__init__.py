"""CART decision trees: classifier and multi-output regressor.

Growth strategies:

* depth-first (default) — standard recursive CART;
* best-first with ``max_leaf_nodes`` — splits are expanded in order of
  impurity improvement, so capping the leaf count keeps the *most
  informative* splits.  This is the mechanism behind the paper's decision
  tree pruner: "limiting the number of leaf nodes in the decision tree
  ensures the tree only produces a restricted number of vectors".

The fitted tree is a flat array structure (:class:`~repro.ml.tree.structure.Tree`)
that predicts without recursion and can be exported as nested ``if``
statements (:mod:`repro.ml.tree.export`) — the paper's deployment target.
"""

from repro.ml.tree.structure import Tree
from repro.ml.tree.classifier import DecisionTreeClassifier
from repro.ml.tree.regressor import DecisionTreeRegressor
from repro.ml.tree.export import export_cpp, export_python, export_text
from repro.ml.tree.codegen import (
    COMPILE_VARIANTS,
    CompiledTree,
    compile_tree,
    tree_apply_source,
)

__all__ = [
    "COMPILE_VARIANTS",
    "CompiledTree",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "Tree",
    "compile_tree",
    "export_cpp",
    "export_python",
    "export_text",
    "tree_apply_source",
]
