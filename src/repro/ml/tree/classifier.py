"""Decision tree classifier (CART, Gini)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import BaseEstimator, check_is_fitted
from repro.ml.tree.builder import GrowthParams, grow_best_first, grow_depth_first
from repro.ml.tree.criteria import GiniCriterion
from repro.utils.rng import rng_from
from repro.utils.validation import check_array

__all__ = ["DecisionTreeClassifier"]


class DecisionTreeClassifier(BaseEstimator):
    """CART classifier with Gini impurity.

    Supports depth-first growth or best-first growth under a
    ``max_leaf_nodes`` budget, plus the usual stopping rules.  Leaf values
    store class probability vectors, so :meth:`predict_proba` is free.
    """

    def __init__(
        self,
        *,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_leaf_nodes: Optional[int] = None,
        max_features: Optional[int] = None,
        random_state=None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_leaf_nodes = max_leaf_nodes
        self.max_features = max_features
        self.random_state = random_state

    def fit(self, X, y) -> "DecisionTreeClassifier":
        X = check_array(X, name="X")
        y = np.asarray(y)
        if y.ndim != 1:
            raise ValueError(f"y must be 1-D labels, got shape {y.shape}")
        if len(X) != len(y):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
        self.classes_, encoded = np.unique(y, return_inverse=True)
        onehot = np.zeros((len(y), len(self.classes_)), dtype=np.float64)
        onehot[np.arange(len(y)), encoded] = 1.0

        params = GrowthParams(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_leaf_nodes=self.max_leaf_nodes,
            max_features=self.max_features,
        )
        rng = rng_from(self.random_state) if self.random_state is not None else None
        criterion = GiniCriterion()
        if self.max_leaf_nodes is not None:
            self.tree_ = grow_best_first(X, onehot, criterion, params, rng)
        else:
            self.tree_ = grow_depth_first(X, onehot, criterion, params, rng)
        self.n_features_in_ = X.shape[1]
        return self

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "tree_")
        X = check_array(X, name="X")
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; fit used {self.n_features_in_}"
            )
        return self.tree_.predict_value(X)

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def score(self, X, y) -> float:
        from repro.ml.metrics import accuracy_score

        return accuracy_score(np.asarray(y), self.predict(X))

    @property
    def n_leaves_(self) -> int:
        check_is_fitted(self, "tree_")
        return self.tree_.n_leaves
