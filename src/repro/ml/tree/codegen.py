"""Compilation of a fitted tree into sub-microsecond scalar dispatch.

The paper's deployment argument is that a decision tree "compiles to
nested if statements" with negligible dispatch overhead.  This module
takes that literally for the in-process hot path: a fitted
:class:`~repro.ml.tree.structure.Tree` is compiled into a plain Python
callable that descends the tree for *one* sample with no NumPy, no
allocation and no attribute lookups on the way down.  Two variants are
provided, both bit-identical to :meth:`Tree.apply_loop`:

* ``source`` — the tree is emitted as nested-``if`` Python source
  (every leaf a ``return <node_id>``), then ``compile()``/``exec``'d
  into a real function.  This is the generated-code path the paper
  describes, and the fastest: one function call, a handful of float
  comparisons, one return.
* ``flat``   — a branchless descent over flat Python lists: each step
  computes ``children[2 * node + (1 - (x <= threshold))]`` so there is
  no per-node branch at all, only index arithmetic.  Depth is unbounded
  (the source variant is capped by CPython's nesting limit).

Comparisons are the same ``x <= threshold`` as the scalar reference
walk; a NaN feature fails the comparison and descends right in both
variants, exactly like :meth:`Tree.apply_loop`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.tree.structure import LEAF, Tree

__all__ = [
    "COMPILE_VARIANTS",
    "CompiledTree",
    "MAX_SOURCE_DEPTH",
    "compile_tree",
    "tree_apply_source",
]

#: Supported :func:`compile_tree` variants.
COMPILE_VARIANTS: Tuple[str, ...] = ("source", "flat")

#: Deepest tree the ``source`` variant will emit.  CPython's tokenizer
#: rejects more than 100 indentation levels; trees beyond this should
#: use the depth-unbounded ``flat`` variant.
MAX_SOURCE_DEPTH = 90


def _feature_arg_names(
    tree: Tree, feature_names: Optional[Sequence[str]]
) -> Tuple[str, ...]:
    """Validated argument names for the generated descent function.

    When ``feature_names`` is omitted the width is inferred from the
    highest feature the tree actually splits on; selectors should pass
    the full trained feature width so unused trailing features stay in
    the signature.
    """
    if feature_names is None:
        width = int(tree.feature.max(initial=-1)) + 1
        feature_names = tuple(f"x{i}" for i in range(width))
    else:
        feature_names = tuple(str(name) for name in feature_names)
        needed = int(tree.feature.max(initial=-1)) + 1
        if len(feature_names) < needed:
            raise ValueError(
                f"tree splits on feature {needed - 1} but only "
                f"{len(feature_names)} feature names were given"
            )
    for name in feature_names:
        if not name.isidentifier():
            raise ValueError(f"feature name {name!r} is not an identifier")
    return feature_names


def tree_apply_source(
    tree: Tree,
    *,
    function_name: str = "tree_apply",
    feature_names: Optional[Sequence[str]] = None,
) -> str:
    """Nested-``if`` Python source descending ``tree`` for one sample.

    The generated function takes one scalar argument per feature and
    returns the *leaf node index* the sample lands in — the same value
    :meth:`Tree.apply_loop` computes — so callers can layer any
    per-leaf payload (class, config, pointer) on top with one list
    index.  Thresholds are emitted with ``repr`` and round-trip
    exactly, keeping every comparison bit-identical to the reference
    walk.
    """
    if not function_name.isidentifier():
        raise ValueError(f"function name {function_name!r} is not an identifier")
    names = _feature_arg_names(tree, feature_names)
    depth_cap = tree.max_depth
    if depth_cap > MAX_SOURCE_DEPTH:
        raise ValueError(
            f"tree depth {depth_cap} exceeds the nested-if source limit "
            f"({MAX_SOURCE_DEPTH}); use compile_tree(..., variant='flat')"
        )
    lines: List[str] = [f"def {function_name}({', '.join(names)}):"]
    if tree.node_count == 0:
        lines.append("    return 0")
        return "\n".join(lines) + "\n"

    def walk(node: int, depth: int) -> None:
        indent = "    " * depth
        if tree.feature[node] == LEAF:
            lines.append(f"{indent}return {node}")
            return
        f, t = int(tree.feature[node]), float(tree.threshold[node])
        lines.append(f"{indent}if {names[f]} <= {t!r}:")
        walk(int(tree.left[node]), depth + 1)
        lines.append(f"{indent}else:")
        walk(int(tree.right[node]), depth + 1)

    walk(0, 1)
    return "\n".join(lines) + "\n"


def _compile_source(source: str, function_name: str) -> Callable[..., int]:
    namespace: dict = {}
    code = compile(source, "<repro.ml.tree.codegen>", "exec")
    exec(code, namespace)  # noqa: S102 - our own emitted source
    return namespace[function_name]


def _flat_apply_fn(tree: Tree) -> Callable[..., int]:
    """Branchless flat-array descent closure for one sample.

    The hot loop touches only three local lists; left/right are packed
    into one children list so the comparison result indexes directly:
    ``1 - (x <= t)`` is 0 for the left branch and 1 for the right, and
    (like the reference walk's ``else``) sends NaN right.
    """
    feature = [int(f) for f in tree.feature]
    threshold = [float(t) for t in tree.threshold]
    children: List[int] = []
    for left, right in zip(tree.left, tree.right):
        children.append(int(left))
        children.append(int(right))
    if not feature:
        feature, threshold, children = [LEAF], [0.0], [0, 0]

    def apply_one(*x: float) -> int:
        node = 0
        f = feature[0]
        while f >= 0:
            node = children[2 * node + 1 - (x[f] <= threshold[node])]
            f = feature[node]
        return node

    return apply_one


class CompiledTree:
    """A fitted tree compiled for scalar sub-microsecond descent.

    ``apply_one`` is a plain function attribute (grab it once on the
    hot path): called with one scalar per feature, it returns the leaf
    node index, bit-identical to :meth:`Tree.apply_loop` on the same
    (float64) inputs.  :meth:`apply` is the array convenience used by
    the differential tests.
    """

    __slots__ = ("variant", "source", "feature_names", "apply_one", "node_count")

    def __init__(
        self,
        variant: str,
        apply_one: Callable[..., int],
        feature_names: Tuple[str, ...],
        node_count: int,
        source: Optional[str] = None,
    ):
        self.variant = variant
        self.apply_one = apply_one
        self.feature_names = feature_names
        self.node_count = node_count
        self.source = source

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index per row, via the compiled scalar descent.

        Rows are converted to float64 first (exactly like the reference
        walk), so results match :meth:`Tree.apply_loop` bit for bit.
        """
        X = np.asarray(X, dtype=np.float64)
        X = np.atleast_2d(X)
        fn = self.apply_one
        # Trailing features the tree never splits on are dropped to the
        # compiled function's arity (a no-split tree takes no arguments).
        arity = len(self.feature_names)
        return np.fromiter(
            (fn(*row[:arity]) for row in X.tolist()),
            dtype=np.int64,
            count=len(X),
        )

    def __repr__(self) -> str:
        return (
            f"CompiledTree(variant={self.variant!r}, "
            f"{self.node_count} nodes, features {list(self.feature_names)})"
        )


def compile_tree(
    tree: Tree,
    *,
    variant: str = "source",
    feature_names: Optional[Sequence[str]] = None,
    function_name: str = "tree_apply",
) -> CompiledTree:
    """Compile a fitted tree into a :class:`CompiledTree`.

    ``variant`` is ``"source"`` (generated nested-``if`` Python, the
    fastest) or ``"flat"`` (branchless flat-array descent, unbounded
    depth).  Both return leaf node indices bit-identical to
    :meth:`Tree.apply_loop`.
    """
    if variant not in COMPILE_VARIANTS:
        raise ValueError(
            f"unknown codegen variant {variant!r}; known: {list(COMPILE_VARIANTS)}"
        )
    names = _feature_arg_names(tree, feature_names)
    if variant == "source":
        source = tree_apply_source(
            tree, function_name=function_name, feature_names=names
        )
        fn = _compile_source(source, function_name)
        return CompiledTree("source", fn, names, tree.node_count, source=source)
    return CompiledTree("flat", _flat_apply_fn(tree), names, tree.node_count)
