"""Split criteria: Gini impurity and multi-output mean squared error.

Both criteria work on a per-node target matrix ``Y``:

* classification — ``Y`` is a one-hot encoding; Gini is computed from
  column sums;
* regression — ``Y`` is the raw (possibly multi-output) target; MSE is the
  summed per-output variance.

The heavy operation is scanning all split positions of one sorted
feature; both criteria do it with cumulative sums so the scan is O(n * K)
vectorised work rather than a Python loop per candidate.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GiniCriterion", "MSECriterion"]


class _CumulativeCriterion:
    """Shared machinery: impurity for every split position of a sorted node."""

    def split_costs(self, y_sorted: np.ndarray) -> np.ndarray:
        """Weighted child impurity for splitting after position i (1..n-1).

        Returns an array of length n-1 where entry ``i-1`` is
        ``n_left * imp_left + n_right * imp_right`` for a split placing the
        first ``i`` samples on the left.  Lower is better; the parent's
        cost is ``n * node_impurity``.
        """
        raise NotImplementedError

    def node_impurity(self, y: np.ndarray) -> float:
        raise NotImplementedError

    def node_value(self, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class GiniCriterion(_CumulativeCriterion):
    """Gini impurity over one-hot class indicators."""

    def node_value(self, y: np.ndarray) -> np.ndarray:
        # Class probability vector.
        return y.mean(axis=0)

    def node_impurity(self, y: np.ndarray) -> float:
        p = y.mean(axis=0)
        return float(1.0 - np.sum(p * p))

    def split_costs(self, y_sorted: np.ndarray) -> np.ndarray:
        n = y_sorted.shape[0]
        left_counts = np.cumsum(y_sorted, axis=0)[:-1]  # (n-1, C)
        total = left_counts[-1] + y_sorted[-1]
        right_counts = total[None, :] - left_counts
        n_left = np.arange(1, n, dtype=np.float64)
        n_right = n - n_left
        gini_left = n_left - np.sum(left_counts * left_counts, axis=1) / n_left
        gini_right = n_right - np.sum(right_counts * right_counts, axis=1) / n_right
        return gini_left + gini_right


class MSECriterion(_CumulativeCriterion):
    """Summed per-output squared error (multi-output regression).

    The cost of a node is its SSE; ``n * impurity`` where impurity is the
    mean per-sample squared deviation summed across outputs.
    """

    def node_value(self, y: np.ndarray) -> np.ndarray:
        return y.mean(axis=0)

    def node_impurity(self, y: np.ndarray) -> float:
        return float(np.mean(np.sum((y - y.mean(axis=0)) ** 2, axis=1)))

    def split_costs(self, y_sorted: np.ndarray) -> np.ndarray:
        n = y_sorted.shape[0]
        s = np.cumsum(y_sorted, axis=0)  # (n, K)
        q = np.cumsum(y_sorted * y_sorted, axis=0)
        s_left, q_left = s[:-1], q[:-1]
        s_tot, q_tot = s[-1], q[-1]
        n_left = np.arange(1, n, dtype=np.float64)[:, None]
        n_right = n - n_left
        sse_left = np.sum(q_left - s_left * s_left / n_left, axis=1)
        sse_right = np.sum(
            (q_tot - q_left) - (s_tot - s_left) ** 2 / n_right, axis=1
        )
        # Cancellation can produce tiny negatives; clamp.
        return np.maximum(sse_left, 0.0) + np.maximum(sse_right, 0.0)
