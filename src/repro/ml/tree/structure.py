"""Flat array representation of a fitted decision tree.

Nodes live in parallel arrays (feature, threshold, children, value,
impurity, sample count) — the same layout sklearn uses — so prediction is
an iterative descent with no recursion or per-node objects.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["Tree", "TreeBuilderState"]

LEAF = -1


class Tree:
    """Immutable fitted tree."""

    def __init__(
        self,
        feature: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        value: np.ndarray,
        impurity: np.ndarray,
        n_samples: np.ndarray,
    ):
        self.feature = feature
        self.threshold = threshold
        self.left = left
        self.right = right
        self.value = value
        self.impurity = impurity
        self.n_samples = n_samples

    @property
    def node_count(self) -> int:
        return len(self.feature)

    @property
    def n_leaves(self) -> int:
        return int(np.sum(self.feature == LEAF))

    @property
    def max_depth(self) -> int:
        depth = np.zeros(self.node_count, dtype=np.int64)
        for node in range(self.node_count):
            if self.feature[node] != LEAF:
                depth[self.left[node]] = depth[node] + 1
                depth[self.right[node]] = depth[node] + 1
        return int(depth.max()) if self.node_count else 0

    def is_leaf(self, node: int) -> bool:
        return self.feature[node] == LEAF

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index reached by each sample.

        Vectorized iterative descent: every still-internal sample advances
        one level per step through gathered ``feature``/``threshold``/
        ``left``/``right`` arrays, so a batch of n samples costs
        O(max_depth) NumPy passes instead of n Python tree walks.  The
        comparisons are the same ``x <= threshold`` as the scalar walk, so
        results are bit-identical to :meth:`apply_loop`.
        """
        X = np.asarray(X, dtype=np.float64)
        n = X.shape[0]
        nodes = np.zeros(n, dtype=np.int64)
        if n == 0 or self.node_count == 0:
            return nodes
        active = np.nonzero(self.feature[nodes] != LEAF)[0]
        while active.size:
            cur = nodes[active]
            feat = self.feature[cur]
            go_left = X[active, feat] <= self.threshold[cur]
            nodes[active] = np.where(go_left, self.left[cur], self.right[cur])
            active = active[self.feature[nodes[active]] != LEAF]
        return nodes

    def apply_loop(self, X: np.ndarray) -> np.ndarray:
        """Reference scalar descent (one Python walk per sample).

        Kept as the ground truth the vectorized :meth:`apply` is tested
        against; prefer :meth:`apply` everywhere else.
        """
        X = np.asarray(X, dtype=np.float64)
        n = X.shape[0]
        out = np.empty(n, dtype=np.int64)
        for i in range(n):
            node = 0
            while self.feature[node] != LEAF:
                if X[i, self.feature[node]] <= self.threshold[node]:
                    node = self.left[node]
                else:
                    node = self.right[node]
            out[i] = node
        return out

    def predict_value(self, X: np.ndarray) -> np.ndarray:
        """Per-sample node values (class distribution or regression mean)."""
        return self.value[self.apply(X)]

    def leaf_values(self) -> np.ndarray:
        """Values of all leaves, in node order."""
        return self.value[self.feature == LEAF]

    def decision_path_nodes(self, x: np.ndarray) -> List[int]:
        """The sequence of node ids one sample traverses."""
        x = np.asarray(x, dtype=np.float64)
        node = 0
        path = [0]
        while self.feature[node] != LEAF:
            if x[self.feature[node]] <= self.threshold[node]:
                node = int(self.left[node])
            else:
                node = int(self.right[node])
            path.append(node)
        return path


class TreeBuilderState:
    """Mutable node storage used while growing, frozen into a Tree."""

    def __init__(self, n_outputs: int):
        self.feature: List[int] = []
        self.threshold: List[float] = []
        self.left: List[int] = []
        self.right: List[int] = []
        self.value: List[np.ndarray] = []
        self.impurity: List[float] = []
        self.n_samples: List[int] = []
        self._n_outputs = n_outputs

    def add_node(self, value: np.ndarray, impurity: float, n_samples: int) -> int:
        node_id = len(self.feature)
        self.feature.append(LEAF)
        self.threshold.append(0.0)
        self.left.append(LEAF)
        self.right.append(LEAF)
        self.value.append(np.asarray(value, dtype=np.float64))
        self.impurity.append(float(impurity))
        self.n_samples.append(int(n_samples))
        return node_id

    def make_split(
        self, node_id: int, feature: int, threshold: float, left: int, right: int
    ) -> None:
        self.feature[node_id] = int(feature)
        self.threshold[node_id] = float(threshold)
        self.left[node_id] = int(left)
        self.right[node_id] = int(right)

    def freeze(self) -> Tree:
        return Tree(
            feature=np.asarray(self.feature, dtype=np.int64),
            threshold=np.asarray(self.threshold, dtype=np.float64),
            left=np.asarray(self.left, dtype=np.int64),
            right=np.asarray(self.right, dtype=np.int64),
            value=np.vstack(self.value),
            impurity=np.asarray(self.impurity, dtype=np.float64),
            n_samples=np.asarray(self.n_samples, dtype=np.int64),
        )
