"""Tree export: human-readable text and nested-``if`` source code.

Section IV's deployment argument is that "decision trees can be
implemented as a series of nested if statements".  These exporters emit
exactly that — Python for in-process use and C++ for dropping into a
SYCL library's dispatch layer — from any fitted tree.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.ml.tree.structure import LEAF, Tree

__all__ = ["export_cpp", "export_python", "export_text"]


def _leaf_label(tree: Tree, node: int, class_names: Optional[Sequence[str]]) -> str:
    value = tree.value[node]
    winner = int(np.argmax(value))
    if class_names is not None:
        return str(class_names[winner])
    return str(winner)


def export_text(
    tree: Tree,
    *,
    feature_names: Optional[Sequence[str]] = None,
    class_names: Optional[Sequence[str]] = None,
    precision: int = 2,
) -> str:
    """An indented textual rendering of the decision structure."""

    def fname(f: int) -> str:
        return feature_names[f] if feature_names is not None else f"x[{f}]"

    lines: List[str] = []

    def walk(node: int, depth: int) -> None:
        indent = "|   " * depth
        if tree.feature[node] == LEAF:
            lines.append(
                f"{indent}|--- value: {_leaf_label(tree, node, class_names)} "
                f"(n={tree.n_samples[node]})"
            )
            return
        f, t = int(tree.feature[node]), tree.threshold[node]
        lines.append(f"{indent}|--- {fname(f)} <= {t:.{precision}f}")
        walk(int(tree.left[node]), depth + 1)
        lines.append(f"{indent}|--- {fname(f)} >  {t:.{precision}f}")
        walk(int(tree.right[node]), depth + 1)

    walk(0, 0)
    return "\n".join(lines)


def export_python(
    tree: Tree,
    *,
    function_name: str = "select",
    feature_names: Optional[Sequence[str]] = None,
    class_names: Optional[Sequence[str]] = None,
) -> str:
    """Standalone Python function implementing the tree as nested ifs.

    Leaf results are the argmax class (by index or ``class_names`` entry);
    the generated function takes the feature values as arguments.
    """
    n_features = int(tree.feature.max(initial=0)) + 1
    if feature_names is None:
        feature_names = [f"x{i}" for i in range(n_features)]
    args = ", ".join(feature_names)
    lines = [f"def {function_name}({args}):"]

    def walk(node: int, depth: int) -> None:
        indent = "    " * depth
        if tree.feature[node] == LEAF:
            lines.append(f"{indent}return {_leaf_label(tree, node, class_names)!r}")
            return
        f, t = int(tree.feature[node]), float(tree.threshold[node])
        lines.append(f"{indent}if {feature_names[f]} <= {t!r}:")
        walk(int(tree.left[node]), depth + 1)
        lines.append(f"{indent}else:")
        walk(int(tree.right[node]), depth + 1)

    walk(0, 1)
    return "\n".join(lines) + "\n"


def export_cpp(
    tree: Tree,
    *,
    function_name: str = "select_kernel",
    feature_names: Optional[Sequence[str]] = None,
    class_names: Optional[Sequence[str]] = None,
    return_type: str = "int",
) -> str:
    """A C++ function implementing the tree, suitable for a SYCL library.

    With ``class_names`` given, leaves return those tokens verbatim (e.g.
    enum values or template-instantiation tags); otherwise the class index.
    """
    n_features = int(tree.feature.max(initial=0)) + 1
    if feature_names is None:
        feature_names = [f"x{i}" for i in range(n_features)]
    params = ", ".join(f"double {name}" for name in feature_names)
    lines = [f"{return_type} {function_name}({params}) {{"]

    def leaf_expr(node: int) -> str:
        value = tree.value[node]
        winner = int(np.argmax(value))
        return str(class_names[winner]) if class_names is not None else str(winner)

    def walk(node: int, depth: int) -> None:
        indent = "  " * depth
        if tree.feature[node] == LEAF:
            lines.append(f"{indent}return {leaf_expr(node)};")
            return
        f, t = int(tree.feature[node]), float(tree.threshold[node])
        lines.append(f"{indent}if ({feature_names[f]} <= {t!r}) {{")
        walk(int(tree.left[node]), depth + 1)
        lines.append(f"{indent}}} else {{")
        walk(int(tree.right[node]), depth + 1)
        lines.append(f"{indent}}}")

    walk(0, 1)
    lines.append("}")
    return "\n".join(lines) + "\n"
