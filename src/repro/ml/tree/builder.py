"""Tree growth: depth-first CART and best-first with a leaf budget."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.ml.tree.criteria import _CumulativeCriterion
from repro.ml.tree.splitter import Split, find_best_split
from repro.ml.tree.structure import Tree, TreeBuilderState

__all__ = ["GrowthParams", "grow_best_first", "grow_depth_first"]


@dataclass(frozen=True)
class GrowthParams:
    """Stopping rules shared by both growth strategies."""

    max_depth: Optional[int] = None
    min_samples_split: int = 2
    min_samples_leaf: int = 1
    max_leaf_nodes: Optional[int] = None
    #: Number of features examined per split; None means all.  Used by
    #: random forests for feature subsampling.
    max_features: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_depth is not None and self.max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {self.max_depth}")
        if self.min_samples_split < 2:
            raise ValueError(
                f"min_samples_split must be >= 2, got {self.min_samples_split}"
            )
        if self.min_samples_leaf < 1:
            raise ValueError(
                f"min_samples_leaf must be >= 1, got {self.min_samples_leaf}"
            )
        if self.max_leaf_nodes is not None and self.max_leaf_nodes < 2:
            raise ValueError(
                f"max_leaf_nodes must be >= 2, got {self.max_leaf_nodes}"
            )
        if self.max_features is not None and self.max_features < 1:
            raise ValueError(
                f"max_features must be >= 1, got {self.max_features}"
            )


def _feature_subset(
    n_features: int,
    params: GrowthParams,
    rng: Optional[np.random.Generator],
) -> Optional[Sequence[int]]:
    if params.max_features is None or params.max_features >= n_features:
        return None
    if rng is None:
        raise ValueError("max_features subsampling requires an rng")
    return rng.choice(n_features, size=params.max_features, replace=False)


def _try_split(
    X: np.ndarray,
    y: np.ndarray,
    idx: np.ndarray,
    depth: int,
    criterion: _CumulativeCriterion,
    params: GrowthParams,
    rng: Optional[np.random.Generator],
) -> Optional[Split]:
    if params.max_depth is not None and depth >= params.max_depth:
        return None
    if len(idx) < params.min_samples_split:
        return None
    features = _feature_subset(X.shape[1], params, rng)
    return find_best_split(
        X[idx],
        y[idx],
        criterion,
        min_samples_leaf=params.min_samples_leaf,
        features=features,
    )


def grow_depth_first(
    X: np.ndarray,
    y: np.ndarray,
    criterion: _CumulativeCriterion,
    params: GrowthParams,
    rng: Optional[np.random.Generator] = None,
) -> Tree:
    """Classic recursive CART growth (iterative stack, no recursion limit)."""
    state = TreeBuilderState(n_outputs=y.shape[1])
    root_idx = np.arange(X.shape[0])
    root = state.add_node(
        criterion.node_value(y), criterion.node_impurity(y), len(root_idx)
    )
    stack = [(root, root_idx, 0)]
    while stack:
        node_id, idx, depth = stack.pop()
        split = _try_split(X, y, idx, depth, criterion, params, rng)
        if split is None:
            continue
        left_idx = idx[split.left_mask]
        right_idx = idx[~split.left_mask]
        left = state.add_node(
            criterion.node_value(y[left_idx]),
            criterion.node_impurity(y[left_idx]),
            len(left_idx),
        )
        right = state.add_node(
            criterion.node_value(y[right_idx]),
            criterion.node_impurity(y[right_idx]),
            len(right_idx),
        )
        state.make_split(node_id, split.feature, split.threshold, left, right)
        stack.append((left, left_idx, depth + 1))
        stack.append((right, right_idx, depth + 1))
    return state.freeze()


@dataclass(order=True)
class _Frontier:
    """Heap entry: best-improvement-first, FIFO tiebreak for determinism."""

    neg_improvement: float
    order: int
    node_id: int = field(compare=False)
    idx: np.ndarray = field(compare=False)
    depth: int = field(compare=False)
    split: Split = field(compare=False)


def grow_best_first(
    X: np.ndarray,
    y: np.ndarray,
    criterion: _CumulativeCriterion,
    params: GrowthParams,
    rng: Optional[np.random.Generator] = None,
) -> Tree:
    """Best-first growth honouring ``max_leaf_nodes``.

    The frontier is a priority queue of splittable leaves keyed by the
    impurity improvement their best split would realise; expanding the
    best leaf first means a leaf budget keeps the most informative
    structure (sklearn's strategy for ``max_leaf_nodes``).
    """
    if params.max_leaf_nodes is None:
        raise ValueError("grow_best_first requires max_leaf_nodes")
    state = TreeBuilderState(n_outputs=y.shape[1])
    counter = itertools.count()
    root_idx = np.arange(X.shape[0])
    root = state.add_node(
        criterion.node_value(y), criterion.node_impurity(y), len(root_idx)
    )

    heap: list = []

    def push(node_id: int, idx: np.ndarray, depth: int) -> None:
        split = _try_split(X, y, idx, depth, criterion, params, rng)
        if split is not None:
            heapq.heappush(
                heap,
                _Frontier(
                    neg_improvement=-split.improvement,
                    order=next(counter),
                    node_id=node_id,
                    idx=idx,
                    depth=depth,
                    split=split,
                ),
            )

    push(root, root_idx, 0)
    n_leaves = 1
    while heap and n_leaves < params.max_leaf_nodes:
        entry = heapq.heappop(heap)
        split = entry.split
        left_idx = entry.idx[split.left_mask]
        right_idx = entry.idx[~split.left_mask]
        left = state.add_node(
            criterion.node_value(y[left_idx]),
            criterion.node_impurity(y[left_idx]),
            len(left_idx),
        )
        right = state.add_node(
            criterion.node_value(y[right_idx]),
            criterion.node_impurity(y[right_idx]),
            len(right_idx),
        )
        state.make_split(
            entry.node_id, split.feature, split.threshold, left, right
        )
        n_leaves += 1  # one leaf became two
        push(left, left_idx, entry.depth + 1)
        push(right, right_idx, entry.depth + 1)
    return state.freeze()
