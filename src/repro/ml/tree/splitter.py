"""Best-split search across features."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.ml.tree.criteria import _CumulativeCriterion

__all__ = ["Split", "find_best_split"]


@dataclass(frozen=True)
class Split:
    """A candidate split of one node."""

    feature: int
    threshold: float
    #: Impurity-cost improvement: parent cost minus children cost
    #: (both in "n * impurity" units), always > 0 for a returned split.
    improvement: float
    #: Boolean mask over the node's samples: True goes left.
    left_mask: np.ndarray


def find_best_split(
    X: np.ndarray,
    y: np.ndarray,
    criterion: _CumulativeCriterion,
    *,
    min_samples_leaf: int = 1,
    features: Optional[Sequence[int]] = None,
) -> Optional[Split]:
    """Exhaustive best split of a node over the given features.

    ``X``/``y`` are the node's samples.  Splits are placed halfway between
    distinct consecutive sorted values; positions violating
    ``min_samples_leaf`` are excluded.  Returns ``None`` for pure or
    unsplittable nodes.  Zero-improvement splits of impure nodes are
    allowed (CART semantics: XOR-like targets need a neutral first split
    before any impurity decrease is possible).
    """
    n = X.shape[0]
    if n < 2 * min_samples_leaf or n < 2:
        return None
    parent_impurity = criterion.node_impurity(y)
    if parent_impurity <= 1e-12:
        return None
    parent_cost = n * parent_impurity
    feature_ids = range(X.shape[1]) if features is None else features

    best: Optional[Split] = None
    best_cost = np.inf
    for f in feature_ids:
        col = X[:, f]
        order = np.argsort(col, kind="stable")
        col_sorted = col[order]
        # Valid split positions: between distinct values, honouring leaf
        # minima.  Position i puts samples [0, i) left.
        distinct = col_sorted[1:] != col_sorted[:-1]
        positions = np.nonzero(distinct)[0] + 1
        if min_samples_leaf > 1:
            positions = positions[
                (positions >= min_samples_leaf)
                & (positions <= n - min_samples_leaf)
            ]
        if len(positions) == 0:
            continue
        costs = criterion.split_costs(y[order])
        pos_costs = costs[positions - 1]
        local_best = int(np.argmin(pos_costs))
        cost = float(pos_costs[local_best])
        if cost < best_cost - 1e-15:
            pos = int(positions[local_best])
            threshold = 0.5 * (col_sorted[pos - 1] + col_sorted[pos])
            # Guard against midpoint rounding onto the right value.
            if threshold >= col_sorted[pos]:
                threshold = col_sorted[pos - 1]
            best_cost = cost
            best = Split(
                feature=int(f),
                threshold=float(threshold),
                improvement=float(parent_cost - cost),
                left_mask=col <= threshold,
            )
    if best is None or best.improvement < -1e-9:
        return None
    if best.improvement < 0.0:  # clamp float cancellation noise
        best = Split(
            feature=best.feature,
            threshold=best.threshold,
            improvement=0.0,
            left_mask=best.left_mask,
        )
    return best
