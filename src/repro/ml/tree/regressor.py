"""Multi-output decision tree regressor (CART, MSE).

The paper's decision-tree pruner regresses the full 640-wide vector of
normalized performance scores against the matrix-size features with a
bounded number of leaves; each leaf's mean vector then acts as a cluster
representative.  Multi-output support is therefore first-class here.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import BaseEstimator, check_is_fitted
from repro.ml.tree.builder import GrowthParams, grow_best_first, grow_depth_first
from repro.ml.tree.criteria import MSECriterion
from repro.utils.rng import rng_from
from repro.utils.validation import check_array

__all__ = ["DecisionTreeRegressor"]


class DecisionTreeRegressor(BaseEstimator):
    """CART regressor minimising summed per-output squared error."""

    def __init__(
        self,
        *,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_leaf_nodes: Optional[int] = None,
        max_features: Optional[int] = None,
        random_state=None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_leaf_nodes = max_leaf_nodes
        self.max_features = max_features
        self.random_state = random_state

    def fit(self, X, y) -> "DecisionTreeRegressor":
        X = check_array(X, name="X")
        y = np.asarray(y, dtype=np.float64)
        if y.ndim == 1:
            y = y[:, None]
            self._single_output = True
        elif y.ndim == 2:
            self._single_output = False
        else:
            raise ValueError(f"y must be 1-D or 2-D, got shape {y.shape}")
        if len(X) != len(y):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)}")

        params = GrowthParams(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_leaf_nodes=self.max_leaf_nodes,
            max_features=self.max_features,
        )
        rng = rng_from(self.random_state) if self.random_state is not None else None
        criterion = MSECriterion()
        if self.max_leaf_nodes is not None:
            self.tree_ = grow_best_first(X, y, criterion, params, rng)
        else:
            self.tree_ = grow_depth_first(X, y, criterion, params, rng)
        self.n_features_in_ = X.shape[1]
        self.n_outputs_ = y.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "tree_")
        X = check_array(X, name="X")
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; fit used {self.n_features_in_}"
            )
        out = self.tree_.predict_value(X)
        return out[:, 0] if self._single_output else out

    def leaf_representatives(self) -> np.ndarray:
        """Mean target vector of every leaf — the pruner's representatives."""
        check_is_fitted(self, "tree_")
        return self.tree_.leaf_values()

    def score(self, X, y) -> float:
        from repro.ml.metrics import r2_score

        return r2_score(np.asarray(y, dtype=np.float64), self.predict(X))

    @property
    def n_leaves_(self) -> int:
        check_is_fitted(self, "tree_")
        return self.tree_.n_leaves
