"""Random forests: bagged CART trees with feature subsampling.

:class:`RandomForestClassifier` is the paper's Table I entry (bagged
Gini trees).  :class:`RandomForestRegressor` bags the MSE regressor and
additionally exposes the cross-tree prediction spread
(:meth:`RandomForestRegressor.predict_std`), which the onboarding
layer's active sampler uses as its uncertainty signal
(:mod:`repro.onboard.sampler`).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ml.base import BaseEstimator, check_is_fitted
from repro.ml.tree.classifier import DecisionTreeClassifier
from repro.ml.tree.regressor import DecisionTreeRegressor
from repro.utils.rng import rng_from
from repro.utils.validation import check_array, check_positive_int

__all__ = ["RandomForestClassifier", "RandomForestRegressor"]


class RandomForestClassifier(BaseEstimator):
    """Bootstrap-aggregated decision trees (Breiman 2001).

    Each tree is trained on a bootstrap resample with ``sqrt(n_features)``
    features considered per split (the classification default).
    Predictions average the trees' class probability vectors.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        *,
        max_depth: Optional[int] = None,
        min_samples_leaf: int = 1,
        max_features: str | int | None = "sqrt",
        bootstrap: bool = True,
        random_state=None,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state

    def _resolve_max_features(self, n_features: int) -> Optional[int]:
        mf = self.max_features
        if mf is None:
            return None
        if mf == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if mf == "log2":
            return max(1, int(np.log2(n_features)))
        if isinstance(mf, (int, np.integer)):
            return int(min(mf, n_features))
        raise ValueError(f"unsupported max_features {mf!r}")

    def fit(self, X, y) -> "RandomForestClassifier":
        X = check_array(X, name="X")
        y = np.asarray(y)
        if len(X) != len(y):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
        check_positive_int(self.n_estimators, "n_estimators")
        rng = rng_from(self.random_state)
        self.classes_ = np.unique(y)
        n = len(X)
        max_features = self._resolve_max_features(X.shape[1])

        self.estimators_: List[DecisionTreeClassifier] = []
        self._estimator_classes: List[np.ndarray] = []
        for _ in range(self.n_estimators):
            if self.bootstrap:
                sample = rng.integers(0, n, size=n)
            else:
                sample = np.arange(n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                random_state=int(rng.integers(2**31 - 1)),
            )
            tree.fit(X[sample], y[sample])
            self.estimators_.append(tree)
            self._estimator_classes.append(tree.classes_)
        self.n_features_in_ = X.shape[1]
        return self

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "estimators_")
        X = check_array(X, name="X")
        proba = np.zeros((X.shape[0], len(self.classes_)))
        class_pos = {c: i for i, c in enumerate(self.classes_.tolist())}
        for tree, tree_classes in zip(self.estimators_, self._estimator_classes):
            tree_proba = tree.predict_proba(X)
            # A bootstrap sample may miss classes; align columns.
            cols = [class_pos[c] for c in tree_classes.tolist()]
            proba[:, cols] += tree_proba
        proba /= len(self.estimators_)
        return proba

    def predict(self, X) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]

    def score(self, X, y) -> float:
        from repro.ml.metrics import accuracy_score

        return accuracy_score(np.asarray(y), self.predict(X))


class RandomForestRegressor(BaseEstimator):
    """Bootstrap-aggregated MSE regression trees (single-output).

    Predictions average the trees; :meth:`predict_std` returns the
    cross-tree standard deviation, a cheap epistemic-uncertainty proxy:
    rows far from the training distribution (or in regions where the
    bootstrap resamples disagree) spread the ensemble.  ``max_samples``
    caps the bootstrap sample size per tree, which bounds fit cost on
    large stacked datasets (the onboarding imputer trains over every
    fleet device's table at once).
    """

    def __init__(
        self,
        n_estimators: int = 10,
        *,
        max_depth: Optional[int] = None,
        min_samples_leaf: int = 1,
        max_features: str | int | None = "sqrt",
        max_samples: Optional[int] = None,
        bootstrap: bool = True,
        random_state=None,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.max_samples = max_samples
        self.bootstrap = bootstrap
        self.random_state = random_state

    # Same string conventions as the classifier.
    _resolve_max_features = RandomForestClassifier._resolve_max_features

    def fit(self, X, y) -> "RandomForestRegressor":
        X = check_array(X, name="X")
        y = np.asarray(y, dtype=np.float64)
        if y.ndim != 1:
            raise ValueError(f"y must be 1-D, got shape {y.shape}")
        if len(X) != len(y):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
        check_positive_int(self.n_estimators, "n_estimators")
        if self.max_samples is not None:
            check_positive_int(self.max_samples, "max_samples")
        rng = rng_from(self.random_state)
        n = len(X)
        size = n if self.max_samples is None else min(self.max_samples, n)
        max_features = self._resolve_max_features(X.shape[1])

        self.estimators_: List[DecisionTreeRegressor] = []
        for _ in range(self.n_estimators):
            if self.bootstrap:
                sample = rng.integers(0, n, size=size)
            elif size < n:
                sample = rng.choice(n, size=size, replace=False)
            else:
                sample = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                random_state=int(rng.integers(2**31 - 1)),
            )
            tree.fit(X[sample], y[sample])
            self.estimators_.append(tree)
        self.n_features_in_ = X.shape[1]
        return self

    def _tree_predictions(self, X) -> np.ndarray:
        check_is_fitted(self, "estimators_")
        X = check_array(X, name="X")
        return np.stack([tree.predict(X) for tree in self.estimators_])

    def predict(self, X) -> np.ndarray:
        return self._tree_predictions(X).mean(axis=0)

    def predict_std(self, X) -> np.ndarray:
        """Cross-tree standard deviation per row (0.0 for one tree)."""
        preds = self._tree_predictions(X)
        if preds.shape[0] == 1:
            return np.zeros(preds.shape[1])
        return preds.std(axis=0)

    def predict_with_std(self, X) -> tuple[np.ndarray, np.ndarray]:
        """(mean, cross-tree std) in one ensemble pass."""
        preds = self._tree_predictions(X)
        std = (
            np.zeros(preds.shape[1])
            if preds.shape[0] == 1
            else preds.std(axis=0)
        )
        return preds.mean(axis=0), std

    def score(self, X, y) -> float:
        from repro.ml.metrics import r2_score

        return r2_score(np.asarray(y, dtype=np.float64), self.predict(X))
