"""Random forest classifier: bagged Gini trees with feature subsampling."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ml.base import BaseEstimator, check_is_fitted
from repro.ml.tree.classifier import DecisionTreeClassifier
from repro.utils.rng import rng_from
from repro.utils.validation import check_array, check_positive_int

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier(BaseEstimator):
    """Bootstrap-aggregated decision trees (Breiman 2001).

    Each tree is trained on a bootstrap resample with ``sqrt(n_features)``
    features considered per split (the classification default).
    Predictions average the trees' class probability vectors.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        *,
        max_depth: Optional[int] = None,
        min_samples_leaf: int = 1,
        max_features: str | int | None = "sqrt",
        bootstrap: bool = True,
        random_state=None,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state

    def _resolve_max_features(self, n_features: int) -> Optional[int]:
        mf = self.max_features
        if mf is None:
            return None
        if mf == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if mf == "log2":
            return max(1, int(np.log2(n_features)))
        if isinstance(mf, (int, np.integer)):
            return int(min(mf, n_features))
        raise ValueError(f"unsupported max_features {mf!r}")

    def fit(self, X, y) -> "RandomForestClassifier":
        X = check_array(X, name="X")
        y = np.asarray(y)
        if len(X) != len(y):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
        check_positive_int(self.n_estimators, "n_estimators")
        rng = rng_from(self.random_state)
        self.classes_ = np.unique(y)
        n = len(X)
        max_features = self._resolve_max_features(X.shape[1])

        self.estimators_: List[DecisionTreeClassifier] = []
        self._estimator_classes: List[np.ndarray] = []
        for _ in range(self.n_estimators):
            if self.bootstrap:
                sample = rng.integers(0, n, size=n)
            else:
                sample = np.arange(n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                random_state=int(rng.integers(2**31 - 1)),
            )
            tree.fit(X[sample], y[sample])
            self.estimators_.append(tree)
            self._estimator_classes.append(tree.classes_)
        self.n_features_in_ = X.shape[1]
        return self

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "estimators_")
        X = check_array(X, name="X")
        proba = np.zeros((X.shape[0], len(self.classes_)))
        class_pos = {c: i for i, c in enumerate(self.classes_.tolist())}
        for tree, tree_classes in zip(self.estimators_, self._estimator_classes):
            tree_proba = tree.predict_proba(X)
            # A bootstrap sample may miss classes; align columns.
            cols = [class_pos[c] for c in tree_classes.tolist()]
            proba[:, cols] += tree_proba
        proba /= len(self.estimators_)
        return proba

    def predict(self, X) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]

    def score(self, X, y) -> float:
        from repro.ml.metrics import accuracy_score

        return accuracy_score(np.asarray(y), self.predict(X))
