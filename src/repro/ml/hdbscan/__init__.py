"""HDBSCAN: hierarchical density-based clustering.

Implements Campello, Moulavi & Sander (2013) with the excess-of-mass
cluster extraction of the reference ``hdbscan`` library (McInnes & Healy
2017):

1. core distances (k-NN, ``k = min_samples``) and the mutual
   reachability metric (:mod:`repro.ml.hdbscan.core`);
2. minimum spanning tree of the mutual reachability graph
   (:mod:`repro.ml.hdbscan.mst`);
3. single-linkage hierarchy from the sorted MST edges
   (:mod:`repro.ml.hdbscan.hierarchy`);
4. condensation by ``min_cluster_size`` and stability-based cluster
   selection (:mod:`repro.ml.hdbscan.condense`,
   :mod:`repro.ml.hdbscan.extract`).

Exposed as the :class:`HDBSCAN` estimator with ``labels_`` (noise = -1)
and per-cluster medoids for the pruning stage.
"""

from repro.ml.hdbscan.estimator import HDBSCAN

__all__ = ["HDBSCAN"]
