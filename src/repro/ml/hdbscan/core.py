"""Core distances and the mutual reachability metric."""

from __future__ import annotations

import numpy as np

from repro.ml.metrics import euclidean_distances
from repro.utils.validation import check_array, check_positive_int

__all__ = ["core_distances", "mutual_reachability"]


def core_distances(distances: np.ndarray, min_samples: int) -> np.ndarray:
    """Distance to each point's ``min_samples``-th nearest neighbour.

    ``distances`` is the symmetric pairwise matrix.  The point itself
    counts as its own 0-th neighbour, matching the reference library.
    """
    n = distances.shape[0]
    min_samples = check_positive_int(min_samples, "min_samples")
    if min_samples >= n:
        raise ValueError(
            f"min_samples={min_samples} must be < number of points {n}"
        )
    # Partial sort per row: kth smallest including self at position 0.
    return np.partition(distances, min_samples, axis=1)[:, min_samples]


def mutual_reachability(X, *, min_samples: int = 5) -> np.ndarray:
    """Mutual reachability distance matrix.

    ``d_mreach(a, b) = max(core(a), core(b), d(a, b))`` — the smoothing
    that makes single linkage robust to chaining through sparse regions.
    """
    X = check_array(X, name="X")
    d = euclidean_distances(X, X)
    core = core_distances(d, min_samples)
    mr = np.maximum(d, np.maximum(core[:, None], core[None, :]))
    np.fill_diagonal(mr, 0.0)
    return mr
