"""The HDBSCAN estimator tying the pipeline stages together."""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_is_fitted
from repro.ml.hdbscan.condense import condense_tree
from repro.ml.hdbscan.core import mutual_reachability
from repro.ml.hdbscan.extract import extract_clusters
from repro.ml.hdbscan.hierarchy import single_linkage
from repro.ml.hdbscan.mst import minimum_spanning_tree
from repro.utils.validation import check_array, check_positive_int

__all__ = ["HDBSCAN"]


class HDBSCAN(BaseEstimator):
    """Density-based clustering with noise (labels of -1).

    Parameters
    ----------
    min_cluster_size:
        Smallest grouping considered a cluster.
    min_samples:
        Neighbourhood size for core distances; defaults to
        ``min_cluster_size``.

    Attributes
    ----------
    labels_ : (n_samples,) cluster labels, -1 for noise.
    n_clusters_ : number of clusters found.
    condensed_tree_ : the condensed hierarchy (for inspection).
    """

    def __init__(self, *, min_cluster_size: int = 5, min_samples: int | None = None):
        self.min_cluster_size = min_cluster_size
        self.min_samples = min_samples

    def fit(self, X) -> "HDBSCAN":
        X = check_array(X, name="X")
        mcs = check_positive_int(self.min_cluster_size, "min_cluster_size", minimum=2)
        ms = self.min_samples if self.min_samples is not None else mcs
        ms = check_positive_int(ms, "min_samples")
        n = X.shape[0]
        if n < max(mcs, ms + 1):
            raise ValueError(
                f"need at least max(min_cluster_size, min_samples + 1) = "
                f"{max(mcs, ms + 1)} samples, got {n}"
            )
        self._X = X
        mreach = mutual_reachability(X, min_samples=ms)
        mst = minimum_spanning_tree(mreach)
        linkage = single_linkage(mst)
        self.condensed_tree_ = condense_tree(linkage, mcs)
        self.labels_, self._selected = extract_clusters(self.condensed_tree_)
        self.n_clusters_ = len(self._selected)
        self._mreach = mreach
        return self

    def fit_predict(self, X) -> np.ndarray:
        return self.fit(X).labels_

    def cluster_medoids(self) -> np.ndarray:
        """One representative point per cluster: the member minimising the
        summed mutual reachability distance to its cluster (the medoid).

        Returns the medoids' row indices into the fitted data, one per
        cluster in label order.  Raises if no clusters were found.
        """
        check_is_fitted(self, "labels_")
        if self.n_clusters_ == 0:
            raise ValueError("no clusters were found; cannot take medoids")
        medoids = np.empty(self.n_clusters_, dtype=np.int64)
        for label in range(self.n_clusters_):
            members = np.nonzero(self.labels_ == label)[0]
            within = self._mreach[np.ix_(members, members)].sum(axis=1)
            medoids[label] = members[int(np.argmin(within))]
        return medoids
