"""Single-linkage hierarchy from sorted MST edges (union-find)."""

from __future__ import annotations

import numpy as np

__all__ = ["single_linkage"]


class _UnionFind:
    """Union-find tracking the linkage id and size of each component."""

    def __init__(self, n: int):
        # Components 0..n-1 are points; merges create ids n, n+1, ...
        self._parent = np.arange(2 * n - 1, dtype=np.int64)
        self._size = np.concatenate(
            [np.ones(n, dtype=np.int64), np.zeros(n - 1, dtype=np.int64)]
        )
        self._next = n

    def find(self, x: int) -> int:
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:  # path compression
            self._parent[x], x = root, self._parent[x]
        return root

    def merge(self, a: int, b: int) -> int:
        new = self._next
        self._next += 1
        self._parent[a] = new
        self._parent[b] = new
        self._size[new] = self._size[a] + self._size[b]
        return new

    def size(self, x: int) -> int:
        return int(self._size[x])


def single_linkage(mst_edges: np.ndarray) -> np.ndarray:
    """SciPy-style linkage matrix from weight-sorted MST edges.

    Row ``i`` is ``(child_a, child_b, distance, size)`` creating cluster
    ``n + i``; children are point ids (< n) or earlier cluster ids.
    """
    mst_edges = np.asarray(mst_edges, dtype=np.float64)
    n = mst_edges.shape[0] + 1
    linkage = np.empty((n - 1, 4))
    uf = _UnionFind(n)
    for i, (u, v, w) in enumerate(mst_edges):
        a = uf.find(int(u))
        b = uf.find(int(v))
        if a == b:
            raise ValueError("MST edge list contains a cycle")
        linkage[i] = (a, b, w, uf.size(a) + uf.size(b))
        uf.merge(a, b)
    return linkage
