"""Condensing the single-linkage hierarchy by minimum cluster size.

Walking the dendrogram from the root, splits where both children hold at
least ``min_cluster_size`` points become true cluster splits; smaller
children are treated as points "falling out" of their parent cluster at
that level.  Levels are expressed as ``lambda = 1 / distance``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["CondensedTree", "condense_tree"]


@dataclass(frozen=True)
class CondensedTree:
    """Edge list of the condensed hierarchy.

    Children with ``child_size == 1`` and ``child < n_points`` are points;
    larger children are condensed clusters.  The root cluster has id
    ``n_points``.
    """

    parent: np.ndarray
    child: np.ndarray
    lambda_val: np.ndarray
    child_size: np.ndarray
    n_points: int

    def cluster_ids(self) -> np.ndarray:
        """All condensed cluster ids (root first)."""
        return np.unique(self.parent)

    def children_clusters(self, cluster: int) -> np.ndarray:
        mask = (self.parent == cluster) & (self.child_size > 1)
        return self.child[mask]

    def points_of(self, cluster: int) -> np.ndarray:
        """Points directly attached to ``cluster`` (not via sub-clusters)."""
        mask = (self.parent == cluster) & (self.child < self.n_points) & (
            self.child_size == 1
        )
        return self.child[mask]


def condense_tree(linkage: np.ndarray, min_cluster_size: int) -> CondensedTree:
    """Condense a single-linkage matrix (see module docstring)."""
    if min_cluster_size < 2:
        raise ValueError(
            f"min_cluster_size must be >= 2, got {min_cluster_size}"
        )
    n = linkage.shape[0] + 1
    root = 2 * (n - 1)  # dendrogram id of the top merge, as node index n + (n-2)

    def node_children(node: int):
        row = linkage[node - n]
        return int(row[0]), int(row[1]), float(row[2])

    def node_size(node: int) -> int:
        return 1 if node < n else int(linkage[node - n, 3])

    def subtree_points(node: int) -> List[int]:
        stack, points = [node], []
        while stack:
            cur = stack.pop()
            if cur < n:
                points.append(cur)
            else:
                a, b, _ = node_children(cur)
                stack.extend((a, b))
        return points

    parents: List[int] = []
    children: List[int] = []
    lambdas: List[float] = []
    sizes: List[int] = []

    def emit(parent: int, child: int, lam: float, size: int) -> None:
        parents.append(parent)
        children.append(child)
        lambdas.append(lam)
        sizes.append(size)

    next_cluster = n + 1
    # (dendrogram node, condensed cluster id it belongs to)
    stack = [(root, n)]
    while stack:
        node, cluster = stack.pop()
        if node < n:
            continue
        left, right, dist = node_children(node)
        lam = 1.0 / dist if dist > 0 else np.inf
        left_big = node_size(left) >= min_cluster_size
        right_big = node_size(right) >= min_cluster_size
        if left_big and right_big:
            for child_node in (left, right):
                cid = next_cluster
                next_cluster += 1
                emit(cluster, cid, lam, node_size(child_node))
                stack.append((child_node, cid))
        elif left_big != right_big:
            big, small = (left, right) if left_big else (right, left)
            for p in subtree_points(small):
                emit(cluster, p, lam, 1)
            stack.append((big, cluster))
        else:
            for p in subtree_points(left) + subtree_points(right):
                emit(cluster, p, lam, 1)

    return CondensedTree(
        parent=np.asarray(parents, dtype=np.int64),
        child=np.asarray(children, dtype=np.int64),
        lambda_val=np.asarray(lambdas, dtype=np.float64),
        child_size=np.asarray(sizes, dtype=np.int64),
        n_points=n,
    )
