"""Stability computation and excess-of-mass cluster selection."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.ml.hdbscan.condense import CondensedTree

__all__ = ["cluster_births", "cluster_stabilities", "extract_clusters"]


def cluster_births(tree: CondensedTree) -> Dict[int, float]:
    """Lambda at which each condensed cluster appears (root: 0)."""
    birth: Dict[int, float] = {int(tree.n_points): 0.0}
    for c, lam, size in zip(tree.child, tree.lambda_val, tree.child_size):
        if size > 1:
            birth[int(c)] = float(lam)
    return birth


def cluster_stabilities(tree: CondensedTree) -> Dict[int, float]:
    """Stability of each condensed cluster.

    ``sum over members (lambda_leave - lambda_birth)``, where a member's
    leave level is the lambda at which it (or the sub-cluster containing
    it) detaches, and birth is the lambda at which the cluster itself
    appeared.
    """
    birth = cluster_births(tree)

    stability: Dict[int, float] = {cid: 0.0 for cid in birth}
    for p, lam, size in zip(tree.parent, tree.lambda_val, tree.child_size):
        lam_birth = birth[int(p)]
        lam_leave = float(lam) if np.isfinite(lam) else lam_birth
        stability[int(p)] += (lam_leave - lam_birth) * int(size)
    return stability


def extract_clusters(
    tree: CondensedTree,
) -> Tuple[np.ndarray, List[int]]:
    """Excess-of-mass selection (Campello et al. 2013, def. 4.4).

    Processing clusters leaves-upward, a cluster is kept if its own
    stability exceeds the summed stability of its selected descendants;
    otherwise the descendants win and their total propagates up.  The
    root is never selected (it would be the trivial single cluster).

    Returns ``(labels, selected)``: per-point labels with -1 noise, and
    the selected condensed-cluster ids in label order.
    """
    stability = cluster_stabilities(tree)
    root = int(tree.n_points)

    children: Dict[int, List[int]] = {cid: [] for cid in stability}
    for p, c, size in zip(tree.parent, tree.child, tree.child_size):
        if size > 1:
            children[int(p)].append(int(c))

    # Leaves-first order: sort by birth lambda descending is not reliable;
    # do an explicit post-order traversal.
    post: List[int] = []
    stack = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            post.append(node)
        else:
            stack.append((node, True))
            for ch in children[node]:
                stack.append((ch, False))

    is_selected: Dict[int, bool] = {}
    subtree_stability: Dict[int, float] = {}
    for node in post:
        child_total = sum(subtree_stability[ch] for ch in children[node])
        own = stability[node]
        if node == root:
            is_selected[node] = False
            subtree_stability[node] = child_total
        elif not children[node] or own >= child_total:
            is_selected[node] = True
            subtree_stability[node] = own
            # Deselect all descendants.
            desc = list(children[node])
            while desc:
                d = desc.pop()
                is_selected[d] = False
                desc.extend(children[d])
        else:
            is_selected[node] = False
            subtree_stability[node] = child_total

    selected = sorted(cid for cid, sel in is_selected.items() if sel)
    label_of = {cid: i for i, cid in enumerate(selected)}

    # Assign points: each point detaches from some cluster; walk up from
    # that cluster until a selected ancestor is found.
    parent_of: Dict[int, int] = {}
    for p, c, size in zip(tree.parent, tree.child, tree.child_size):
        if size > 1:
            parent_of[int(c)] = int(p)

    births = cluster_births(tree)
    labels = np.full(tree.n_points, -1, dtype=np.int64)
    point_mask = tree.child_size == 1
    for p, c, lam in zip(
        tree.parent[point_mask], tree.child[point_mask],
        tree.lambda_val[point_mask],
    ):
        cluster = int(p)
        while cluster != root and cluster not in label_of:
            cluster = parent_of[cluster]
        # A point is a member only if it stays attached strictly beyond
        # the cluster's birth level; a point detaching at (or before) the
        # birth lambda never belonged to the density peak (reference
        # implementation's strict comparison) and is noise.
        if cluster in label_of and lam > births[cluster] + 1e-12:
            labels[int(c)] = label_of[cluster]

    # The strict birth comparison can empty a selected cluster entirely
    # (every point detaching exactly at the birth level); drop such
    # clusters and compact the label range.
    populated = [
        cid for cid in selected if np.any(labels == label_of[cid])
    ]
    if len(populated) != len(selected):
        remap = {label_of[cid]: new for new, cid in enumerate(populated)}
        new_labels = np.full_like(labels, -1)
        for old, new in remap.items():
            new_labels[labels == old] = new
        labels = new_labels
        selected = populated
    return labels, selected
