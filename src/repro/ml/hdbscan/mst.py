"""Minimum spanning tree of a dense distance matrix (Prim's algorithm)."""

from __future__ import annotations

import numpy as np

__all__ = ["minimum_spanning_tree"]


def minimum_spanning_tree(weights: np.ndarray) -> np.ndarray:
    """MST edges of a complete graph given its weight matrix.

    Returns an ``(n-1, 3)`` array of ``(u, v, weight)`` rows sorted by
    weight.  Prim's algorithm with a dense frontier is O(n^2) — optimal
    for complete graphs and fully vectorised over the frontier update.
    """
    weights = np.asarray(weights, dtype=np.float64)
    n = weights.shape[0]
    if weights.ndim != 2 or weights.shape != (n, n):
        raise ValueError(f"weights must be square, got {weights.shape}")
    if n < 2:
        return np.empty((0, 3))

    in_tree = np.zeros(n, dtype=bool)
    best_dist = np.full(n, np.inf)
    best_from = np.zeros(n, dtype=np.int64)
    edges = np.empty((n - 1, 3))

    current = 0
    in_tree[0] = True
    for i in range(n - 1):
        row = weights[current]
        closer = ~in_tree & (row < best_dist)
        best_dist[closer] = row[closer]
        best_from[closer] = current
        masked = np.where(in_tree, np.inf, best_dist)
        nxt = int(np.argmin(masked))
        if not np.isfinite(masked[nxt]):
            raise ValueError("graph is disconnected (non-finite weights?)")
        edges[i] = (best_from[nxt], nxt, best_dist[nxt])
        in_tree[nxt] = True
        current = nxt

    return edges[np.argsort(edges[:, 2], kind="stable")]
