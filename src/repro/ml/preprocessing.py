"""Feature scaling transformers."""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_is_fitted
from repro.utils.validation import check_array

__all__ = ["MinMaxScaler", "StandardScaler"]


class StandardScaler(BaseEstimator):
    """Standardise features to zero mean and unit variance.

    Constant features are left centred but unscaled (scale 1), matching
    sklearn's behaviour and avoiding division by zero.
    """

    def __init__(self, *, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X) -> "StandardScaler":
        X = check_array(X, name="X")
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            scale = X.std(axis=0)
            scale[scale == 0.0] = 1.0
            self.scale_ = scale
        else:
            self.scale_ = np.ones(X.shape[1])
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        check_is_fitted(self, "scale_")
        X = check_array(X, name="X")
        self._check_width(X)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        check_is_fitted(self, "scale_")
        X = check_array(X, name="X")
        self._check_width(X)
        return X * self.scale_ + self.mean_

    def _check_width(self, X: np.ndarray) -> None:
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; scaler was fit on "
                f"{self.n_features_in_}"
            )


class MinMaxScaler(BaseEstimator):
    """Scale features into ``[feature_min, feature_max]`` (default [0, 1])."""

    def __init__(self, *, feature_range: tuple = (0.0, 1.0)):
        self.feature_range = feature_range

    def fit(self, X) -> "MinMaxScaler":
        lo, hi = self.feature_range
        if not lo < hi:
            raise ValueError(
                f"feature_range must be increasing, got {self.feature_range}"
            )
        X = check_array(X, name="X")
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        span = self.data_max_ - self.data_min_
        span[span == 0.0] = 1.0
        self.scale_ = (hi - lo) / span
        self.min_ = lo - self.data_min_ * self.scale_
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        check_is_fitted(self, "scale_")
        X = check_array(X, name="X")
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; scaler was fit on "
                f"{self.n_features_in_}"
            )
        return X * self.scale_ + self.min_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)
