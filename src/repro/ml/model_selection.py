"""Train/test splitting and cross-validation."""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.ml.base import clone
from repro.ml.metrics import accuracy_score
from repro.utils.rng import rng_from

__all__ = ["KFold", "cross_val_score", "train_test_split"]


def train_test_split(
    *arrays,
    test_size: float = 0.2,
    random_state=None,
    shuffle: bool = True,
):
    """Split arrays into train/test partitions along axis 0.

    Mirrors sklearn: returns ``train, test`` pairs for each input array in
    order.  ``test_size`` is a fraction in (0, 1) or an absolute count.
    The paper's split is 136 train / 34 test out of 170 (test_size 0.2).
    """
    if not arrays:
        raise ValueError("at least one array is required")
    n = len(arrays[0])
    for arr in arrays:
        if len(arr) != n:
            raise ValueError("all arrays must have the same length")
    if isinstance(test_size, float):
        if not 0.0 < test_size < 1.0:
            raise ValueError(f"test_size fraction must be in (0, 1), got {test_size}")
        n_test = max(1, int(round(n * test_size)))
    else:
        n_test = int(test_size)
        if not 0 < n_test < n:
            raise ValueError(f"test_size count must be in (0, {n}), got {n_test}")
    indices = np.arange(n)
    if shuffle:
        rng_from(random_state).shuffle(indices)
    test_idx = indices[:n_test]
    train_idx = indices[n_test:]

    out = []
    for arr in arrays:
        if isinstance(arr, np.ndarray):
            out.extend([arr[train_idx], arr[test_idx]])
        else:
            seq = list(arr)
            out.extend(
                [[seq[i] for i in train_idx], [seq[i] for i in test_idx]]
            )
    return tuple(out)


class KFold:
    """Deterministic k-fold splitter."""

    def __init__(self, n_splits: int = 5, *, shuffle: bool = False, random_state=None):
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(X)
        if n < self.n_splits:
            raise ValueError(
                f"cannot split {n} samples into {self.n_splits} folds"
            )
        indices = np.arange(n)
        if self.shuffle:
            rng_from(self.random_state).shuffle(indices)
        fold_sizes = np.full(self.n_splits, n // self.n_splits, dtype=int)
        fold_sizes[: n % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test_idx = indices[start : start + size]
            train_idx = np.concatenate([indices[:start], indices[start + size :]])
            yield train_idx, test_idx
            start += size


def cross_val_score(
    estimator,
    X,
    y,
    *,
    cv: int = 5,
    random_state=None,
) -> np.ndarray:
    """Accuracy of a classifier across shuffled k folds."""
    X = np.asarray(X)
    y = np.asarray(y)
    scores: List[float] = []
    folds = KFold(n_splits=cv, shuffle=True, random_state=random_state)
    for train_idx, test_idx in folds.split(X):
        est = clone(estimator)
        est.fit(X[train_idx], y[train_idx])
        scores.append(accuracy_score(y[test_idx], est.predict(X[test_idx])))
    return np.array(scores)
