"""A self-contained ML library (scikit-learn substitute).

The paper's pipeline uses scikit-learn for PCA, clustering, decision
trees, forests, nearest neighbours and SVMs; that package is not available
in this environment, so the algorithms are implemented here from their
primary sources.  The API deliberately follows sklearn's conventions
(``fit`` / ``predict`` / ``transform``, trailing-underscore fitted
attributes, ``random_state``) so the core pipeline reads like the paper's
code.

Implemented estimators
----------------------
* :class:`~repro.ml.pca.PCA` — SVD-based, with explained-variance ratios
  and inverse transform.
* :class:`~repro.ml.kmeans.KMeans` — Lloyd's algorithm with k-means++
  seeding and restarts.
* :class:`~repro.ml.hdbscan.HDBSCAN` — density clustering via mutual
  reachability, MST, condensed tree and stability extraction.
* :class:`~repro.ml.tree.DecisionTreeClassifier` /
  :class:`~repro.ml.tree.DecisionTreeRegressor` — CART with depth-first
  and best-first (``max_leaf_nodes``) growth; multi-output regression.
* :class:`~repro.ml.forest.RandomForestClassifier` /
  :class:`~repro.ml.forest.RandomForestRegressor` — bagged trees with
  feature subsampling (the regressor exposes cross-tree prediction
  spread as an uncertainty signal).
* :class:`~repro.ml.neighbors.KNeighborsClassifier` — exact kNN on a
  KD-tree.
* :class:`~repro.ml.svm.SVC` — SMO-trained support vector classifier with
  linear and RBF kernels, one-vs-rest for multiclass.
"""

from repro.ml.base import BaseEstimator, NotFittedError, check_is_fitted, clone
from repro.ml.preprocessing import MinMaxScaler, StandardScaler
from repro.ml.model_selection import KFold, cross_val_score, train_test_split
from repro.ml import metrics
from repro.ml.pca import PCA
from repro.ml.kmeans import KMeans
from repro.ml.neighbors import KDTree, KNeighborsClassifier
from repro.ml.online import BloomAdmission, BloomFilter, DecayedMeanVar
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.svm import SVC
from repro.ml.hdbscan import HDBSCAN

__all__ = [
    "BaseEstimator",
    "BloomAdmission",
    "BloomFilter",
    "DecayedMeanVar",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "HDBSCAN",
    "KDTree",
    "KFold",
    "KMeans",
    "KNeighborsClassifier",
    "MinMaxScaler",
    "NotFittedError",
    "PCA",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "SVC",
    "StandardScaler",
    "check_is_fitted",
    "clone",
    "cross_val_score",
    "metrics",
    "train_test_split",
]
