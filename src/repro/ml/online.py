"""Online streaming statistics and membership primitives.

The adaptive selection layer (:mod:`repro.adaptive`) needs two things
the batch ML stack does not provide:

* :class:`DecayedMeanVar` — an O(1)-memory mean/variance estimator with
  exponential decay, so drifting kernel latencies are *forgotten* at a
  configurable half-life instead of being averaged away forever.  The
  update is Welford's algorithm over exponentially decayed weights: an
  observation seen ``half_life`` updates ago carries exactly half the
  weight of the newest one.
* :class:`BloomFilter` / :class:`BloomAdmission` — a deterministic
  Bloom filter (double hashing over :func:`repro.utils.rng.derive_seed`
  digests, so membership is stable across processes) and a stacked
  admission cache built from it.  ``BloomAdmission`` answers "has this
  shape fingerprint been seen at least *k* times?" in O(1) bits per
  key, which is how the adaptive layer keeps one-off shapes from ever
  earning bandit state.  Bloom filters never produce false negatives,
  so a key can only be admitted *early* (false positive), never late.
"""

from __future__ import annotations

import math
import threading
from typing import Tuple, Union

from repro.utils.rng import derive_seed

__all__ = ["BloomAdmission", "BloomFilter", "DecayedMeanVar"]

Key = Union[int, str]


class DecayedMeanVar:
    """Exponentially decayed streaming mean/variance (Welford update).

    Each :meth:`observe` multiplies every previous observation's weight
    by ``decay = 0.5 ** (1 / half_life)`` and adds the new sample at
    weight 1, so the estimator tracks a weighted mean with weights
    ``decay ** age``.  ``weight`` is the total decayed mass (bounded by
    ``1 / (1 - decay)``); ``count`` is the raw number of observations.
    """

    __slots__ = ("_decay", "_half_life", "_m2", "count", "mean", "weight")

    def __init__(self, half_life: float = 64.0) -> None:
        if not half_life > 0:
            raise ValueError(f"half_life must be > 0, got {half_life}")
        self._half_life = float(half_life)
        self._decay = 0.5 ** (1.0 / float(half_life))
        self.count = 0
        self.weight = 0.0
        self.mean = 0.0
        self._m2 = 0.0

    @property
    def half_life(self) -> float:
        return self._half_life

    @property
    def decay(self) -> float:
        """Per-observation weight multiplier; ``decay ** half_life == 0.5``."""
        return self._decay

    def observe(self, value: float) -> None:
        """Fold one sample in, decaying everything seen before it."""
        weight = self.weight * self._decay + 1.0
        delta = value - self.mean
        self.mean += delta / weight
        self._m2 = self._m2 * self._decay + delta * (value - self.mean)
        self.weight = weight
        self.count += 1

    @property
    def variance(self) -> float:
        """Decayed-weight population variance (0 before two samples)."""
        if self.weight <= 0.0:
            return 0.0
        return max(self._m2 / self.weight, 0.0)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def stderr(self) -> float:
        """Standard error of the mean over the effective sample size."""
        if self.weight <= 0.0:
            return 0.0
        return math.sqrt(self.variance / self.weight)

    def __repr__(self) -> str:
        return (
            f"DecayedMeanVar(n={self.count}, mean={self.mean:.3g}, "
            f"std={self.std:.3g}, weight={self.weight:.2f})"
        )


class BloomFilter:
    """A deterministic Bloom filter over int/str key tuples.

    Sized by the standard formulas for ``capacity`` keys at
    ``error_rate`` false positives: ``m = -n ln p / (ln 2)^2`` bits and
    ``k = (m / n) ln 2`` hash probes.  Probes use double hashing —
    ``(h1 + i * h2) mod m`` with ``h1``/``h2`` drawn from independent
    :func:`~repro.utils.rng.derive_seed` streams — so membership is
    identical across processes and platforms.  False negatives are
    impossible by construction.
    """

    __slots__ = ("_bits", "_lock", "_n_bits", "_n_hashes", "_s1", "_s2", "added")

    def __init__(
        self, capacity: int, error_rate: float = 0.01, *, seed: int = 0
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not 0.0 < error_rate < 1.0:
            raise ValueError(f"error_rate must be in (0, 1), got {error_rate}")
        ln2 = math.log(2.0)
        n_bits = max(8, math.ceil(-capacity * math.log(error_rate) / ln2**2))
        self._n_bits = n_bits
        self._n_hashes = max(1, round(n_bits / capacity * ln2))
        self._bits = bytearray((n_bits + 7) // 8)
        self._s1 = derive_seed(seed, "bloom", "h1")
        self._s2 = derive_seed(seed, "bloom", "h2")
        self._lock = threading.Lock()
        self.added = 0

    @property
    def n_bits(self) -> int:
        return self._n_bits

    @property
    def n_hashes(self) -> int:
        return self._n_hashes

    def _positions(self, key: Tuple[Key, ...]) -> Tuple[int, ...]:
        h1 = derive_seed(self._s1, *key)
        # An odd stride makes the double-hash probe sequence cover the
        # table even for pathological h2 values.
        h2 = derive_seed(self._s2, *key) | 1
        n = self._n_bits
        return tuple((h1 + i * h2) % n for i in range(self._n_hashes))

    def add(self, *key: Key) -> None:
        bits = self._bits
        with self._lock:
            for pos in self._positions(key):
                bits[pos >> 3] |= 1 << (pos & 7)
            self.added += 1

    def contains(self, *key: Key) -> bool:
        bits = self._bits
        return all(
            bits[pos >> 3] >> (pos & 7) & 1 for pos in self._positions(key)
        )

    def fill_ratio(self) -> float:
        """Fraction of bits set — a saturation diagnostic."""
        set_bits = sum(bin(b).count("1") for b in self._bits)
        return set_bits / self._n_bits

    def __repr__(self) -> str:
        return (
            f"BloomFilter(bits={self._n_bits}, hashes={self._n_hashes}, "
            f"added={self.added})"
        )


class BloomAdmission:
    """Admit a key once it has been observed at least ``threshold`` times.

    A stack of ``threshold`` Bloom filters with independent seeds: each
    :meth:`observe` marks the first filter that does not already contain
    the key, and a key is *admitted* once every filter contains it.
    Because the underlying filters have no false negatives, a key is
    never admitted later than its ``threshold``-th sighting; a false
    positive in some stage can only admit it early.
    """

    __slots__ = ("_stages",)

    def __init__(
        self,
        threshold: int = 2,
        capacity: int = 4096,
        error_rate: float = 0.01,
        *,
        seed: int = 0,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self._stages = tuple(
            BloomFilter(
                capacity, error_rate, seed=derive_seed(seed, "admission", i)
            )
            for i in range(threshold)
        )

    @property
    def threshold(self) -> int:
        return len(self._stages)

    def observe(self, *key: Key) -> bool:
        """Record one sighting; True once the key clears every stage.

        The ``threshold``-th sighting of a key marks its last stage and
        admits it in the same call.
        """
        last = len(self._stages) - 1
        for i, stage in enumerate(self._stages):
            if not stage.contains(*key):
                stage.add(*key)
                return i == last
        return True

    def admitted(self, *key: Key) -> bool:
        """True if the key would be admitted without recording a sighting."""
        return all(stage.contains(*key) for stage in self._stages)
