"""Estimator protocol: parameters, cloning, fitted-state checking."""

from __future__ import annotations

import inspect
from typing import Any, Dict, List

__all__ = ["BaseEstimator", "NotFittedError", "check_is_fitted", "clone"]


class NotFittedError(RuntimeError):
    """Raised when predict/transform is called before fit."""


class BaseEstimator:
    """Parameter introspection shared by every estimator.

    Estimator constructors must only store their arguments (sklearn's
    convention); all learned state lives in trailing-underscore
    attributes, which makes :func:`clone` trivially correct.
    """

    @classmethod
    def _param_names(cls) -> List[str]:
        sig = inspect.signature(cls.__init__)
        return [
            name
            for name, p in sig.parameters.items()
            if name != "self" and p.kind != inspect.Parameter.VAR_KEYWORD
        ]

    def get_params(self) -> Dict[str, Any]:
        """Constructor parameters as a dict."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params) -> "BaseEstimator":
        """Update constructor parameters in place."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"invalid parameter {name!r} for {type(self).__name__}; "
                    f"valid: {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def _fitted_attributes(self) -> List[str]:
        return [
            name
            for name in vars(self)
            if name.endswith("_") and not name.startswith("_")
        ]

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"


def check_is_fitted(estimator: BaseEstimator, attribute: str = "") -> None:
    """Raise :class:`NotFittedError` unless the estimator has been fit."""
    if attribute:
        fitted = hasattr(estimator, attribute)
    else:
        fitted = bool(estimator._fitted_attributes())
    if not fitted:
        raise NotFittedError(
            f"{type(estimator).__name__} must be fitted before this call"
        )


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """A fresh, unfitted estimator with identical parameters."""
    return type(estimator)(**estimator.get_params())
