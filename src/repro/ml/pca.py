"""Principal component analysis via singular value decomposition.

Used twice by the paper: Figure 3 reads the explained-variance curve to
pick the target number of kernels, and the PCA + k-means pruner clusters
in the reduced space and maps centroids back through
:meth:`PCA.inverse_transform`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.linalg

from repro.ml.base import BaseEstimator, check_is_fitted
from repro.utils.validation import check_array

__all__ = ["PCA"]


class PCA(BaseEstimator):
    """Linear dimensionality reduction onto directions of maximal variance.

    Parameters
    ----------
    n_components:
        Number of components to keep; ``None`` keeps
        ``min(n_samples, n_features)``.

    Attributes
    ----------
    components_ : (n_components, n_features)
        Principal axes, ordered by decreasing explained variance.
    explained_variance_ : (n_components,)
        Variance captured by each component.
    explained_variance_ratio_ : (n_components,)
        Fraction of total variance captured by each component.
    mean_ : (n_features,)
        Training-data mean subtracted before projection.
    """

    def __init__(self, n_components: Optional[int] = None):
        self.n_components = n_components

    def fit(self, X) -> "PCA":
        X = check_array(X, name="X")
        n_samples, n_features = X.shape
        max_components = min(n_samples, n_features)
        k = self.n_components if self.n_components is not None else max_components
        if not 1 <= k <= max_components:
            raise ValueError(
                f"n_components must be in [1, {max_components}], got {k}"
            )
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        # Thin SVD (full_matrices=False): the guide's SVD idiom — never
        # materialise the full orthogonal factors for a rectangular input.
        u, s, vt = scipy.linalg.svd(centered, full_matrices=False)
        # Deterministic sign convention: largest |loading| positive.
        signs = np.sign(vt[np.arange(vt.shape[0]), np.argmax(np.abs(vt), axis=1)])
        signs[signs == 0.0] = 1.0
        vt = vt * signs[:, None]
        u = u * signs[None, :]

        explained = (s**2) / max(1, n_samples - 1)
        total = explained.sum()
        self.components_ = vt[:k]
        self.singular_values_ = s[:k]
        self.explained_variance_ = explained[:k]
        self.explained_variance_ratio_ = (
            explained[:k] / total if total > 0 else np.zeros(k)
        )
        self.n_components_ = k
        self.n_features_in_ = n_features
        self.n_samples_ = n_samples
        return self

    def transform(self, X) -> np.ndarray:
        check_is_fitted(self, "components_")
        X = check_array(X, name="X")
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; PCA was fit on "
                f"{self.n_features_in_}"
            )
        return (X - self.mean_) @ self.components_.T

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, Z) -> np.ndarray:
        """Map reduced coordinates back into the original feature space."""
        check_is_fitted(self, "components_")
        Z = check_array(Z, name="Z")
        if Z.shape[1] != self.n_components_:
            raise ValueError(
                f"Z has {Z.shape[1]} components; PCA keeps {self.n_components_}"
            )
        return Z @ self.components_ + self.mean_

    def components_for_variance(self, threshold: float) -> int:
        """Smallest component count whose cumulative ratio reaches ``threshold``.

        This is exactly the Figure 3 query: "how many components account
        for 80% / 90% / 95% of the variance".
        """
        check_is_fitted(self, "components_")
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        cumulative = np.cumsum(self.explained_variance_ratio_)
        hits = np.nonzero(cumulative >= threshold - 1e-12)[0]
        if len(hits) == 0:
            raise ValueError(
                f"kept components only explain {cumulative[-1]:.3f} of the "
                f"variance; cannot reach {threshold}"
            )
        return int(hits[0]) + 1
