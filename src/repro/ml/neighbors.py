"""Exact k-nearest-neighbour classification on a KD-tree.

The KD-tree is stored in flat arrays (no per-node Python objects beyond a
small record), split on the widest dimension at the median, with standard
branch-and-bound traversal.  For the dataset sizes of this paper a brute
force GEMM would also do; the tree exists because the deployed selector
cares about *query latency*, which the latency benchmarks measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.ml.base import BaseEstimator, check_is_fitted
from repro.ml.metrics import pairwise_sq_distances
from repro.utils.validation import check_array, check_positive_int

__all__ = ["KDTree", "KNeighborsClassifier"]

_LEAF_SIZE = 16


@dataclass
class _Node:
    #: Splitting dimension, or -1 for leaves.
    dim: int
    #: Split threshold (points <= go left).
    threshold: float
    left: int
    right: int
    #: Slice of the permutation array covered by this node.
    start: int
    end: int


class KDTree:
    """Median-split KD-tree supporting k-NN queries."""

    def __init__(self, data: np.ndarray, *, leaf_size: int = _LEAF_SIZE):
        data = check_array(data, name="data")
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        self._data = data
        self._leaf_size = leaf_size
        self._perm = np.arange(data.shape[0])
        self._nodes: List[_Node] = []
        self._build(0, data.shape[0])

    @property
    def n_samples(self) -> int:
        return self._data.shape[0]

    def _build(self, start: int, end: int) -> int:
        node_id = len(self._nodes)
        self._nodes.append(_Node(-1, 0.0, -1, -1, start, end))
        if end - start <= self._leaf_size:
            return node_id
        subset = self._data[self._perm[start:end]]
        spreads = subset.max(axis=0) - subset.min(axis=0)
        dim = int(np.argmax(spreads))
        if spreads[dim] == 0.0:
            return node_id  # all points identical: keep as leaf
        order = np.argsort(subset[:, dim], kind="stable")
        self._perm[start:end] = self._perm[start:end][order]
        mid = (start + end) // 2
        threshold = float(self._data[self._perm[mid - 1], dim])
        node = self._nodes[node_id]
        node.dim = dim
        node.threshold = threshold
        node.left = self._build(start, mid)
        node.right = self._build(mid, end)
        return node_id

    def query(self, points, k: int = 1) -> Tuple[np.ndarray, np.ndarray]:
        """Return (distances, indices) of the ``k`` nearest neighbours."""
        points = check_array(points, name="points")
        k = check_positive_int(k, "k")
        if k > self.n_samples:
            raise ValueError(
                f"k={k} exceeds the number of indexed points {self.n_samples}"
            )
        n_queries = points.shape[0]
        dists = np.empty((n_queries, k))
        idx = np.empty((n_queries, k), dtype=np.int64)
        for qi in range(n_queries):
            heap_d, heap_i = self._query_one(points[qi], k)
            order = np.argsort(heap_d, kind="stable")
            dists[qi] = np.sqrt(heap_d[order])
            idx[qi] = heap_i[order]
        return dists, idx

    def _query_one(self, point: np.ndarray, k: int):
        # Best-k kept in simple arrays; k is tiny (1 or 3 in the paper).
        best_d = np.full(k, np.inf)
        best_i = np.full(k, -1, dtype=np.int64)

        def consider(start: int, end: int) -> None:
            nonlocal best_d, best_i
            cand = self._perm[start:end]
            diff = self._data[cand] - point
            sq = np.einsum("ij,ij->i", diff, diff)
            for d, i in zip(sq, cand):
                if d < best_d[-1]:
                    pos = int(np.searchsorted(best_d, d))
                    best_d = np.insert(best_d, pos, d)[:k]
                    best_i = np.insert(best_i, pos, i)[:k]

        def visit(node_id: int) -> None:
            node = self._nodes[node_id]
            if node.dim == -1:
                consider(node.start, node.end)
                return
            delta = point[node.dim] - node.threshold
            near, far = (
                (node.left, node.right) if delta <= 0 else (node.right, node.left)
            )
            visit(near)
            if delta * delta < best_d[-1]:
                visit(far)

        visit(0)
        return best_d, best_i


class KNeighborsClassifier(BaseEstimator):
    """Majority vote over the ``n_neighbors`` nearest training samples.

    Ties are broken toward the smaller class label (deterministic), and
    neighbours are found exactly (KD-tree for low-dimensional data, brute
    force otherwise).
    """

    def __init__(self, n_neighbors: int = 5, *, algorithm: str = "auto"):
        self.n_neighbors = n_neighbors
        self.algorithm = algorithm

    def fit(self, X, y) -> "KNeighborsClassifier":
        X = check_array(X, name="X")
        y = np.asarray(y)
        if len(X) != len(y):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
        check_positive_int(self.n_neighbors, "n_neighbors")
        if self.n_neighbors > len(X):
            raise ValueError(
                f"n_neighbors={self.n_neighbors} exceeds training size {len(X)}"
            )
        if self.algorithm not in ("auto", "kd_tree", "brute"):
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        self.classes_, self._y_encoded = np.unique(y, return_inverse=True)
        self._X = X
        use_tree = self.algorithm == "kd_tree" or (
            self.algorithm == "auto" and X.shape[1] <= 16
        )
        self.tree_ = KDTree(X) if use_tree else None
        self.n_features_in_ = X.shape[1]
        return self

    def kneighbors(self, X) -> Tuple[np.ndarray, np.ndarray]:
        check_is_fitted(self, "classes_")
        X = check_array(X, name="X")
        if self.tree_ is not None:
            return self.tree_.query(X, k=self.n_neighbors)
        sq = pairwise_sq_distances(X, self._X)
        idx = np.argsort(sq, axis=1, kind="stable")[:, : self.n_neighbors]
        d = np.sqrt(np.take_along_axis(sq, idx, axis=1))
        return d, idx

    def predict(self, X) -> np.ndarray:
        _, idx = self.kneighbors(X)
        votes = self._y_encoded[idx]
        n_classes = len(self.classes_)
        counts = np.apply_along_axis(
            lambda row: np.bincount(row, minlength=n_classes), 1, votes
        )
        return self.classes_[np.argmax(counts, axis=1)]
