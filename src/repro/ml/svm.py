"""Support vector classification trained with SMO.

Binary sub-problems are solved with sequential minimal optimisation
(Platt 1998, in the simplified pairwise form); multiclass uses
one-vs-rest on the decision values.  Linear and RBF kernels cover the
paper's LinearSVM / RadialSVM rows in Table I.

Note on the paper's RadialSVM result: with raw matrix-size features
(values up to ~10^5) the RBF kernel matrix degenerates towards identity /
zeros and the classifier collapses to the bias — close to a majority-class
predictor, which is why it scores ~55% across every configuration count.
This implementation reproduces that behaviour because, like the paper's
setup, it applies no internal feature scaling.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from repro.ml.base import BaseEstimator, check_is_fitted
from repro.ml.metrics import pairwise_sq_distances
from repro.utils.rng import rng_from
from repro.utils.validation import check_array, check_in_range

__all__ = ["SVC"]


def _resolve_gamma(gamma, X: np.ndarray) -> float:
    if gamma == "scale":
        var = X.var()
        return 1.0 / (X.shape[1] * var) if var > 0 else 1.0
    if gamma == "auto":
        return 1.0 / X.shape[1]
    return check_in_range(float(gamma), "gamma", low=0.0, low_inclusive=False)


class _BinarySMO:
    """One binary max-margin sub-problem, solved by pairwise SMO."""

    def __init__(
        self,
        kernel_fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
        C: float,
        tol: float,
        max_passes: int,
        max_iter: int,
        rng: np.random.Generator,
    ):
        self._kernel_fn = kernel_fn
        self._C = C
        self._tol = tol
        self._max_passes = max_passes
        self._max_iter = max_iter
        self._rng = rng

    def fit(self, K: np.ndarray, y: np.ndarray) -> None:
        """``K`` is the precomputed training kernel, ``y`` in {-1, +1}."""
        n = len(y)
        alpha = np.zeros(n)
        b = 0.0
        passes = 0
        iters = 0
        C, tol = self._C, self._tol

        def f(i: int) -> float:
            return float((alpha * y) @ K[:, i] + b)

        while passes < self._max_passes and iters < self._max_iter:
            iters += 1
            changed = 0
            for i in range(n):
                e_i = f(i) - y[i]
                if (y[i] * e_i < -tol and alpha[i] < C) or (
                    y[i] * e_i > tol and alpha[i] > 0
                ):
                    j = int(self._rng.integers(n - 1))
                    if j >= i:
                        j += 1
                    e_j = f(j) - y[j]
                    a_i_old, a_j_old = alpha[i], alpha[j]
                    if y[i] != y[j]:
                        lo = max(0.0, a_j_old - a_i_old)
                        hi = min(C, C + a_j_old - a_i_old)
                    else:
                        lo = max(0.0, a_i_old + a_j_old - C)
                        hi = min(C, a_i_old + a_j_old)
                    if lo >= hi:
                        continue
                    eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
                    if eta >= 0:
                        continue
                    a_j = a_j_old - y[j] * (e_i - e_j) / eta
                    a_j = float(np.clip(a_j, lo, hi))
                    if abs(a_j - a_j_old) < 1e-7:
                        continue
                    a_i = a_i_old + y[i] * y[j] * (a_j_old - a_j)
                    alpha[i], alpha[j] = a_i, a_j
                    b1 = (
                        b
                        - e_i
                        - y[i] * (a_i - a_i_old) * K[i, i]
                        - y[j] * (a_j - a_j_old) * K[i, j]
                    )
                    b2 = (
                        b
                        - e_j
                        - y[i] * (a_i - a_i_old) * K[i, j]
                        - y[j] * (a_j - a_j_old) * K[j, j]
                    )
                    if 0 < a_i < C:
                        b = b1
                    elif 0 < a_j < C:
                        b = b2
                    else:
                        b = 0.5 * (b1 + b2)
                    changed += 1
            passes = passes + 1 if changed == 0 else 0

        self.alpha_ = alpha
        self.b_ = b

    def decision_function(self, K_test: np.ndarray, y: np.ndarray) -> np.ndarray:
        """``K_test``: kernel between test points (rows) and training points."""
        return K_test @ (self.alpha_ * y) + self.b_


class SVC(BaseEstimator):
    """C-support vector classification (linear or RBF kernel).

    Multiclass via one-vs-rest: one SMO problem per class, prediction by
    the largest decision value.  Matches the subset of sklearn's ``SVC``
    interface the paper's experiments need.
    """

    def __init__(
        self,
        *,
        kernel: str = "rbf",
        C: float = 1.0,
        gamma="scale",
        tol: float = 1e-3,
        max_passes: int = 5,
        max_iter: int = 200,
        random_state=0,
    ):
        self.kernel = kernel
        self.C = C
        self.gamma = gamma
        self.tol = tol
        self.max_passes = max_passes
        self.max_iter = max_iter
        self.random_state = random_state

    def _kernel_matrix(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        if self.kernel == "linear":
            return X @ Y.T
        if self.kernel == "rbf":
            return np.exp(-self.gamma_ * pairwise_sq_distances(X, Y))
        raise ValueError(f"unsupported kernel {self.kernel!r}")

    def fit(self, X, y) -> "SVC":
        X = check_array(X, name="X")
        y = np.asarray(y)
        if len(X) != len(y):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
        check_in_range(self.C, "C", low=0.0, low_inclusive=False)
        self.classes_ = np.unique(y)
        if len(self.classes_) < 2:
            raise ValueError("SVC needs at least two classes")
        self.gamma_ = _resolve_gamma(self.gamma, X) if self.kernel == "rbf" else 0.0
        self._X_train = X
        K = self._kernel_matrix(X, X)

        rng = rng_from(self.random_state)
        self._binary: List[_BinarySMO] = []
        self._binary_y: List[np.ndarray] = []
        for cls in self.classes_:
            target = np.where(y == cls, 1.0, -1.0)
            smo = _BinarySMO(
                self._kernel_matrix,
                C=self.C,
                tol=self.tol,
                max_passes=self.max_passes,
                max_iter=self.max_iter,
                rng=rng,
            )
            smo.fit(K, target)
            self._binary.append(smo)
            self._binary_y.append(target)
        self.n_features_in_ = X.shape[1]
        return self

    def decision_function(self, X) -> np.ndarray:
        check_is_fitted(self, "classes_")
        X = check_array(X, name="X")
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; fit used {self.n_features_in_}"
            )
        K_test = self._kernel_matrix(X, self._X_train)
        scores = np.column_stack(
            [
                smo.decision_function(K_test, target)
                for smo, target in zip(self._binary, self._binary_y)
            ]
        )
        return scores

    def predict(self, X) -> np.ndarray:
        scores = self.decision_function(X)
        if scores.shape[1] == 2:
            # Two classes: the two OvR scores are redundant; use the first.
            return self.classes_[(scores[:, 1] > scores[:, 0]).astype(int)]
        return self.classes_[np.argmax(scores, axis=1)]

    def score(self, X, y) -> float:
        from repro.ml.metrics import accuracy_score

        return accuracy_score(np.asarray(y), self.predict(X))
