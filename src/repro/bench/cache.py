"""Dataset persistence: save/load benchmark results as ``.npz``.

The paper publishes its dataset alongside the code; this module plays
that role so the (seconds-scale) regeneration can be skipped by examples
and benchmarks that only consume the data.

A cached file is only as good as its provenance: :func:`load_dataset`
can validate the stored meta (runner protocol, device, performance-model
constants) against what the caller actually requested and raise
:class:`CacheMismatchError` instead of silently serving stale data.  The
:mod:`repro.pipeline` artifact store builds on this format and adds
content addressing — prefer it for anything beyond a single ad-hoc file.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.bench.runner import BenchmarkResult, RunnerConfig
from repro.kernels.params import KernelConfig
from repro.perfmodel.params import PerfModelParams
from repro.workloads.gemm import GemmShape

__all__ = ["CacheMismatchError", "load_dataset", "save_dataset"]

_FORMAT_VERSION = 1


class CacheMismatchError(ValueError):
    """A cached dataset's meta disagrees with what the caller requested."""


def save_dataset(
    result: BenchmarkResult,
    path: Union[str, Path],
    *,
    model_params: Optional[PerfModelParams] = None,
) -> Path:
    """Serialise a benchmark result; returns the written path.

    ``model_params`` records the performance-model constants the sweep
    ran with, so a later load can detect a model change.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = {
        "format_version": _FORMAT_VERSION,
        "device_name": result.device_name,
        "runner": {
            "warmup_iterations": result.runner.warmup_iterations,
            "timed_iterations": result.runner.timed_iterations,
            "seed": result.runner.seed,
            "max_retries": result.runner.max_retries,
            "retry_backoff_s": result.runner.retry_backoff_s,
        },
        "model_params": (
            None if model_params is None else dataclasses.asdict(model_params)
        ),
    }
    np.savez_compressed(
        path,
        meta=json.dumps(meta),
        shapes=np.array([s.as_tuple() for s in result.shapes], dtype=np.int64),
        configs=np.array(
            [
                (c.acc, c.rows, c.cols, c.wg_rows, c.wg_cols)
                for c in result.configs
            ],
            dtype=np.int64,
        ),
        gflops=result.gflops,
        seconds=result.seconds,
    )
    # np.savez appends .npz when missing; normalise the return value.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def _meta_mismatches(
    meta: dict,
    expected_runner: Optional[RunnerConfig],
    expected_device_name: Optional[str],
    expected_model_params: Optional[PerfModelParams],
) -> List[str]:
    mismatches = []
    if expected_device_name is not None:
        cached = meta.get("device_name")
        if cached != expected_device_name:
            mismatches.append(
                f"device: cached {cached!r} != requested {expected_device_name!r}"
            )
    if expected_runner is not None:
        cached_runner = RunnerConfig(**meta["runner"])
        if cached_runner != expected_runner:
            mismatches.append(
                f"runner: cached {cached_runner} != requested {expected_runner}"
            )
    if expected_model_params is not None:
        cached_model = meta.get("model_params")
        requested = dataclasses.asdict(expected_model_params)
        if cached_model != requested:
            mismatches.append(
                "model_params: cached "
                f"{'<absent>' if cached_model is None else cached_model} "
                f"!= requested {requested}"
            )
    return mismatches


def load_dataset(
    path: Union[str, Path],
    *,
    expected_runner: Optional[RunnerConfig] = None,
    expected_device_name: Optional[str] = None,
    expected_model_params: Optional[PerfModelParams] = None,
) -> BenchmarkResult:
    """Load a benchmark result written by :func:`save_dataset`.

    Any ``expected_*`` argument is validated against the cached meta; a
    disagreement raises :class:`CacheMismatchError` (callers treat it as
    a cache miss) instead of silently returning a stale dataset.
    """
    with np.load(Path(path), allow_pickle=False) as data:
        meta = json.loads(str(data["meta"]))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported dataset format {meta.get('format_version')!r}"
            )
        mismatches = _meta_mismatches(
            meta, expected_runner, expected_device_name, expected_model_params
        )
        if mismatches:
            raise CacheMismatchError(
                f"cached dataset {Path(path)} does not match the request: "
                + "; ".join(mismatches)
            )
        shapes = tuple(
            GemmShape(m=int(m), k=int(k), n=int(n), batch=int(b))
            for m, k, n, b in data["shapes"]
        )
        configs = tuple(
            KernelConfig(
                acc=int(a), rows=int(r), cols=int(c), wg_rows=int(wr), wg_cols=int(wc)
            )
            for a, r, c, wr, wc in data["configs"]
        )
        runner = RunnerConfig(**meta["runner"])
        return BenchmarkResult(
            device_name=meta["device_name"],
            shapes=shapes,
            configs=configs,
            gflops=np.array(data["gflops"]),
            seconds=np.array(data["seconds"]),
            runner=runner,
        )
