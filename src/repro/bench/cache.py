"""Dataset persistence: save/load benchmark results as ``.npz``.

The paper publishes its dataset alongside the code; this module plays
that role so the (seconds-scale) regeneration can be skipped by examples
and benchmarks that only consume the data.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.bench.runner import BenchmarkResult, RunnerConfig
from repro.kernels.params import KernelConfig
from repro.workloads.gemm import GemmShape

__all__ = ["load_dataset", "save_dataset"]

_FORMAT_VERSION = 1


def save_dataset(result: BenchmarkResult, path: Union[str, Path]) -> Path:
    """Serialise a benchmark result; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = {
        "format_version": _FORMAT_VERSION,
        "device_name": result.device_name,
        "runner": {
            "warmup_iterations": result.runner.warmup_iterations,
            "timed_iterations": result.runner.timed_iterations,
            "seed": result.runner.seed,
            "max_retries": result.runner.max_retries,
            "retry_backoff_s": result.runner.retry_backoff_s,
        },
    }
    np.savez_compressed(
        path,
        meta=json.dumps(meta),
        shapes=np.array([s.as_tuple() for s in result.shapes], dtype=np.int64),
        configs=np.array(
            [
                (c.acc, c.rows, c.cols, c.wg_rows, c.wg_cols)
                for c in result.configs
            ],
            dtype=np.int64,
        ),
        gflops=result.gflops,
        seconds=result.seconds,
    )
    # np.savez appends .npz when missing; normalise the return value.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_dataset(path: Union[str, Path]) -> BenchmarkResult:
    """Load a benchmark result written by :func:`save_dataset`."""
    with np.load(Path(path), allow_pickle=False) as data:
        meta = json.loads(str(data["meta"]))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported dataset format {meta.get('format_version')!r}"
            )
        shapes = tuple(
            GemmShape(m=int(m), k=int(k), n=int(n), batch=int(b))
            for m, k, n, b in data["shapes"]
        )
        configs = tuple(
            KernelConfig(
                acc=int(a), rows=int(r), cols=int(c), wg_rows=int(wr), wg_cols=int(wc)
            )
            for a, r, c, wr, wc in data["configs"]
        )
        runner = RunnerConfig(**meta["runner"])
        return BenchmarkResult(
            device_name=meta["device_name"],
            shapes=shapes,
            configs=configs,
            gflops=np.array(data["gflops"]),
            seconds=np.array(data["seconds"]),
            runner=runner,
        )
