"""The benchmark runner: sweep configurations over shapes on a device.

Mirrors the paper's data collection: "For each of these sizes we ran a
benchmark for each of the kernel configurations, recording the runtime of
the kernel and number of flops attained over a number of iterations."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.bench.failures import FailureLog, FailureRecord
from repro.bench.stats import TimingSummary, summarize_times
from repro.bench.parallel import parallel_map
from repro.kernels.params import KernelConfig, config_space
from repro.perfmodel.model import GemmPerfModel
from repro.perfmodel.params import PerfModelParams
from repro.sycl.device import Device
from repro.sycl.exceptions import SyclError
from repro.workloads.gemm import GemmShape

__all__ = ["BenchmarkResult", "BenchmarkRunner", "RunnerConfig"]


@dataclass(frozen=True)
class RunnerConfig:
    """Benchmark protocol parameters.

    ``max_retries`` re-attempts a (shape, config) measurement that raised
    a :class:`~repro.sycl.exceptions.SyclError`; once the retries are
    exhausted the cell is recorded as NaN in the result table instead of
    aborting the sweep.  ``retry_backoff_s`` is the base of the simulated
    exponential back-off (attempt ``i`` waits ``retry_backoff_s * 2**i``
    device-seconds, charged to the failure log, never the wall clock).
    """

    warmup_iterations: int = 2
    timed_iterations: int = 5
    seed: int = 2020
    max_retries: int = 0
    retry_backoff_s: float = 0.0

    def __post_init__(self) -> None:
        if self.warmup_iterations < 0:
            raise ValueError("warmup_iterations must be >= 0")
        if self.timed_iterations < 1:
            raise ValueError("timed_iterations must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")


@dataclass(frozen=True)
class BenchmarkResult:
    """The raw dataset: one GFLOP/s entry per (shape, config).

    Cells that failed after exhausting their retries hold NaN in both
    ``gflops`` and ``seconds``; ``failures`` records why.
    """

    device_name: str
    shapes: Tuple[GemmShape, ...]
    configs: Tuple[KernelConfig, ...]
    #: (n_shapes, n_configs) achieved GFLOP/s (mean over timed iterations).
    gflops: np.ndarray
    #: (n_shapes, n_configs) mean kernel time in seconds.
    seconds: np.ndarray
    runner: RunnerConfig = field(default_factory=RunnerConfig)
    #: Per-run account of skipped/retried cells (empty for clean sweeps).
    failures: FailureLog = field(default_factory=FailureLog)

    def __post_init__(self) -> None:
        expected = (len(self.shapes), len(self.configs))
        if self.gflops.shape != expected or self.seconds.shape != expected:
            raise ValueError(
                f"matrix shapes {self.gflops.shape}/{self.seconds.shape} do "
                f"not match ({expected})"
            )

    @property
    def n_failed_cells(self) -> int:
        """Cells abandoned as NaN after exhausting their retries."""
        return int(np.isnan(self.gflops).sum())


def _bench_one_shape(
    shape: GemmShape,
    *,
    configs: Sequence[KernelConfig],
    model: GemmPerfModel,
    runner: RunnerConfig,
) -> Tuple[np.ndarray, np.ndarray, Tuple[FailureRecord, ...]]:
    """All configs for one shape; module-level for process-pool pickling."""
    n = len(configs)
    gflops = np.full(n, np.nan)
    seconds = np.full(n, np.nan)
    failures: list = []
    for ci, config in enumerate(configs):
        times = None
        for attempt in range(runner.max_retries + 1):
            try:
                # Warm-up iterations are discarded: they model JIT/cache
                # warming.
                times = model.measured_times_seconds(
                    shape,
                    config,
                    iterations=runner.timed_iterations,
                    start_iteration=runner.warmup_iterations,
                )
                break
            except SyclError as exc:
                fatal = attempt == runner.max_retries
                failures.append(
                    FailureRecord(
                        kind=type(exc).__name__,
                        message=str(exc),
                        shape=shape,
                        config=config,
                        attempt=attempt,
                        fatal=fatal,
                        backoff_s=(
                            0.0
                            if fatal
                            else runner.retry_backoff_s * 2**attempt
                        ),
                    )
                )
        if times is None:
            # Retries exhausted: skip-and-record, the cell stays NaN.
            continue
        # Only the mean enters the dataset; computing the full summary
        # here costs ~40% of the sweep (profiled), so it is reserved for
        # bench_single's detailed view.
        mean = float(times.mean())
        seconds[ci] = mean
        gflops[ci] = shape.flops / mean / 1e9
    return gflops, seconds, tuple(failures)


class BenchmarkRunner:
    """Sweeps the configuration space over a shape list on one device."""

    def __init__(
        self,
        device: Device,
        *,
        configs: Optional[Sequence[KernelConfig]] = None,
        runner_config: Optional[RunnerConfig] = None,
        model_params: Optional[PerfModelParams] = None,
        model=None,
    ):
        """``model`` overrides the default dense GEMM model — anything
        with ``measured_times_seconds(shape, config, iterations=...,
        start_iteration=...)`` works (e.g. the sparse model)."""
        self._device = device
        self._configs = tuple(configs) if configs is not None else tuple(config_space())
        self._runner_config = runner_config or RunnerConfig()
        if model is not None and model_params is not None:
            raise ValueError("pass either model or model_params, not both")
        self._model = model or GemmPerfModel(
            device, params=model_params, seed=self._runner_config.seed
        )

    @property
    def device(self) -> Device:
        return self._device

    @property
    def configs(self) -> Tuple[KernelConfig, ...]:
        return self._configs

    @property
    def model(self) -> GemmPerfModel:
        return self._model

    @property
    def runner_config(self) -> RunnerConfig:
        """The benchmark protocol parameters in force."""
        return self._runner_config

    def run(
        self,
        shapes: Sequence[GemmShape],
        *,
        max_workers: Optional[int] = 1,
    ) -> BenchmarkResult:
        """Benchmark every configuration on every shape.

        ``max_workers > 1`` distributes shapes over a process pool; the
        counter-based noise makes the result bit-identical regardless of
        worker count.

        A cell whose measurement raises a
        :class:`~repro.sycl.exceptions.SyclError` is retried up to
        ``max_retries`` times and then recorded as NaN; the sweep always
        completes, and every failure is listed in ``result.failures``.
        """
        shapes = tuple(shapes)
        if not shapes:
            raise ValueError("shapes must be non-empty")
        fn = partial(
            _bench_one_shape,
            configs=self._configs,
            model=self._model,
            runner=self._runner_config,
        )
        rows = parallel_map(fn, shapes, max_workers=max_workers)
        gflops = np.vstack([r[0] for r in rows])
        seconds = np.vstack([r[1] for r in rows])
        failures = FailureLog()
        for row in rows:
            failures.extend(row[2])
        return BenchmarkResult(
            device_name=self._device.name,
            shapes=shapes,
            configs=self._configs,
            gflops=gflops,
            seconds=seconds,
            runner=self._runner_config,
            failures=failures,
        )

    def bench_single(
        self,
        shape: GemmShape,
        config: KernelConfig,
        *,
        iterations: Optional[int] = None,
    ) -> TimingSummary:
        """Benchmark one (shape, config) pair and return timing detail.

        ``iterations`` overrides the protocol's timed iteration count for
        this measurement (e.g. a dynamic selector's cheaper trial sweeps);
        warm-up stays as configured.
        """
        rc = self._runner_config
        if iterations is None:
            iterations = rc.timed_iterations
        elif iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        times = self._model.measured_times_seconds(
            shape,
            config,
            iterations=iterations,
            start_iteration=rc.warmup_iterations,
        )
        return summarize_times(times)
