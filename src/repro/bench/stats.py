"""Timing aggregation used by the benchmark runner."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TimingSummary", "summarize_times"]


@dataclass(frozen=True)
class TimingSummary:
    """Robust summary of repeated timing measurements (seconds)."""

    mean: float
    median: float
    minimum: float
    maximum: float
    stddev: float
    iterations: int

    @property
    def relative_spread(self) -> float:
        """Std-dev over mean — the noise level of the measurement."""
        return self.stddev / self.mean if self.mean > 0 else 0.0


def summarize_times(times) -> TimingSummary:
    """Aggregate one benchmark's timing samples."""
    times = np.asarray(times, dtype=np.float64)
    if times.size == 0:
        raise ValueError("cannot summarise zero measurements")
    if np.any(times <= 0):
        raise ValueError("timings must be positive")
    return TimingSummary(
        mean=float(times.mean()),
        median=float(np.median(times)),
        minimum=float(times.min()),
        maximum=float(times.max()),
        stddev=float(times.std()),
        iterations=int(times.size),
    )
