"""Benchmark harness: regenerates the paper's performance dataset.

For every (GEMM shape, kernel configuration) pair the runner performs a
benchmark on the simulated device — warm-up plus timed iterations through
the performance model's noisy measurement interface — and records runtime
and achieved FLOP rate, exactly the procedure described in Section II.A.
"""

from repro.bench.failures import FailureLog, FailureRecord
from repro.bench.runner import BenchmarkResult, BenchmarkRunner, RunnerConfig
from repro.bench.stats import summarize_times, TimingSummary
from repro.bench.cache import load_dataset, save_dataset
from repro.bench.parallel import parallel_map

__all__ = [
    "BenchmarkResult",
    "BenchmarkRunner",
    "FailureLog",
    "FailureRecord",
    "RunnerConfig",
    "TimingSummary",
    "load_dataset",
    "parallel_map",
    "save_dataset",
    "summarize_times",
]
