"""Deterministic parallel map over independent work items.

Dataset generation is embarrassingly parallel across shapes: each
(shape, all-configs) row depends only on the root seed, never on shared
state (the counter-based noise streams guarantee it).  ``parallel_map``
chunks the work across a process pool and reassembles results in input
order, falling back to serial execution for small inputs or single-CPU
machines where pool overhead would dominate.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map"]

#: Below this many items the pool spawn cost outweighs any speedup.
_MIN_PARALLEL_ITEMS = 32


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    max_workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    min_parallel_items: Optional[int] = None,
) -> List[R]:
    """Map ``fn`` over ``items``, in parallel when it pays off.

    Results are returned in input order regardless of completion order.
    ``fn`` must be picklable (module-level function or functools.partial)
    when parallel execution kicks in.  ``min_parallel_items`` overrides
    the serial-fallback threshold — callers whose items are individually
    expensive (e.g. whole pipeline stages) set it low.
    """
    items = list(items)
    workers = max_workers if max_workers is not None else os.cpu_count() or 1
    threshold = (
        _MIN_PARALLEL_ITEMS if min_parallel_items is None else min_parallel_items
    )
    if workers <= 1 or len(items) < threshold:
        return [fn(item) for item in items]
    if chunksize is None:
        chunksize = max(1, len(items) // (workers * 4))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))
