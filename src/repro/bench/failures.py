"""Failure accounting for fault-tolerant benchmark sweeps.

A sweep that skips failed cells instead of aborting needs a record of
*what* it skipped: which (shape, config) coordinates failed, on which
attempt, with what error, and whether a retry eventually recovered the
measurement.  :class:`FailureLog` collects those records; the runner
attaches one to every :class:`~repro.bench.runner.BenchmarkResult` so a
NaN cell in the table can always be traced back to its cause.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.kernels.params import KernelConfig
from repro.workloads.gemm import GemmShape

__all__ = ["FailureLog", "FailureRecord"]


@dataclass(frozen=True)
class FailureRecord:
    """One failed operation observed during a run.

    ``fatal`` is True when no retry remained (the cell was abandoned as
    NaN) and False when a later attempt recovered it.  ``backoff_s`` is
    the simulated back-off delay charged before the next attempt (zero
    for fatal records).  Queue-level failures carry no (shape, config)
    coordinates; ``where`` then names the kernel instead.
    """

    kind: str
    message: str
    shape: Optional[GemmShape] = None
    config: Optional[KernelConfig] = None
    attempt: int = 0
    fatal: bool = True
    backoff_s: float = 0.0
    where: str = "sweep"

    def cell(self) -> Optional[Tuple[GemmShape, KernelConfig]]:
        """The benchmark-table coordinate, when the failure has one."""
        if self.shape is None or self.config is None:
            return None
        return (self.shape, self.config)


class FailureLog:
    """Ordered collection of :class:`FailureRecord` entries."""

    def __init__(self, records: Iterable[FailureRecord] = ()):
        self._records: List[FailureRecord] = list(records)

    def append(self, record: FailureRecord) -> None:
        self._records.append(record)

    def extend(self, records: Iterable[FailureRecord]) -> None:
        self._records.extend(records)

    @property
    def records(self) -> Tuple[FailureRecord, ...]:
        return tuple(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[FailureRecord]:
        return iter(self._records)

    def __bool__(self) -> bool:
        return bool(self._records)

    def kinds(self) -> Dict[str, int]:
        """Failure counts per error kind."""
        return dict(Counter(r.kind for r in self._records))

    def fatal_records(self) -> Tuple[FailureRecord, ...]:
        return tuple(r for r in self._records if r.fatal)

    def failed_cells(self) -> Tuple[Tuple[GemmShape, KernelConfig], ...]:
        """Distinct (shape, config) coordinates abandoned as NaN."""
        seen = []
        for record in self._records:
            cell = record.cell()
            if record.fatal and cell is not None and cell not in seen:
                seen.append(cell)
        return tuple(seen)

    @property
    def retries(self) -> int:
        """Attempts that were retried (non-fatal failures)."""
        return sum(1 for r in self._records if not r.fatal)

    @property
    def total_backoff_seconds(self) -> float:
        """Simulated seconds spent backing off before retries."""
        return float(sum(r.backoff_s for r in self._records))

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        if not self._records:
            return "no failures recorded"
        kinds = ", ".join(
            f"{kind} x{count}" for kind, count in sorted(self.kinds().items())
        )
        return (
            f"{len(self._records)} failures ({kinds}); "
            f"{len(self.failed_cells())} cells abandoned, "
            f"{self.retries} retried, "
            f"{self.total_backoff_seconds:.3f}s simulated backoff"
        )

    def __repr__(self) -> str:
        return f"FailureLog({len(self._records)} records)"
