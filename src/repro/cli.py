"""Command-line interface: ``repro <subcommand>``.

Subcommands
-----------
* ``dataset``     — regenerate and save the performance dataset.
* ``shapes``      — list the GEMM shapes extracted from the networks.
* ``experiments`` — run figure/table reproductions and print them.
* ``tune``        — run the full pipeline and export the selector source.
* ``pipeline``    — staged pipeline: ``run`` / ``status`` / ``gc`` against
  a content-addressed artifact store.
* ``fleet``       — multi-device fleet: ``build`` / ``route`` / ``stats``
  / ``devices`` over per-device selector artifacts and a routing layer.
* ``serve-stats`` — replay a serving workload, print service counters.
* ``loadgen``     — closed-loop load harness: ``run`` Poisson/diurnal
  traffic with Zipf-skewed network shapes against a replica fleet and
  report p50/p99/p999 from the obs histograms; ``--adaptive`` runs the
  drifted-workload scenario through adaptive services; ``--processes``
  drives a process-parallel :class:`~repro.shard.ShardedFleet` instead
  of the in-process replica router.
* ``shard``       — sharded process-parallel serving: ``serve`` traffic
  through a worker fleet (optionally killing a worker mid-run to demo
  failover), ``stats`` the shard.* metrics of an obs snapshot,
  ``bench`` single-process vs N-process scaling with a CI floor.
* ``adaptive``    — online adaptive selection: ``demo`` a deterministic
  drift replay (promotions/demotions timeline, gap closure, digest),
  ``stats`` the adaptive.* metrics of an obs snapshot.
* ``obs``         — render an observability snapshot: ``dump`` /
  ``summary`` over metrics + spans exported with ``--obs-export``.
* ``devices``     — list the simulated device presets.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

__all__ = ["main"]


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        type=Path,
        default=None,
        help="path of a saved dataset (.npz); generated fresh when absent",
    )
    parser.add_argument(
        "--device",
        default="r9-nano",
        help="device preset (see `repro devices`)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool workers for the benchmark sweep (1 = serial)",
    )


def _load_or_generate(args):
    from repro.core.dataset import PerformanceDataset, generate_dataset
    from repro.sycl.device import Device

    if args.dataset is not None and Path(args.dataset).exists():
        return PerformanceDataset.load(args.dataset)
    return generate_dataset(
        device=Device.from_preset(args.device),
        cache_path=args.dataset,
        max_workers=getattr(args, "workers", 1),
    )


def _export_obs(path: Path, registry, tracer=None) -> None:
    """Write a ``repro.obs`` JSON document for ``repro obs`` to read back."""
    import json

    from repro.obs import obs_doc

    doc = obs_doc(registry, tracer)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True))
    print(f"obs snapshot written to {path}")


def _cmd_dataset(args) -> int:
    dataset = _load_or_generate(args)
    print(dataset)
    if args.out is not None:
        path = dataset.save(args.out)
        print(f"saved to {path}")
    return 0


def _cmd_shapes(args) -> int:
    from repro.workloads.extract import extract_network_shapes

    shape_set = extract_network_shapes(args.network)
    print(f"{shape_set.network}: {len(shape_set)} unique GEMM shapes")
    for shape in shape_set.shapes:
        provenance = shape_set.provenance(shape)
        layers = ", ".join(
            f"{lg.layer}/{lg.transform}@b{lg.image_batch}" for lg in provenance[:3]
        )
        more = "" if len(provenance) <= 3 else f" (+{len(provenance) - 3} more)"
        print(f"  {str(shape):24s} <- {layers}{more}")
    return 0


def _cmd_experiments(args) -> int:
    from repro.experiments import (
        run_all,
        run_fig1,
        run_fig2,
        run_fig3,
        run_fig4,
        run_table1,
    )

    if args.which == "sparse":
        from repro.experiments.sparse import run_sparse_generalization

        print(run_sparse_generalization().render())
        return 0
    if args.which == "placement":
        from repro.experiments.placement import run_placement_flip

        print(run_placement_flip().render())
        return 0
    dataset = _load_or_generate(args)
    from repro.experiments.tradeoff import run_tradeoff
    from repro.experiments.variance import run_variance

    runners = {
        "1": run_fig1,
        "2": run_fig2,
        "3": run_fig3,
        "4": run_fig4,
        "table1": run_table1,
        "tradeoff": run_tradeoff,
        "variance": run_variance,
    }
    if args.which == "all":
        print(run_all(dataset).render())
    else:
        print(runners[args.which](dataset).render())
    return 0


def _cmd_placement(args) -> int:
    import json

    from repro.experiments.placement import run_placement_flip

    result = run_placement_flip(
        budget=args.budget,
        shape_stride=args.stride,
        split_seed=args.seed,
        random_state=args.seed,
    )
    print(result.render())
    if args.report_json is not None:
        args.report_json.write_text(
            json.dumps(result.to_dict(), indent=2, sort_keys=True)
        )
        print(f"report written to {args.report_json}")
    failures = []
    if result.flip_fraction < args.min_flip_fraction:
        failures.append(
            f"flip fraction {result.flip_fraction:.2f} < "
            f"required {args.min_flip_fraction:.2f}"
        )
    if result.margin < args.min_margin:
        failures.append(
            f"mixed-traffic margin {result.margin * 100:+.1f}pts < "
            f"required {args.min_margin * 100:+.1f}pts"
        )
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}")
        return 1
    print("placement gates passed")
    return 0


def _cmd_tune(args) -> int:
    from repro.core.deploy import tune

    dataset = _load_or_generate(args)
    train, test = dataset.split(test_size=0.2, random_state=args.seed)
    deployed = tune(
        train,
        n_configs=args.budget,
        classifier=args.classifier,
        random_state=args.seed,
    )
    print(deployed)
    from repro.core.selection.evaluate import evaluate_selector

    evaluation = evaluate_selector(deployed.selector, test)
    print(
        f"test score: {evaluation.score * 100:.2f}% of optimal "
        f"(ceiling {evaluation.ceiling * 100:.2f}%)"
    )
    if args.export == "py":
        print(deployed.export_python())
    elif args.export == "cpp":
        print(deployed.export_cpp())
    return 0


def _build_pipeline_config(args):
    from repro.pipeline import PaperPipelineConfig

    kwargs = {
        "device_preset": args.device,
        "split_seed": args.split_seed,
        "test_size": args.test_size,
        "pruner": args.pruner,
        "budget": args.budget,
        "classifier": args.classifier,
        "random_state": args.seed,
    }
    if args.networks:
        kwargs["networks"] = tuple(args.networks)
    return PaperPipelineConfig(**kwargs)


def _cmd_pipeline(args) -> int:
    from repro.pipeline import ArtifactStore
    from repro.pipeline.paper import paper_params, paper_pipeline

    store = ArtifactStore(args.store)
    config = _build_pipeline_config(args)
    pipeline = paper_pipeline()

    if args.action == "run":
        from repro.obs import Tracer, default_registry
        from repro.pipeline import PipelineExecutor

        registry = default_registry()
        tracer = Tracer()
        executor = PipelineExecutor(
            store, max_workers=args.workers, registry=registry, tracer=tracer
        )
        run = executor.run(pipeline, paper_params(config), force=args.force)
        print(run.stats.render())
        if args.obs_export is not None:
            _export_obs(args.obs_export, registry, tracer)
        print()
        for name in ("dataset", "train", "eval"):
            print(f"{name:8s} -> {run.artifacts[name].artifact_id}")
        if args.render:
            from repro.experiments.run_all import AllResults

            print()
            print(
                AllResults(
                    dataset=run.value("dataset"),
                    fig1=run.value("fig1"),
                    fig2=run.value("fig2"),
                    fig3=run.value("fig3"),
                    fig4=run.value("fig4"),
                    table1=run.value("table1"),
                ).render()
            )
        if args.assert_all_cached and not run.stats.all_cached:
            print(
                "ERROR: expected a fully cached run but these stages "
                f"executed: {', '.join(run.stats.executed_stages)}",
                file=sys.stderr,
            )
            return 1
        return 0

    if args.action == "status":
        manifests = store.ls()
        if not manifests:
            print(f"store {store.root}: empty")
            return 0
        print(f"store {store.root}: {len(manifests)} artifacts")
        for p in manifests:
            size_kb = store.size_bytes(p.fingerprint) / 1024
            print(
                f"  {p.stage:10s} {p.fingerprint[:12]}  "
                f"{size_kb:9.1f} KiB  {p.runtime_s * 1e3:8.1f}ms"
                f"{'  (failures: %d)' % len(p.failures) if p.failures else ''}"
            )
        return 0

    if args.action == "gc":
        keep = (
            set()
            if args.all
            else set(pipeline.fingerprints(paper_params(config)).values())
        )
        removed = store.gc(keep)
        print(
            f"removed {len(removed)} artifacts, kept "
            f"{sum(1 for _ in store.fingerprints())}"
        )
        return 0

    raise ValueError(f"unknown pipeline action {args.action!r}")


def _cmd_serve_stats(args) -> int:
    import numpy as np

    from repro.obs import default_registry
    from repro.serving import SelectionService

    registry = default_registry()
    service = None
    if args.store is not None:
        from repro.pipeline import ArtifactStore

        store = ArtifactStore(args.store)
        artifact_id = args.artifact
        if artifact_id is None:
            latest = store.latest("train")
            if latest is None:
                print(
                    f"no trained selector artifact in {store.root}; "
                    "run `repro pipeline run` first",
                    file=sys.stderr,
                )
                return 1
            artifact_id = latest.fingerprint
        service = SelectionService.from_artifact(
            store,
            artifact_id,
            capacity=args.cache_capacity,
            registry=registry,
            name="serve",
        )

    dataset = _load_or_generate(args)
    train, test = dataset.split(test_size=0.2, random_state=args.seed)
    if service is None:
        from repro.core.deploy import tune

        deployed = tune(
            train,
            n_configs=args.budget,
            classifier=args.classifier,
            random_state=args.seed,
        )
        service = SelectionService(
            deployed,
            capacity=args.cache_capacity,
            registry=registry,
            name="serve",
        )

    # Production-style traffic: a skewed distribution over the test
    # shapes (a few hot shapes dominate, a long tail of rare ones).
    rng = np.random.default_rng(args.seed)
    shapes = list(test.shapes)
    weights = 1.0 / np.arange(1, len(shapes) + 1)
    weights /= weights.sum()
    picks = rng.choice(len(shapes), size=args.requests, p=weights)
    for start in range(0, args.requests, args.batch_size):
        batch = [shapes[i] for i in picks[start : start + args.batch_size]]
        service.select_batch(batch)

    print(f"served {args.requests} requests in batches of {args.batch_size}")
    print(service.stats().render())
    if args.obs_export is not None:
        _export_obs(args.obs_export, registry)
    return 0


def _loadgen_config(args):
    from repro.loadgen import DEFAULT_NETWORKS, LoadgenConfig, RateProfile

    return LoadgenConfig(
        profile=RateProfile(
            base_qps=args.qps,
            amplitude=args.diurnal_amplitude,
            period_s=args.diurnal_period,
        ),
        duration_s=args.duration,
        workers=args.workers,
        networks=tuple(args.networks) if args.networks else DEFAULT_NETWORKS,
        zipf_skew=args.zipf,
        seed=args.seed,
        pace=not args.no_pace,
    )


def _loadgen_config_doc(args) -> dict:
    """The run configuration embedded in ``--report-json`` meta."""
    doc = {}
    for key, value in sorted(vars(args).items()):
        if key in ("func", "command", "action"):
            continue
        doc[key] = str(value) if isinstance(value, Path) else value
    return doc


def _resolve_selector_artifact(args, store):
    """The train-stage artifact id from --artifact, or the latest."""
    artifact_id = args.artifact
    if artifact_id is None:
        latest = store.latest("train")
        if latest is None:
            print(
                f"no trained selector artifact in {store.root}; "
                "run `repro pipeline run` first",
                file=sys.stderr,
            )
            return None
        artifact_id = latest.fingerprint
    return artifact_id


def _build_sharded_fleet(args, registry, *, processes):
    """A :class:`ShardedFleet` from --store or a synthetic selector."""
    from repro.shard import ShardedFleet

    kwargs = dict(
        processes=processes,
        compiled=args.compiled,
        cache_capacity=args.cache_capacity,
        registry=registry,
    )
    if args.store is not None:
        from repro.pipeline import ArtifactStore

        store = ArtifactStore(args.store)
        artifact_id = _resolve_selector_artifact(args, store)
        if artifact_id is None:
            return None
        return ShardedFleet.from_artifact(store, artifact_id, **kwargs)
    from repro.loadgen import synthetic_deployed

    deployed = synthetic_deployed(budget=args.budget, seed=args.seed)
    return ShardedFleet.from_deployed(deployed, **kwargs)


def _run_sharded_loadgen(args, registry) -> int:
    import json

    from repro.loadgen import report_document, run_sharded_load

    config = _loadgen_config(args)
    fleet = _build_sharded_fleet(args, registry, processes=args.processes)
    if fleet is None:
        return 1
    try:
        report = run_sharded_load(fleet, config, chunk_size=args.chunk_size)
        print(
            f"loadgen: {args.processes} shard worker processes "
            f"({'compiled' if args.compiled else 'tree-walk'} policy), "
            f"{config.workers} generator threads, zipf {config.zipf_skew}"
        )
        print(report.render())
        print(fleet.stats(pull=False).render())
    finally:
        fleet.close()
    if args.report_json is not None:
        args.report_json.write_text(
            json.dumps(
                report_document(
                    report,
                    config=_loadgen_config_doc(args),
                    command="repro loadgen run",
                ),
                indent=2,
                sort_keys=True,
            )
        )
        print(f"report written to {args.report_json}")
    if args.obs_export is not None:
        _export_obs(args.obs_export, registry)
    if args.min_qps is not None and report.achieved_qps < args.min_qps:
        print(
            f"ERROR: achieved {report.achieved_qps:,.0f} qps, below the "
            f"--min-qps floor of {args.min_qps:,.0f}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_loadgen(args) -> int:
    import json

    from repro.loadgen import (
        report_document,
        run_load,
        synthetic_router,
    )
    from repro.obs import default_registry

    registry = default_registry()
    if args.processes is not None:
        if args.adaptive:
            print(
                "ERROR: --processes drives a sharded worker fleet; the "
                "--adaptive drift scenario is in-process only",
                file=sys.stderr,
            )
            return 1
        return _run_sharded_loadgen(args, registry)
    if args.adaptive and args.store is not None:
        print(
            "ERROR: --adaptive runs the drifted synthetic-fleet scenario; "
            "drop --store",
            file=sys.stderr,
        )
        return 1
    router = None
    if args.adaptive:
        pass  # run_drift_load builds its own adaptive fleet
    elif args.store is not None:
        from repro.pipeline import ArtifactStore
        from repro.serving import SelectionService
        from repro.serving.router import FleetRouter

        store = ArtifactStore(args.store)
        artifact_id = _resolve_selector_artifact(args, store)
        if artifact_id is None:
            return 1
        try:
            artifact = store.resolve(artifact_id)
        except KeyError as exc:
            print(f"ERROR: {exc.args[0]}", file=sys.stderr)
            return 1
        if artifact is None:
            print(f"ERROR: no artifact {artifact_id!r}", file=sys.stderr)
            return 1
        policy = artifact.value
        if args.compiled:
            if not hasattr(policy, "compiled"):
                print(
                    f"ERROR: artifact policy {type(policy).__name__} has no "
                    "compiled() hot path (need a DeployedSelector)",
                    file=sys.stderr,
                )
                return 1
            policy = policy.compiled()
        router = FleetRouter(default_policy=args.policy, registry=registry)
        for i in range(args.replicas):
            router.add_device(
                f"dev{i}",
                SelectionService(
                    policy,
                    capacity=args.cache_capacity,
                    registry=registry,
                    name=f"dev{i}",
                    provenance=artifact.provenance,
                ),
            )
    else:
        router = synthetic_router(
            replicas=args.replicas,
            registry=registry,
            routing_policy=args.policy,
            cache_capacity=args.cache_capacity,
            budget=args.budget,
            seed=args.seed,
            compiled=args.compiled,
        )

    config = _loadgen_config(args)
    if args.adaptive:
        from repro.loadgen.drift import (
            DriftSpec,
            drift_adaptive_config,
            run_drift_load,
        )

        report = run_drift_load(
            config,
            spec=DriftSpec(
                at=args.drift_at,
                factor=args.drift_factor,
                noise_sigma=args.drift_noise,
                seed=args.seed,
            ),
            adaptive=drift_adaptive_config(
                args.seed, trial_fraction=args.trial_fraction
            ),
            replicas=args.replicas,
            budget=args.budget,
            registry=registry,
        )
    else:
        report = run_load(router, config, registry=registry)
    if args.adaptive:
        policy_name = "adaptive drift"
    elif args.compiled:
        policy_name = "compiled"
    else:
        policy_name = "tree-walk"
    print(
        f"loadgen: {args.replicas} replicas "
        f"({policy_name} policy), "
        f"{config.workers} workers, zipf {config.zipf_skew}"
    )
    print(report.render())
    if args.report_json is not None:
        args.report_json.write_text(
            json.dumps(
                report_document(
                    report,
                    config=_loadgen_config_doc(args),
                    command="repro loadgen run",
                ),
                indent=2,
                sort_keys=True,
            )
        )
        print(f"report written to {args.report_json}")
    if args.obs_export is not None:
        _export_obs(args.obs_export, registry)
    if args.min_qps is not None and report.achieved_qps < args.min_qps:
        print(
            f"ERROR: achieved {report.achieved_qps:,.0f} qps, below the "
            f"--min-qps floor of {args.min_qps:,.0f}",
            file=sys.stderr,
        )
        return 1
    if args.min_gap_closure is not None:
        if report.drift is None:
            print(
                "ERROR: --min-gap-closure needs a drift report; "
                "run with --adaptive",
                file=sys.stderr,
            )
            return 1
        if report.drift.gap_closure < args.min_gap_closure:
            print(
                f"ERROR: closed {report.drift.gap_closure:.1%} of the "
                f"static-to-oracle gap, below the --min-gap-closure floor "
                f"of {args.min_gap_closure:.1%}",
                file=sys.stderr,
            )
            return 1
    return 0


def _usable_cpus() -> int:
    """CPUs available to shard workers (one reserved for the front door)."""
    import os

    return max(1, (os.cpu_count() or 1) - 1)


def _cmd_shard(args) -> int:
    import json

    if args.action == "stats":
        from repro.obs import render_dump

        if args.snapshot is None:
            print(
                "ERROR: shard stats reads a snapshot; pass --snapshot PATH "
                "(export one with `repro shard serve --obs-export PATH`)",
                file=sys.stderr,
            )
            return 1
        try:
            doc = json.loads(Path(args.snapshot).read_text())
        except FileNotFoundError:
            print(f"no obs snapshot at {args.snapshot}", file=sys.stderr)
            return 1
        metrics = doc.get("metrics", {})
        filtered = {
            kind: [
                entry
                for entry in metrics.get(kind, [])
                if str(entry.get("name", "")).startswith("shard.")
            ]
            for kind in ("counters", "gauges", "histograms")
        }
        if not any(filtered.values()):
            print("no shard.* metrics in the snapshot", file=sys.stderr)
            return 1
        print(render_dump({**doc, "metrics": filtered, "spans": []}))
        return 0

    from repro.obs import default_registry

    registry = default_registry()

    if args.action == "serve":
        from repro.loadgen import ShapeStream, network_shape_pool

        fleet = _build_sharded_fleet(args, registry, processes=args.processes)
        if fleet is None:
            return 1
        try:
            pool = (
                network_shape_pool(tuple(args.networks))
                if args.networks
                else network_shape_pool()
            )
            stream = ShapeStream(pool, skew=args.zipf, seed=args.seed)
            shapes = stream.take(args.requests)
            kill_at = args.requests // 2
            issued = 0
            for start in range(0, args.requests, args.batch_size):
                kill_now = (
                    args.kill is not None
                    and issued <= kill_at < issued + args.batch_size
                )
                if kill_now:
                    print(f"killing worker {args.kill} mid-run...")
                    fleet.kill_worker(args.kill)
                chunk = shapes[start : start + args.batch_size]
                fleet.select_batch(chunk)
                issued += len(chunk)
            print(
                f"served {issued} requests in batches of "
                f"{args.batch_size} across {args.processes} worker processes"
            )
            print(fleet.stats().render())
        finally:
            fleet.close()
        if args.obs_export is not None:
            _export_obs(args.obs_export, registry)
        return 0

    if args.action == "bench":
        from repro.loadgen import report_document, run_sharded_load
        from repro.obs import MetricsRegistry

        config = _loadgen_config(args)
        reports = {}
        for label, processes in (("single", 1), ("sharded", args.processes)):
            fleet = _build_sharded_fleet(
                args, MetricsRegistry(), processes=processes
            )
            if fleet is None:
                return 1
            try:
                reports[label] = run_sharded_load(
                    fleet, config, chunk_size=args.chunk_size
                )
            finally:
                fleet.close()
        single, sharded = reports["single"], reports["sharded"]
        scaling = (
            sharded.achieved_qps / single.achieved_qps
            if single.achieved_qps > 0
            else 0.0
        )
        usable = _usable_cpus()
        parallelism = min(args.processes, usable)
        efficiency = scaling / parallelism if parallelism > 0 else 0.0
        print(
            f"shard bench: 1 vs {args.processes} worker processes "
            f"({usable} usable CPUs), {config.workers} generator threads"
        )
        print(f"single : {single.render()}")
        print(f"sharded: {sharded.render()}")
        print(
            f"scaling: {scaling:.2f}x over 1 process "
            f"(efficiency {efficiency:.2f} over {parallelism} "
            f"usable-parallel workers)"
        )
        if args.report_json is not None:
            doc = report_document(
                sharded,
                config=_loadgen_config_doc(args),
                command="repro shard bench",
            )
            doc["baseline"] = single.to_dict()
            doc["scaling"] = scaling
            doc["efficiency"] = efficiency
            doc["usable_cpus"] = usable
            doc["processes"] = args.processes
            args.report_json.write_text(
                json.dumps(doc, indent=2, sort_keys=True)
            )
            print(f"report written to {args.report_json}")
        if args.min_scaling is not None:
            # Core-count aware: a 4-worker fleet cannot scale 3x on a
            # 2-CPU runner, so the enforced floor never exceeds 75% of
            # the achievable parallelism.
            floor = min(args.min_scaling, 0.75 * parallelism)
            if parallelism < 2:
                print(
                    f"NOTE: only {usable} usable CPU(s); --min-scaling "
                    "not enforced"
                )
            elif scaling < floor:
                print(
                    f"ERROR: scaled {scaling:.2f}x over 1 process, below "
                    f"the floor of {floor:.2f}x (requested "
                    f"{args.min_scaling:.2f}x, {parallelism} "
                    "usable-parallel workers)",
                    file=sys.stderr,
                )
                return 1
        return 0

    raise ValueError(f"unknown shard action {args.action!r}")


def _cmd_adaptive(args) -> int:
    if args.action == "stats":
        import json

        from repro.obs import render_dump

        if args.snapshot is None:
            print(
                "ERROR: adaptive stats reads a snapshot; pass --snapshot "
                "PATH (export one with `repro loadgen run --adaptive "
                "--obs-export PATH` or `repro adaptive demo --obs-export "
                "PATH`)",
                file=sys.stderr,
            )
            return 1
        try:
            doc = json.loads(Path(args.snapshot).read_text())
        except FileNotFoundError:
            print(f"no obs snapshot at {args.snapshot}", file=sys.stderr)
            return 1
        metrics = doc.get("metrics", {})
        filtered = {
            kind: [
                entry
                for entry in metrics.get(kind, [])
                if str(entry.get("name", "")).startswith("adaptive.")
            ]
            for kind in ("counters", "gauges", "histograms")
        }
        if not any(filtered.values()):
            print("no adaptive.* metrics in the snapshot", file=sys.stderr)
            return 1
        print(render_dump({**doc, "metrics": filtered, "spans": []}))
        return 0

    from repro.loadgen.drift import (
        DriftSpec,
        drift_adaptive_config,
        replay_drift,
    )
    from repro.obs import default_registry

    registry = default_registry()
    spec = DriftSpec(
        at=args.drift_at,
        factor=args.drift_factor,
        noise_sigma=args.drift_noise,
        seed=args.seed,
    )
    adaptive = drift_adaptive_config(
        args.seed, trial_fraction=args.trial_fraction
    )
    report = replay_drift(
        steps=args.steps,
        spec=spec,
        adaptive=adaptive,
        seed=args.seed,
        pool_size=args.pool_size,
        registry=registry,
    )
    digest = report.result.digest()
    print(
        f"adaptive drift demo: {args.steps} steps over "
        f"{args.pool_size} shapes, seed {args.seed}"
    )
    print(report.render())
    print(report.service.adaptive_stats().render())
    events = report.result.events
    shown = events[: args.max_events]
    if shown:
        print(f"events ({len(shown)}/{len(events)} shown):")
        for event in shown:
            print(f"  {event.describe()}")
    print(f"trace digest: {digest}")
    if args.verify_replay:
        second = replay_drift(
            steps=args.steps,
            spec=spec,
            adaptive=adaptive,
            seed=args.seed,
            pool_size=args.pool_size,
        )
        if second.result.digest() != digest:
            print(
                "ERROR: replay digests diverge — the adaptive run is "
                "not deterministic",
                file=sys.stderr,
            )
            return 1
        print("replay verified: second run reproduced the trace bit-identically")
    if args.obs_export is not None:
        _export_obs(args.obs_export, registry)
    return 0


def _build_fleet_config(args):
    from repro.bench.runner import RunnerConfig
    from repro.fleet import FleetPipelineConfig

    kwargs = {
        "runner": RunnerConfig(seed=args.seed),
        "split_seed": args.split_seed,
        "test_size": args.test_size,
        "pruner": args.pruner,
        "budget": args.budget,
        "classifier": args.classifier,
        "random_state": args.seed,
    }
    if args.device_ids:
        kwargs["device_ids"] = tuple(args.device_ids)
    if args.networks:
        kwargs["networks"] = tuple(args.networks)
    return FleetPipelineConfig(**kwargs)


def _plain_dict(value):
    """A dataclass as a JSON-friendly dict (enums to their values)."""
    import dataclasses
    import enum

    out = {}
    for f in dataclasses.fields(value):
        v = getattr(value, f.name)
        out[f.name] = v.value if isinstance(v, enum.Enum) else v
    return out


def _cmd_fleet(args) -> int:
    if args.action == "devices":
        from repro.fleet import available_profiles, get_profile

        if getattr(args, "as_json", False):
            import json

            from repro.fleet import FLEET_STAGES, fleet_fingerprints, stage_name
            from repro.onboard import OnboardBudget
            from repro.onboard.impute import device_features

            config = _build_fleet_config(args)
            fleet_ids = {p.device_id for p in config.profiles()}
            fingerprints = fleet_fingerprints(config)
            doc = []
            for device_id in available_profiles():
                profile = get_profile(device_id)
                entry = {
                    "device_id": device_id,
                    "description": profile.description,
                    "spec": _plain_dict(profile.spec),
                    "model_params": _plain_dict(profile.model_params),
                    "onboard_features": [
                        float(x) for x in device_features(profile.spec)
                    ],
                    "default_onboard_budget": _plain_dict(OnboardBudget()),
                }
                if device_id in fleet_ids:
                    entry["fingerprints"] = {
                        stage: fingerprints[stage_name(stage, device_id)]
                        for stage in FLEET_STAGES
                    }
                doc.append(entry)
            print(json.dumps(doc, indent=2, sort_keys=True))
            return 0

        for device_id in available_profiles():
            profile = get_profile(device_id)
            spec = profile.spec
            print(
                f"{device_id:16s} {spec.compute_units:3d} CU  "
                f"{spec.peak_gflops:8.0f} GF  "
                f"{spec.dram_bandwidth_gbps:6.1f} GB/s  "
                f"{spec.kernel_launch_overhead_us:5.1f} us launch"
                f"{'  -- ' + profile.description if profile.description else ''}"
            )
        return 0

    from repro.fleet import (
        FLEET_STAGES,
        fleet_fingerprints,
        run_fleet_pipeline,
        stage_name,
    )
    from repro.pipeline import ArtifactStore

    store = ArtifactStore(args.store)
    config = _build_fleet_config(args)
    device_ids = [p.device_id for p in config.profiles()]

    if args.action == "build":
        run = run_fleet_pipeline(
            store, config, max_workers=args.workers, force=args.force
        )
        print(run.stats.render())
        print()
        for device_id in device_ids:
            artifact = run.artifact("train", device_id)
            print(f"{stage_name('train', device_id):24s} -> {artifact.artifact_id}")
        if args.assert_all_cached and not run.stats.all_cached:
            print(
                "ERROR: expected a fully cached fleet build but these stages "
                f"executed: {', '.join(run.stats.executed_stages)}",
                file=sys.stderr,
            )
            return 1
        return 0

    if args.action == "stats":
        fingerprints = fleet_fingerprints(config)
        missing = 0
        for device_id in device_ids:
            print(f"{device_id}:")
            for stage in FLEET_STAGES:
                name = stage_name(stage, device_id)
                fingerprint = fingerprints[name]
                cached = fingerprint in store
                missing += not cached
                status = "cached " if cached else "MISSING"
                print(f"  {stage:8s} {status} {fingerprint[:12]}")
        if missing:
            print(
                f"\n{missing} stage artifacts missing; "
                "run `repro fleet build` to materialise them"
            )
        return 0

    if args.action == "route":
        from collections import Counter

        import numpy as np

        from repro.fleet import router_from_store
        from repro.obs import Tracer, default_registry

        registry = default_registry()
        tracer = Tracer()
        policy_wrapper = None
        if args.kill:
            unknown_kills = set(args.kill) - set(device_ids)
            if unknown_kills:
                print(
                    f"ERROR: --kill names unknown devices "
                    f"{sorted(unknown_kills)}; fleet: {device_ids}",
                    file=sys.stderr,
                )
                return 1
            from repro.testing import FaultPlan, FaultyPolicy

            plan = FaultPlan()
            for device_id in args.kill:
                plan.kill_device(device_id)

            def policy_wrapper(device_id, policy):
                return FaultyPolicy(policy, plan, device_id=device_id)

        try:
            router = router_from_store(
                store,
                config,
                default_policy=args.policy,
                registry=registry,
                tracer=tracer,
                policy_wrapper=policy_wrapper,
            )
        except KeyError as exc:
            print(f"ERROR: {exc.args[0]}", file=sys.stderr)
            return 1
        # Mixed fleet traffic: shapes drawn (skewed) from each device's
        # shipped library's training networks; half the requests target a
        # specific device, half are device-agnostic.
        from repro.workloads.extract import extract_network_shapes

        shapes = []
        for network in config.networks:
            shapes.extend(extract_network_shapes(network).shapes)
        rng = np.random.default_rng(args.seed)
        weights = 1.0 / np.arange(1, len(shapes) + 1)
        weights /= weights.sum()
        picks = rng.choice(len(shapes), size=args.requests, p=weights)
        targets = rng.choice([None, *device_ids], size=args.requests)
        for start in range(0, args.requests, args.batch_size):
            chunk = slice(start, start + args.batch_size)
            agnostic = []
            decisions = []
            for i, target in zip(picks[chunk], targets[chunk]):
                if target is None:
                    agnostic.append(shapes[i])
                else:
                    decisions.append(
                        router.select(shapes[i], device_id=target)
                    )
            if agnostic:
                decisions.extend(router.select_batch(agnostic))
            # Retire exactly what each device was dispatched this batch,
            # so the least-outstanding policy sees true in-flight load.
            served = Counter(d.device_id for d in decisions)
            for device_id, n in served.items():
                router.complete(device_id, n=n)
        print(
            f"routed {args.requests} requests "
            f"(batches of {args.batch_size}, policy {args.policy})"
        )
        if args.kill:
            print(f"killed devices: {', '.join(args.kill)}")
        print(router.stats().render())
        if args.obs_export is not None:
            _export_obs(args.obs_export, registry, tracer)
        return 0

    raise ValueError(f"unknown fleet action {args.action!r}")


def _build_onboard_config(args, **budget_overrides):
    from repro.onboard import OnboardBudget, OnboardPipelineConfig

    budget_kwargs = {
        "fraction": args.budget_fraction,
        "sampler": args.sampler,
        "seed": args.onboard_seed,
        "rounds": args.rounds,
        "n_trees": args.trees,
    }
    budget_kwargs.update(budget_overrides)
    return OnboardPipelineConfig(
        target=args.target,
        budget=OnboardBudget(**budget_kwargs),
        sources=tuple(args.sources) if args.sources else None,
        fleet=_build_fleet_config(args),
    )


def _onboard_doc(report, config, command):
    from repro.loadgen import report_document

    return report_document(
        report,
        config={
            "target": config.target,
            "sources": list(config.source_ids()),
            "budget": _plain_dict(config.budget),
        },
        command=command,
    )


def _cmd_onboard(args) -> int:
    import json

    from repro.onboard import onboard_fingerprints, run_onboard_pipeline
    from repro.pipeline import ArtifactStore

    store = ArtifactStore(args.store)

    if args.action == "run":
        config = _build_onboard_config(args)
        run = run_onboard_pipeline(
            store, config, max_workers=args.workers, force=args.force
        )
        report = run.report()
        print(run.stats.render())
        print()
        print(report.render())
        if args.report_json is not None:
            doc = _onboard_doc(report, config, "repro onboard run")
            Path(args.report_json).write_text(json.dumps(doc, indent=2))
            print(f"\nreport JSON written to {args.report_json}")
        if args.assert_all_cached and not run.stats.all_cached:
            print(
                "ERROR: expected a fully cached onboarding run but these "
                f"stages executed: {', '.join(run.stats.executed_stages)}",
                file=sys.stderr,
            )
            return 1
        if args.assert_sources_cached:
            spilled = [
                name
                for name in run.stats.executed_stages
                if not name.startswith("onboard-")
            ]
            if spilled:
                print(
                    "ERROR: a budget change must re-run only onboard-* "
                    f"stages, but these executed too: {', '.join(spilled)}",
                    file=sys.stderr,
                )
                return 1
        if args.min_quality is not None and report.quality < args.min_quality:
            print(
                f"ERROR: onboard quality {report.quality:.3f} below the "
                f"--min-quality gate {args.min_quality:.3f}",
                file=sys.stderr,
            )
            return 1
        return 0

    if args.action == "report":
        from repro.fleet import stage_name

        config = _build_onboard_config(args)
        fingerprint = onboard_fingerprints(config)[
            stage_name("onboard-report", config.target)
        ]
        artifact = store.get(fingerprint)
        if artifact is None:
            print(
                f"no onboard report for {config.target!r} under this budget "
                f"(fingerprint {fingerprint[:12]}); build it with "
                "`repro onboard run`",
                file=sys.stderr,
            )
            return 1
        report = artifact.value
        print(report.render())
        if args.report_json is not None:
            doc = _onboard_doc(report, config, "repro onboard report")
            Path(args.report_json).write_text(json.dumps(doc, indent=2))
        return 0

    if args.action == "compare":
        rows = []
        for sampler in args.samplers:
            for fraction in args.fractions:
                config = _build_onboard_config(
                    args, sampler=sampler, fraction=fraction
                )
                run = run_onboard_pipeline(
                    store, config, max_workers=args.workers, force=args.force
                )
                rows.append((sampler, fraction, config, run.report()))
        print(
            f"{'sampler':12s} {'budget':>7s} {'cells':>12s} "
            f"{'onboard':>8s} {'full':>8s} {'quality':>8s} {'agree':>7s}"
        )
        for sampler, fraction, config, report in rows:
            print(
                f"{sampler:12s} {fraction:6.1%} "
                f"{report.cells_attempted:5d}/{report.total_cells:<6d} "
                f"{report.onboard_score:8.4f} {report.full_score:8.4f} "
                f"{report.quality:7.1%} {report.top1_agreement:6.1%}"
            )
        if args.report_json is not None:
            curve = {
                "target": args.target,
                "curve": [
                    {
                        "sampler": sampler,
                        "fraction": fraction,
                        **report.to_dict(),
                    }
                    for sampler, fraction, _, report in rows
                ],
            }
            doc = _onboard_doc(rows[-1][3], rows[-1][2], "repro onboard compare")
            doc["compare"] = curve
            Path(args.report_json).write_text(json.dumps(doc, indent=2))
            print(f"\nreport JSON written to {args.report_json}")
        failures = []
        if args.min_quality is not None:
            gated = [
                r
                for s, f, _, r in rows
                if s == args.gate_sampler and abs(f - args.gate_fraction) < 1e-9
            ]
            if not gated:
                failures.append(
                    f"--min-quality gate needs sampler {args.gate_sampler!r} "
                    f"at fraction {args.gate_fraction} in the sweep"
                )
            elif gated[0].quality < args.min_quality:
                failures.append(
                    f"{args.gate_sampler} quality {gated[0].quality:.3f} at "
                    f"{args.gate_fraction:.0%} budget below the gate "
                    f"{args.min_quality:.3f}"
                )
        if args.require_active_beats_random:
            by_sampler = {}
            for sampler, fraction, _, report in rows:
                if abs(fraction - args.gate_fraction) < 1e-9:
                    by_sampler[sampler] = report.quality
            if "active" not in by_sampler or "random" not in by_sampler:
                failures.append(
                    "--require-active-beats-random needs both samplers at "
                    f"the gate fraction {args.gate_fraction}"
                )
            elif by_sampler["active"] <= by_sampler["random"]:
                failures.append(
                    f"active quality {by_sampler['active']:.3f} does not "
                    f"beat random {by_sampler['random']:.3f} at "
                    f"{args.gate_fraction:.0%} budget"
                )
        for failure in failures:
            print(f"ERROR: {failure}", file=sys.stderr)
        return 1 if failures else 0

    raise ValueError(f"unknown onboard action {args.action!r}")


def _cmd_obs(args) -> int:
    import json

    from repro.obs import default_registry, obs_doc, render_dump, render_summary

    if args.snapshot is not None:
        try:
            doc = json.loads(Path(args.snapshot).read_text())
        except FileNotFoundError:
            print(
                f"no obs snapshot at {args.snapshot}; export one with "
                "`repro fleet route --obs-export PATH` (or serve-stats / "
                "pipeline run)",
                file=sys.stderr,
            )
            return 1
    else:
        # In-process registry: only useful right after a command in the
        # same interpreter; the snapshot path is the normal workflow.
        doc = obs_doc(default_registry())
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    try:
        render = render_dump if args.action == "dump" else render_summary
        print(render(doc))
    except ValueError as exc:
        print(f"ERROR: {exc.args[0]}", file=sys.stderr)
        return 1
    return 0


def _cmd_devices(args) -> int:
    from repro.sycl.device import Device

    for key in Device.available_presets():
        spec = Device.from_preset(key).spec
        print(
            f"{key:22s} {spec.name:44s} "
            f"{spec.peak_gflops:8.0f} GF  {spec.dram_bandwidth_gbps:6.1f} GB/s"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Towards automated kernel selection in machine "
            "learning systems: A SYCL case study' (Lawson, 2020)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("dataset", help="generate/save the performance dataset")
    _add_dataset_args(p)
    p.add_argument("--out", type=Path, default=None, help="save location (.npz)")
    p.set_defaults(func=_cmd_dataset)

    p = sub.add_parser("shapes", help="list extracted GEMM shapes")
    p.add_argument(
        "--network",
        default="vgg16",
        choices=("vgg16", "resnet50", "mobilenet_v2", "transformer"),
    )
    p.set_defaults(func=_cmd_shapes)

    p = sub.add_parser("experiments", help="reproduce figures and tables")
    _add_dataset_args(p)
    p.add_argument(
        "--which",
        default="all",
        choices=(
            "1", "2", "3", "4", "table1", "tradeoff", "variance", "sparse",
            "placement", "all",
        ),
        help="which figure/table (or extension experiment) to run",
    )
    p.set_defaults(func=_cmd_experiments)

    p = sub.add_parser(
        "placement",
        help="transfer-aware placement-flip experiment with CI gates",
    )
    p.add_argument("action", choices=("run",))
    p.add_argument("--budget", type=int, default=8)
    p.add_argument("--stride", type=int, default=3, help="shape subsampling stride")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--min-flip-fraction",
        type=float,
        default=0.1,
        help="fail unless at least this fraction of base shapes flip",
    )
    p.add_argument(
        "--min-margin",
        type=float,
        default=0.02,
        help=(
            "fail unless the placement-aware selector beats the blind one "
            "by this geomean margin on mixed traffic"
        ),
    )
    p.add_argument(
        "--report-json",
        type=Path,
        default=None,
        help="write the result dict as JSON (the CI artifact)",
    )
    p.set_defaults(func=_cmd_placement)

    p = sub.add_parser("tune", help="run the pipeline, export the selector")
    _add_dataset_args(p)
    p.add_argument("--budget", type=int, default=8)
    p.add_argument("--classifier", default="DecisionTree")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--export", choices=("none", "py", "cpp"), default="none")
    p.set_defaults(func=_cmd_tune)

    p = sub.add_parser(
        "pipeline",
        help="staged pipeline over the content-addressed artifact store",
    )
    p.add_argument("action", choices=("run", "status", "gc"))
    p.add_argument(
        "--store",
        type=Path,
        default=Path(".repro-store"),
        help="artifact store root directory",
    )
    p.add_argument("--device", default="r9-nano")
    p.add_argument(
        "--networks",
        nargs="*",
        default=None,
        metavar="NET",
        help="restrict the sweep to these networks (default: all three)",
    )
    p.add_argument("--split-seed", type=int, default=0)
    p.add_argument("--test-size", type=float, default=0.2)
    p.add_argument("--pruner", default="decision tree")
    p.add_argument("--budget", type=int, default=8)
    p.add_argument("--classifier", default="DecisionTree")
    p.add_argument("--seed", type=int, default=0, help="random_state")
    p.add_argument("--workers", type=int, default=1)
    p.add_argument(
        "--force", action="store_true", help="re-run all stages (run)"
    )
    p.add_argument(
        "--render", action="store_true", help="print the full report (run)"
    )
    p.add_argument(
        "--assert-all-cached",
        action="store_true",
        help="exit 1 unless every stage was a cache hit (run; CI guard)",
    )
    p.add_argument(
        "--all", action="store_true", help="gc: delete every artifact"
    )
    p.add_argument(
        "--obs-export",
        type=Path,
        default=None,
        metavar="PATH",
        help="run: write a repro.obs JSON snapshot (see `repro obs`)",
    )
    p.set_defaults(func=_cmd_pipeline)

    p = sub.add_parser(
        "fleet",
        help="multi-device fleet: per-device selector artifacts + routing",
    )
    p.add_argument("action", choices=("build", "route", "stats", "devices"))
    p.add_argument(
        "--store",
        type=Path,
        default=Path(".repro-store"),
        help="artifact store root directory (shared with `repro pipeline`)",
    )
    p.add_argument(
        "--device-ids",
        nargs="*",
        default=None,
        metavar="ID",
        help="fleet device profiles (default: the builtin four; "
        "see `repro fleet devices`)",
    )
    p.add_argument(
        "--networks",
        nargs="*",
        default=None,
        metavar="NET",
        help="restrict the sweep to these networks (default: all three)",
    )
    p.add_argument("--split-seed", type=int, default=0)
    p.add_argument("--test-size", type=float, default=0.2)
    p.add_argument("--pruner", default="decision tree")
    p.add_argument("--budget", type=int, default=8)
    p.add_argument("--classifier", default="DecisionTree")
    p.add_argument("--seed", type=int, default=0, help="random_state")
    p.add_argument("--workers", type=int, default=1)
    p.add_argument(
        "--force", action="store_true", help="re-run all stages (build)"
    )
    p.add_argument(
        "--assert-all-cached",
        action="store_true",
        help="exit 1 unless every stage was a cache hit (build; CI guard)",
    )
    p.add_argument(
        "--policy",
        default="round-robin",
        choices=("round-robin", "least-outstanding", "perf-aware"),
        help="default routing policy for device-agnostic requests (route)",
    )
    p.add_argument(
        "--requests", type=int, default=10000, help="route: total queries"
    )
    p.add_argument(
        "--batch-size", type=int, default=256, help="route: queries per batch"
    )
    p.add_argument(
        "--kill",
        nargs="*",
        default=None,
        metavar="ID",
        help="route: inject faults into these devices' policies, forcing "
        "breaker trips and cross-device reroutes (demo/obs)",
    )
    p.add_argument(
        "--obs-export",
        type=Path,
        default=None,
        metavar="PATH",
        help="route: write a repro.obs JSON snapshot (see `repro obs`)",
    )
    p.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="devices: emit device features + branch fingerprints as JSON",
    )
    p.set_defaults(func=_cmd_fleet)

    p = sub.add_parser(
        "onboard",
        help="budgeted device onboarding: partial sweep + cross-device "
        "imputation instead of a full table",
    )
    p.add_argument("action", choices=("run", "report", "compare"))
    p.add_argument(
        "--store",
        type=Path,
        default=Path(".repro-store"),
        help="artifact store root directory (shared with `repro fleet`)",
    )
    p.add_argument(
        "--target",
        required=True,
        metavar="ID",
        help="device to onboard (must have a fleet branch for comparison)",
    )
    p.add_argument(
        "--sources",
        nargs="*",
        default=None,
        metavar="ID",
        help="source devices the imputation model learns from "
        "(default: every other fleet device)",
    )
    p.add_argument(
        "--budget-fraction",
        type=float,
        default=0.10,
        help="share of the (shape x config) table to measure",
    )
    p.add_argument(
        "--sampler",
        default="active",
        choices=("random", "stratified", "active"),
        help="cell-picking strategy (run/report)",
    )
    p.add_argument(
        "--onboard-seed", type=int, default=0, help="sampler seed"
    )
    p.add_argument(
        "--rounds", type=int, default=4, help="active refinement rounds"
    )
    p.add_argument(
        "--trees", type=int, default=16, help="imputation forest size"
    )
    p.add_argument(
        "--fractions",
        nargs="*",
        type=float,
        default=(0.05, 0.10),
        metavar="F",
        help="compare: budget fractions to sweep",
    )
    p.add_argument(
        "--samplers",
        nargs="*",
        default=("random", "active"),
        metavar="S",
        help="compare: samplers to sweep",
    )
    p.add_argument(
        "--gate-sampler",
        default="active",
        help="compare: sampler the --min-quality gate applies to",
    )
    p.add_argument(
        "--gate-fraction",
        type=float,
        default=0.10,
        help="compare: fraction the quality/beats-random gates apply to",
    )
    p.add_argument(
        "--min-quality",
        type=float,
        default=None,
        help="exit 1 unless onboard quality (share of the full-sweep "
        "score) reaches this value (run/compare; CI gate)",
    )
    p.add_argument(
        "--require-active-beats-random",
        action="store_true",
        help="compare: exit 1 unless active quality beats random at the "
        "gate fraction (CI gate)",
    )
    p.add_argument(
        "--device-ids",
        nargs="*",
        default=None,
        metavar="ID",
        help="fleet device profiles (default: the builtin four)",
    )
    p.add_argument(
        "--networks",
        nargs="*",
        default=None,
        metavar="NET",
        help="restrict the sweep to these networks (default: all three)",
    )
    p.add_argument("--split-seed", type=int, default=0)
    p.add_argument("--test-size", type=float, default=0.2)
    p.add_argument("--pruner", default="decision tree")
    p.add_argument("--budget", type=int, default=8)
    p.add_argument("--classifier", default="DecisionTree")
    p.add_argument("--seed", type=int, default=0, help="random_state")
    p.add_argument("--workers", type=int, default=1)
    p.add_argument(
        "--force", action="store_true", help="re-run all stages (run)"
    )
    p.add_argument(
        "--assert-all-cached",
        action="store_true",
        help="exit 1 unless every stage was a cache hit (run; CI guard)",
    )
    p.add_argument(
        "--assert-sources-cached",
        action="store_true",
        help="exit 1 if any non-onboard stage executed (run; proves a "
        "budget change re-runs exactly the onboard branch)",
    )
    p.add_argument(
        "--report-json",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the onboard report (plus meta) as JSON",
    )
    p.set_defaults(func=_cmd_onboard)

    p = sub.add_parser(
        "serve-stats",
        help="replay a serving workload, print SelectionService counters",
    )
    _add_dataset_args(p)
    p.add_argument("--budget", type=int, default=8)
    p.add_argument("--classifier", default="DecisionTree")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--store",
        type=Path,
        default=None,
        help="serve a selector artifact from this pipeline store",
    )
    p.add_argument(
        "--artifact",
        default=None,
        help="artifact id/fingerprint prefix (default: latest train stage)",
    )
    p.add_argument(
        "--requests", type=int, default=10000, help="total shape queries"
    )
    p.add_argument(
        "--batch-size", type=int, default=256, help="queries per service call"
    )
    p.add_argument(
        "--cache-capacity", type=int, default=4096, help="LRU memo capacity"
    )
    p.add_argument(
        "--obs-export",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a repro.obs JSON snapshot (see `repro obs`)",
    )
    p.set_defaults(func=_cmd_serve_stats)

    p = sub.add_parser(
        "loadgen",
        help="closed-loop load harness against a replica selection fleet",
    )
    p.add_argument("action", choices=("run",))
    p.add_argument(
        "--qps", type=float, default=2000.0, help="base arrival rate"
    )
    p.add_argument(
        "--duration", type=float, default=5.0, help="scheduled run seconds"
    )
    p.add_argument(
        "--workers", type=int, default=4, help="generator threads"
    )
    p.add_argument(
        "--replicas", type=int, default=2, help="identical service replicas"
    )
    p.add_argument(
        "--diurnal-amplitude",
        type=float,
        default=0.0,
        help="relative rate swing in [0, 1); 0 disables the ramp",
    )
    p.add_argument(
        "--diurnal-period",
        type=float,
        default=60.0,
        help="seconds per diurnal cycle (trough at t=0)",
    )
    p.add_argument(
        "--zipf", type=float, default=1.1, help="hot-key skew (0 = uniform)"
    )
    p.add_argument(
        "--networks",
        nargs="*",
        default=None,
        metavar="NET",
        help="shape pool networks (default: vgg16 resnet50 mobilenet_v2)",
    )
    p.add_argument(
        "--policy",
        default="round-robin",
        choices=("round-robin", "least-outstanding"),
        help="routing policy across the replicas",
    )
    p.add_argument(
        "--compiled",
        action="store_true",
        help="front each replica with the compiled selector hot path",
    )
    p.add_argument("--budget", type=int, default=4, help="pruned config count")
    p.add_argument(
        "--cache-capacity", type=int, default=4096, help="LRU memo capacity"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--store",
        type=Path,
        default=None,
        help="serve a selector artifact from this pipeline store "
        "(default: tune a synthetic selector in-process)",
    )
    p.add_argument(
        "--artifact",
        default=None,
        help="artifact id/fingerprint prefix (default: latest train stage)",
    )
    p.add_argument(
        "--adaptive",
        action="store_true",
        help="run the drifted-workload scenario through adaptive services",
    )
    p.add_argument(
        "--processes",
        type=int,
        default=None,
        metavar="N",
        help="drive a sharded fleet of N worker processes instead of "
        "in-process replicas (see `repro shard`)",
    )
    p.add_argument(
        "--chunk-size",
        type=int,
        default=256,
        help="requests per select_batch chunk (with --processes)",
    )
    p.add_argument(
        "--no-pace",
        action="store_true",
        help="skip inter-arrival sleeps (as-fast-as-possible replay)",
    )
    p.add_argument(
        "--drift-at",
        type=float,
        default=0.5,
        help="drift onset as a fraction of the scheduled duration",
    )
    p.add_argument(
        "--drift-factor",
        type=float,
        default=4.0,
        help="post-drift slowdown of the static policy's choice",
    )
    p.add_argument(
        "--drift-noise",
        type=float,
        default=0.05,
        help="lognormal sigma of the simulated latency noise",
    )
    p.add_argument(
        "--trial-fraction",
        type=float,
        default=0.125,
        help="fraction of admitted-shape feedback that arms a trial",
    )
    p.add_argument(
        "--min-qps",
        type=float,
        default=None,
        help="exit 1 if achieved throughput falls below this floor (CI gate)",
    )
    p.add_argument(
        "--min-gap-closure",
        type=float,
        default=None,
        help="exit 1 if adaptive serving closes less of the static-to-"
        "oracle gap than this fraction (CI gate; needs --adaptive)",
    )
    p.add_argument(
        "--report-json",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the load report as JSON (CI artifact)",
    )
    p.add_argument(
        "--obs-export",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a repro.obs JSON snapshot (see `repro obs`)",
    )
    p.set_defaults(func=_cmd_loadgen)

    p = sub.add_parser(
        "shard",
        help="sharded process-parallel serving: serve / stats / bench",
    )
    p.add_argument("action", choices=("serve", "stats", "bench"))
    p.add_argument(
        "--processes", type=int, default=2, help="shard worker processes"
    )
    p.add_argument(
        "--compiled",
        action="store_true",
        help="workers serve the compiled selector hot path",
    )
    p.add_argument("--budget", type=int, default=4, help="pruned config count")
    p.add_argument(
        "--cache-capacity", type=int, default=4096, help="LRU memo capacity"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--store",
        type=Path,
        default=None,
        help="serve a selector artifact from this pipeline store "
        "(default: tune a synthetic selector in-process)",
    )
    p.add_argument(
        "--artifact",
        default=None,
        help="artifact id/fingerprint prefix (default: latest train stage)",
    )
    p.add_argument(
        "--requests", type=int, default=10000, help="serve: total queries"
    )
    p.add_argument(
        "--batch-size", type=int, default=256, help="serve: queries per batch"
    )
    p.add_argument(
        "--kill",
        type=int,
        default=None,
        metavar="WORKER",
        help="serve: SIGKILL this worker index mid-run (failover demo)",
    )
    p.add_argument(
        "--qps", type=float, default=20000.0, help="bench: base arrival rate"
    )
    p.add_argument(
        "--duration", type=float, default=2.0, help="bench: scheduled seconds"
    )
    p.add_argument(
        "--workers", type=int, default=2, help="bench: generator threads"
    )
    p.add_argument(
        "--diurnal-amplitude", type=float, default=0.0, help="bench rate swing"
    )
    p.add_argument(
        "--diurnal-period", type=float, default=60.0, help="bench cycle secs"
    )
    p.add_argument(
        "--zipf", type=float, default=1.1, help="hot-key skew (0 = uniform)"
    )
    p.add_argument(
        "--networks",
        nargs="*",
        default=None,
        metavar="NET",
        help="shape pool networks (default: vgg16 resnet50 mobilenet_v2)",
    )
    p.add_argument(
        "--chunk-size",
        type=int,
        default=256,
        help="bench: requests per select_batch chunk",
    )
    p.add_argument(
        "--no-pace",
        action="store_true",
        default=True,
        help=argparse.SUPPRESS,  # bench always replays flat-out
    )
    p.add_argument(
        "--min-scaling",
        type=float,
        default=None,
        help="bench: exit 1 if N-process throughput scales below this "
        "factor over 1 process (core-count aware; CI gate)",
    )
    p.add_argument(
        "--report-json",
        type=Path,
        default=None,
        metavar="PATH",
        help="bench: write the scaling report as JSON (CI artifact)",
    )
    p.add_argument(
        "--snapshot",
        type=Path,
        default=None,
        metavar="PATH",
        help="stats: obs JSON snapshot written by --obs-export",
    )
    p.add_argument(
        "--obs-export",
        type=Path,
        default=None,
        metavar="PATH",
        help="serve: write a repro.obs JSON snapshot (see `repro obs`)",
    )
    p.set_defaults(func=_cmd_shard)

    p = sub.add_parser(
        "adaptive",
        help="online adaptive selection: drift demo + metric stats",
    )
    p.add_argument("action", choices=("demo", "stats"))
    p.add_argument(
        "--steps", type=int, default=3000, help="demo: replayed requests"
    )
    p.add_argument(
        "--pool-size",
        type=int,
        default=12,
        help="demo: distinct shapes in the Zipf pool",
    )
    p.add_argument(
        "--drift-at",
        type=float,
        default=0.5,
        help="drift onset as a fraction of the replayed steps",
    )
    p.add_argument(
        "--drift-factor",
        type=float,
        default=4.0,
        help="post-drift slowdown of the static policy's choice",
    )
    p.add_argument(
        "--drift-noise",
        type=float,
        default=0.05,
        help="lognormal sigma of the simulated latency noise",
    )
    p.add_argument(
        "--trial-fraction",
        type=float,
        default=0.125,
        help="fraction of admitted-shape feedback that arms a trial",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--max-events",
        type=int,
        default=20,
        help="demo: bandit events shown in the timeline",
    )
    p.add_argument(
        "--verify-replay",
        action="store_true",
        help="demo: replay twice and require bit-identical trace digests",
    )
    p.add_argument(
        "--snapshot",
        type=Path,
        default=None,
        metavar="PATH",
        help="stats: obs JSON snapshot written by --obs-export",
    )
    p.add_argument(
        "--obs-export",
        type=Path,
        default=None,
        metavar="PATH",
        help="demo: write a repro.obs JSON snapshot (see `repro obs`)",
    )
    p.set_defaults(func=_cmd_adaptive)

    p = sub.add_parser(
        "obs",
        help="render an exported observability snapshot (metrics + spans)",
    )
    p.add_argument("action", choices=("dump", "summary"))
    p.add_argument(
        "--snapshot",
        type=Path,
        default=None,
        metavar="PATH",
        help="JSON snapshot written by --obs-export "
        "(default: the in-process registry)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print the raw JSON document instead of rendering it",
    )
    p.set_defaults(func=_cmd_obs)

    p = sub.add_parser("devices", help="list simulated device presets")
    p.set_defaults(func=_cmd_devices)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
