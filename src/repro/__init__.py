"""repro: automated kernel selection for SYCL machine-learning libraries.

A full reproduction of *"Towards automated kernel selection in machine
learning systems: A SYCL case study"* (John Lawson, 2020,
arXiv:2003.06795), including every substrate the paper depends on:

* :mod:`repro.sycl` — a SYCL-style runtime (queues, buffers, nd_range,
  profiling events) executing kernels functionally;
* :mod:`repro.perfmodel` — an analytical GPU performance model standing
  in for the paper's AMD R9 Nano benchmark platform;
* :mod:`repro.kernels` — the tiled GEMM kernel family and its
  640-configuration space;
* :mod:`repro.workloads` — VGG16 / ResNet-50 / MobileNetV2 and the
  conv-to-GEMM lowering that produces the dataset's shapes;
* :mod:`repro.ml` — from-scratch PCA, k-means, HDBSCAN, decision trees,
  random forests, kNN and SVMs (scikit-learn substitute);
* :mod:`repro.bench` — the benchmark harness regenerating the dataset;
* :mod:`repro.core` — the paper's contribution: pruning kernel
  configurations and selecting among them at runtime;
* :mod:`repro.experiments` — drivers regenerating every figure and table.

Quickstart::

    import repro

    dataset = repro.generate_dataset()
    train, test = dataset.split(test_size=0.2, random_state=0)
    deployed = repro.tune(train, n_configs=8)
    config = deployed.select(repro.GemmShape(m=12544, k=576, n=128))
"""

from repro.core.dataset import PerformanceDataset, generate_dataset
from repro.core.deploy import DeployedSelector, tune
from repro.kernels.params import KernelConfig, config_space
from repro.sycl.device import Device
from repro.sycl.queue import Queue
from repro.workloads.gemm import GemmShape

__version__ = "1.0.0"

__all__ = [
    "DeployedSelector",
    "Device",
    "GemmShape",
    "KernelConfig",
    "PerformanceDataset",
    "Queue",
    "config_space",
    "generate_dataset",
    "tune",
    "__version__",
]
