"""The tuning objective: benchmarked kernel time, counted and cached.

Every tuner minimises ``Objective(config)``; the objective performs a
benchmark on the simulated device (warm-up + timed iterations, exactly
the dataset-collection protocol), memoises repeated queries — a real
tuner would never re-benchmark the same point — and enforces an optional
evaluation budget, the resource a tuner comparison is judged against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bench.runner import BenchmarkRunner
from repro.kernels.params import KernelConfig
from repro.workloads.gemm import GemmShape

__all__ = ["Objective", "TuningBudgetExceeded"]


class TuningBudgetExceeded(RuntimeError):
    """Raised when a tuner asks for more evaluations than its budget."""


class Objective:
    """Minimisation target for one GEMM shape on one device."""

    def __init__(
        self,
        runner: BenchmarkRunner,
        shape: GemmShape,
        *,
        max_evaluations: Optional[int] = None,
    ):
        if max_evaluations is not None and max_evaluations < 1:
            raise ValueError("max_evaluations must be >= 1 when set")
        self._runner = runner
        self._shape = shape
        self._budget = max_evaluations
        self._cache: Dict[KernelConfig, float] = {}
        self._history: List[Tuple[KernelConfig, float]] = []

    @property
    def shape(self) -> GemmShape:
        return self._shape

    @property
    def evaluations(self) -> int:
        """Distinct configurations actually benchmarked."""
        return len(self._cache)

    @property
    def budget(self) -> Optional[int]:
        return self._budget

    @property
    def remaining(self) -> Optional[int]:
        if self._budget is None:
            return None
        return self._budget - self.evaluations

    @property
    def history(self) -> List[Tuple[KernelConfig, float]]:
        """Every *new* evaluation in the order it was performed."""
        return list(self._history)

    def __call__(self, config: KernelConfig) -> float:
        """Mean benchmarked kernel time in seconds (lower is better)."""
        hit = self._cache.get(config)
        if hit is not None:
            return hit
        if self._budget is not None and len(self._cache) >= self._budget:
            raise TuningBudgetExceeded(
                f"evaluation budget of {self._budget} exhausted"
            )
        seconds = self._runner.bench_single(self._shape, config).mean
        self._cache[config] = seconds
        self._history.append((config, seconds))
        return seconds

    def best(self) -> Tuple[KernelConfig, float]:
        """Best configuration evaluated so far."""
        if not self._cache:
            raise ValueError("no evaluations performed yet")
        config = min(self._cache, key=self._cache.get)
        return config, self._cache[config]

    def best_so_far_curve(self) -> List[float]:
        """Running minimum over the evaluation history (quality curve)."""
        curve: List[float] = []
        best = float("inf")
        for _, seconds in self._history:
            best = min(best, seconds)
            curve.append(best)
        return curve
